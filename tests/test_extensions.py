"""Tests for the extension features: causal attention, ZeRO, CLI,
checkpoint I/O, evaluation and gradient accumulation."""

import numpy as np
import pytest

from repro.config import BERT_LARGE, BERT_TINY, Precision, training_point
from repro.data import MarkovCorpus, PreTrainingDataset, Vocab
from repro.distributed import (PCIE4, data_parallel_timeline,
                               zero_dp_timeline, zero_memory_per_device)
from repro.hw import mi100
from repro.model import BertForPreTraining
from repro.optim import Adam
from repro.tensor import functional as F
from repro.train import (Trainer, evaluate, load_checkpoint,
                         save_checkpoint)


class TestCausalAttention:
    def test_bias_shape_and_content(self):
        bias = F.causal_attention_bias(4)
        assert bias.shape == (1, 1, 4, 4)
        assert bias[0, 0, 0, 1] < -1e8  # future masked
        assert bias[0, 0, 2, 1] == 0.0  # past visible

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            F.causal_attention_bias(0)

    def test_combine_biases(self):
        causal = F.causal_attention_bias(3)
        padding = F.attention_mask_bias(np.array([[True, True, False]]))
        combined = F.combine_attention_biases(causal, padding, None)
        assert combined.shape == (1, 1, 3, 3)
        assert F.combine_attention_biases(None, None) is None

    def test_future_tokens_do_not_affect_past_positions(self):
        """The decoder property: with causal masking, changing token t+1
        leaves outputs at positions <= t untouched."""
        model = BertForPreTraining(BERT_TINY, seed=0, dropout_p=0.0)
        rng = np.random.default_rng(1)
        tokens = rng.integers(4, BERT_TINY.vocab_size, size=(1, 12))
        base = model.encode(tokens, causal=True).data[:, :6]
        altered = tokens.copy()
        altered[0, 8] = (altered[0, 8] + 1) % BERT_TINY.vocab_size
        other = model.encode(altered, causal=True).data[:, :6]
        np.testing.assert_allclose(base, other, atol=1e-6)

    def test_without_causal_future_does_affect_past(self):
        model = BertForPreTraining(BERT_TINY, seed=0, dropout_p=0.0)
        rng = np.random.default_rng(2)
        tokens = rng.integers(4, BERT_TINY.vocab_size, size=(1, 12))
        base = model.encode(tokens).data[:, :6]
        altered = tokens.copy()
        altered[0, 8] = (altered[0, 8] + 1) % BERT_TINY.vocab_size
        other = model.encode(altered).data[:, :6]
        assert not np.allclose(base, other, atol=1e-6)


class TestZero:
    b16 = training_point(1, 16, Precision.FP32)

    def test_optimizer_bucket_shrinks(self):
        device = mi100()
        plain = data_parallel_timeline(BERT_LARGE, self.b16, device, PCIE4,
                                       64, overlap=True)
        zero = zero_dp_timeline(BERT_LARGE, self.b16, device, PCIE4, 64)
        assert (zero.buckets["optimizer"]
                < 0.25 * plain.buckets["optimizer"])

    def test_communication_grows(self):
        device = mi100()
        plain = data_parallel_timeline(BERT_LARGE, self.b16, device, PCIE4,
                                       64, overlap=True)
        zero = zero_dp_timeline(BERT_LARGE, self.b16, device, PCIE4, 64)
        assert (zero.buckets["communication"]
                > plain.buckets["communication"])

    def test_single_device_is_plain_training(self):
        device = mi100()
        zero = zero_dp_timeline(BERT_LARGE, self.b16, device, PCIE4, 1)
        assert zero.buckets["communication"] == 0.0

    def test_state_memory_shards(self):
        full = zero_memory_per_device(BERT_LARGE, 1)
        sharded = zero_memory_per_device(BERT_LARGE, 8)
        assert full == pytest.approx(8 * sharded, rel=0.01)
        with pytest.raises(ValueError):
            zero_memory_per_device(BERT_LARGE, 0)


class TestCli:
    def test_list(self, capsys):
        from repro.cli import main
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig3" in out and "zero" in out

    def test_run_single(self, capsys):
        from repro.cli import main
        assert main(["run", "fig6"]) == 0
        assert "ops/B" in capsys.readouterr().out

    def test_run_unknown_fails(self, capsys):
        from repro.cli import main
        assert main(["run", "fig99"]) == 2

    def test_info(self, capsys):
        from repro.cli import main
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "bert-large" in out and "mi100" in out


class TestCheckpointIO:
    def test_model_roundtrip(self, tmp_path):
        path = str(tmp_path / "ckpt.npz")
        source = BertForPreTraining(BERT_TINY, seed=1, dropout_p=0.0)
        target = BertForPreTraining(BERT_TINY, seed=2, dropout_p=0.0)
        save_checkpoint(path, source)
        load_checkpoint(path, target)
        tokens = np.random.default_rng(0).integers(4, 64, size=(1, 8))
        np.testing.assert_allclose(source.encode(tokens).data,
                                   target.encode(tokens).data)

    def test_optimizer_state_roundtrip(self, tmp_path):
        path = str(tmp_path / "ckpt.npz")
        vocab = Vocab(size=BERT_TINY.vocab_size)
        dataset = PreTrainingDataset(
            vocab, MarkovCorpus(vocab, seed=0), seq_len=16, seed=0)
        model = BertForPreTraining(BERT_TINY, seed=3, dropout_p=0.0)
        optimizer = Adam(model.parameters(), lr=1e-3)
        Trainer(model, optimizer, dataset).train(batch_size=2, steps=2)
        save_checkpoint(path, model, optimizer)

        restored_model = BertForPreTraining(BERT_TINY, seed=4,
                                            dropout_p=0.0)
        restored_opt = Adam(restored_model.parameters(), lr=1e-3)
        load_checkpoint(path, restored_model, restored_opt)
        assert restored_opt.step_count == 2
        # Moment tensors restored tensor for tensor.
        for original, restored in zip(optimizer._state,
                                      restored_opt._state):
            assert set(original) == set(restored)
            for key in original:
                np.testing.assert_allclose(original[key], restored[key])

    def test_missing_optimizer_state_raises(self, tmp_path):
        path = str(tmp_path / "ckpt.npz")
        model = BertForPreTraining(BERT_TINY, seed=5, dropout_p=0.0)
        save_checkpoint(path, model)
        optimizer = Adam(model.parameters(), lr=1e-3)
        with pytest.raises(KeyError):
            load_checkpoint(path, model, optimizer)


class TestEvaluate:
    def test_untrained_model_near_chance(self):
        vocab = Vocab(size=BERT_TINY.vocab_size)
        dataset = PreTrainingDataset(
            vocab, MarkovCorpus(vocab, seed=0), seq_len=32, seed=1)
        model = BertForPreTraining(BERT_TINY, seed=6, dropout_p=0.0)
        result = evaluate(model, dataset, batch_size=8, batches=2)
        assert result.mlm_accuracy < 0.1
        assert 0.0 <= result.nsp_accuracy <= 1.0
        assert result.mlm_positions > 0 and result.examples == 16

    def test_trained_model_beats_chance(self):
        vocab = Vocab(size=BERT_TINY.vocab_size)
        corpus = MarkovCorpus(vocab, seed=0, branching=2)
        dataset = PreTrainingDataset(vocab, corpus, seq_len=32, seed=1)
        model = BertForPreTraining(BERT_TINY, seed=7, dropout_p=0.0)
        Trainer(model, Adam(model.parameters(), lr=3e-3),
                dataset).train(batch_size=16, steps=180)
        result = evaluate(model, dataset, batch_size=16, batches=4)
        # Chance MLM top-1 accuracy is 1/512 ~ 0.2%; require 10x that.
        # NSP (is-next) is the quicker signal and should be near-perfect.
        assert result.mlm_accuracy > 0.02
        assert result.nsp_accuracy > 0.8

    def test_restores_training_mode(self):
        vocab = Vocab(size=BERT_TINY.vocab_size)
        dataset = PreTrainingDataset(
            vocab, MarkovCorpus(vocab, seed=0), seq_len=16, seed=0)
        model = BertForPreTraining(BERT_TINY, seed=8)
        model.train()
        evaluate(model, dataset, batch_size=2, batches=1)
        assert model.training

    def test_validation(self):
        vocab = Vocab(size=BERT_TINY.vocab_size)
        dataset = PreTrainingDataset(
            vocab, MarkovCorpus(vocab, seed=0), seq_len=16, seed=0)
        model = BertForPreTraining(BERT_TINY, seed=9)
        with pytest.raises(ValueError):
            evaluate(model, dataset, batches=0)


class TestGradientAccumulation:
    def _setup(self, seed=10):
        vocab = Vocab(size=BERT_TINY.vocab_size)
        dataset = PreTrainingDataset(
            vocab, MarkovCorpus(vocab, seed=0), seq_len=16, seed=0)
        model = BertForPreTraining(BERT_TINY, seed=seed, dropout_p=0.0)
        return model, dataset

    def test_accumulated_step_matches_full_batch(self):
        """k micro-batches must produce the same update as one full pass."""
        model_a, dataset = self._setup()
        model_b = BertForPreTraining(BERT_TINY, seed=10, dropout_p=0.0)
        batch = dataset.batch(8)

        trainer_a = Trainer(model_a, Adam(model_a.parameters(), lr=1e-3),
                            dataset)
        trainer_b = Trainer(model_b, Adam(model_b.parameters(), lr=1e-3),
                            dataset)
        trainer_a.train_step(batch, micro_batches=1)
        trainer_b.train_step(batch, micro_batches=4)
        for pa, pb in zip(model_a.parameters(), model_b.parameters()):
            np.testing.assert_allclose(pa.data, pb.data, rtol=1e-3,
                                       atol=1e-6)

    def test_invalid_micro_batches_rejected(self):
        model, dataset = self._setup()
        trainer = Trainer(model, Adam(model.parameters(), lr=1e-3), dataset)
        with pytest.raises(ValueError):
            trainer.train_step(dataset.batch(8), micro_batches=3)
