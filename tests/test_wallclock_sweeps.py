"""Tests for the wall-clock profiler, sweep utilities and CSV export."""

import csv
import io

import numpy as np
import pytest

from repro.config import BERT_TINY, Precision
from repro.data import MarkovCorpus, PreTrainingDataset, Vocab
from repro.experiments.sweeps import (cross_product, export_experiment_csv,
                                      grid_sweep, rows_to_csv)
from repro.model import BertForPreTraining
from repro.optim import Adam
from repro.profiler.wallclock import (profile_step, profile_steps,
                                      summarize_wallclock)


@pytest.fixture(scope="module")
def rig():
    vocab = Vocab(size=BERT_TINY.vocab_size)
    dataset = PreTrainingDataset(vocab, MarkovCorpus(vocab, seed=0),
                                 seq_len=32, seed=1)
    model = BertForPreTraining(BERT_TINY, seed=2, dropout_p=0.0)
    optimizer = Adam(model.parameters(), lr=1e-3)
    return model, optimizer, dataset


class TestWallclockProfiler:
    def test_phases_measured(self, rig):
        model, optimizer, dataset = rig
        profile = profile_step(model, optimizer, dataset.batch(8))
        assert [p.name for p in profile.phases] == ["forward", "backward",
                                                    "optimizer"]
        assert all(p.seconds > 0 for p in profile.phases)
        assert np.isfinite(profile.loss)

    def test_fractions_sum_to_one(self, rig):
        model, optimizer, dataset = rig
        profile = profile_step(model, optimizer, dataset.batch(8))
        total = sum(profile.fraction(name)
                    for name in ("forward", "backward", "optimizer"))
        assert total == pytest.approx(1.0)

    def test_forward_matmuls_counted(self, rig):
        model, optimizer, dataset = rig
        profile = profile_step(model, optimizer, dataset.batch(4))
        forward = profile.phases[0]
        # 8 matmuls per encoder layer + 4 in the heads.
        assert forward.matmuls == 8 * BERT_TINY.num_layers + 4
        assert forward.matmul_flops > 0

    def test_backward_slower_than_forward(self, rig):
        model, optimizer, dataset = rig
        profiles = profile_steps(model, optimizer,
                                 dataset.batches(16, 4), warmup=1)
        ratio = np.median([p.backward_to_forward for p in profiles])
        # Backward does ~2x the GEMM work; NumPy overheads blur it, so
        # accept a broad band around the paper's 2x.
        assert 1.0 < ratio < 5.0

    def test_unknown_phase_rejected(self, rig):
        model, optimizer, dataset = rig
        profile = profile_step(model, optimizer, dataset.batch(2))
        with pytest.raises(KeyError):
            profile.fraction("update")

    def test_summary_and_warmup(self, rig):
        model, optimizer, dataset = rig
        profiles = profile_steps(model, optimizer,
                                 dataset.batches(4, 3), warmup=1)
        assert len(profiles) == 2
        summary = summarize_wallclock(profiles)
        fraction_sum = (summary["forward_fraction"]
                        + summary["backward_fraction"]
                        + summary["optimizer_fraction"])
        assert fraction_sum == pytest.approx(1.0)
        with pytest.raises(ValueError):
            profile_steps(model, optimizer, dataset.batches(2, 1), warmup=1)
        with pytest.raises(ValueError):
            summarize_wallclock([])


class TestSweeps:
    def test_cross_product(self):
        points = cross_product((2, 4), (16, 32),
                               (Precision.FP32, Precision.MIXED))
        assert len(points) == 8
        distinct = {(p.batch_size, p.seq_len, p.precision) for p in points}
        assert len(distinct) == 8

    def test_grid_sweep_columns(self):
        points = cross_product((2, 4), (16,), (Precision.FP32,))
        rows = grid_sweep(BERT_TINY, points)
        assert len(rows) == 2
        for row in rows:
            assert {"label", "tokens", "gemm", "optimizer"} <= set(row)

    def test_grid_sweep_custom_metrics(self):
        points = cross_product((2,), (16,), (Precision.FP32,))
        rows = grid_sweep(
            BERT_TINY, points,
            metrics=lambda r: {"label": r["label"],
                               "tput": r["tokens"] / r["total_time_s"]})
        assert set(rows[0]) == {"label", "tput"}
        assert rows[0]["tput"] > 0

    def test_rows_to_csv_flattens_dataclasses(self):
        from repro.experiments import fig3
        text = rows_to_csv(fig3.run())
        parsed = list(csv.DictReader(io.StringIO(text)))
        assert len(parsed) == 5
        assert "transformer" in parsed[0]
        assert float(parsed[0]["transformer"]) > 0.5

    def test_rows_to_csv_rejects_empty(self):
        with pytest.raises(ValueError):
            rows_to_csv([])

    def test_export_experiment_csv(self, tmp_path):
        path = tmp_path / "fig3.csv"
        export_experiment_csv("fig3", str(path))
        assert path.read_text().startswith("label,")

    def test_export_rejects_non_row_experiments(self, tmp_path):
        with pytest.raises(TypeError):
            export_experiment_csv("fig4", str(tmp_path / "x.csv"))
