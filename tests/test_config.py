"""Tests for repro.config: hyperparameters, presets and parameter counts."""

import dataclasses

import pytest

from repro.config import (BERT_BASE, BERT_LARGE, BERT_TINY, C1, C2, C3,
                          FIG3_POINTS, BertConfig, Precision, TrainingConfig,
                          training_point)


class TestBertConfig:
    def test_bert_large_matches_paper_hyperparameters(self):
        # Sec. 3.1.3: N=24, d_model=1024, h=16, d_ff=4096.
        assert BERT_LARGE.num_layers == 24
        assert BERT_LARGE.d_model == 1024
        assert BERT_LARGE.num_heads == 16
        assert BERT_LARGE.d_ff == 4096
        assert BERT_LARGE.d_head == 64

    def test_bert_large_parameter_count_near_340m(self):
        # Sec. 1: "110-340 million parameters".
        assert 330e6 < BERT_LARGE.total_parameters() < 345e6

    def test_bert_base_parameter_count_near_110m(self):
        assert 105e6 < BERT_BASE.total_parameters() < 115e6

    def test_d_model_must_divide_by_heads(self):
        with pytest.raises(ValueError):
            BertConfig(d_model=100, num_heads=16)

    @pytest.mark.parametrize("field", ["num_layers", "d_model", "d_ff",
                                       "vocab_size"])
    def test_positive_fields_rejected_when_nonpositive(self, field):
        kwargs = {field: 0}
        if field == "d_model":
            kwargs["num_heads"] = 1
        with pytest.raises(ValueError):
            BertConfig(**kwargs)

    def test_encoder_layer_parameters_formula(self):
        d, f = BERT_LARGE.d_model, BERT_LARGE.d_ff
        expected = 4 * (d * d + d) + (d * f + f) + (f * d + d) + 4 * d
        assert BERT_LARGE.encoder_layer_parameters() == expected

    def test_scaled_replaces_only_requested_fields(self):
        wider = BERT_LARGE.scaled(d_model=2048, num_heads=32, name="wide")
        assert wider.d_model == 2048
        assert wider.num_layers == BERT_LARGE.num_layers
        assert wider.name == "wide"
        assert BERT_LARGE.d_model == 1024  # original untouched

    def test_c_sweep_configs_double_each_step(self):
        assert C1.d_model * 2 == C2.d_model
        assert C2.d_model * 2 == C3.d_model
        assert C1.d_ff * 2 == C2.d_ff == C3.d_ff // 2
        # C2 is BERT Large.
        assert C2.total_parameters() == BERT_LARGE.total_parameters()

    def test_tiny_config_is_valid_and_small(self):
        assert BERT_TINY.total_parameters() < 1e6


class TestTrainingConfig:
    def test_tokens_per_iteration(self):
        t = TrainingConfig(batch_size=32, seq_len=128)
        assert t.tokens_per_iteration == 4096

    def test_label_matches_paper_naming(self):
        assert training_point(1, 32, Precision.FP32).label == "Ph1-B32-FP32"
        assert training_point(2, 4, Precision.MIXED).label == "Ph2-B4-FP16"

    def test_phase_determines_sequence_length(self):
        assert training_point(1, 8, Precision.FP32).seq_len == 128
        assert training_point(2, 8, Precision.FP32).seq_len == 512

    def test_invalid_phase_rejected(self):
        with pytest.raises(ValueError):
            training_point(3, 8, Precision.FP32)

    @pytest.mark.parametrize("kwargs", [
        {"batch_size": 0}, {"seq_len": 0}, {"masked_fraction": 0.0},
        {"masked_fraction": 1.0}, {"optimizer": "adagrad"},
    ])
    def test_invalid_training_config_rejected(self, kwargs):
        with pytest.raises(ValueError):
            TrainingConfig(**kwargs)

    def test_masked_positions_rounding(self):
        t = TrainingConfig(batch_size=1, seq_len=128, masked_fraction=0.15)
        assert t.masked_positions == round(128 * 0.15)

    def test_precision_bytes(self):
        assert Precision.FP32.activation_bytes == 4
        assert Precision.MIXED.activation_bytes == 2
        # Optimizer state always FP32 (Sec. 2.4).
        assert Precision.MIXED.optimizer_bytes == 4

    def test_fig3_points_cover_paper_configs(self):
        labels = [p.label for p in FIG3_POINTS]
        assert labels == ["Ph1-B32-FP32", "Ph1-B4-FP32", "Ph2-B4-FP32",
                          "Ph1-B32-FP16", "Ph2-B4-FP16"]

    def test_configs_are_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            BERT_LARGE.d_model = 2048
