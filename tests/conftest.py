"""Test-wide isolation for the runner subsystem.

The result cache and run manifests are durable by design; tests must not
read a developer's warm cache (a stale entry could mask a regression) nor
litter the repository with ``runs/`` manifests.  Point both at
session-scoped temporary directories before anything imports them.
"""

import pytest

from repro.experiments import common
from repro.runner import cache


@pytest.fixture(autouse=True, scope="session")
def _isolated_runner_dirs(tmp_path_factory):
    root = tmp_path_factory.mktemp("runner")
    mp = pytest.MonkeyPatch()
    mp.setenv(cache.CACHE_DIR_ENV, str(root / "cache"))
    mp.setenv("REPRO_RUNS_DIR", str(root / "runs"))
    cache.reset_cache()
    getattr(common, "clear_memo", lambda: None)()
    yield
    mp.undo()
    cache.reset_cache()
    getattr(common, "clear_memo", lambda: None)()
