"""CLI exit-code contract and run-manifest tests.

Most tests run against a tiny stub registry so the contract (exit codes,
failure isolation, manifest contents) is exercised without paying for the
real figures.
"""

import json
import multiprocessing

import pytest

from repro.cli import main
from repro.experiments import registry as registry_module
from repro.experiments.registry import Experiment


def _ok_run():
    return [1, 2, 3]


def _ok_render(result):
    return "header\n" + "\n".join(f"row {v}" for v in result)


def _boom_run():
    raise RuntimeError("synthetic experiment failure")


STUB_REGISTRY = {
    "alpha": Experiment("alpha", "first stub", _ok_run, _ok_render),
    "boom": Experiment("boom", "always fails", _boom_run, _ok_render),
    "omega": Experiment("omega", "last stub", _ok_run, _ok_render),
}


@pytest.fixture()
def stub_registry(monkeypatch):
    monkeypatch.setattr(registry_module, "REGISTRY", dict(STUB_REGISTRY))


@pytest.fixture()
def runs_dir(tmp_path, monkeypatch):
    directory = tmp_path / "runs"
    monkeypatch.setenv("REPRO_RUNS_DIR", str(directory))
    return directory


class TestRunExitCodes:
    def test_unknown_id_exits_2_and_lists_valid_ids(self, stub_registry,
                                                    capsys):
        assert main(["run", "nope"]) == 2
        err = capsys.readouterr().err
        assert "unknown experiment 'nope'" in err
        for eid in STUB_REGISTRY:
            assert eid in err

    def test_single_success_exits_0(self, stub_registry, runs_dir, capsys):
        assert main(["run", "alpha"]) == 0
        out = capsys.readouterr().out
        assert "alpha: first stub" in out
        assert "row 1" in out

    def test_failure_does_not_abort_batch(self, stub_registry, runs_dir,
                                          capsys):
        assert main(["run", "all"]) == 1
        captured = capsys.readouterr()
        # Experiments after the failing one still ran, in registry order.
        assert captured.out.index("alpha:") < captured.out.index("boom:")
        assert captured.out.index("boom:") < captured.out.index("omega:")
        assert "synthetic experiment failure" in captured.err
        assert "2/3 experiments succeeded" in captured.out
        assert "FAILED: boom" in captured.out

    def test_all_green_batch_exits_0(self, stub_registry, runs_dir,
                                     monkeypatch, capsys):
        registry_module.REGISTRY.pop("boom")
        assert main(["run", "all"]) == 0
        assert "2/2 experiments succeeded" in capsys.readouterr().out


class TestManifest:
    def test_run_writes_manifest(self, stub_registry, runs_dir, capsys):
        assert main(["run", "all"]) == 1
        manifests = list(runs_dir.glob("*.json"))
        assert len(manifests) == 1
        payload = json.loads(manifests[0].read_text())
        from repro.runner.manifest import SCHEMA_VERSION
        assert payload["schema"] == SCHEMA_VERSION
        assert "observability" in payload
        assert payload["command"] == "run all"
        assert payload["totals"]["experiments"] == 3
        assert payload["totals"]["failed"] == 1
        by_id = {e["experiment_id"]: e for e in payload["experiments"]}
        assert by_id["boom"]["ok"] is False
        assert "synthetic experiment failure" in by_id["boom"]["error"]
        assert by_id["alpha"]["ok"] is True
        assert by_id["alpha"]["duration_s"] >= 0

    def test_no_manifest_flag(self, stub_registry, runs_dir, capsys):
        assert main(["run", "alpha", "--no-manifest"]) == 0
        assert not runs_dir.exists()

    def test_report_summarizes_latest_run(self, stub_registry, runs_dir,
                                          capsys):
        main(["run", "all"])
        capsys.readouterr()
        assert main(["report"]) == 0
        out = capsys.readouterr().out
        assert "alpha" in out and "boom" in out
        assert "FAILED" in out
        assert "1 failed" in out

    def test_report_without_runs_exits_1(self, runs_dir, capsys):
        assert main(["report"]) == 1
        assert "no run manifest" in capsys.readouterr().err

    def test_spans_renders_observability(self, stub_registry, runs_dir,
                                         capsys):
        main(["run", "alpha", "--fresh"])
        capsys.readouterr()
        assert main(["spans"]) == 0
        out = capsys.readouterr().out
        assert "experiment.alpha" in out
        assert "count" in out

    def test_stats_renders_metrics(self, stub_registry, runs_dir, capsys):
        main(["run", "alpha", "--fresh"])
        capsys.readouterr()
        assert main(["stats"]) == 0
        out = capsys.readouterr().out
        assert "experiment.duration_s" in out

    def test_spans_without_runs_exits_1(self, runs_dir, capsys):
        assert main(["spans"]) == 1
        assert "no run manifest" in capsys.readouterr().err

    def test_stats_without_runs_exits_1(self, runs_dir, capsys):
        assert main(["stats"]) == 1
        assert "no run manifest" in capsys.readouterr().err


class TestResultCache:
    def test_second_run_served_from_cache_with_identical_stdout(
            self, stub_registry, runs_dir, tmp_path, capsys):
        from repro.experiments import common
        from repro.runner import cache as cache_module

        cache_module.configure_cache(tmp_path / "cache")
        try:
            assert main(["run", "omega", "--no-manifest"]) == 0
            first = capsys.readouterr().out
            assert main(["run", "omega", "--no-manifest"]) == 0
            second = capsys.readouterr().out
            assert first == second

            # The manifest of a third run records the cache serve.
            assert main(["run", "omega"]) == 0
            capsys.readouterr()
            manifest = json.loads(
                sorted(runs_dir.glob("*.json"))[-1].read_text())
            [entry] = manifest["experiments"]
            assert entry["experiment_cached"] == 1

            # --fresh bypasses the result cache and recomputes.
            assert main(["run", "omega", "--fresh"]) == 0
            capsys.readouterr()
            manifest = json.loads(
                sorted(runs_dir.glob("*.json"))[-1].read_text())
            [entry] = manifest["experiments"]
            assert entry["experiment_cached"] == 0
        finally:
            cache_module.reset_cache()
            getattr(common, "clear_memo", lambda: None)()

    def test_failures_are_never_cached(self, stub_registry, runs_dir,
                                       capsys):
        assert main(["run", "boom", "--no-manifest"]) == 1
        capsys.readouterr()
        # Re-running executes the experiment again (and fails again)
        # rather than serving a cached failure.
        assert main(["run", "boom", "--no-manifest"]) == 1
        assert "synthetic experiment failure" in capsys.readouterr().err


class TestParallelRun:
    @pytest.mark.skipif(
        multiprocessing.get_start_method() != "fork",
        reason="stub registry reaches workers via fork")
    def test_jobs_2_same_output_order_and_isolation(self, stub_registry,
                                                    runs_dir, capsys):
        assert main(["run", "all", "--jobs", "2"]) == 1
        out = capsys.readouterr().out
        assert out.index("alpha:") < out.index("boom:") < out.index("omega:")
        assert "FAILED: boom" in out


class TestListAndExport:
    def test_list_empty_registry_does_not_crash(self, monkeypatch, capsys):
        monkeypatch.setattr(registry_module, "REGISTRY", {})
        assert main(["list"]) == 0
        assert "no experiments registered" in capsys.readouterr().out

    def test_list_real_registry(self, capsys):
        assert main(["list"]) == 0
        assert "fig3" in capsys.readouterr().out

    def test_export_non_tabular_exits_2(self, tmp_path, capsys):
        assert main(["export", "fig4", str(tmp_path / "x.csv")]) == 2

    def test_export_unknown_id_exits_2(self, tmp_path, capsys):
        assert main(["export", "nope", str(tmp_path / "x.csv")]) == 2


class TestGridCommand:
    def test_grid_sweeps_and_writes_csv(self, tmp_path, capsys):
        target = tmp_path / "grid.csv"
        assert main(["grid", "--model", "bert-tiny",
                     "--batch-sizes", "2,4", "--seq-lens", "128",
                     "--precisions", "fp32,mixed",
                     "--csv", str(target)]) == 0
        out = capsys.readouterr().out
        assert "4 points" in out
        assert "Ph1-B2-FP32" in out
        header = target.read_text().splitlines()[0]
        assert header.startswith("label,batch_size,seq_len,tokens")
        assert len(target.read_text().splitlines()) == 5  # header + 4 rows

    def test_grid_rejects_bad_axis(self, capsys):
        assert main(["grid", "--precisions", "fp13"]) == 2
        assert "bad grid axis" in capsys.readouterr().err


class TestCacheCommand:
    def test_info_and_clear(self, tmp_path, monkeypatch, capsys):
        from repro.config import BERT_TINY, TrainingConfig
        from repro.experiments import common
        from repro.runner import cache as cache_module

        cache_module.configure_cache(tmp_path / "cache")
        common.clear_memo()
        try:
            from repro.experiments.common import run_point
            run_point(BERT_TINY, TrainingConfig(batch_size=2, seq_len=16))

            assert main(["cache", "info"]) == 0
            out = capsys.readouterr().out
            assert "entries: 1" in out

            assert main(["cache", "clear"]) == 0
            assert "removed 1" in capsys.readouterr().out
            assert main(["cache", "info"]) == 0
            assert "entries: 0" in capsys.readouterr().out
        finally:
            cache_module.reset_cache()
            common.clear_memo()
