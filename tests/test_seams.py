"""Behavioral tests on less-traveled seams of the public API."""

import numpy as np
import pytest

from repro.config import BERT_LARGE, BERT_TINY, Precision, TrainingConfig, training_point
from repro.distributed import (PCIE4, XGMI, data_parallel_timeline,
                               hybrid_timeline, single_device_timeline,
                               tensor_slicing_timeline)
from repro.hw import kernel_time, mi100, simulate_kernel
from repro.ops.base import (AccessPattern, Component, DType, Kernel, OpClass,
                            Phase, Region)
from repro.optim import lamb_kernels, sgd_kernels
from repro.tensor.module import Linear, Module, Parameter
from repro.tensor.tensor import Tensor
from repro.trace import bert_parameter_inventory


class TestTensorSeams:
    def test_rsub_and_rdiv(self):
        x = Tensor(np.array([2.0, 4.0]), requires_grad=True)
        (10.0 - x).sum().backward()
        np.testing.assert_allclose(x.grad, [-1.0, -1.0])
        x.zero_grad()
        (8.0 / x).sum().backward()
        np.testing.assert_allclose(x.grad, [-2.0, -0.5])

    def test_pow_rejects_tensor_exponent(self):
        x = Tensor(np.ones(2), requires_grad=True)
        with pytest.raises(TypeError):
            x ** Tensor(np.ones(2))

    def test_item_and_repr(self):
        t = Tensor(np.array([3.5]), requires_grad=True, name="scalar")
        assert t.item() == 3.5
        text = repr(t)
        assert "requires_grad=True" in text and "scalar" in text

    def test_matmul_coerces_arrays(self):
        x = Tensor(np.eye(2), requires_grad=True)
        out = x.matmul(Tensor(np.ones((2, 2))))
        assert out.shape == (2, 2)

    def test_numpy_view_not_copy(self):
        t = Tensor(np.zeros(3))
        t.numpy()[0] = 5.0
        assert t.data[0] == 5.0


class TestModuleSeams:
    def test_nested_module_parameter_count(self):
        class Outer(Module):
            def __init__(self):
                super().__init__()
                rng = np.random.default_rng(0)
                self.inner = Linear(2, 3, rng=rng)
                self.extra = Parameter(np.zeros(5))

        outer = Outer()
        assert outer.num_parameters() == (3 * 2 + 3) + 5
        names = [n for n, _ in outer.named_parameters()]
        assert "inner.weight" in names and "extra" in names

    def test_forward_not_implemented(self):
        with pytest.raises(NotImplementedError):
            Module()(1)


class TestConfigSeams:
    def test_output_head_parameter_formula(self):
        d, v = BERT_TINY.d_model, BERT_TINY.vocab_size
        expected = (d * d + d + 2 * d) + v + (d * d + d) + (2 * d + 2)
        assert BERT_TINY.output_head_parameters() == expected

    def test_embedding_parameter_formula(self):
        c = BERT_TINY
        expected = (c.vocab_size + c.max_position + c.type_vocab_size) \
            * c.d_model + 2 * c.d_model
        assert c.embedding_parameters() == expected


class TestOptimizerKernelSeams:
    def test_sgd_unfused_kernel_count(self):
        inventory = bert_parameter_inventory(BERT_TINY)
        kernels = sgd_kernels(inventory, fused=False)
        assert len(kernels) == 4 * len(inventory)

    def test_lamb_unfused_has_per_tensor_norms(self):
        inventory = bert_parameter_inventory(BERT_TINY)
        kernels = lamb_kernels(inventory, fused=False)
        norms = [k for k in kernels if "norm_param" in k.name
                 or "norm_update" in k.name]
        assert len(norms) == 2 * len(inventory)


class TestTimingSeams:
    def test_irregular_access_slower_than_streaming(self):
        device = mi100()

        def build(access):
            return Kernel(name="k", op_class=OpClass.GATHER_SCATTER
                          if access is AccessPattern.IRREGULAR
                          else OpClass.ELEMENTWISE,
                          phase=Phase.FORWARD,
                          component=Component.EMBEDDING,
                          region=Region.EMBEDDING, flops=0,
                          bytes_read=1 << 26, bytes_written=1 << 26,
                          dtype=DType.FP32, access=access,
                          n_elements=1 << 24)
        fast = kernel_time(build(AccessPattern.STREAMING), device)
        slow = kernel_time(build(AccessPattern.IRREGULAR), device)
        assert slow > 2 * fast
        # The event backend respects the same ordering.
        assert (simulate_kernel(build(AccessPattern.IRREGULAR),
                                device).time_s
                > simulate_kernel(build(AccessPattern.STREAMING),
                                  device).time_s)


class TestTimelineSeams:
    device = mi100()
    b8 = training_point(1, 8, Precision.FP32)

    def test_default_labels(self):
        dp = data_parallel_timeline(BERT_LARGE, self.b8, self.device,
                                    PCIE4, 4)
        assert "DP x4" in dp.label and "w/ overlap" in dp.label
        ts = tensor_slicing_timeline(BERT_LARGE, self.b8, self.device,
                                     PCIE4, 2)
        assert ts.label.startswith("TS 2-way")
        single = single_device_timeline(BERT_LARGE, self.b8, self.device)
        assert "single" in single.label

    def test_unknown_bucket_fraction_is_zero(self):
        single = single_device_timeline(BERT_LARGE, self.b8, self.device)
        assert single.fraction("pipeline_bubble") == 0.0

    def test_full_overlap_hybrid_adds_no_dp_cost(self):
        base = tensor_slicing_timeline(BERT_LARGE, self.b8, self.device,
                                       XGMI, 2)
        hybrid = hybrid_timeline(BERT_LARGE, self.b8, self.device,
                                 ts_link=XGMI, dp_link=PCIE4, ts_ways=2,
                                 dp_replicas=8, overlap_fraction=1.0)
        assert hybrid.total == pytest.approx(base.total)

    def test_dp_single_device_equals_single(self):
        single = single_device_timeline(BERT_LARGE, self.b8, self.device)
        dp1 = data_parallel_timeline(BERT_LARGE, self.b8, self.device,
                                     PCIE4, 1)
        assert dp1.total == pytest.approx(single.total)


class TestReportSeams:
    def test_format_table_custom_float_format(self):
        from repro.report import format_table
        out = format_table(("x",), [(1 / 3,)], float_format="{:.4f}")
        assert "0.3333" in out

    def test_stacked_bar_cycles_fills(self):
        from repro.report import stacked_bar
        segments = [(f"s{i}", 0.1) for i in range(10)]
        out = stacked_bar(segments)
        # Ten legend entries rendered even though fills repeat.
        assert out.count("%") == 10


class TestCharacterizeTransforms:
    def test_optimized_characterization_is_faster(self):
        from repro.core import characterize
        from repro.fusion import (apply_fused_attention,
                                  fuse_elementwise_chains)
        base = characterize(BERT_TINY,
                            TrainingConfig(batch_size=2, seq_len=16))
        optimized = characterize(
            BERT_TINY, TrainingConfig(batch_size=2, seq_len=16),
            transforms=(fuse_elementwise_chains, apply_fused_attention))
        assert optimized.iteration_s < base.iteration_s
        assert len(optimized.trace) < len(base.trace)

    def test_windowed_transform_replaces_attention_ops(self):
        from repro.fusion import apply_windowed_attention
        from repro.ops import WindowConfig
        from repro.trace import build_iteration_trace
        trace = build_iteration_trace(
            BERT_LARGE, training_point(2, 4, Precision.FP32))
        windowed = apply_windowed_attention(
            trace, WindowConfig(block=64, window_blocks=3))
        names = {k.name for k in windowed.kernels}
        assert any(n.startswith("windowed.") for n in names)
        assert not any(n.startswith("attention.score") for n in names)
        # Linear projections survive untouched.
        assert any("linear_q" in n for n in names)

    def test_windowed_trace_cheaper_at_long_sequences(self):
        from repro.fusion import apply_windowed_attention
        from repro.hw import mi100
        from repro.profiler import profile_trace
        from repro.trace import build_iteration_trace
        trace = build_iteration_trace(
            BERT_LARGE, training_point(2, 4, Precision.FP32))
        windowed = apply_windowed_attention(trace)
        device = mi100()
        assert (profile_trace(windowed.kernels, device).total_time
                < profile_trace(trace.kernels, device).total_time)
