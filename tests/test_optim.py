"""Tests for the executable optimizers and their kernel emission."""

import numpy as np
import pytest

from repro.config import BERT_LARGE, BERT_TINY, Precision
from repro.ops.base import Component, DType, Region
from repro.optim import (MULTI_TENSOR_BATCH, Adam, Lamb, Sgd, adam_kernels,
                         lamb_kernels, optimizer_kernels, sgd_kernels)
from repro.tensor.module import Parameter
from repro.trace.parameters import bert_parameter_inventory


def quadratic_params(seed=0, n=16):
    rng = np.random.default_rng(seed)
    return Parameter(rng.normal(size=n).astype(np.float32), name="p")


def minimize(optimizer_cls, steps=200, **kwargs):
    """Drive ||p||^2 toward zero; return trajectory of losses."""
    param = quadratic_params()
    opt = optimizer_cls([param], **kwargs)
    losses = []
    for _ in range(steps):
        opt.zero_grad()
        param.grad = 2.0 * param.data  # d/dp ||p||^2
        losses.append(float((param.data ** 2).sum()))
        opt.step()
    return losses


class TestNumericOptimizers:
    @pytest.mark.parametrize("cls,kwargs", [
        (Adam, {"lr": 0.05}),
        (Lamb, {"lr": 0.05, "weight_decay": 0.0}),
        (Sgd, {"lr": 0.01, "momentum": 0.9}),
    ])
    def test_minimizes_quadratic(self, cls, kwargs):
        losses = minimize(cls, **kwargs)
        assert losses[-1] < 0.01 * losses[0]

    def test_step_skips_missing_grads(self):
        p = quadratic_params()
        before = p.data.copy()
        Adam([p], lr=0.1).step()
        np.testing.assert_array_equal(p.data, before)

    def test_adam_bias_correction_first_step(self):
        p = Parameter(np.zeros(4, dtype=np.float32))
        opt = Adam([p], lr=0.1, eps=0.0)
        p.grad = np.full(4, 3.0, dtype=np.float32)
        opt.step()
        # With bias correction the first step is exactly -lr * sign(g).
        np.testing.assert_allclose(p.data, -0.1 * np.ones(4), rtol=1e-5)

    def test_lamb_trust_ratio_scales_step(self):
        # Two params with identical gradients but different magnitudes:
        # the larger parameter takes a proportionally larger step.
        small = Parameter(np.full(8, 0.1, dtype=np.float32))
        large = Parameter(np.full(8, 10.0, dtype=np.float32))
        opt = Lamb([small, large], lr=0.01, weight_decay=0.0,
                   clip_global_norm=None, trust_clip=1e9)
        small.grad = np.full(8, 1.0, dtype=np.float32)
        large.grad = np.full(8, 1.0, dtype=np.float32)
        small_before, large_before = small.data.copy(), large.data.copy()
        opt.step()
        step_small = np.abs(small.data - small_before).mean()
        step_large = np.abs(large.data - large_before).mean()
        assert step_large == pytest.approx(100 * step_small, rel=1e-3)

    def test_lamb_global_norm_clipping(self):
        p = Parameter(np.ones(4, dtype=np.float32))
        opt = Lamb([p], lr=0.1, clip_global_norm=1.0)
        p.grad = np.full(4, 100.0, dtype=np.float32)
        opt.step()
        assert opt._grad_scale == pytest.approx(1.0 / 200.0)

    def test_global_grad_norm(self):
        p1 = Parameter(np.zeros(3, dtype=np.float32))
        p2 = Parameter(np.zeros(4, dtype=np.float32))
        opt = Sgd([p1, p2], lr=0.1)
        p1.grad = np.full(3, 2.0, dtype=np.float32)
        p2.grad = np.full(4, 1.0, dtype=np.float32)
        assert opt.global_grad_norm() == pytest.approx(np.sqrt(16.0))

    def test_invalid_hyperparameters_rejected(self):
        p = quadratic_params()
        with pytest.raises(ValueError):
            Adam([p], lr=-1.0)
        with pytest.raises(ValueError):
            Adam([p], betas=(1.5, 0.9))
        with pytest.raises(ValueError):
            Sgd([p], momentum=1.5)
        with pytest.raises(ValueError):
            Lamb([])


class TestOptimizerKernels:
    @pytest.fixture(scope="class")
    def inventory(self):
        return bert_parameter_inventory(BERT_LARGE)

    def test_lamb_stage1_reads_four_times_model(self, inventory):
        # Takeaway 7.
        kernels = lamb_kernels(inventory, fused=True)
        params = sum(t.n_elements for t in inventory)
        stage1 = [k for k in kernels if k.region is Region.OPT_STAGE1]
        assert sum(k.bytes_read for k in stage1) == 4 * params * 4

    def test_lamb_fused_kernel_count(self, inventory):
        kernels = lamb_kernels(inventory, fused=True)
        groups = BERT_LARGE.num_layers + 2
        assert len(kernels) == 1 + 2 * groups  # norm + stage1/2 per group

    def test_lamb_has_global_norm_first(self, inventory):
        kernels = lamb_kernels(inventory, fused=True)
        assert kernels[0].region is Region.OPT_NORM
        assert kernels[0].bytes_read == sum(t.n_elements
                                            for t in inventory) * 4

    def test_unfused_lamb_many_more_kernels(self, inventory):
        fused = lamb_kernels(inventory, fused=True)
        unfused = lamb_kernels(inventory, fused=False)
        assert len(unfused) > 50 * len(fused)

    def test_mixed_precision_adds_cast_kernels(self, inventory):
        fp32 = lamb_kernels(inventory, precision=Precision.FP32)
        mixed = lamb_kernels(inventory, precision=Precision.MIXED)
        assert len(mixed) == len(fp32) + 2
        cast = [k for k in mixed if "cast" in k.name]
        assert len(cast) == 2
        # LAMB stages themselves are identical (updates stay FP32).
        assert all(k.dtype is DType.FP32 for k in mixed)

    def test_adam_fused_batches(self, inventory):
        kernels = adam_kernels(inventory, fused=True)
        expected = -(-len(inventory) // MULTI_TENSOR_BATCH)
        assert len(kernels) == expected

    def test_adam_kernel_count_ratio_near_250(self, inventory):
        # Fig. 12a.
        fused = adam_kernels(inventory, fused=True)
        unfused = adam_kernels(inventory, fused=False)
        assert 150 <= len(unfused) / len(fused) <= 350

    def test_adam_traffic_ratio_in_band(self, inventory):
        fused = adam_kernels(inventory, fused=True)
        unfused = adam_kernels(inventory, fused=False)
        ratio = (sum(k.bytes_total for k in unfused)
                 / sum(k.bytes_total for k in fused))
        assert 5.0 <= ratio <= 9.0

    def test_sgd_fused_single_kernel(self, inventory):
        assert len(sgd_kernels(inventory, fused=True)) == 1

    def test_dispatch(self, inventory):
        tiny = bert_parameter_inventory(BERT_TINY)
        for name in ("lamb", "adam", "sgd"):
            assert optimizer_kernels(name, tiny)
        with pytest.raises(ValueError):
            optimizer_kernels("adagrad", tiny)

    def test_all_optimizer_kernels_attributed(self, inventory):
        for k in lamb_kernels(inventory):
            assert k.component is Component.OPTIMIZER
