"""Tests for the Chrome-trace/Perfetto exporters and the CLI wiring.

The golden file under ``tests/golden/`` pins the full export of the tiny
two-layer operating point; regenerate it after an intentional format or
timing-model change with::

    REPRO_REGEN_GOLDEN=1 python -m pytest tests/test_obs_timeline.py
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

from repro.cli import main
from repro.config import BERT_TINY, Precision, training_point
from repro.distributed.network import PCIE4
from repro.distributed.simulator import simulate_ring_allreduce
from repro.experiments import fig11
from repro.experiments.points import POINT_REGISTRY, resolve_point
from repro.hw.device import mi100
from repro.obs.spans import SpanTracer
from repro.obs.timeline_export import (collective_run_to_chrome_trace,
                                       device_timelines_to_chrome_trace,
                                       profile_to_chrome_trace,
                                       spans_to_chrome_trace,
                                       validate_chrome_trace,
                                       write_chrome_trace)
from repro.profiler.profiler import profile_trace
from repro.trace.bert_trace import build_iteration_trace

GOLDEN_DIR = Path(__file__).parent / "golden"
TINY_GOLDEN = GOLDEN_DIR / "tiny_perfetto.json"


@pytest.fixture(scope="module")
def tiny_profile():
    model, training = resolve_point("tiny.ph1-b2-fp32")
    trace = build_iteration_trace(model, training)
    return profile_trace(trace, mi100())


def _slices(payload):
    return [e for e in payload["traceEvents"] if e["ph"] == "X"]


class TestProfileExport:
    def test_validates_and_sums_to_total(self, tiny_profile):
        payload = profile_to_chrome_trace(tiny_profile)
        assert validate_chrome_trace(payload) == []
        slices = _slices(payload)
        assert len(slices) == len(tiny_profile)
        total_us = sum(e["dur"] for e in slices)
        assert total_us == pytest.approx(tiny_profile.total_time * 1e6,
                                         rel=1e-9)

    def test_slices_are_contiguous(self, tiny_profile):
        payload = profile_to_chrome_trace(tiny_profile)
        clock = 0.0
        for event in _slices(payload):
            assert event["ts"] == pytest.approx(clock, abs=1e-6)
            clock += event["dur"]

    def test_args_carry_attribution(self, tiny_profile):
        payload = profile_to_chrome_trace(tiny_profile)
        slices = _slices(payload)
        layers = {e["args"]["layer"] for e in slices}
        assert {-1, 0, 1} <= layers  # both tiny layers + unattributed
        gemms = [e for e in slices if e["args"]["op_class"] == "gemm"]
        assert gemms and all("gemm_shape" in e["args"] for e in gemms)
        assert all(e["cname"] == "thread_state_running" for e in gemms)

    def test_matches_golden(self, tiny_profile):
        payload = profile_to_chrome_trace(tiny_profile,
                                          label="bert-tiny Ph1-B2-FP32")
        if os.environ.get("REPRO_REGEN_GOLDEN"):
            GOLDEN_DIR.mkdir(exist_ok=True)
            write_chrome_trace(payload, str(TINY_GOLDEN))
        golden = json.loads(TINY_GOLDEN.read_text())
        # Round-trip through JSON so float representation matches.
        assert json.loads(json.dumps(payload)) == golden


class TestDeviceTimelineExport:
    @pytest.fixture(scope="class")
    def timelines(self):
        return fig11.run()

    def test_validates(self, timelines):
        payload = device_timelines_to_chrome_trace(timelines)
        assert validate_chrome_trace(payload) == []

    def test_one_track_per_configuration(self, timelines):
        payload = device_timelines_to_chrome_trace(timelines)
        names = [e["args"]["name"] for e in payload["traceEvents"]
                 if e["name"] == "process_name"]
        assert names == [t.label for t in timelines]
        assert len({e["pid"] for e in _slices(payload)}) == len(timelines)

    def test_exposed_communication_matches_buckets(self, timelines):
        payload = device_timelines_to_chrome_trace(timelines)
        slices = _slices(payload)
        for pid, timeline in enumerate(timelines):
            comm = [e for e in slices
                    if e["pid"] == pid
                    and e["args"].get("exposed_communication")]
            expected = timeline.buckets.get("communication", 0.0)
            if expected > 0:
                (event,) = comm
                assert event["name"] == "communication (exposed)"
                assert event["dur"] == pytest.approx(expected * 1e6)
            else:
                assert comm == []

    def test_track_total_matches_timeline_total(self, timelines):
        payload = device_timelines_to_chrome_trace(timelines)
        slices = _slices(payload)
        for pid, timeline in enumerate(timelines):
            track_us = sum(e["dur"] for e in slices if e["pid"] == pid)
            assert track_us == pytest.approx(timeline.total * 1e6)


class TestCollectiveExport:
    def test_ring_allreduce_export(self):
        run = simulate_ring_allreduce(64 << 20, devices=4, link=PCIE4)
        payload = collective_run_to_chrome_trace(run)
        assert validate_chrome_trace(payload) == []
        slices = _slices(payload)
        assert len(slices) == len(run.events)
        assert {e["tid"] for e in slices} == {e.source for e in run.events}
        end_us = max(e["ts"] + e["dur"] for e in slices)
        assert end_us == pytest.approx(run.completion_s * 1e6)


class TestSpanExport:
    def test_spans_lay_out_on_thread_tracks(self):
        tracer = SpanTracer()
        tracer.enable()
        with tracer.span("outer"):
            with tracer.span("inner", kernels=3):
                pass
        payload = spans_to_chrome_trace(tracer.reset())
        assert validate_chrome_trace(payload) == []
        by_name = {e["name"]: e for e in _slices(payload)}
        assert by_name["inner"]["args"] == {"depth": 1, "kernels": 3}
        assert by_name["outer"]["ts"] == 0.0


class TestValidator:
    def test_rejects_missing_trace_events(self):
        assert validate_chrome_trace({}) == \
            ["traceEvents missing or not a list"]

    def test_rejects_empty_and_malformed(self):
        assert validate_chrome_trace({"traceEvents": []})
        bad = {"traceEvents": [{"ph": "X", "ts": -1.0, "dur": "x",
                                "pid": 0, "tid": 0}]}
        problems = validate_chrome_trace(bad)
        assert any("missing 'name'" in p for p in problems)
        assert any("'ts'" in p for p in problems)
        assert any("'dur'" in p for p in problems)

    def test_rejects_non_monotonic_track(self):
        events = [{"name": "a", "ph": "X", "ts": 10.0, "dur": 1.0,
                   "pid": 0, "tid": 0},
                  {"name": "b", "ph": "X", "ts": 5.0, "dur": 1.0,
                   "pid": 0, "tid": 0}]
        problems = validate_chrome_trace({"traceEvents": events})
        assert any("not monotonic" in p for p in problems)

    def test_independent_tracks_may_interleave(self):
        events = [{"name": "a", "ph": "X", "ts": 10.0, "dur": 1.0,
                   "pid": 0, "tid": 0},
                  {"name": "b", "ph": "X", "ts": 5.0, "dur": 1.0,
                   "pid": 1, "tid": 0}]
        assert validate_chrome_trace({"traceEvents": events}) == []


class TestPointRegistry:
    def test_fig3_points_present(self):
        assert "fig3.ph1-b32-fp32" in POINT_REGISTRY
        assert "fig3.ph2-b4-fp16" in POINT_REGISTRY
        assert len([p for p in POINT_REGISTRY if p.startswith("fig3.")]) == 5

    def test_tiny_point_is_two_layers(self):
        model, training = resolve_point("tiny.ph1-b2-fp32")
        assert model is BERT_TINY
        assert model.num_layers == 2
        assert training == training_point(1, 2, Precision.FP32)

    def test_unknown_point_names_vocabulary(self):
        with pytest.raises(KeyError, match="valid ids"):
            resolve_point("fig3.ph9-b1-fp8")


class TestCLIExport:
    def test_perfetto_point_export_end_to_end(self, tmp_path, capsys):
        path = tmp_path / "tiny.json"
        assert main(["export", "--format", "perfetto",
                     "tiny.ph1-b2-fp32", str(path)]) == 0
        payload = json.loads(path.read_text())
        assert validate_chrome_trace(payload) == []
        assert "ui.perfetto.dev" in capsys.readouterr().out

    def test_perfetto_fig11_export(self, tmp_path):
        path = tmp_path / "fig11.json"
        assert main(["export", "--format", "perfetto", "fig11",
                     str(path)]) == 0
        payload = json.loads(path.read_text())
        assert validate_chrome_trace(payload) == []
        assert any(e["args"].get("exposed_communication")
                   for e in _slices(payload))

    def test_perfetto_unknown_target_exits_2(self, tmp_path, capsys):
        assert main(["export", "--format", "perfetto", "nope",
                     str(tmp_path / "x.json")]) == 2
        assert "valid targets" in capsys.readouterr().err
