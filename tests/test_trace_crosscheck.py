"""Cross-validation: analytic kernel trace vs. the executable model.

The trace generator *claims* the network manifests as the GEMMs of
Table 2b.  These tests run the real NumPy model under the op recorder and
compare the multiset of executed forward matmuls against the analytic
trace's forward GEMM kernels — shape for shape (as FLOP counts, which are
orientation-invariant) and count for count.
"""

from collections import Counter

import numpy as np
import pytest

from repro.config import BERT_TINY, Precision, TrainingConfig
from repro.model import BertForPreTraining
from repro.ops.base import Phase
from repro.tensor import recording
from repro.trace.bert_trace import build_iteration_trace


@pytest.fixture(scope="module")
def setup():
    training = TrainingConfig(batch_size=3, seq_len=16)
    model = BertForPreTraining(BERT_TINY, seed=0, dropout_p=0.0)
    rng = np.random.default_rng(1)
    tokens = rng.integers(4, BERT_TINY.vocab_size,
                          size=(training.batch_size, training.seq_len))
    labels = np.full_like(tokens, -100)
    labels[:, 5] = 7
    nsp = np.zeros(training.batch_size, dtype=int)

    with recording.capture() as ops:
        model.loss(tokens, labels, nsp)
    trace = build_iteration_trace(BERT_TINY, training)
    return training, trace, recording.matmuls(ops)


def _recorded_flops(matmuls) -> Counter:
    counts = Counter()
    for record in matmuls:
        m, n, k, batch = record.matmul_mnk()
        counts[2 * m * n * k * batch] += 1
    return counts


def _trace_forward_gemm_flops(trace) -> Counter:
    return Counter(k.flops for k in trace.gemms()
                   if k.phase is Phase.FORWARD)


class TestTraceMatchesExecution:
    def test_forward_gemm_flop_multisets_match(self, setup):
        _, trace, matmuls = setup
        assert _recorded_flops(matmuls) == _trace_forward_gemm_flops(trace)

    def test_forward_gemm_count_matches(self, setup):
        _, trace, matmuls = setup
        analytic = [k for k in trace.gemms() if k.phase is Phase.FORWARD]
        assert len(matmuls) == len(analytic)

    def test_per_layer_gemm_count(self, setup):
        training, trace, matmuls = setup
        # 8 matmuls per encoder layer + 4 in the heads.
        expected = 8 * BERT_TINY.num_layers + 4
        assert len(matmuls) == expected

    def test_attention_batched_gemms_recorded_with_batch(self, setup):
        training, _, matmuls = setup
        batch_heads = training.batch_size * BERT_TINY.num_heads
        batched = [r for r in matmuls if r.matmul_mnk()[3] == batch_heads]
        # Score and context products per layer.
        assert len(batched) == 2 * BERT_TINY.num_layers

    def test_recorded_dtypes_match_analytic_trace(self, setup):
        """Every executed matmul runs at the dtype the FP32 analytic trace
        declares for its forward GEMMs."""
        _, trace, matmuls = setup
        analytic = {k.dtype.value[0] for k in trace.gemms()
                    if k.phase is Phase.FORWARD}
        assert analytic == {"fp32"}
        assert {r.dtype for r in matmuls} == {"float32"}

    def test_recorded_out_shapes_cover_hidden_dim(self, setup):
        """Records carry output shapes; the QKV projections land on
        ``(B, n, d_model)``."""
        training, _, matmuls = setup
        hidden = (training.batch_size, training.seq_len,
                  BERT_TINY.d_model)
        assert any(r.out_shape == hidden for r in matmuls)

    def test_mixed_precision_trace_declares_fp16_gemms(self, setup):
        """The MIXED analytic trace switches its forward GEMMs to FP16
        while the FP32 trace stays FP32 — and the recorder distinguishes
        the precisions the same way when fp16 arrays actually execute."""
        training, _, _ = setup
        mixed = build_iteration_trace(
            BERT_TINY, TrainingConfig(batch_size=training.batch_size,
                                      seq_len=training.seq_len,
                                      precision=Precision.MIXED))
        assert {k.dtype.value[0] for k in mixed.gemms()
                if k.phase is Phase.FORWARD} == {"fp16"}

        from repro.tensor import tensor
        a = np.ones((2, 3), dtype=np.float16)
        b = np.ones((3, 4), dtype=np.float16)
        with recording.capture() as ops:
            tensor(a, dtype=np.float16).matmul(tensor(b, dtype=np.float16))
        (record,) = recording.matmuls(ops)
        assert record.dtype == "float16"

    def test_no_matrix_vector_products_at_batch_one(self):
        """Takeaway 5, executed: B=1 still runs matrix-matrix products in
        encoder layers."""
        model = BertForPreTraining(BERT_TINY, seed=0, dropout_p=0.0)
        tokens = np.random.default_rng(2).integers(
            4, BERT_TINY.vocab_size, size=(1, 16))
        with recording.capture() as ops:
            model.encode(tokens)
        for record in recording.matmuls(ops):
            m, n, k, _ = record.matmul_mnk()
            assert min(m, n, k) > 1, record
