"""Prometheus exposition renderer + validator (:mod:`repro.obs.prometheus`)."""

from __future__ import annotations

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.prometheus import (CONTENT_TYPE, format_labels,
                                  parse_label_key, render_prometheus,
                                  render_registry, sanitize_metric_name,
                                  validate_exposition)


@pytest.fixture
def registry():
    return MetricsRegistry()


class TestNameAndLabelMapping:
    def test_dots_become_underscores(self):
        assert sanitize_metric_name("serve.request_seconds") == \
            "serve_request_seconds"

    def test_leading_digit_gets_prefixed(self):
        assert sanitize_metric_name("9lives")[0] not in "0123456789"

    def test_parse_label_key_round_trip(self):
        assert parse_label_key("route=profile,status=200") == \
            {"route": "profile", "status": "200"}
        assert parse_label_key("") == {}

    def test_format_labels_sorted_and_escaped(self):
        rendered = format_labels({"b": 'say "hi"\n', "a": "x\\y"})
        assert rendered == '{a="x\\\\y",b="say \\"hi\\"\\n"}'

    def test_no_labels_renders_bare(self):
        assert format_labels({}) == ""


class TestRendering:
    def test_counter_gets_total_suffix(self, registry):
        registry.counter("serve.requests").inc(3, route="profile",
                                               status=200)
        text = render_prometheus(registry.snapshot())
        assert "# TYPE serve_requests_total counter" in text
        assert ('serve_requests_total{route="profile",status="200"} 3'
                in text)

    def test_gauge_renders_plain(self, registry):
        registry.gauge("serve.inflight").set(2)
        text = render_prometheus(registry.snapshot())
        assert "# TYPE serve_inflight gauge" in text
        assert "serve_inflight 2" in text.splitlines()

    def test_histogram_renders_as_summary_with_quantiles(self, registry):
        latency = registry.histogram("serve.request_seconds")
        for value in (1.0, 2.0, 3.0, 4.0):
            latency.observe(value, route="profile")
        text = render_prometheus(registry.snapshot())
        assert "# TYPE serve_request_seconds summary" in text
        for quantile in ("0.5", "0.9", "0.99"):
            assert (f'serve_request_seconds{{quantile="{quantile}",'
                    f'route="profile"}}') in text
        assert 'serve_request_seconds_sum{route="profile"} 10' in text
        assert 'serve_request_seconds_count{route="profile"} 4' in text
        assert "# TYPE serve_request_seconds_min gauge" in text
        assert 'serve_request_seconds_max{route="profile"} 4' in text

    def test_families_come_out_in_sorted_name_order(self, registry):
        registry.counter("zz.last").inc()
        registry.gauge("aa.first").set(1)
        text = render_prometheus(registry.snapshot())
        assert text.index("aa_first") < text.index("zz_last")

    def test_help_lines_precede_type(self, registry):
        registry.counter("cache.requests", "result cache traffic").inc()
        text = render_prometheus(registry.snapshot(),
                                 registry.help_texts())
        lines = text.splitlines()
        help_index = lines.index(
            "# HELP cache_requests_total result cache traffic")
        assert lines[help_index + 1] == \
            "# TYPE cache_requests_total counter"

    def test_empty_snapshot_renders_empty(self):
        assert render_prometheus({}) == ""

    def test_render_registry_uses_the_process_registry(self):
        from repro.obs import metrics as metrics_module

        metrics_module.counter("prom.test.render").inc()
        text = render_registry()
        assert "prom_test_render_total 1" in text

    def test_content_type_declares_the_exposition_version(self):
        assert "version=0.0.4" in CONTENT_TYPE


class TestValidator:
    def _valid_text(self):
        registry = MetricsRegistry()
        registry.counter("serve.requests", "requests").inc(
            5, route="profile", status=200)
        registry.gauge("serve.inflight").set(1)
        latency = registry.histogram("serve.request_seconds", "latency")
        for value in (0.01, 0.02, 0.05):
            latency.observe(value, route="profile")
        return render_prometheus(registry.snapshot(),
                                 registry.help_texts())

    def test_rendered_output_validates_clean(self):
        assert validate_exposition(self._valid_text()) == []

    def test_empty_exposition_is_a_problem(self):
        assert validate_exposition("") == ["no samples"]
        assert validate_exposition("# TYPE x counter\n") == ["no samples"]

    def test_unparseable_sample_line(self):
        problems = validate_exposition("what is this\n")
        assert any("unparseable" in p for p in problems)

    def test_bad_value_is_reported(self):
        problems = validate_exposition("x{a=\"1\"} notanumber\n")
        assert any("not a number" in p for p in problems)

    def test_inf_and_nan_values_are_legal(self):
        assert validate_exposition(
            "x_bound +Inf\ny_bound -Inf\nz_last NaN\n") == []

    def test_duplicate_type_declaration(self):
        text = "# TYPE x counter\n# TYPE x counter\nx_total 1\n"
        problems = validate_exposition(text)
        assert any("duplicate TYPE" in p for p in problems)

    def test_type_after_samples_is_reported(self):
        text = "x 1\n# TYPE x gauge\n"
        problems = validate_exposition(text)
        assert any("after its samples" in p for p in problems)

    def test_interleaved_families_are_reported(self):
        text = ("# TYPE a gauge\n# TYPE b gauge\n"
                "a 1\nb 2\na 3\n")
        problems = validate_exposition(text)
        assert any("interleaved" in p for p in problems)

    def test_summary_suffix_samples_belong_to_their_family(self):
        text = ("# TYPE s summary\n"
                's{quantile="0.5"} 1\ns_sum 2\ns_count 3\n')
        assert validate_exposition(text) == []

    def test_quantile_outside_unit_interval(self):
        text = '# TYPE s summary\ns{quantile="1.5"} 1\n'
        problems = validate_exposition(text)
        assert any("outside [0, 1]" in p for p in problems)

    def test_negative_counter_is_reported(self):
        text = "# TYPE x_total counter\nx_total -1\n"
        problems = validate_exposition(text)
        assert any("negative counter" in p for p in problems)

    def test_malformed_labels_are_reported(self):
        problems = validate_exposition("x{route=profile} 1\n")
        assert any("malformed labels" in p for p in problems)

    def test_bad_type_keyword(self):
        problems = validate_exposition("# TYPE x sideways\nx 1\n")
        assert any("bad TYPE" in p for p in problems)

    def test_free_form_comments_are_ignored(self):
        assert validate_exposition("# scraped at dawn\nx 1\n") == []


class TestManifestSnapshotCompatibility:
    def test_manifest_metrics_section_renders_and_validates(self):
        """``repro stats --prom`` feeds a manifest's metrics section —
        same shape as a live snapshot — through the same renderer."""
        snapshot = {
            "cache.requests": {"kind": "counter",
                               "series": {"result=hit": 7,
                                          "result=miss": 2}},
            "experiment.duration_s": {
                "kind": "histogram",
                "series": {"experiment=fig3": {
                    "count": 2, "sum": 3.0, "min": 1.0, "max": 2.0,
                    "p50": 1.5, "p90": 1.9, "p99": 1.99}}},
        }
        text = render_prometheus(snapshot)
        assert validate_exposition(text) == []
        assert 'cache_requests_total{result="hit"} 7' in text
