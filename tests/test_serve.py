"""Profiling server: endpoint contracts, coalescing, shedding, hot cache.

Three layers under test:

* **HTTP contracts** — a real asyncio server on an ephemeral port,
  driven by a raw stdlib client (status codes, JSON schemas, 404s,
  keep-alive, malformed-request handling);
* **App semantics** — the transport-agnostic :class:`repro.serve.App`
  driven directly, where scheduling is deterministic: 100 concurrent
  identical requests perform exactly one engine computation, and a
  saturated queue sheds leaders with 503 + ``Retry-After``;
* **Golden equivalence** — served bodies are byte-identical to the
  corresponding ``repro export --format perfetto`` file and to payloads
  built from direct ``run_point``/``summarize`` calls.
"""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.experiments.points import POINT_REGISTRY
from repro.obs import metrics
from repro.serve import (App, HotCache, ProfilingService, create_server,
                         render_json, server_address)

TINY = "tiny.ph1-b2-fp32"

_REQUESTS = metrics.counter("serve.requests")
_COMPUTATIONS = metrics.counter("serve.computations")
_COALESCED = metrics.counter("serve.coalesced")
_SHED = metrics.counter("serve.shed")


@pytest.fixture
def app():
    instance = App(workers=2, queue_limit=8, hot_cache=HotCache())
    yield instance
    instance.close()


def run(coro):
    return asyncio.run(coro)


async def http_request(host, port, method, path, body=b""):
    """Raw stdlib HTTP client: (status, headers, body)."""
    reader, writer = await asyncio.open_connection(host, port)
    try:
        head = f"{method} {path} HTTP/1.1\r\nHost: t\r\n"
        if body:
            head += f"Content-Length: {len(body)}\r\n"
        writer.write(head.encode() + b"\r\n" + body)
        await writer.drain()
        return await read_response(reader)
    finally:
        writer.close()


async def read_response(reader):
    status = int((await reader.readline()).split()[1])
    headers = {}
    while True:
        line = await reader.readline()
        if line in (b"\r\n", b"\n"):
            break
        name, _, value = line.decode().partition(":")
        headers[name.strip().lower()] = value.strip()
    payload = await reader.readexactly(int(headers["content-length"]))
    return status, headers, payload


async def with_server(app, scenario):
    """Run ``scenario(host, port)`` against a live server."""
    server = await create_server(app)
    try:
        return await scenario(*server_address(server))
    finally:
        server.close()
        await server.wait_closed()


class TestEndpointContracts:
    def test_healthz(self, app):
        async def scenario(host, port):
            return await http_request(host, port, "GET", "/healthz")

        status, headers, body = run(with_server(app, scenario))
        assert status == 200
        assert headers["content-type"] == "application/json"
        payload = json.loads(body)
        assert payload["status"] == "ok"
        assert payload["uptime_s"] >= 0

    def test_points_lists_the_registry(self, app):
        async def scenario(host, port):
            return await http_request(host, port, "GET", "/points")

        status, _, body = run(with_server(app, scenario))
        assert status == 200
        payload = json.loads(body)
        assert payload["count"] == len(POINT_REGISTRY)
        ids = {point["id"] for point in payload["points"]}
        assert ids == set(POINT_REGISTRY)
        for point in payload["points"]:
            assert set(point) == {"id", "model", "label", "batch_size",
                                  "seq_len", "precision", "tokens"}

    def test_registry_covers_fig8_and_fig9(self):
        assert "fig8.ph1-b4-fp32" in POINT_REGISTRY
        assert "fig8.ph2-b16-fp32" in POINT_REGISTRY
        assert "fig9.c1.ph1-b8-fp32" in POINT_REGISTRY
        assert "fig9.c3.ph1-b8-fp32" in POINT_REGISTRY
        model, training = POINT_REGISTRY["fig9.c3.ph1-b8-fp32"]
        assert model.name == "C3"
        assert training.batch_size == 8

    def test_profile_schema(self, app):
        async def scenario(host, port):
            return await http_request(host, port, "GET", f"/profile/{TINY}")

        status, _, body = run(with_server(app, scenario))
        assert status == 200
        payload = json.loads(body)
        assert payload["point"] == TINY
        assert payload["model"]["name"] == "bert-tiny"
        assert payload["training"]["batch_size"] == 2
        assert payload["kernels"] > 0
        summary = payload["summary"]
        assert 0 < summary["total_time_s"]
        assert set(summary) >= {"transformer", "optimizer", "gemm"}
        assert payload["components"] and payload["regions"]
        for entry in payload["components"]:
            assert set(entry) == {"label", "time_s", "fraction"}

    def test_unknown_point_is_404_with_vocabulary(self, app):
        async def scenario(host, port):
            return await http_request(host, port, "GET", "/profile/nope")

        status, _, body = run(with_server(app, scenario))
        assert status == 404
        payload = json.loads(body)
        assert "nope" in payload["error"]
        assert payload["valid"] == sorted(POINT_REGISTRY)

    def test_unknown_route_is_404(self, app):
        async def scenario(host, port):
            return await http_request(host, port, "GET", "/nope")

        status, _, body = run(with_server(app, scenario))
        assert status == 404
        assert "/profile/<point>" in json.loads(body)["routes"]

    def test_wrong_method_is_405(self, app):
        async def scenario(host, port):
            return (await http_request(host, port, "POST", "/points"),
                    await http_request(host, port, "GET", "/grid"))

        (points_status, _, _), (grid_status, _, _) = \
            run(with_server(app, scenario))
        assert points_status == 405
        assert grid_status == 405

    def test_perfetto_is_a_valid_chrome_trace(self, app):
        from repro.obs.timeline_export import validate_chrome_trace

        async def scenario(host, port):
            return await http_request(host, port, "GET", f"/perfetto/{TINY}")

        status, _, body = run(with_server(app, scenario))
        assert status == 200
        payload = json.loads(body)
        assert validate_chrome_trace(payload) == []
        assert payload["otherData"]["kernels"] > 0

    def test_grid_spec_round_trip(self, app):
        spec = {"model": "bert-tiny", "batch_sizes": [2, 4],
                "seq_lens": [32], "precisions": ["fp32"]}

        async def scenario(host, port):
            return await http_request(host, port, "POST", "/grid",
                                      json.dumps(spec).encode())

        status, _, body = run(with_server(app, scenario))
        assert status == 200
        payload = json.loads(body)
        assert payload["model"] == "bert-tiny"
        assert payload["points"] == 2
        assert payload["failed"] == 0
        labels = [row["label"] for row in payload["rows"]]
        assert labels == ["Ph1-B2-FP32", "Ph1-B4-FP32"]
        for row in payload["rows"]:
            assert row["total_time_s"] > 0

    def test_grid_rejects_junk(self, app):
        async def scenario(host, port):
            return (
                await http_request(host, port, "POST", "/grid", b"not json"),
                await http_request(host, port, "POST", "/grid",
                                   json.dumps({"model": "gpt-5"}).encode()),
                await http_request(host, port, "POST", "/grid",
                                   json.dumps({"batch_sizes": []}).encode()),
                await http_request(
                    host, port, "POST", "/grid",
                    json.dumps({"bogus_axis": [1]}).encode()),
            )

        responses = run(with_server(app, scenario))
        assert [status for status, _, _ in responses] == [400, 400, 400, 400]

    def test_keep_alive_serves_many_requests_per_connection(self, app):
        async def scenario(host, port):
            reader, writer = await asyncio.open_connection(host, port)
            try:
                statuses = []
                for _ in range(3):
                    writer.write(b"GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n")
                    await writer.drain()
                    status, _, _ = await read_response(reader)
                    statuses.append(status)
                return statuses
            finally:
                writer.close()

        assert run(with_server(app, scenario)) == [200, 200, 200]

    def test_malformed_request_gets_400(self, app):
        async def scenario(host, port):
            reader, writer = await asyncio.open_connection(host, port)
            try:
                writer.write(b"EXPLODE\r\n\r\n")
                await writer.drain()
                status, _, _ = await read_response(reader)
                return status
            finally:
                writer.close()

        assert run(with_server(app, scenario)) == 400

    def test_stats_snapshot_sanity(self, app):
        async def scenario(host, port):
            await http_request(host, port, "GET", f"/profile/{TINY}")
            await http_request(host, port, "GET", f"/profile/{TINY}")
            return await http_request(host, port, "GET", "/stats")

        status, _, body = run(with_server(app, scenario))
        assert status == 200
        payload = json.loads(body)
        assert payload["workers"] == 2
        assert payload["queue_limit"] == 8
        hot = payload["hot_cache"]
        assert hot["entries"] >= 1
        assert hot["hits"] >= 1  # the second /profile was a hot read
        assert 0 < hot["bytes"] <= hot["capacity_bytes"]
        snapshot = payload["metrics"]
        assert snapshot["serve.requests"]["kind"] == "counter"
        latency = snapshot["serve.request_seconds"]
        assert latency["kind"] == "histogram"
        profile_series = latency["series"]["route=profile"]
        assert profile_series["count"] >= 2
        assert "p50" in profile_series and "p99" in profile_series
        assert "serve.hot_cache.requests.hit_rate" in payload["hit_rates"]


class TestCoalescing:
    def test_100_concurrent_identical_requests_one_computation(self, app):
        """The acceptance criterion, counter-asserted deterministically.

        Driving the App directly makes scheduling exact: all 100
        handlers register with the coalescer before the leader's worker
        job can run, so precisely one computation is dispatched and the
        other 99 attach to it.
        """
        point = "fig3.ph1-b32-fp32"
        computed_before = _COMPUTATIONS.value(route="profile")
        coalesced_before = _COALESCED.value(route="profile")

        async def storm():
            return await asyncio.gather(*(
                app.handle("GET", f"/profile/{point}") for _ in range(100)))

        responses = run(storm())
        assert [r.status for r in responses] == [200] * 100
        # Byte-identical bodies: everyone shared one rendering.
        assert len({r.body for r in responses}) == 1
        assert _COMPUTATIONS.value(route="profile") - computed_before == 1
        assert _COALESCED.value(route="profile") - coalesced_before == 99

    def test_sequential_repeat_hits_hot_cache_not_coalescer(self, app):
        coalesced_before = _COALESCED.value(route="profile")
        hits_before = app.hot.stats.hits

        async def twice():
            first = await app.handle("GET", f"/profile/{TINY}")
            second = await app.handle("GET", f"/profile/{TINY}")
            return first, second

        first, second = run(twice())
        assert first.body == second.body
        assert app.hot.stats.hits - hits_before == 1
        assert _COALESCED.value(route="profile") == coalesced_before

    def test_coalesced_error_propagates_to_all_without_caching(self, app,
                                                               monkeypatch):
        def explode(point):
            raise RuntimeError("engine on fire")

        monkeypatch.setattr(app.service, "profile_payload", explode)

        async def storm():
            return await asyncio.gather(*(
                app.handle("GET", f"/profile/{TINY}") for _ in range(5)))

        responses = run(storm())
        assert [r.status for r in responses] == [500] * 5
        assert all(b"engine on fire" in r.body for r in responses)
        assert len(app.hot) == 0  # errors are never cached


class TestLoadShedding:
    def test_saturated_queue_sheds_with_retry_after(self):
        app = App(workers=1, queue_limit=1, hot_cache=HotCache())
        shed_before = _SHED.value(route="profile")
        try:
            async def scenario():
                # Two *different* points: the second must become a
                # leader, find the queue full, and be refused.  Both
                # are issued before the first computation can finish
                # (the leader's inflight slot is taken synchronously).
                return await asyncio.gather(
                    app.handle("GET", f"/profile/{TINY}"),
                    app.handle("GET", "/profile/fig3.ph1-b4-fp32"))

            first, second = run(scenario())
            assert first.status == 200
            assert second.status == 503
            assert second.headers["Retry-After"] == "1"
            payload = json.loads(second.body)
            assert payload["retry_after_s"] == 1
            assert _SHED.value(route="profile") - shed_before == 1
        finally:
            app.close()

    def test_followers_are_never_shed(self):
        app = App(workers=1, queue_limit=1, hot_cache=HotCache())
        try:
            async def scenario():
                # 20 identical requests against a full-width queue of 1:
                # one leader takes the slot, 19 followers coalesce, no
                # request is refused.
                return await asyncio.gather(*(
                    app.handle("GET", f"/profile/{TINY}")
                    for _ in range(20)))

            responses = run(scenario())
            assert [r.status for r in responses] == [200] * 20
        finally:
            app.close()


class TestHotCache:
    def test_hit_miss_and_lru_order(self):
        cache = HotCache(capacity_bytes=1024)
        assert cache.get("a") is None
        assert cache.put("a", b"x" * 100)
        assert cache.get("a") == b"x" * 100
        assert cache.stats.hits == 1 and cache.stats.misses == 1

    def test_eviction_is_lru_and_bytes_bounded(self):
        cache = HotCache(capacity_bytes=250)
        cache.put("a", b"a" * 100)
        cache.put("b", b"b" * 100)
        cache.get("a")  # refresh a: b is now least recently used
        cache.put("c", b"c" * 100)  # 300 bytes > 250: evict b
        assert "a" in cache and "c" in cache
        assert "b" not in cache
        assert cache.stats.evictions == 1
        assert cache.size_bytes <= 250

    def test_oversize_value_is_not_admitted(self):
        cache = HotCache(capacity_bytes=10)
        assert not cache.put("big", b"y" * 11)
        assert len(cache) == 0

    def test_replacing_a_key_updates_byte_accounting(self):
        cache = HotCache(capacity_bytes=300)
        cache.put("a", b"a" * 200)
        cache.put("a", b"a" * 50)
        assert cache.size_bytes == 50
        cache.put("b", b"b" * 240)  # fits: 290 <= 300, no eviction
        assert "a" in cache and "b" in cache
        assert cache.stats.evictions == 0

    def test_lru_eviction_through_the_app(self):
        """End-to-end: a tiny budget forces the older entry out."""
        app = App(workers=1, hot_cache=HotCache(capacity_bytes=3000))
        try:
            async def scenario():
                first = await app.handle("GET", f"/profile/{TINY}")
                assert 1000 < len(first.body) < 3000  # budget fits one
                key_tiny = app.service.point_key("profile", TINY)
                assert key_tiny in app.hot
                # The perfetto body (~75KB) is oversize for this budget:
                # not admitted, the profile entry survives.
                await app.handle("GET", f"/perfetto/{TINY}")
                assert key_tiny in app.hot
                # A second profile entry blows the budget: LRU evicts
                # the tiny point, the newer entry stays.
                other = "fig9.c1.ph1-b8-fp32"
                await app.handle("GET", f"/profile/{other}")
                assert app.service.point_key("profile", other) in app.hot
                assert key_tiny not in app.hot
                assert app.hot.stats.evictions >= 1
                assert app.hot.size_bytes <= 3000
                return True

            assert run(scenario())
        finally:
            app.close()


class TestGoldenEquivalence:
    def test_profile_matches_direct_run_point(self, app):
        """Server bytes == canonical rendering of direct engine calls."""
        from repro.experiments.common import run_point
        from repro.experiments.points import resolve_point
        from repro.profiler.breakdown import summarize

        async def scenario(host, port):
            return await http_request(host, port, "GET", f"/profile/{TINY}")

        status, _, body = run(with_server(app, scenario))
        assert status == 200

        expected = render_json(app.service.profile_payload(TINY))
        assert body == expected

        # And the summary numbers are exactly run_point's.
        model, training = resolve_point(TINY)
        _, profile = run_point(model, training, app.service.device)
        assert json.loads(body)["summary"] == summarize(profile)

    def test_perfetto_matches_cli_export_file(self, app, tmp_path):
        """Served trace is byte-identical to `repro export` output."""
        from repro.cli import main

        out = tmp_path / "tiny.json"
        assert main(["export", "--format", "perfetto", TINY,
                     str(out)]) == 0

        async def scenario(host, port):
            return await http_request(host, port, "GET", f"/perfetto/{TINY}")

        status, _, body = run(with_server(app, scenario))
        assert status == 200
        assert body == out.read_bytes()


class TestServeCli:
    def test_rejects_nonpositive_knobs(self, capsys):
        from repro.cli import main

        assert main(["serve", "--workers", "0"]) == 2
        assert main(["serve", "--queue-limit", "0"]) == 2
        assert main(["serve", "--hot-cache-mb", "0"]) == 2
        assert "must be positive" in capsys.readouterr().err
