"""Tests for the (TS x PP x DP) parallelism planner."""

import pytest

from repro.config import (BERT_LARGE, BertConfig, Precision, training_point)
from repro.distributed import (PCIE4, XGMI, evaluate_layout, plan,
                               render_plan)
from repro.hw import mi100


@pytest.fixture(scope="module")
def device():
    return mi100()


@pytest.fixture(scope="module")
def b32():
    return training_point(1, 32, Precision.FP32)


class TestPlanner:
    @pytest.fixture(scope="class")
    def layouts(self, device, b32):
        return plan(BERT_LARGE, b32, device, devices=64,
                    intra_link=XGMI, inter_link=PCIE4)

    def test_every_factorization_covers_64(self, layouts):
        assert layouts
        for layout in layouts:
            assert layout.devices == 64

    def test_sorted_by_throughput(self, layouts, b32):
        feasible = [l for l in layouts if l.feasible]
        throughputs = [l.throughput(b32.tokens_per_iteration)
                       for l in feasible]
        assert throughputs == sorted(throughputs, reverse=True)

    def test_pure_dp_wins_when_memory_fits(self, layouts):
        """Replication maximizes throughput whenever the model fits one
        device — model parallelism exists for memory/latency, not
        throughput."""
        best = layouts[0]
        assert (best.ts_ways, best.pp_stages) == (1, 1)
        assert best.dp_replicas == 64

    def test_model_parallel_layouts_have_lower_latency(self, layouts):
        pure_dp = next(l for l in layouts if l.ts_ways == 1
                       and l.pp_stages == 1)
        heavy_mp = next(l for l in layouts if l.ts_ways * l.pp_stages >= 16)
        assert heavy_mp.iteration_s < pure_dp.iteration_s

    def test_big_model_requires_model_parallelism(self, device):
        """A 6.7B-parameter model cannot run TS1xPP1 on 32 GB; the planner
        must mark pure DP infeasible and find a model-parallel layout."""
        big = BertConfig(num_layers=32, d_model=4096, num_heads=32,
                         d_ff=16384, name="6.7b")
        training = training_point(1, 8, Precision.FP32)
        layouts = plan(big, training, device, devices=64,
                       intra_link=XGMI, inter_link=PCIE4)
        pure_dp = next(l for l in layouts if l.ts_ways == 1
                       and l.pp_stages == 1)
        assert not pure_dp.feasible
        best = layouts[0]
        assert best.feasible
        assert best.ts_ways * best.pp_stages > 1

    def test_indivisible_layout_marked(self, device, b32):
        layout = evaluate_layout(BERT_LARGE, b32, device, ts_ways=8,
                                 pp_stages=5, dp_replicas=1,
                                 intra_link=XGMI, inter_link=PCIE4)
        assert not layout.feasible and layout.iteration_s is None

    def test_render(self, layouts, b32):
        out = render_plan(layouts, b32.tokens_per_iteration)
        assert "TS1 x PP1 x DP64" in out and "tok/s" in out

    def test_invalid_device_count(self, device, b32):
        with pytest.raises(ValueError):
            plan(BERT_LARGE, b32, device, devices=0, intra_link=XGMI,
                 inter_link=PCIE4)
