"""Smoke tests: every example script runs end to end.

The training example is exercised with a reduced step count (the full run
is ~30 s); the others run as shipped.
"""

import importlib
import sys


def _run_main(module_name: str, argv: list[str] | None = None,
              capsys=None) -> str:
    module = importlib.import_module(module_name)
    old_argv = sys.argv
    sys.argv = [module_name] + (argv or [])
    try:
        module.main()
    finally:
        sys.argv = old_argv
    return capsys.readouterr().out if capsys else ""


class TestExamples:
    def test_quickstart(self, capsys):
        out = _run_main("examples.quickstart", capsys=capsys)
        assert "bert-large" in out
        assert "Fig. 3" in out and "Fig. 6" in out

    def test_accelerator_design_space(self, capsys):
        out = _run_main("examples.accelerator_design_space", capsys=capsys)
        assert "compute scaling" in out
        assert "near-memory compute" in out

    def test_distributed_scaleout(self, capsys):
        out = _run_main("examples.distributed_scaleout", capsys=capsys)
        assert "tensor-slicing scaling" in out
        assert "128 GPUs" in out

    def test_checkpointing_memory(self, capsys):
        out = _run_main("examples.checkpointing_memory", capsys=capsys)
        assert "largest B that fits" in out
        assert "checkpointed" in out

    def test_characterize_and_export(self, tmp_path, capsys):
        out = _run_main("examples.characterize_and_export",
                        argv=[str(tmp_path)], capsys=capsys)
        assert "roofline" in out
        assert (tmp_path / "bert_large_ph1_b32.csv").exists()
        assert (tmp_path / "bert_large_ph1_b32.json").exists()

    def test_plan_training_run(self, capsys):
        out = _run_main("examples.plan_training_run", capsys=capsys)
        assert "picked:" in out
        assert "estimated total" in out

    def test_train_tiny_bert_reduced(self, capsys, monkeypatch):
        import examples.train_tiny_bert as example
        monkeypatch.setattr(example, "STEPS", 8)
        example.main()
        out = capsys.readouterr().out
        assert "loss:" in out
        assert "held-out accuracy" in out
