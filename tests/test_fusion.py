"""Tests for kernel fusion passes and GEMM fusion (Sec. 6.1)."""

import pytest

from repro.config import BERT_LARGE, Precision, training_point
from repro.fusion import (fuse_chain, fuse_elementwise_chains,
                          fused_qkv_shapes, fusion_impact,
                          qkv_fusion_comparison)
from repro.hw import mi100
from repro.ops.base import Component, DType, Phase
from repro.ops.elementwise import gelu_kernels
from repro.trace import build_iteration_trace


@pytest.fixture(scope="module")
def device():
    return mi100()


class TestChainFusion:
    @pytest.fixture
    def gelu_chain(self):
        return gelu_kernels(n_elements=1 << 20, dtype=DType.FP32,
                            phase=Phase.FORWARD, fusion_group="g")

    def test_flops_conserved(self, gelu_chain):
        fused = fuse_chain(gelu_chain)
        assert fused.flops == sum(k.flops for k in gelu_chain)

    def test_intermediate_traffic_removed(self, gelu_chain):
        fused = fuse_chain(gelu_chain)
        handoffs = (len(gelu_chain) - 1) * (1 << 20) * 4
        assert fused.bytes_written == (sum(k.bytes_written
                                           for k in gelu_chain) - handoffs)
        assert fused.bytes_read == (sum(k.bytes_read for k in gelu_chain)
                                    - handoffs)

    def test_side_inputs_preserved(self, gelu_chain):
        # The final multiply's second operand (x itself) must survive.
        fused = fuse_chain(gelu_chain)
        assert fused.bytes_read >= 2 * (1 << 20) * 4

    def test_single_kernel_passthrough(self, gelu_chain):
        assert fuse_chain(gelu_chain[:1]) is gelu_chain[0]

    def test_empty_chain_rejected(self):
        with pytest.raises(ValueError):
            fuse_chain([])

    def test_trace_level_fusion_reduces_kernels_not_flops(self):
        trace = build_iteration_trace(BERT_LARGE,
                                      training_point(1, 32, Precision.FP32))
        fused = fuse_elementwise_chains(trace)
        assert len(fused) < 0.75 * len(trace)
        assert fused.total_flops == trace.total_flops
        assert fused.total_bytes < trace.total_bytes

    def test_gemms_never_fused(self):
        trace = build_iteration_trace(BERT_LARGE,
                                      training_point(1, 32, Precision.FP32))
        fused = fuse_elementwise_chains(trace)
        assert len(fused.gemms()) == len(trace.gemms())

    def test_fusion_respects_layer_boundaries(self):
        trace = build_iteration_trace(BERT_LARGE,
                                      training_point(1, 32, Precision.FP32))
        fused = fuse_elementwise_chains(trace)
        for k in fused.kernels:
            if k.name.startswith("fused."):
                assert k.layer_index is not None or k.component in (
                    Component.OUTPUT, Component.EMBEDDING,
                    Component.OPTIMIZER)

    def test_fused_trace_is_faster(self, device):
        from repro.profiler import profile_trace
        trace = build_iteration_trace(BERT_LARGE,
                                      training_point(1, 32, Precision.FP32))
        fused = fuse_elementwise_chains(trace)
        assert (profile_trace(fused.kernels, device).total_time
                < profile_trace(trace.kernels, device).total_time)

    def test_fusion_impact_ratios(self, device):
        chain = gelu_kernels(n_elements=1 << 22, dtype=DType.FP32,
                             phase=Phase.FORWARD, fusion_group="g")
        impact = fusion_impact(chain, [fuse_chain(chain)], device)
        assert impact.kernel_ratio == len(chain)
        assert impact.bytes_ratio > 2.0
        assert impact.time_ratio > 2.0


class TestQkvGemmFusion:
    def test_fused_shape_concatenates_outputs(self):
        shapes = fused_qkv_shapes(1024, 4096)
        assert shapes["fwd"].m == 3 * 1024
        assert shapes["fwd"].flops == 3 * 2 * 1024 * 4096 * 1024

    def test_fusion_always_helps(self, device):
        for tokens in (256, 1024, 4096):
            result = qkv_fusion_comparison(1024, tokens, device)
            assert result.speedup > 1.0

    def test_gain_larger_for_small_inputs(self, device):
        # Fig. 12b: "impact is higher when the input matrices are small".
        small = qkv_fusion_comparison(1024, 512, device)
        large = qkv_fusion_comparison(1024, 16384, device)
        assert small.improvement > large.improvement

    def test_backward_weight_pass_supported(self, device):
        result = qkv_fusion_comparison(1024, 2048, device,
                                       pass_name="bwd_wt")
        assert result.speedup > 1.0
        assert result.pass_name == "bwd_wt"

    def test_peak_improvement_in_paper_neighborhood(self, device):
        # Paper: up to ~62% improvement; our model peaks between 30% and
        # ~130% across the sweep (the 62% point depends on exact shapes).
        from repro.fusion import fusion_sweep
        results = fusion_sweep(1024, [256, 512, 1024, 4096, 16384], device)
        best = max(r.improvement for r in results)
        assert 0.4 < best < 1.5
