"""Tests for synthetic data generation and the end-to-end training loop."""

import numpy as np
import pytest

from repro.config import BERT_TINY
from repro.data import (IGNORE_INDEX, MarkovCorpus, PreTrainingDataset, Vocab)
from repro.model import BertForPreTraining
from repro.optim import Adam, Lamb
from repro.train import Trainer, constant, linear_warmup


@pytest.fixture
def vocab():
    return Vocab(size=256)


@pytest.fixture
def dataset(vocab):
    corpus = MarkovCorpus(vocab, seed=0, branching=2)
    return PreTrainingDataset(vocab, corpus, seq_len=32, seed=1)


class TestVocabAndCorpus:
    def test_vocab_layout(self, vocab):
        assert vocab.pad == 0 and vocab.mask == 3
        assert vocab.regular_tokens == 252

    def test_vocab_too_small_rejected(self):
        with pytest.raises(ValueError):
            Vocab(size=4)

    def test_sentences_use_regular_tokens_only(self, vocab):
        corpus = MarkovCorpus(vocab, seed=0)
        sentence = corpus.sentence(50)
        assert sentence.min() >= vocab.first_regular
        assert sentence.max() < vocab.size

    def test_markov_structure_is_learnable(self, vocab):
        # With branching 2, each token has at most 2 successors.
        corpus = MarkovCorpus(vocab, seed=0, branching=2)
        successors = {}
        for _ in range(200):
            s = corpus.sentence(20)
            for a, b in zip(s, s[1:]):
                successors.setdefault(int(a), set()).add(int(b))
        assert max(len(v) for v in successors.values()) <= 2

    def test_is_next_pairs_continue_the_chain(self, vocab):
        corpus = MarkovCorpus(vocab, seed=0, branching=1)
        first, second = corpus.sentence_pair(20, is_next=True)
        # branching=1 makes the continuation deterministic.
        expected_next = corpus._successors[
            int(first[-1]) - vocab.first_regular][0] + vocab.first_regular
        assert second[0] == expected_next

    def test_invalid_lengths_rejected(self, vocab):
        corpus = MarkovCorpus(vocab, seed=0)
        with pytest.raises(ValueError):
            corpus.sentence(0)
        with pytest.raises(ValueError):
            MarkovCorpus(vocab, branching=0)


class TestBatching:
    def test_batch_shapes(self, dataset):
        batch = dataset.batch(4)
        assert batch.token_ids.shape == (4, 32)
        assert batch.segment_ids.shape == (4, 32)
        assert batch.mlm_labels.shape == (4, 32)
        assert batch.nsp_labels.shape == (4,)
        assert batch.batch_size == 4 and batch.seq_len == 32

    def test_structure_tokens(self, dataset, vocab):
        batch = dataset.batch(2)
        assert (batch.token_ids[:, 0] == vocab.cls).all()
        # Two separators per example.
        seps = (batch.token_ids == vocab.sep).sum(axis=1)
        assert (seps == 2).all()

    def test_masking_fraction(self, dataset):
        batch = dataset.batch(16)
        labeled = (batch.mlm_labels != IGNORE_INDEX).sum()
        content = batch.padding_mask.sum() - 3 * 16  # minus special tokens
        assert labeled / content == pytest.approx(0.15, abs=0.03)

    def test_labels_hold_original_tokens(self, dataset, vocab):
        batch = dataset.batch(8)
        labeled = batch.mlm_labels != IGNORE_INDEX
        originals = batch.mlm_labels[labeled]
        assert (originals >= vocab.first_regular).all()

    def test_mask_token_appears(self, dataset, vocab):
        batch = dataset.batch(16)
        labeled = batch.mlm_labels != IGNORE_INDEX
        masked_share = (batch.token_ids[labeled] == vocab.mask).mean()
        assert masked_share == pytest.approx(0.8, abs=0.12)

    def test_special_tokens_never_masked(self, dataset, vocab):
        batch = dataset.batch(16)
        special = np.isin(batch.token_ids, (vocab.cls, vocab.sep, vocab.pad))
        labeled = batch.mlm_labels != IGNORE_INDEX
        # Special positions carry no labels... except where a label's
        # corruption replaced the token; check via padding instead:
        assert not (labeled & ~batch.padding_mask).any()

    def test_nsp_roughly_balanced(self, dataset):
        labels = np.concatenate(
            [dataset.batch(16).nsp_labels for _ in range(8)])
        assert 0.3 < labels.mean() < 0.7

    def test_segments_split_at_separator(self, dataset):
        batch = dataset.batch(2)
        for row in range(2):
            segments = batch.segment_ids[row]
            # Segment ids are 0 then 1 then 0-padding; monotone sections.
            changes = np.flatnonzero(np.diff(segments))
            assert len(changes) <= 2

    def test_validation_errors(self, dataset, vocab):
        with pytest.raises(ValueError):
            dataset.batch(0)
        corpus = MarkovCorpus(vocab, seed=0)
        with pytest.raises(ValueError):
            PreTrainingDataset(vocab, corpus, seq_len=4)
        with pytest.raises(ValueError):
            PreTrainingDataset(vocab, corpus, seq_len=32,
                               masked_fraction=0.0)


class TestSchedules:
    def test_linear_warmup_ramps(self):
        lr = [linear_warmup(s, base_lr=1.0, warmup_steps=10,
                            total_steps=100) for s in (1, 5, 10)]
        assert lr == pytest.approx([0.1, 0.5, 1.0])

    def test_linear_decay_reaches_floor(self):
        assert linear_warmup(100, base_lr=1.0, warmup_steps=10,
                             total_steps=100, min_lr=0.05) == 0.05

    def test_midpoint_decay(self):
        assert linear_warmup(55, base_lr=1.0, warmup_steps=10,
                             total_steps=100) == pytest.approx(0.5)

    def test_invalid_steps(self):
        with pytest.raises(ValueError):
            linear_warmup(0, base_lr=1.0, warmup_steps=1, total_steps=2)
        with pytest.raises(ValueError):
            constant(0, base_lr=1.0)


class TestTrainingLoop:
    def test_loss_beats_uniform_baseline(self, vocab):
        """The headline end-to-end test: real training on the Markov
        corpus must learn the bigram structure, dropping the MLM+NSP loss
        clearly below the uniform-guess baseline."""
        corpus = MarkovCorpus(vocab, seed=0, branching=2)
        dataset = PreTrainingDataset(vocab, corpus, seq_len=32, seed=1)
        model = BertForPreTraining(BERT_TINY, seed=2, dropout_p=0.0)
        trainer = Trainer(model, Adam(model.parameters(), lr=3e-3), dataset)
        history = trainer.train(batch_size=16, steps=60)

        uniform = np.log(BERT_TINY.vocab_size) + np.log(2)
        first = np.mean(history.losses()[:5])
        last = np.mean(history.losses()[-5:])
        assert first == pytest.approx(uniform, rel=0.25)
        assert last < uniform - 1.0, f"no learning: {first} -> {last}"

    def test_lamb_also_trains(self, vocab):
        corpus = MarkovCorpus(vocab, seed=3, branching=2)
        dataset = PreTrainingDataset(vocab, corpus, seq_len=32, seed=4)
        model = BertForPreTraining(BERT_TINY, seed=5, dropout_p=0.0)
        # LAMB's trust ratio scales steps by ||p||/||update||, which is
        # small for freshly-initialized tiny models, so it needs a larger
        # base learning rate than Adam to move at the same pace.
        trainer = Trainer(model, Lamb(model.parameters(), lr=4e-2), dataset)
        history = trainer.train(batch_size=16, steps=60)
        assert (np.mean(history.losses()[-5:])
                < np.mean(history.losses()[:5]) - 0.5)

    def test_step_results_recorded(self, vocab, dataset):
        model = BertForPreTraining(BERT_TINY, seed=6, dropout_p=0.0)
        trainer = Trainer(model, Adam(model.parameters(), lr=1e-3), dataset)
        trainer.train(batch_size=2, steps=3)
        assert len(trainer.history.steps) == 3
        for step in trainer.history.steps:
            assert step.grad_norm > 0 and step.seconds > 0
        assert trainer.history.final_loss == trainer.history.losses()[-1]

    def test_lr_schedule_applied(self, vocab, dataset):
        model = BertForPreTraining(BERT_TINY, seed=7, dropout_p=0.0)
        optimizer = Adam(model.parameters(), lr=1.0)
        trainer = Trainer(model, optimizer, dataset,
                          lr_schedule=lambda s: 1e-3 * s)
        trainer.train(batch_size=2, steps=2)
        assert trainer.history.steps[0].lr == pytest.approx(1e-3)
        assert trainer.history.steps[1].lr == pytest.approx(2e-3)

    def test_empty_history_raises(self):
        from repro.train import TrainingHistory
        with pytest.raises(ValueError):
            TrainingHistory().final_loss
