"""Runner cache: content addressing, round-trips, aliasing regression.

The aliasing test is the regression guard for the seed's ``lru_cache``
bug: memoized ``run_point`` handed every caller the same mutable
``Trace``/``Profile``, so mutating ``trace.kernels`` corrupted the cache
for every later figure.  Against that implementation the test fails; with
the content-addressed cache plus defensive copies it passes.
"""

import dataclasses
import pickle

import pytest

from repro.config import BERT_TINY, TrainingConfig
from repro.experiments import common
from repro.experiments.common import run_point
from repro.hw.device import mi100
from repro.runner import cache as cache_module
from repro.runner.cache import ResultCache
from repro.runner.telemetry import collect

TINY = TrainingConfig(batch_size=2, seq_len=16)
DEVICE = mi100()


def _clear_memo():
    # getattr so the aliasing regression tests still *run* (and fail on
    # their assertions) against the pre-fix lru_cache implementation,
    # which has no memo to clear.
    getattr(common, "clear_memo", lambda: None)()


@pytest.fixture(autouse=True)
def fresh_cache(tmp_path):
    """Per-test cache directory and empty in-process memo."""
    cache_module.configure_cache(tmp_path / "cache")
    _clear_memo()
    yield
    cache_module.reset_cache()
    _clear_memo()


class TestAliasingRegression:
    def test_mutating_returned_trace_does_not_corrupt_cache(self):
        trace, _ = run_point(BERT_TINY, TINY)
        n_kernels = len(trace.kernels)
        trace.kernels.clear()  # a hostile downstream transform

        again, _ = run_point(BERT_TINY, TINY)
        assert len(again.kernels) == n_kernels

    def test_mutating_returned_profile_does_not_corrupt_cache(self):
        _, profile = run_point(BERT_TINY, TINY)
        n_records = len(profile.records)
        total = profile.total_time
        del profile.records[: n_records // 2]

        _, again = run_point(BERT_TINY, TINY)
        assert len(again.records) == n_records
        assert again.total_time == pytest.approx(total)

    def test_callers_get_distinct_containers(self):
        trace_a, profile_a = run_point(BERT_TINY, TINY)
        trace_b, profile_b = run_point(BERT_TINY, TINY)
        assert trace_a.kernels is not trace_b.kernels
        assert profile_a.records is not profile_b.records
        # Same content though: the copies are cheap container copies.
        assert trace_a.kernels == trace_b.kernels


class TestContentAddressing:
    def test_key_is_deterministic(self):
        cache = ResultCache()
        key = cache.key(BERT_TINY, TINY, DEVICE)
        assert key == cache.key(BERT_TINY, TINY, DEVICE)

    def test_key_changes_with_model(self):
        cache = ResultCache()
        other = BERT_TINY.scaled(num_layers=3)
        assert (cache.key(BERT_TINY, TINY, DEVICE)
                != cache.key(other, TINY, DEVICE))

    def test_key_changes_with_training(self):
        cache = ResultCache()
        other = dataclasses.replace(TINY, batch_size=4)
        assert (cache.key(BERT_TINY, TINY, DEVICE)
                != cache.key(BERT_TINY, other, DEVICE))

    def test_key_changes_with_device(self):
        cache = ResultCache()
        tweaked = dataclasses.replace(DEVICE, mem_bandwidth_gbps=999.0)
        assert (cache.key(BERT_TINY, TINY, DEVICE)
                != cache.key(BERT_TINY, TINY, tweaked))

    def test_key_changes_with_code_version(self, monkeypatch):
        cache = ResultCache()
        before = cache.key(BERT_TINY, TINY, DEVICE)
        monkeypatch.setattr(cache_module, "_code_fingerprint_cache",
                            "different-code-version")
        assert cache.key(BERT_TINY, TINY, DEVICE) != before


class TestDiskRoundTrip:
    def test_miss_then_hit(self, tmp_path):
        cache = ResultCache(root=tmp_path / "rt")
        key = cache.key(BERT_TINY, TINY, DEVICE)
        assert cache.get(key) is None
        assert cache.stats.misses == 1

        trace, profile = run_point(BERT_TINY, TINY)
        cache.put(key, trace, profile)
        loaded = cache.get(key)
        assert loaded is not None
        assert cache.stats.hits == 1
        loaded_trace, loaded_profile = loaded
        assert len(loaded_trace.kernels) == len(trace.kernels)
        assert loaded_profile.total_time == pytest.approx(
            profile.total_time)

    def test_survives_across_instances(self, tmp_path):
        root = tmp_path / "persist"
        first = ResultCache(root=root)
        key = first.key(BERT_TINY, TINY, DEVICE)
        trace, profile = run_point(BERT_TINY, TINY)
        first.put(key, trace, profile)

        # A fresh instance (a later invocation) sees the entry.
        second = ResultCache(root=root)
        assert second.get(key) is not None
        assert second.stats.hits == 1

    def test_corrupted_entry_falls_back_to_recompute(self):
        with collect() as first:
            run_point(BERT_TINY, TINY)
        assert first.cache_misses == 1

        cache = cache_module.get_cache()
        [entry] = cache.entries()
        entry.write_bytes(b"not a pickle")
        common.clear_memo()

        with collect() as second:
            trace, _ = run_point(BERT_TINY, TINY)
        assert second.cache_misses == 1
        assert cache.stats.evictions == 1
        assert len(trace.kernels) > 0
        # The recompute rewrote the entry; it loads cleanly now.
        common.clear_memo()
        with collect() as third:
            run_point(BERT_TINY, TINY)
        assert third.cache_hits == 1

    def test_truncated_pickle_falls_back(self, tmp_path):
        cache = ResultCache(root=tmp_path / "trunc")
        key = cache.key(BERT_TINY, TINY, DEVICE)
        trace, profile = run_point(BERT_TINY, TINY)
        cache.put(key, trace, profile)
        path = cache._path(key)
        path.write_bytes(path.read_bytes()[:64])
        assert cache.get(key) is None
        assert cache.stats.evictions == 1

    def test_clear_and_info(self, tmp_path):
        cache = ResultCache(root=tmp_path / "mgmt")
        trace, profile = run_point(BERT_TINY, TINY)
        for batch in (2, 3):
            key = cache.key(
                BERT_TINY, dataclasses.replace(TINY, batch_size=batch),
                DEVICE)
            cache.put(key, trace, profile)
        assert len(cache.entries()) == 2
        assert cache.size_bytes() > 0
        assert cache.clear() == 2
        assert cache.entries() == []


class TestRunPointThroughCache:
    def test_second_invocation_hits_disk(self):
        with collect() as first:
            run_point(BERT_TINY, TINY)
        assert (first.cache_hits, first.cache_misses) == (0, 1)

        common.clear_memo()  # simulate a new process, same cache dir
        with collect() as second:
            run_point(BERT_TINY, TINY)
        assert (second.cache_hits, second.cache_misses) == (1, 0)

    def test_memo_hit_within_invocation(self):
        with collect() as telemetry:
            run_point(BERT_TINY, TINY)
            run_point(BERT_TINY, TINY)
        assert telemetry.cache_hits == 1
        assert telemetry.cache_misses == 1
        assert telemetry.points == 2
        assert telemetry.kernels > 0

    def test_custom_device_is_cached_under_its_fingerprint(self):
        tweaked = dataclasses.replace(DEVICE, name="tweaked",
                                      mem_bandwidth_gbps=600.0)
        _, profile_default = run_point(BERT_TINY, TINY)
        _, profile_tweaked = run_point(BERT_TINY, TINY, tweaked)
        assert profile_tweaked.total_time != pytest.approx(
            profile_default.total_time)

        common.clear_memo()
        with collect() as telemetry:
            _, again = run_point(BERT_TINY, TINY, tweaked)
        assert telemetry.cache_hits == 1
        assert again.total_time == pytest.approx(
            profile_tweaked.total_time)

    def test_cached_results_identical_to_fresh(self):
        trace_fresh, profile_fresh = run_point(BERT_TINY, TINY)
        common.clear_memo()
        trace_cached, profile_cached = run_point(BERT_TINY, TINY)
        assert trace_cached.kernels == trace_fresh.kernels
        assert [r.time_s for r in profile_cached.records] == pytest.approx(
            [r.time_s for r in profile_fresh.records])


class TestProfileTotalTimeCache:
    def test_append_invalidates(self):
        _, profile = run_point(BERT_TINY, TINY)
        before = profile.total_time
        profile.records.append(profile.records[0])
        assert profile.total_time == pytest.approx(
            before + profile.records[0].time_s)

    def test_pickle_roundtrip_preserves_total(self):
        _, profile = run_point(BERT_TINY, TINY)
        total = profile.total_time
        clone = pickle.loads(pickle.dumps(profile))
        assert clone.total_time == pytest.approx(total)


class TestConcurrentAccess:
    """Thread-safety regression for the server's worker pool.

    Concurrent ``get_payload``/``put_payload`` on the *same* key must
    never tear an entry (atomic rename), never serve a partially
    written pickle, and never lose a stats increment (the counter
    lock).
    """

    def test_same_key_hammering_never_tears(self, tmp_path):
        import threading

        cache = ResultCache(root=tmp_path / "cc")
        key = "ab" + "0" * 62
        payload = {"rows": list(range(500)), "tag": "constant"}
        rounds, workers = 30, 8
        failures = []
        barrier = threading.Barrier(workers)

        def work():
            barrier.wait()
            for _ in range(rounds):
                cache.put_payload(key, payload)
                loaded = cache.get_payload(key)
                # A miss is only legal before the first replace lands;
                # the barrier plus the leading put makes any miss after
                # our own write a torn-entry bug.
                if loaded != payload:
                    failures.append(loaded)

        threads = [threading.Thread(target=work) for _ in range(workers)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        assert not failures
        # Exactly one entry on disk, still loadable, and no evictions
        # (an eviction would mean a reader saw a corrupt entry).
        assert len(cache.entries()) == 1
        assert cache.stats.evictions == 0
        assert cache.stats.hits == rounds * workers

    def test_stats_increments_are_not_lost(self, tmp_path):
        import threading

        cache = ResultCache(root=tmp_path / "cc")
        reads, workers = 200, 8

        def work():
            for _ in range(reads):
                cache.get_payload("ff" + "1" * 62)  # always a miss

        threads = [threading.Thread(target=work) for _ in range(workers)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        assert cache.stats.misses == reads * workers
        assert cache.stats.hits == 0
