"""Tests for the step-event collective simulator."""

import math

import pytest

from repro.distributed import (LinkSpec, ring_allreduce_time,
                               simulate_hierarchical_allreduce,
                               simulate_ring_allreduce,
                               simulate_tree_allreduce)

LINK = LinkSpec(name="test", bandwidth_gbps=10.0, latency_us=2.0)
FAST = LinkSpec(name="fast", bandwidth_gbps=100.0, latency_us=1.0)


class TestRingSimulation:
    @pytest.mark.parametrize("devices", [2, 3, 4, 8, 16])
    def test_matches_closed_form(self, devices):
        """The event simulation must land exactly on the analytic ring
        AllReduce cost used throughout the distributed models."""
        payload = 64 << 20
        run = simulate_ring_allreduce(payload, devices, LINK)
        assert run.completion_s == pytest.approx(
            ring_allreduce_time(payload, devices, LINK), rel=1e-9)

    def test_event_structure(self):
        devices, payload = 4, 4 << 20
        run = simulate_ring_allreduce(payload, devices, LINK)
        # 2*(D-1) steps, one transfer per device per step.
        assert len(run.events) == 2 * (devices - 1) * devices
        steps = {e.step for e in run.events}
        assert steps == set(range(2 * (devices - 1)))
        # Ring wiring: rank -> rank+1 mod D.
        for event in run.events:
            assert event.destination == (event.source + 1) % devices
            assert event.end_s > event.start_s

    def test_wire_traffic(self):
        devices, payload = 8, 8 << 20
        run = simulate_ring_allreduce(payload, devices, LINK)
        expected = 2 * (devices - 1) * payload  # D chunks of size P/D/step
        assert run.total_bytes_on_wire == pytest.approx(expected, rel=0.01)

    def test_single_device_noop(self):
        run = simulate_ring_allreduce(1 << 20, 1, LINK)
        assert run.completion_s == 0.0 and not run.events

    def test_invalid_devices(self):
        with pytest.raises(ValueError):
            simulate_ring_allreduce(1, 0, LINK)


class TestTreeSimulation:
    def test_round_count_logarithmic(self):
        for devices in (2, 4, 8, 16, 32):
            run = simulate_tree_allreduce(1 << 20, devices, LINK)
            rounds = max(e.step for e in run.events) + 1
            assert rounds == 2 * math.ceil(math.log2(devices))

    def test_tree_beats_ring_for_small_payloads(self):
        # Latency-bound regime: 2 log D hops < 2 (D-1) hops.
        devices, payload = 32, 512
        tree = simulate_tree_allreduce(payload, devices, LINK)
        ring = simulate_ring_allreduce(payload, devices, LINK)
        assert tree.completion_s < ring.completion_s

    def test_ring_beats_tree_for_large_payloads(self):
        # Bandwidth-bound regime: the ring moves P/D per step.
        devices, payload = 8, 1 << 30
        tree = simulate_tree_allreduce(payload, devices, LINK)
        ring = simulate_ring_allreduce(payload, devices, LINK)
        assert ring.completion_s < tree.completion_s

    def test_non_power_of_two(self):
        run = simulate_tree_allreduce(1 << 20, 5, LINK)
        assert run.completion_s > 0
        participants = ({e.source for e in run.events}
                        | {e.destination for e in run.events})
        assert participants == set(range(5))


class TestHierarchicalSimulation:
    def test_faster_than_flat_ring_on_slow_link(self):
        """Topology-aware layout: reduce within the node on the fast link,
        cross nodes with only one rank per node."""
        payload = 256 << 20
        flat = simulate_ring_allreduce(payload, 16, LINK)
        hier = simulate_hierarchical_allreduce(
            payload, nodes=2, devices_per_node=8,
            intra_link=FAST, inter_link=LINK)
        assert hier.completion_s < flat.completion_s
        assert hier.devices == 16

    def test_single_node_reduces_to_intra_ring(self):
        payload = 16 << 20
        hier = simulate_hierarchical_allreduce(
            payload, nodes=1, devices_per_node=4,
            intra_link=FAST, inter_link=LINK)
        intra = simulate_ring_allreduce(payload, 4, FAST)
        # One extra full-payload broadcast hop on top of the intra ring
        # (the ring itself moves 2*(D-1)/D payloads, so the hop adds less
        # than another ring's worth).
        assert hier.completion_s > intra.completion_s
        assert hier.completion_s < 2.0 * intra.completion_s

    def test_validation(self):
        with pytest.raises(ValueError):
            simulate_hierarchical_allreduce(1, nodes=0, devices_per_node=1,
                                            intra_link=FAST,
                                            inter_link=LINK)
