"""Integration tests: every figure/table must land in the paper's bands.

These are the reproduction's acceptance criteria (see EXPERIMENTS.md).  The
bands are the paper's reported values widened for the simulator substrate;
the *shapes* (orderings, trends, who wins) are asserted tightly.
"""

import pytest

from repro.experiments import (fig3, fig4, fig6, fig7, fig8, fig9, fig11,
                               fig12, nmc_study, sec4, takeaways)


class TestFig3Bands:
    @pytest.fixture(scope="class")
    def rows(self):
        return {r.label: r for r in fig3.run()}

    def test_transformer_dominates(self, rows):
        # Obs. 1: Transformer layers are 68-85% of runtime.
        for row in rows.values():
            assert 0.60 < row.transformer < 0.90, row.label

    def test_output_layer_small(self, rows):
        # Obs. 1: output layer 3-7%.
        for row in rows.values():
            assert 0.02 < row.output < 0.08, row.label

    def test_embedding_negligible(self, rows):
        for row in rows.values():
            assert row.embedding < 0.02, row.label

    def test_lamb_band_at_b32_fp32(self, rows):
        # Takeaway 1: 7-10% at B32-FP32 (we accept 6-11%).
        assert 0.06 < rows["Ph1-B32-FP32"].optimizer < 0.11

    def test_lamb_grows_at_small_batch(self, rows):
        # Takeaway 1: ~25% at B4.
        assert 0.20 < rows["Ph1-B4-FP32"].optimizer < 0.32

    def test_lamb_grows_under_mixed_precision(self, rows):
        # Takeaway 2: 16-19% at B32-MP.
        assert 0.14 < rows["Ph1-B32-FP16"].optimizer < 0.22

    def test_components_sum_to_one(self, rows):
        for row in rows.values():
            total = (row.transformer + row.output + row.embedding
                     + row.optimizer)
            assert total == pytest.approx(1.0, abs=1e-6)


class TestFig4Bands:
    @pytest.fixture(scope="class")
    def rows(self):
        return fig4.run()

    def test_linear_fc_dominate_fp32(self, rows):
        # Obs. 2: linear+FC ~57% in FP32 (band 50-62%).
        assert 0.50 < rows["fp32"].linear_and_fc < 0.62

    def test_linear_fc_share_drops_in_mp(self, rows):
        # Takeaway 3.
        assert (rows["mixed"].linear_and_fc
                < rows["fp32"].linear_and_fc - 0.08)

    def test_gemm_share_drops_in_mp(self, rows):
        # 55% -> 36% in the paper; we assert the ~17-19pp drop.
        drop = rows["fp32"].gemm_total - rows["mixed"].gemm_total
        assert 0.10 < drop < 0.25

    def test_attention_ops_small_and_grow_in_mp(self, rows):
        # Takeaway 4: 7% FP32 -> 9% MP.
        assert rows["fp32"].attention_ops < 0.13
        assert rows["mixed"].attention_ops > rows["fp32"].attention_ops

    def test_gelu_band(self, rows):
        # ~13% FP32, ~15% MP.
        assert 0.09 < rows["fp32"].fc_gelu < 0.17
        assert rows["mixed"].fc_gelu > rows["fp32"].fc_gelu

    def test_dr_rc_ln_band(self, rows):
        # ~5% FP32 -> ~9% MP.
        assert 0.03 < rows["fp32"].dr_rc_ln < 0.09
        assert rows["mixed"].dr_rc_ln > rows["fp32"].dr_rc_ln

    def test_non_gemm_bands(self, rows):
        # Takeaways 8/9: ~45% FP32 -> ~64% MP (we assert 30%+ and growth).
        assert rows["fp32"].non_gemm > 0.30
        assert rows["mixed"].non_gemm > rows["fp32"].non_gemm + 0.10


class TestFig6Bands:
    @pytest.fixture(scope="class")
    def records(self):
        return fig6.run()

    def _by(self, records, operation, pass_name):
        return next(r for r in records if r.operation == operation
                    and r.pass_name == pass_name)

    def test_fc_gemms_most_intense(self, records):
        fc = self._by(records, "fc1", "fwd")
        linear = self._by(records, "linear", "fwd")
        score = self._by(records, "attn_score", "fwd")
        assert fc.intensity > linear.intensity > score.intensity

    def test_linear_intensity_value(self, records):
        # d=1024, T=4096 FP32: 2*T*d*d / 4*(2*T*d + d*d) ~ 228 ops/B.
        linear = self._by(records, "linear", "fwd")
        assert linear.intensity == pytest.approx(228.0, rel=0.05)

    def test_attention_bgemm_low_intensity(self, records):
        score = self._by(records, "attn_score", "fwd")
        assert score.intensity < 20.0

    def test_attention_bgemms_memory_bound(self, records):
        # Takeaway 6.
        for op in ("attn_score", "attn_output"):
            assert self._by(records, op, "fwd").memory_bound

    def test_fc_gemms_compute_bound(self, records):
        for op in ("fc1", "fc2"):
            assert not self._by(records, op, "fwd").memory_bound

    def test_every_gemm_labeled(self, records):
        assert len(records) == 15  # 5 operations x 3 passes
        assert all("," in r.shape.label for r in records)


class TestFig7Bands:
    @pytest.fixture(scope="class")
    def groups(self):
        return {r.label: r for r in fig7.run()}

    def test_non_gemm_groups_low_intensity(self, groups):
        for label in ("LAMBStage1", "LAMBStage2", "Scale+Mask+DR+SM",
                      "GeLU", "DR+RC+LN", "EW multiply"):
            assert groups[label].intensity < 1.0, label

    def test_memory_bound_groups_demand_high_bandwidth(self, groups):
        for label in ("LAMBStage1", "GeLU", "DR+RC+LN", "EW multiply"):
            assert groups[label].normalized_bandwidth > 0.5, label

    def test_fc_gemms_demand_little_bandwidth(self, groups):
        # Paper: ~20% of the max.
        assert groups["FC GEMMs"].normalized_bandwidth < 0.30

    def test_attention_bgemms_bandwidth_hungry(self, groups):
        # Paper: ~70% of the EW-mult max; our model puts them at the top.
        assert groups["Attn B-GEMMs"].normalized_bandwidth > 0.6
        assert (groups["Attn B-GEMMs"].normalized_bandwidth
                > 3 * groups["FC GEMMs"].normalized_bandwidth)

    def test_gemm_intensity_ordering(self, groups):
        assert (groups["FC GEMMs"].intensity
                > groups["Linear GEMMs"].intensity
                > groups["Attn B-GEMMs"].intensity)


class TestFig8Bands:
    @pytest.fixture(scope="class")
    def rows(self):
        return {r.label: r for r in fig8.run()}

    def test_lamb_falls_with_batch(self, rows):
        # 25% @B4 -> 7% @B32 in the paper.
        assert (rows["Ph1-B4-FP32"].optimizer
                > rows["Ph1-B16-FP32"].optimizer
                > rows["Ph1-B32-FP32"].optimizer)
        assert rows["Ph1-B4-FP32"].optimizer > 0.20
        assert rows["Ph1-B32-FP32"].optimizer < 0.11

    def test_attention_ops_grow_with_n_at_equal_tokens(self, rows):
        # Takeaway 10: 7% -> 17% moving Ph1-B16 -> Ph2-B4.
        ph1 = rows["Ph1-B16-FP32"].attention_ops
        ph2 = rows["Ph2-B4-FP32"].attention_ops
        assert ph2 > 1.8 * ph1

    def test_bgemm_share_grows_with_n(self, rows):
        # 3% -> 8% in the paper.
        assert rows["Ph2-B4-FP32"].bgemm > 1.7 * rows["Ph1-B16-FP32"].bgemm

    def test_in_layer_breakdown_stable_across_b(self, rows):
        # Sec. 3.3.1: breakdown largely unchanged as B varies at n=128.
        b16 = rows["Ph1-B16-FP32"].regions
        b32 = rows["Ph1-B32-FP32"].regions
        assert abs(b16.linear_and_fc - b32.linear_and_fc) < 0.08
        assert abs(b16.attention_ops - b32.attention_ops) < 0.04


class TestFig9Bands:
    @pytest.fixture(scope="class")
    def rows(self):
        return {r.config_name: r for r in fig9.run()}

    def test_linear_fc_share_grows_with_width(self, rows):
        assert (rows["C1"].regions.linear_and_fc
                < rows["C2"].regions.linear_and_fc
                < rows["C3"].regions.linear_and_fc)

    def test_lamb_share_grows_with_width(self, rows):
        # Takeaway 11; paper reports ~34% at C3 (we land ~26% at B=8).
        assert (rows["C1"].optimizer < rows["C2"].optimizer
                < rows["C3"].optimizer)
        assert rows["C3"].optimizer > 0.20

    def test_fc_grows_relative_to_attention(self, rows):
        assert (rows["C3"].fc_to_attention > rows["C2"].fc_to_attention
                > rows["C1"].fc_to_attention)

    def test_depth_sweep_preserves_breakdown(self):
        # Obs. 4: layer count scales everything linearly.
        shallow, _, deep = fig9.run_depth_sweep(layer_counts=(12, 24, 48))
        assert (deep.regions.linear_and_fc
                == pytest.approx(shallow.regions.linear_and_fc, abs=0.06))
        assert deep.optimizer >= shallow.optimizer - 0.02


class TestSec4Bands:
    @pytest.fixture(scope="class")
    def result(self):
        return sec4.run()

    def test_kernel_overhead_band(self, result):
        # Paper: ~33% more kernels.
        assert 0.25 < result.kernel_overhead < 0.45

    def test_runtime_overhead_band(self, result):
        # Paper: ~27% more runtime.
        assert 0.20 < result.runtime_overhead < 0.40

    def test_runtime_overhead_below_kernel_overhead(self, result):
        # Recomputed forward kernels are cheaper than average (backward
        # kernels do 2x the work), so runtime grows less than kernel count.
        assert result.runtime_overhead < result.kernel_overhead

    def test_lamb_share_drops(self, result):
        assert result.lamb_ckpt < result.lamb_base

    def test_in_layer_breakdown_stable(self, result):
        assert result.region_shift < 0.05

    def test_activation_memory_saved(self, result):
        assert result.activation_savings > 0.5


class TestFig11Bands:
    @pytest.fixture(scope="class")
    def timelines(self):
        return {t.label.split(" ")[0]: t for t in fig11.run()}

    def test_d2_close_to_s1(self, timelines):
        # Obs. 5.
        assert (timelines["D2"].total
                < 1.15 * timelines["S1"].total)

    def test_d1_exposes_communication(self, timelines):
        # ~19% in the paper.
        assert 0.12 < timelines["D1"].communication_fraction < 0.32

    def test_t1_bands(self, timelines):
        t1, s1 = timelines["T1"], timelines["S1"]
        # ~9% communication; LAMB halved.
        assert 0.05 < t1.communication_fraction < 0.20
        assert t1.optimizer_fraction < 0.8 * s1.optimizer_fraction

    def test_t2_bands(self, timelines):
        t2 = timelines["T2"]
        # ~42% communication; LAMB negligible.
        assert 0.30 < t2.communication_fraction < 0.55
        assert t2.optimizer_fraction < 0.04

    def test_replicated_share_grows_with_ways(self, timelines):
        assert (timelines["T2"].fraction("dr_rc_ln_replicated")
                > timelines["T1"].fraction("dr_rc_ln_replicated"))


class TestFig12Bands:
    @pytest.fixture(scope="class")
    def result(self):
        return fig12.run()

    def test_layernorm_fusion_6_to_8x(self, result):
        ln = result.layernorm
        assert 5.0 <= ln.kernel_ratio <= 9.0
        assert 5.0 <= ln.bytes_ratio <= 9.0
        assert 5.0 <= ln.time_ratio <= 9.0

    def test_adam_kernel_ratio_near_250(self, result):
        assert 150 <= result.adam.kernel_ratio <= 350

    def test_adam_traffic_ratio_disproportionate(self, result):
        # The paper's point: ~250x kernels but only 6-8x traffic/time.
        adam = result.adam
        assert 4.0 <= adam.bytes_ratio <= 9.0
        assert adam.kernel_ratio > 20 * adam.bytes_ratio
        assert 4.0 <= adam.time_ratio <= 10.0

    def test_qkv_fusion_peak_gain(self, result):
        # Paper: up to ~62%.
        assert 0.4 < result.best_qkv_improvement < 1.5

    def test_qkv_gain_decreases_with_tokens(self, result):
        sweep = result.qkv_forward
        assert sweep[0].improvement > sweep[-1].improvement


class TestNmcBands:
    def test_lamb_speedup_and_end_to_end(self):
        results = nmc_study.run()
        for r in results:
            # Paper headline: 3.8x.
            assert 3.2 < r.lamb_speedup_vs_optimistic < 4.4, r.label
        gains = [r.end_to_end_improvement for r in results]
        # Paper: 5-22%; our small-batch points run slightly above.
        assert 0.04 < min(gains) and max(gains) < 0.30


class TestTable1:
    def test_all_takeaways_hold(self):
        checks = takeaways.run()
        failing = [c for c in checks if not c.holds]
        assert not failing, "\n".join(
            f"{c.takeaway_id}: {c.evidence}" for c in failing)

    def test_coverage(self):
        ids = {c.takeaway_id for c in takeaways.run()}
        # All 13 takeaways plus the NMC and fusion headlines.
        assert {f"T{i}" for i in range(1, 14)} <= ids
        assert "NMC" in ids and "FUS" in ids
