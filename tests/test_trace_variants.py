"""Tests for inference/fine-tuning trace variants (Sec. 7)."""

import pytest

from repro.config import BERT_LARGE, Precision, training_point
from repro.experiments import sec7_modes
from repro.hw import mi100
from repro.ops.base import Component, Phase
from repro.profiler import profile_trace, summarize
from repro.trace import build_iteration_trace
from repro.trace.variants import (build_finetuning_trace,
                                  build_inference_trace)


@pytest.fixture(scope="module")
def training():
    return training_point(1, 32, Precision.FP32)


class TestInferenceTrace:
    def test_forward_only(self, training):
        trace = build_inference_trace(BERT_LARGE, training)
        assert all(k.phase is Phase.FORWARD for k in trace)

    def test_no_optimizer(self, training):
        trace = build_inference_trace(BERT_LARGE, training)
        assert not trace.select(component=Component.OPTIMIZER)

    def test_no_dropout_kernels(self, training):
        trace = build_inference_trace(BERT_LARGE, training)
        assert not [k for k in trace if "dropout" in k.name]

    def test_still_matrix_matrix_at_batch_one(self):
        # Sec. 8's point against matrix-vector accelerators: even
        # single-sequence inference runs GEMMs.
        trace = build_inference_trace(BERT_LARGE,
                                      training_point(1, 1, Precision.FP32))
        encoder = [k for k in trace.gemms()
                   if k.component is Component.TRANSFORMER]
        assert min(min(k.gemm.m, k.gemm.n, k.gemm.k)
                   for k in encoder) >= 64

    def test_roughly_one_third_of_training_time(self, training):
        # BWD ~ 2x FWD, so inference ~ (pretraining - update) / 3.
        device = mi100()
        train_trace = build_iteration_trace(BERT_LARGE, training)
        infer_trace = build_inference_trace(BERT_LARGE, training)
        train_profile = profile_trace(train_trace.kernels, device)
        infer_time = profile_trace(infer_trace.kernels, device).total_time
        fwdbwd = (train_profile.total_time
                  - train_profile.time_of(component=Component.OPTIMIZER))
        assert 2.4 < fwdbwd / infer_time < 3.6


class TestFinetuningTrace:
    def test_output_head_negligible(self, training):
        # Sec. 7: the SQuAD-style head is a negligible runtime component.
        trace = build_finetuning_trace(BERT_LARGE, training)
        stats = summarize(profile_trace(trace.kernels, mi100()))
        assert stats["output"] < 0.01
        assert stats["transformer"] > 0.80

    def test_same_encoder_work_as_pretraining(self, training):
        pretrain = build_iteration_trace(BERT_LARGE, training)
        finetune = build_finetuning_trace(BERT_LARGE, training)
        pre_flops = sum(k.flops for k in pretrain.select(
            component=Component.TRANSFORMER))
        fine_flops = sum(k.flops for k in finetune.select(
            component=Component.TRANSFORMER))
        assert fine_flops == pre_flops

    def test_optimizer_unchanged(self, training):
        pretrain = build_iteration_trace(BERT_LARGE, training)
        finetune = build_finetuning_trace(BERT_LARGE, training)
        assert (len(finetune.select(component=Component.OPTIMIZER))
                == len(pretrain.select(component=Component.OPTIMIZER)))

    def test_task_head_scales_with_labels(self, training):
        two = build_finetuning_trace(BERT_LARGE, training, num_labels=2)
        many = build_finetuning_trace(BERT_LARGE, training, num_labels=128)
        def head_flops(trace):
            return sum(k.flops for k in trace.select(
                component=Component.OUTPUT))
        assert head_flops(many) > head_flops(two)


class TestSec7Experiment:
    def test_mode_ordering(self):
        profiles = {p.mode: p for p in sec7_modes.run()}
        assert profiles["inference"].total_s < profiles["finetuning"].total_s
        assert profiles["inference"].optimizer == 0.0
        assert profiles["finetuning"].output < 0.01
        # Transformer-layer dominance holds in every mode (Obs. 1 / Sec. 7).
        for p in profiles.values():
            assert p.transformer > 0.75

    def test_render(self):
        out = sec7_modes.render(sec7_modes.run())
        assert "inference" in out and "finetuning" in out
