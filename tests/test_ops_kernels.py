"""Tests for elementwise/reduction kernel constructors and Kernel records."""

import pytest

from repro.ops.base import (Component, DType, Kernel, OpClass, Phase,
                            Region)
from repro.ops.elementwise import (GELU_BACKWARD_STEPS, GELU_FORWARD_STEPS,
                                   dropout_backward, dropout_forward,
                                   elementwise, gelu_kernels, residual_add)
from repro.ops.reduction import (LAYERNORM_UNFUSED_FORWARD_STEPS,
                                 global_l2_norm, layernorm_kernels,
                                 reduction, softmax_kernels)


def _make_kernel(**overrides) -> Kernel:
    defaults = dict(name="k", op_class=OpClass.ELEMENTWISE,
                    phase=Phase.FORWARD, component=Component.TRANSFORMER,
                    region=Region.DR_RC_LN, flops=10, bytes_read=100,
                    bytes_written=50)
    defaults.update(overrides)
    return Kernel(**defaults)


class TestKernelRecord:
    def test_bytes_total_and_intensity(self):
        k = _make_kernel(flops=300, bytes_read=100, bytes_written=50)
        assert k.bytes_total == 150
        assert k.arithmetic_intensity == pytest.approx(2.0)

    def test_zero_bytes_intensity_is_zero(self):
        k = _make_kernel(flops=10, bytes_read=0, bytes_written=0)
        assert k.arithmetic_intensity == 0.0

    def test_negative_costs_rejected(self):
        with pytest.raises(ValueError):
            _make_kernel(flops=-1)

    def test_with_layer_and_renamed_are_copies(self):
        k = _make_kernel()
        k2 = k.with_layer(3)
        assert k2.layer_index == 3 and k.layer_index is None
        k3 = k.renamed("other")
        assert k3.name == "other" and k.name == "k"

    def test_op_class_is_gemm(self):
        assert OpClass.GEMM.is_gemm and OpClass.BATCHED_GEMM.is_gemm
        assert not OpClass.ELEMENTWISE.is_gemm

    def test_region_category_properties(self):
        assert Region.ATTENTION_BGEMM.is_attention
        assert Region.FC_GELU.is_fc
        assert Region.OPT_STAGE1.is_optimizer
        assert not Region.DR_RC_LN.is_attention


class TestElementwise:
    def test_byte_accounting(self):
        k = elementwise("add", n_elements=1000, dtype=DType.FP32,
                        phase=Phase.FORWARD, component=Component.TRANSFORMER,
                        region=Region.DR_RC_LN, inputs=2, outputs=1)
        assert k.bytes_read == 2 * 1000 * 4
        assert k.bytes_written == 1000 * 4
        assert k.n_elements == 1000

    def test_extra_bytes(self):
        k = elementwise("masked", n_elements=10, dtype=DType.FP16,
                        phase=Phase.FORWARD, component=Component.TRANSFORMER,
                        region=Region.ATTENTION_SMDSM, extra_read_bytes=7,
                        extra_write_bytes=3)
        assert k.bytes_read == 10 * 2 + 7
        assert k.bytes_written == 10 * 2 + 3

    def test_zero_elements_rejected(self):
        with pytest.raises(ValueError):
            elementwise("bad", n_elements=0, dtype=DType.FP32,
                        phase=Phase.FORWARD,
                        component=Component.TRANSFORMER,
                        region=Region.DR_RC_LN)

    def test_dropout_saves_and_reuses_mask(self):
        fwd, = dropout_forward("dr", n_elements=100, dtype=DType.FP32,
                               component=Component.TRANSFORMER,
                               region=Region.DR_RC_LN)
        bwd, = dropout_backward("dr", n_elements=100, dtype=DType.FP32,
                                component=Component.TRANSFORMER,
                                region=Region.DR_RC_LN)
        # 1-byte mask written forward, read backward.
        assert fwd.bytes_written == 100 * 4 + 100
        assert bwd.bytes_read == 100 * 4 + 100

    def test_residual_add_reads_two_tensors(self):
        k = residual_add("rc", n_elements=10, dtype=DType.FP32,
                         phase=Phase.FORWARD,
                         component=Component.TRANSFORMER)
        assert k.bytes_read == 2 * 40
        assert k.region is Region.DR_RC_LN


class TestGelu:
    def test_unfused_step_counts(self):
        fwd = gelu_kernels(n_elements=100, dtype=DType.FP32,
                           phase=Phase.FORWARD)
        bwd = gelu_kernels(n_elements=100, dtype=DType.FP32,
                           phase=Phase.BACKWARD)
        assert len(fwd) == len(GELU_FORWARD_STEPS)
        assert len(bwd) == len(GELU_BACKWARD_STEPS)

    def test_each_step_streams_the_tensor(self):
        for k in gelu_kernels(n_elements=100, dtype=DType.FP16,
                              phase=Phase.FORWARD):
            assert k.bytes_written >= 100 * 2
            assert k.region is Region.FC_GELU
            assert k.op_class is OpClass.ELEMENTWISE

    def test_component_override_for_output_head(self):
        kernels = gelu_kernels(n_elements=10, dtype=DType.FP32,
                               phase=Phase.FORWARD,
                               component=Component.OUTPUT,
                               region=Region.OUTPUT)
        assert all(k.component is Component.OUTPUT for k in kernels)


class TestReductions:
    def test_softmax_single_kernel_per_direction(self):
        fwd = softmax_kernels(rows=64, row_len=128, dtype=DType.FP32,
                              phase=Phase.FORWARD)
        bwd = softmax_kernels(rows=64, row_len=128, dtype=DType.FP32,
                              phase=Phase.BACKWARD)
        assert len(fwd) == 1 and len(bwd) == 1
        assert fwd[0].op_class is OpClass.REDUCTION
        # Backward reads output + upstream gradient.
        assert bwd[0].bytes_read == 2 * 64 * 128 * 4

    def test_layernorm_fused_kernel_counts(self):
        fwd = layernorm_kernels(rows=8, row_len=16, dtype=DType.FP32,
                                phase=Phase.FORWARD, fused=True)
        bwd = layernorm_kernels(rows=8, row_len=16, dtype=DType.FP32,
                                phase=Phase.BACKWARD, fused=True)
        assert len(fwd) == 1 and len(bwd) == 2

    def test_layernorm_unfused_is_eager_decomposition(self):
        fwd = layernorm_kernels(rows=8, row_len=16, dtype=DType.FP32,
                                phase=Phase.FORWARD, fused=False)
        assert len(fwd) == len(LAYERNORM_UNFUSED_FORWARD_STEPS)
        bwd = layernorm_kernels(rows=8, row_len=16, dtype=DType.FP32,
                                phase=Phase.BACKWARD, fused=False)
        assert len(bwd) > len(fwd)

    def test_unfused_layernorm_moves_more_bytes(self):
        def traffic(fused):
            kernels = layernorm_kernels(rows=128, row_len=1024,
                                        dtype=DType.FP32,
                                        phase=Phase.FORWARD, fused=fused)
            return sum(k.bytes_total for k in kernels)
        assert traffic(fused=False) > 4 * traffic(fused=True)

    def test_global_l2_norm_reads_everything_once(self):
        k = global_l2_norm("norm", n_elements=1000, dtype=DType.FP32)
        assert k.bytes_read == 4000
        assert k.phase is Phase.OPTIMIZER
        assert k.region is Region.OPT_NORM

    def test_reduction_rejects_empty(self):
        with pytest.raises(ValueError):
            reduction("r", n_elements=0, dtype=DType.FP32,
                      phase=Phase.FORWARD, component=Component.TRANSFORMER,
                      region=Region.DR_RC_LN)

    def test_intensity_of_memory_bound_ops_below_one(self):
        # Sec. 3.2.3: DR/RC kernels have arithmetic intensity < 1.
        k = residual_add("rc", n_elements=10_000, dtype=DType.FP32,
                         phase=Phase.FORWARD,
                         component=Component.TRANSFORMER)
        assert k.arithmetic_intensity < 1.0
