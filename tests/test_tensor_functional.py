"""Tests for NN functional ops: values and gradients."""

import numpy as np
import pytest
from scipy.special import erf as scipy_erf

from repro.tensor import functional as F
from repro.tensor.tensor import Tensor

from tests.test_tensor_autograd import check_grad, numeric_grad


class TestSoftmax:
    def test_rows_sum_to_one(self):
        x = Tensor(np.random.default_rng(0).normal(size=(5, 7)))
        out = F.softmax(x).data
        np.testing.assert_allclose(out.sum(axis=-1), np.ones(5), rtol=1e-6)
        assert (out > 0).all()

    def test_numerically_stable_at_large_values(self):
        x = Tensor(np.array([[1e4, 1e4 + 1.0]]))
        out = F.softmax(x).data
        assert np.isfinite(out).all()
        np.testing.assert_allclose(out.sum(), 1.0, rtol=1e-6)

    def test_gradient(self):
        check_grad(lambda a: F.softmax(a, axis=-1) ** 2.0, (3, 5))

    def test_log_softmax_consistency(self):
        x = Tensor(np.random.default_rng(1).normal(size=(4, 6)))
        np.testing.assert_allclose(np.exp(F.log_softmax(x).data),
                                   F.softmax(x).data, rtol=1e-6)

    def test_log_softmax_gradient(self):
        check_grad(lambda a: F.log_softmax(a, axis=-1) * 0.5, (3, 5))


class TestGelu:
    def test_matches_paper_equation(self):
        # Eq. (1): GELU(x) = x * 0.5 * (1 + erf(x / sqrt(2))).
        x = np.linspace(-3, 3, 13)
        expected = x * 0.5 * (1.0 + scipy_erf(x / np.sqrt(2.0)))
        np.testing.assert_allclose(F.gelu(Tensor(x)).data, expected,
                                   rtol=1e-6)

    def test_known_values(self):
        out = F.gelu(Tensor(np.array([0.0, 100.0, -100.0]))).data
        np.testing.assert_allclose(out, [0.0, 100.0, 0.0], atol=1e-6)

    def test_gradient(self):
        check_grad(lambda a: F.gelu(a), (7,))


class TestLayerNorm:
    def test_output_statistics(self):
        rng = np.random.default_rng(2)
        x = Tensor(rng.normal(3.0, 5.0, size=(6, 32)))
        gain = Tensor(np.ones(32))
        bias = Tensor(np.zeros(32))
        out = F.layer_norm(x, gain, bias).data
        np.testing.assert_allclose(out.mean(axis=-1), np.zeros(6), atol=1e-6)
        np.testing.assert_allclose(out.std(axis=-1), np.ones(6), rtol=1e-3)

    def test_gain_bias_applied(self):
        x = Tensor(np.random.default_rng(3).normal(size=(4, 8)))
        out = F.layer_norm(x, Tensor(2.0 * np.ones(8)),
                           Tensor(7.0 * np.ones(8))).data
        np.testing.assert_allclose(out.mean(axis=-1), 7.0 * np.ones(4),
                                   atol=1e-5)

    def test_gradient(self):
        def op(a, g, b):
            return F.layer_norm(a, g, b) ** 2.0
        rng = np.random.default_rng(4)
        a = rng.normal(size=(3, 6))
        g = rng.normal(size=6) + 1.0
        b = rng.normal(size=6)
        ts = [Tensor(v.copy(), requires_grad=True) for v in (a, g, b)]
        op(*ts).sum().backward()
        for index, arr in enumerate((a, g, b)):
            def scalar(x, index=index):
                probe = [Tensor(v.copy()) for v in (a, g, b)]
                probe[index] = Tensor(x)
                return float(op(*probe).sum().data)
            np.testing.assert_allclose(ts[index].grad,
                                       numeric_grad(scalar, arr.copy()),
                                       rtol=1e-4, atol=1e-6)


class TestDropout:
    def test_eval_mode_is_identity(self):
        x = Tensor(np.ones((4, 4)))
        out = F.dropout(x, 0.5, np.random.default_rng(0), training=False)
        assert out is x

    def test_keeps_expectation(self):
        rng = np.random.default_rng(5)
        x = Tensor(np.ones(200_000))
        out = F.dropout(x, 0.3, rng).data
        assert out.mean() == pytest.approx(1.0, rel=0.02)

    def test_zeroed_fraction(self):
        rng = np.random.default_rng(6)
        out = F.dropout(Tensor(np.ones(100_000)), 0.25, rng).data
        assert (out == 0).mean() == pytest.approx(0.25, rel=0.05)

    def test_invalid_probability(self):
        with pytest.raises(ValueError):
            F.dropout(Tensor(np.ones(3)), 1.0, np.random.default_rng(0))

    def test_gradient_masks_match_forward(self):
        rng = np.random.default_rng(7)
        x = Tensor(np.ones(1000), requires_grad=True)
        out = F.dropout(x, 0.5, rng)
        out.sum().backward()
        # Gradient is the same scaled mask applied forward.
        np.testing.assert_allclose(x.grad, out.data)


class TestEmbeddingAndLosses:
    def test_embedding_gathers_rows(self):
        table = Tensor(np.arange(12.0).reshape(4, 3), requires_grad=True)
        out = F.embedding(table, np.array([[1, 3], [0, 1]]))
        np.testing.assert_allclose(out.data[0, 1], [9.0, 10.0, 11.0])

    def test_embedding_scatter_add_backward(self):
        table = Tensor(np.zeros((4, 2)), requires_grad=True)
        out = F.embedding(table, np.array([1, 1, 2]))
        out.sum().backward()
        np.testing.assert_allclose(table.grad,
                                   [[0, 0], [2, 2], [1, 1], [0, 0]])

    def test_cross_entropy_uniform_baseline(self):
        # Uniform logits -> loss = log(classes).
        logits = Tensor(np.zeros((8, 16)), requires_grad=True)
        loss = F.cross_entropy(logits, np.zeros(8, dtype=int))
        assert loss.item() == pytest.approx(np.log(16), rel=1e-6)

    def test_cross_entropy_ignore_index(self):
        logits = Tensor(np.zeros((4, 8)), requires_grad=True)
        targets = np.array([0, -100, 2, -100])
        loss = F.cross_entropy(logits, targets, ignore_index=-100)
        assert loss.item() == pytest.approx(np.log(8), rel=1e-6)
        loss.backward()
        # Ignored rows receive zero gradient.
        np.testing.assert_allclose(logits.grad[1], np.zeros(8))
        assert np.abs(logits.grad[0]).sum() > 0

    def test_cross_entropy_perfect_prediction(self):
        logits = np.full((2, 4), -100.0)
        logits[0, 1] = logits[1, 2] = 100.0
        loss = F.cross_entropy(Tensor(logits), np.array([1, 2]))
        assert loss.item() == pytest.approx(0.0, abs=1e-6)

    def test_cross_entropy_shape_validation(self):
        with pytest.raises(ValueError):
            F.cross_entropy(Tensor(np.zeros((2, 3, 4))), np.zeros(2, int))

    def test_cross_entropy_gradient(self):
        rng = np.random.default_rng(8)
        data = rng.normal(size=(5, 7))
        targets = rng.integers(0, 7, size=5)
        x = Tensor(data.copy(), requires_grad=True)
        F.cross_entropy(x, targets).backward()

        def scalar(v):
            return float(F.cross_entropy(Tensor(v), targets).data)
        np.testing.assert_allclose(x.grad, numeric_grad(scalar, data.copy()),
                                   rtol=1e-4, atol=1e-7)

    def test_masked_fill(self):
        x = Tensor(np.ones((2, 2)), requires_grad=True)
        mask = np.array([[True, False], [False, True]])
        out = F.masked_fill(x, mask, -9.0)
        np.testing.assert_allclose(out.data, [[-9, 1], [1, -9]])
        out.sum().backward()
        np.testing.assert_allclose(x.grad, (~mask).astype(float))

    def test_attention_mask_bias_shape_and_values(self):
        mask = np.array([[True, True, False]])
        bias = F.attention_mask_bias(mask)
        assert bias.shape == (1, 1, 1, 3)
        assert bias[0, 0, 0, 2] < -1e8 and bias[0, 0, 0, 0] == 0.0
