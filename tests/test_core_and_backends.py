"""Tests for the characterization facade, the event-driven timing backend,
pipeline parallelism, calibration tooling and the roofline plot."""

import pytest

from repro.config import (BERT_LARGE, BERT_TINY, Precision, TrainingConfig,
                          training_point)
from repro.core import Characterization, characterize
from repro.distributed import (PCIE4, XGMI, best_micro_batch_count,
                               pipeline_bubble_fraction, pipeline_timeline,
                               tensor_slicing_timeline)
from repro.hw import compare_backends, mi100, simulate_kernel
from repro.hw.calibration import (CalibrationTarget, calibrate, get_knobs,
                                  objective, paper_targets, set_knobs)
from repro.ops.base import DType
from repro.report import roofline_plot
from repro.trace import build_iteration_trace


@pytest.fixture(scope="module")
def device():
    return mi100()


class TestCharacterize:
    @pytest.fixture(scope="class")
    def result(self) -> Characterization:
        return characterize(BERT_LARGE)

    def test_defaults(self, result):
        assert result.training.label == "Ph1-B32-FP32"
        assert result.device_name == "mi100"

    def test_summary_consistent_with_profile(self, result):
        assert result.iteration_s == pytest.approx(
            result.profile.total_time)
        assert result.summary["gemm"] + result.summary["non_gemm"] == (
            pytest.approx(1.0))

    def test_gemm_heterogeneity_story(self, result):
        families = {g.family: g for g in result.gemm_classes}
        assert families["fc"].min_intensity > families[
            "attention"].max_intensity
        assert families["attention"].memory_bound_count == (
            families["attention"].count)
        assert families["fc"].memory_bound_count == 0

    def test_throughput_positive(self, result):
        assert result.tokens_per_second > 1000

    def test_report_renders(self, result):
        text = result.report()
        assert "bert-large" in text and "GEMM family" in text

    def test_custom_point(self):
        result = characterize(BERT_TINY,
                              TrainingConfig(batch_size=2, seq_len=16))
        assert result.footprint.total < 1e9


class TestMicrosimBackend:
    def test_agrees_with_analytical_on_full_trace(self, device):
        trace = build_iteration_trace(BERT_LARGE,
                                      training_point(1, 32, Precision.FP32))
        comparison = compare_backends(trace.kernels, device)
        assert 0.9 < comparison.ratio < 1.15

    def test_agrees_under_mixed_precision(self, device):
        trace = build_iteration_trace(BERT_LARGE,
                                      training_point(1, 4, Precision.MIXED))
        comparison = compare_backends(trace.kernels, device)
        assert 0.9 < comparison.ratio < 1.2

    def test_wave_accounting(self, device):
        trace = build_iteration_trace(BERT_LARGE,
                                      training_point(1, 32, Precision.FP32))
        gemm = next(k for k in trace.gemms() if k.gemm.m == 4096)
        result = simulate_kernel(gemm, device)
        assert result.waves >= 1
        assert 0.0 < result.tail_utilization <= 1.0
        assert result.time_s > device.kernel_launch_overhead_s

    def test_tail_effect_visible(self, device):
        """A kernel whose tiles slightly exceed one wave pays for two."""
        from repro.ops.gemm import GemmShape
        import dataclasses
        trace = build_iteration_trace(BERT_TINY,
                                      TrainingConfig(batch_size=2,
                                                     seq_len=16))
        base = next(k for k in trace.gemms())
        one_wave = dataclasses.replace(
            base, gemm=GemmShape(m=128, n=128, k=512, batch=120),
            flops=GemmShape(m=128, n=128, k=512, batch=120).flops)
        two_waves = dataclasses.replace(
            base, gemm=GemmShape(m=128, n=128, k=512, batch=121),
            flops=GemmShape(m=128, n=128, k=512, batch=121).flops)
        t1 = simulate_kernel(one_wave, device)
        t2 = simulate_kernel(two_waves, device)
        # One extra tile forces either an extra wave at the same tiling or
        # a smaller-tile retiling; both cost real time for ~1% more FLOPs.
        assert t2.waves > t1.waves
        assert t2.time_s > 1.4 * t1.time_s

    def test_rejects_communication(self, device):
        from repro.ops.base import (Component, Kernel, OpClass, Phase,
                                    Region)
        kernel = Kernel(name="c", op_class=OpClass.COMMUNICATION,
                        phase=Phase.COMMUNICATION,
                        component=Component.COMMUNICATION,
                        region=Region.COMM_ALLREDUCE, flops=0,
                        bytes_read=0, bytes_written=0)
        with pytest.raises(ValueError):
            simulate_kernel(kernel, device)


class TestPipeline:
    b32 = training_point(1, 32, Precision.FP32)

    def test_bubble_formula(self):
        assert pipeline_bubble_fraction(4, 12) == pytest.approx(3 / 15)
        assert pipeline_bubble_fraction(1, 8) == 0.0
        with pytest.raises(ValueError):
            pipeline_bubble_fraction(0, 4)

    def test_more_micro_batches_shrink_bubble(self, device):
        few = pipeline_timeline(BERT_LARGE, self.b32, device, PCIE4,
                                stages=4, micro_batches=4)
        many = pipeline_timeline(BERT_LARGE, self.b32, device, PCIE4,
                                 stages=4, micro_batches=16)
        assert (many.fraction("pipeline_bubble")
                < few.fraction("pipeline_bubble"))

    def test_encoder_and_optimizer_shard_by_stages(self, device):
        one = pipeline_timeline(BERT_LARGE, self.b32, device, PCIE4,
                                stages=1, micro_batches=1)
        four = pipeline_timeline(BERT_LARGE, self.b32, device, PCIE4,
                                 stages=4, micro_batches=16)
        assert four.buckets["transformer"] == pytest.approx(
            one.buckets["transformer"] / 4)
        assert four.buckets["optimizer"] == pytest.approx(
            one.buckets["optimizer"] / 4)

    def test_stage_divisibility_enforced(self, device):
        with pytest.raises(ValueError):
            pipeline_timeline(BERT_LARGE, self.b32, device, PCIE4,
                              stages=5, micro_batches=4)
        with pytest.raises(ValueError):
            pipeline_timeline(BERT_LARGE, self.b32, device, PCIE4,
                              stages=4, micro_batches=5)

    def test_best_micro_batch_is_an_interior_optimum(self, device):
        micro, timeline = best_micro_batch_count(
            BERT_LARGE, self.b32, device, PCIE4, stages=8)
        assert micro in (1, 2, 4, 8, 16, 32)
        assert timeline.total > 0

    def test_pipeline_vs_tensor_slicing_on_slow_link(self, device):
        # On PCIe, pipelining's bubble costs less than TS's serialized
        # activation AllReduces.
        ts = tensor_slicing_timeline(BERT_LARGE, self.b32, device, PCIE4, 8)
        pp = pipeline_timeline(BERT_LARGE, self.b32, device, PCIE4,
                               stages=8, micro_batches=32)
        assert pp.total < ts.total

    def test_fast_link_narrows_the_gap(self, device):
        ts_fast = tensor_slicing_timeline(BERT_LARGE, self.b32, device,
                                          XGMI, 8)
        ts_slow = tensor_slicing_timeline(BERT_LARGE, self.b32, device,
                                          PCIE4, 8)
        assert ts_fast.total < ts_slow.total


class TestCalibration:
    def test_shipped_constants_hit_target_bands(self, device):
        """The frozen preset lands within tolerance of every target."""
        from repro.profiler.breakdown import summarize
        from repro.profiler.profiler import profile_trace
        for target in paper_targets():
            trace = build_iteration_trace(BERT_LARGE, target.training)
            stats = summarize(profile_trace(trace.kernels, device))
            assert abs(stats[target.metric] - target.value) < 0.10, (
                target.name)

    def test_knob_roundtrip(self, device):
        knobs = get_knobs(device)
        rebuilt = set_knobs(device, knobs)
        assert get_knobs(rebuilt) == knobs

    def test_set_knobs_validation(self, device):
        with pytest.raises(KeyError):
            set_knobs(device, {"bogus": 0.5})
        knobs = get_knobs(device)
        knobs["streaming_bw"] = 2.0
        with pytest.raises(ValueError):
            set_knobs(device, knobs)

    def test_calibrate_improves_objective(self, device):
        targets = paper_targets()[:3]  # keep the test quick
        result = calibrate(device, BERT_LARGE, targets, max_iterations=2)
        assert result.final_error <= result.initial_error
        assert result.iterations >= 1

    def test_objective_rejects_unknown_metric(self, device):
        bad = CalibrationTarget("x", training_point(1, 4, Precision.FP32),
                                "bogus", 0.5)
        with pytest.raises(KeyError):
            objective(device, BERT_LARGE, [bad])

    def test_calibrate_requires_targets(self, device):
        with pytest.raises(ValueError):
            calibrate(device, BERT_LARGE, [])


class TestRooflinePlot:
    def test_plot_structure(self, device):
        out = roofline_plot([("fc", 340.0), ("ew", 0.2)], device)
        lines = out.splitlines()
        assert lines[0].startswith("attainable")
        assert any("ridge point" in line for line in lines)
        assert "A fc" in out and "B ew" in out
        assert "compute-bound" in out and "memory-bound" in out

    def test_markers_placed(self, device):
        out = roofline_plot([("x", 1.0)], device, width=40, height=10)
        plot_lines = [l for l in out.splitlines() if l.startswith("|")]
        assert any("A" in line for line in plot_lines)

    def test_validation(self, device):
        with pytest.raises(ValueError):
            roofline_plot([], device)
        with pytest.raises(ValueError):
            roofline_plot([("x", 1.0)], device, width=5)

    def test_fp16_roof_higher(self, device):
        out32 = roofline_plot([("x", 1.0)], device, dtype=DType.FP32)
        out16 = roofline_plot([("x", 1.0)], device, dtype=DType.FP16)
        def roof(text):
            line = next(l for l in text.splitlines() if "compute roof" in l)
            return float(line.split("compute roof:")[1].split("TFLOP")[0])
        assert roof(out16) > roof(out32)
