"""Tests for the fused-attention trace transform and the Sec. 6 capstone."""

import pytest

from repro.config import BERT_LARGE, Precision, training_point
from repro.experiments import optimized_stack
from repro.fusion import apply_fused_attention, fuse_elementwise_chains
from repro.hw import mi100
from repro.ops.base import Region
from repro.profiler import profile_trace
from repro.trace import build_iteration_trace, validate_trace


@pytest.fixture(scope="module")
def base_trace():
    return build_iteration_trace(BERT_LARGE,
                                 training_point(1, 32, Precision.FP32))


class TestAttentionFusionTransform:
    @pytest.fixture(scope="class")
    def fused(self, base_trace):
        return apply_fused_attention(base_trace)

    def test_two_fused_kernels_per_layer(self, fused):
        fused_kernels = [k for k in fused.kernels
                         if k.name.startswith("fused_attention.")]
        assert len(fused_kernels) == 2 * BERT_LARGE.num_layers
        per_layer = {(k.layer_index, k.phase) for k in fused_kernels}
        assert len(per_layer) == 2 * BERT_LARGE.num_layers

    def test_projections_untouched(self, base_trace, fused):
        def projections(trace):
            return [k for k in trace.gemms()
                    if k.region is Region.ATTENTION_LINEAR]
        assert len(projections(fused)) == len(projections(base_trace))

    def test_no_eager_attention_ops_remain(self, fused):
        leftovers = [k for k in fused.kernels
                     if k.region is Region.ATTENTION_SMDSM]
        assert not leftovers

    def test_traffic_reduced(self, base_trace, fused):
        def attention_bytes(trace):
            return sum(k.bytes_total for k in trace.kernels
                       if k.region in (Region.ATTENTION_BGEMM,
                                       Region.ATTENTION_SMDSM))
        assert attention_bytes(fused) < 0.4 * attention_bytes(base_trace)

    def test_faster(self, base_trace, fused):
        device = mi100()
        assert (profile_trace(fused.kernels, device).total_time
                < profile_trace(base_trace.kernels, device).total_time)

    def test_still_valid_trace(self, fused):
        # Phase ordering and layer attribution survive; the backward GEMM
        # FLOP ratio changes (recompute), so skip the training-ratio check.
        report = validate_trace(fused, training_iteration=False)
        assert report.ok, report.errors

    def test_composes_with_elementwise_fusion(self, base_trace):
        both = apply_fused_attention(fuse_elementwise_chains(base_trace))
        assert len(both) < len(base_trace)


class TestOptimizedStack:
    @pytest.fixture(scope="class")
    def steps(self):
        return optimized_stack.run()

    def test_four_stages(self, steps):
        assert [s.name.startswith("+") for s in steps] == [False, True,
                                                           True, True]

    def test_monotone_improvement(self, steps):
        times = [s.iteration_s for s in steps]
        assert times == sorted(times, reverse=True)
        kernels = [s.kernels for s in steps]
        assert kernels[0] > kernels[1] > kernels[2] >= kernels[3]

    def test_compound_speedup_band(self, steps):
        final = steps[-1].speedup_vs(steps[0])
        assert 1.2 < final < 1.7

    def test_each_stage_contributes(self, steps):
        for before, after in zip(steps, steps[1:]):
            assert after.iteration_s < before.iteration_s * 0.999

    def test_render(self, steps):
        out = optimized_stack.render(steps)
        assert "cumulative speedup" in out and "baseline" in out

    def test_small_batch_gains_more_from_nmc(self):
        b4 = optimized_stack.run(
            training=training_point(1, 4, Precision.FP32))
        b32 = optimized_stack.run(
            training=training_point(1, 32, Precision.FP32))

        def nmc_gain(steps):
            return steps[2].iteration_s / steps[3].iteration_s
        assert nmc_gain(b4) > nmc_gain(b32)
