"""Tests for the Module/Parameter layer system."""

import numpy as np
import pytest

from repro.tensor.module import (Dropout, Embedding, LayerNorm, Linear,
                                 Module, Parameter)
from repro.tensor.tensor import Tensor


class TwoLayer(Module):
    def __init__(self):
        super().__init__()
        rng = np.random.default_rng(0)
        self.first = Linear(4, 8, rng=rng)
        self.second = Linear(8, 2, rng=rng)
        self.scale = Parameter(np.ones(1), name="scale")

    def forward(self, x):
        return self.second(self.first(x)) * self.scale


class TestModuleSystem:
    def test_named_parameters_qualified(self):
        names = dict(TwoLayer().named_parameters())
        assert "first.weight" in names and "second.bias" in names
        assert "scale" in names

    def test_num_parameters(self):
        model = TwoLayer()
        assert model.num_parameters() == (8 * 4 + 8) + (2 * 8 + 2) + 1

    def test_zero_grad_clears(self):
        model = TwoLayer()
        out = model(Tensor(np.ones((3, 4))))
        out.sum().backward()
        assert any(p.grad is not None for p in model.parameters())
        model.zero_grad()
        assert all(p.grad is None for p in model.parameters())

    def test_train_eval_propagates(self):
        model = TwoLayer()
        model.eval()
        assert not model.first.training
        model.train()
        assert model.second.training

    def test_state_dict_roundtrip(self):
        source, target = TwoLayer(), TwoLayer()
        source.first.weight.data[:] = 7.0
        target.load_state_dict(source.state_dict())
        np.testing.assert_allclose(target.first.weight.data, 7.0)

    def test_state_dict_is_a_copy(self):
        model = TwoLayer()
        state = model.state_dict()
        state["first.weight"][:] = -1.0
        assert not (model.first.weight.data == -1.0).any()

    def test_load_state_dict_strict(self):
        model = TwoLayer()
        state = model.state_dict()
        state.pop("scale")
        with pytest.raises(KeyError):
            model.load_state_dict(state)
        bad = model.state_dict()
        bad["first.weight"] = np.zeros((1, 1))
        with pytest.raises(ValueError):
            model.load_state_dict(bad)


class TestLayers:
    def test_linear_shapes_and_bias(self):
        layer = Linear(4, 6, rng=np.random.default_rng(1))
        layer.bias.data[:] = 5.0
        out = layer(Tensor(np.zeros((3, 4))))
        assert out.shape == (3, 6)
        np.testing.assert_allclose(out.data, 5.0)

    def test_linear_init_is_truncated(self):
        layer = Linear(256, 256, rng=np.random.default_rng(2), init_std=0.02)
        assert np.abs(layer.weight.data).max() <= 0.04 + 1e-9
        # Truncation at 2 sigma shrinks the std to ~0.88 sigma.
        assert layer.weight.data.std() == pytest.approx(0.0176, rel=0.1)

    def test_layernorm_normalizes(self):
        layer = LayerNorm(16)
        x = Tensor(np.random.default_rng(3).normal(2.0, 3.0, size=(5, 16)))
        out = layer(x).data
        np.testing.assert_allclose(out.mean(axis=-1), np.zeros(5), atol=1e-5)

    def test_dropout_respects_training_mode(self):
        layer = Dropout(0.9, np.random.default_rng(4))
        layer.eval()
        x = Tensor(np.ones((2, 2)))
        assert layer(x) is x

    def test_dropout_validates_probability(self):
        with pytest.raises(ValueError):
            Dropout(1.5, np.random.default_rng(0))

    def test_embedding_lookup(self):
        layer = Embedding(10, 4, rng=np.random.default_rng(5))
        out = layer(np.array([[0, 9]]))
        assert out.shape == (1, 2, 4)
        np.testing.assert_allclose(out.data[0, 1], layer.weight.data[9])
