"""Tests for trace validation, profile export, energy model, and the
windowed-attention extension."""

import csv
import io
import json

import pytest

from repro.config import BERT_LARGE, BERT_TINY, Precision, TrainingConfig, training_point
from repro.experiments import energy_study, windowed_study
from repro.hw import (default_energy_spec, iteration_energy, kernel_energy,
                      mi100, trace_energy)
from repro.ops.base import Component, DType, Phase
from repro.ops.windowed_attention import (WindowConfig,
                                          windowed_attention_op_kernels,
                                          windowed_score_gemm)
from repro.profiler import profile_trace, to_csv, to_json, write_csv
from repro.trace import build_iteration_trace, validate_trace


@pytest.fixture(scope="module")
def tiny_trace():
    return build_iteration_trace(BERT_TINY,
                                 TrainingConfig(batch_size=2, seq_len=16))


class TestTraceValidation:
    def test_generated_traces_are_valid(self, tiny_trace):
        report = validate_trace(tiny_trace)
        assert report.ok, report.errors
        report.raise_if_invalid()  # no-op when valid

    def test_large_trace_valid(self):
        trace = build_iteration_trace(BERT_LARGE,
                                      training_point(1, 32, Precision.MIXED))
        assert validate_trace(trace).ok

    def test_checkpointed_trace_valid(self):
        import dataclasses
        training = dataclasses.replace(
            training_point(1, 4, Precision.FP32),
            activation_checkpointing=True)
        trace = build_iteration_trace(BERT_LARGE, training)
        assert validate_trace(trace).ok

    def test_detects_phase_disorder(self, tiny_trace):
        shuffled = tiny_trace.replaced(list(reversed(tiny_trace.kernels)))
        report = validate_trace(shuffled)
        assert not report.ok

    def test_detects_undercounted_gemm_flops(self, tiny_trace):
        import dataclasses
        kernels = list(tiny_trace.kernels)
        index = next(i for i, k in enumerate(kernels) if k.op_class.is_gemm)
        kernels[index] = dataclasses.replace(kernels[index],
                                             flops=kernels[index].flops - 1)
        report = validate_trace(tiny_trace.replaced(kernels))
        assert any("flops" in e for e in report.errors)
        with pytest.raises(ValueError):
            report.raise_if_invalid()

    def test_fused_gemm_flops_only_warn(self, tiny_trace):
        import dataclasses
        kernels = list(tiny_trace.kernels)
        index = next(i for i, k in enumerate(kernels) if k.op_class.is_gemm)
        kernels[index] = dataclasses.replace(kernels[index],
                                             flops=kernels[index].flops * 2)
        report = validate_trace(tiny_trace.replaced(kernels))
        assert report.ok
        assert any("fused GEMM" in w for w in report.warnings)

    def test_detects_missing_layer_attribution(self, tiny_trace):
        import dataclasses
        kernels = list(tiny_trace.kernels)
        index = next(i for i, k in enumerate(kernels)
                     if k.component is Component.TRANSFORMER)
        kernels[index] = dataclasses.replace(kernels[index],
                                             layer_index=None)
        assert not validate_trace(tiny_trace.replaced(kernels)).ok

    def test_inference_trace_valid_as_non_training(self):
        from repro.trace import build_inference_trace
        trace = build_inference_trace(
            BERT_TINY, TrainingConfig(batch_size=2, seq_len=16))
        assert validate_trace(trace, training_iteration=False).ok


class TestProfileExport:
    @pytest.fixture(scope="class")
    def profile(self):
        trace = build_iteration_trace(BERT_TINY,
                                      TrainingConfig(batch_size=2,
                                                     seq_len=16))
        return profile_trace(trace.kernels, mi100())

    def test_csv_structure(self, profile):
        rows = list(csv.DictReader(io.StringIO(to_csv(profile))))
        assert len(rows) == len(profile.records)
        first = rows[0]
        assert first["kernel_name"]
        assert float(first["duration_us"]) > 0

    def test_csv_durations_sum_to_total(self, profile):
        rows = list(csv.DictReader(io.StringIO(to_csv(profile))))
        total_us = sum(float(r["duration_us"]) for r in rows)
        assert total_us == pytest.approx(profile.total_time * 1e6, rel=1e-3)

    def test_csv_gemm_rows_have_shapes(self, profile):
        rows = list(csv.DictReader(io.StringIO(to_csv(profile))))
        gemm_rows = [r for r in rows if r["op_class"] in ("gemm",
                                                          "batched_gemm")]
        assert gemm_rows and all(r["gemm_shape"] for r in gemm_rows)

    def test_json_roundtrip(self, profile):
        payload = json.loads(to_json(profile))
        assert payload["device"]["name"] == "mi100"
        assert len(payload["kernels"]) == len(profile.records)
        assert payload["total_time_s"] == pytest.approx(profile.total_time)

    def test_json_carries_schema_version(self, profile):
        from repro.profiler.export import EXPORT_SCHEMA_VERSION
        payload = json.loads(to_json(profile))
        assert payload["schema"] == EXPORT_SCHEMA_VERSION

    def test_csv_layer_is_always_an_int(self, profile):
        # Un-attributed kernels used to export as layer="" — now they use
        # the columnar engine's absent code, -1.
        rows = list(csv.DictReader(io.StringIO(to_csv(profile))))
        layers = [int(r["layer"]) for r in rows]  # never raises
        assert -1 in layers  # embedding/optimizer kernels
        assert {0, 1} <= set(layers)  # both BERT_TINY encoder layers

    def test_write_csv(self, profile, tmp_path):
        path = tmp_path / "profile.csv"
        write_csv(profile, str(path))
        assert path.read_text().startswith("index,kernel_name")


class TestEnergyModel:
    def test_kernel_energy_components(self):
        from repro.ops.elementwise import elementwise
        from repro.ops.base import Region
        spec = default_energy_spec()
        kernel = elementwise("e", n_elements=1000, dtype=DType.FP32,
                             phase=Phase.FORWARD,
                             component=Component.TRANSFORMER,
                             region=Region.DR_RC_LN, inputs=1, outputs=1,
                             flops_per_element=2.0)
        expected = (2000 * spec.flop_energy(DType.FP32)
                    + 8000 * spec.dram_pj_per_byte) * 1e-12
        assert kernel_energy(kernel, spec) == pytest.approx(expected)

    def test_nmc_pricing_cheaper(self):
        from repro.ops.elementwise import elementwise
        from repro.ops.base import Region
        kernel = elementwise("e", n_elements=10**6, dtype=DType.FP32,
                             phase=Phase.OPTIMIZER,
                             component=Component.OPTIMIZER,
                             region=Region.OPT_STAGE1)
        spec = default_energy_spec()
        assert (kernel_energy(kernel, spec, nmc=True)
                < 0.5 * kernel_energy(kernel, spec))

    def test_mixed_precision_halves_energy_roughly(self):
        fp32 = build_iteration_trace(BERT_LARGE,
                                     training_point(1, 32, Precision.FP32))
        mp = build_iteration_trace(BERT_LARGE,
                                   training_point(1, 32, Precision.MIXED))
        ratio = trace_energy(mp.kernels) / trace_energy(fp32.kernels)
        assert 0.4 < ratio < 0.7

    def test_iteration_energy_report(self):
        trace = build_iteration_trace(BERT_TINY,
                                      TrainingConfig(batch_size=2,
                                                     seq_len=16))
        profile = profile_trace(trace.kernels, mi100())
        report = iteration_energy(profile)
        assert report.total_j == report.dynamic_j + report.static_j
        assert 0.0 < report.movement_fraction < 1.0

    def test_energy_experiment_bands(self):
        results = energy_study.run()
        fp32, mp = results
        assert mp.dynamic_j < fp32.dynamic_j
        for r in results:
            assert r.fusion_savings > 0.02      # fusion removes real traffic
            assert r.nmc_lamb_savings > 0.5     # bank-local access is cheap
            assert 0.1 < r.movement_fraction < 0.5


class TestWindowedAttention:
    def test_linear_scaling_in_sequence_length(self):
        window = WindowConfig(block=64, window_blocks=3)
        short = windowed_score_gemm(512, 64, 512, window)
        long = windowed_score_gemm(1024, 64, 512, window)
        assert long.flops == 2 * short.flops

    def test_window_clamps_to_sequence(self):
        window = WindowConfig(block=64, window_blocks=8)  # 512-key window
        clamped = windowed_score_gemm(128, 64, 512, window)
        dense_equivalent = 2 * 512 * 128 * 128 * 64
        assert clamped.flops == dense_equivalent

    def test_kernels_balanced_fwd_bwd(self):
        kernels = windowed_attention_op_kernels(
            seq_len=512, d_head=64, batch_heads=128,
            window=WindowConfig(), dtype=DType.FP32)
        fwd = sum(k.flops for k in kernels if k.phase is Phase.FORWARD
                  and k.op_class.is_gemm)
        bwd = sum(k.flops for k in kernels if k.phase is Phase.BACKWARD
                  and k.op_class.is_gemm)
        assert bwd == 2 * fwd

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            WindowConfig(block=0)

    def test_study_shapes(self):
        rows = windowed_study.run(seq_lens=(128, 512))
        short, long = rows
        # Dense attention share grows with n; windowed stays ~flat.
        assert long.dense_share > 2 * short.dense_share
        assert abs(long.windowed_share - short.windowed_share) < 0.06
        # Windowing pays off at long sequences.
        assert long.iteration_speedup > 1.05
        assert short.iteration_speedup < 1.05
