"""The headline invariant: chaos perturbs time, never bytes.

Under any seeded :class:`~repro.faults.plan.FaultPlan` — worker kills,
cache corruption, slow compute — every experiment that *completes*
produces output byte-identical to the fault-free run.  Faults cost
retries, recomputes and sleeps; they are never allowed to change what
gets computed.  The resume path rides along: ``repro run all --resume``
re-executes exactly the experiments the previous manifest recorded as
failed or missing.
"""

import json
import os

import pytest

from repro import cli
from repro.experiments import common
from repro.faults import sites
from repro.faults.plan import FaultPlan
from repro.runner import cache as cache_module
from repro.runner import manifest as manifest_module
from repro.runner.executor import run_experiments

#: Small, fast experiments — the invariant is about bytes, not scale.
IDS = ["fig4", "sec4", "fig6"]

#: ≥50% worker kills, ≥30% cache corruption, every compute slowed.
CHAOS = "worker.kill:0.5,cache.corrupt:0.3,compute.slow:1ms"
SEED = 11


def _clear_memo():
    getattr(common, "clear_memo", lambda: None)()


@pytest.fixture(autouse=True)
def isolated(tmp_path, monkeypatch):
    """Fresh cache + runs dirs, no leftover plan, empty memo."""
    monkeypatch.setenv(cache_module.CACHE_DIR_ENV, str(tmp_path / "cache"))
    monkeypatch.setenv("REPRO_RUNS_DIR", str(tmp_path / "runs"))
    monkeypatch.delenv(sites.FAULTS_ENV, raising=False)
    monkeypatch.delenv(sites.FAULTS_SEED_ENV, raising=False)
    cache_module.reset_cache()
    sites.deactivate()
    _clear_memo()
    yield tmp_path
    os.environ.pop(sites.FAULTS_ENV, None)
    os.environ.pop(sites.FAULTS_SEED_ENV, None)
    cache_module.reset_cache()
    sites.deactivate()
    _clear_memo()


def _outputs(results):
    return {r.experiment_id: r.output for r in results}


class TestChaosDeterminism:
    def test_faulted_run_is_byte_identical(self, isolated):
        baseline = run_experiments(IDS)
        assert all(r.ok for r in baseline)

        # New cache, chaos on: kills and corruption force retries and
        # recomputes, but completed outputs must not move by one byte.
        cache_module.configure_cache(isolated / "chaos-cache")
        _clear_memo()
        plan = FaultPlan.parse(CHAOS, seed=SEED)
        sites.activate(plan)
        faulted = run_experiments(IDS)
        assert all(r.ok for r in faulted), \
            [r.error for r in faulted if not r.ok]
        assert _outputs(faulted) == _outputs(baseline)

        # The chaos actually happened: the plan consumed occurrences and
        # at least one worker kill was absorbed by a retry.
        assert plan.occurrences().get("worker.kill", 0) >= len(IDS)
        assert sum(r.counters.get("retries", 0) for r in faulted) >= 1

    def test_warm_cache_replay_under_corruption(self, isolated):
        baseline = run_experiments(IDS)

        # Same cache, corruption on every read: each cached entry is
        # quarantined, recomputed, and still byte-identical.
        sites.activate(FaultPlan.parse("cache.corrupt:1", seed=SEED))
        replay = run_experiments(IDS)
        assert all(r.ok for r in replay)
        assert _outputs(replay) == _outputs(baseline)
        assert cache_module.get_cache().stats.corrupt >= 1

    def test_different_seeds_same_bytes(self, isolated):
        baseline = run_experiments(IDS)
        outputs = set()
        for seed in (1, 2, 3):
            cache_module.configure_cache(isolated / f"seed-{seed}")
            _clear_memo()
            sites.activate(FaultPlan.parse(CHAOS, seed=seed))
            results = run_experiments(IDS)
            assert all(r.ok for r in results)
            outputs.add(json.dumps(_outputs(results), sort_keys=True))
        outputs.add(json.dumps(_outputs(baseline), sort_keys=True))
        assert len(outputs) == 1


class TestResume:
    def test_resume_ids_returns_failed_and_missing(self):
        manifest = {"experiments": [
            {"experiment_id": "fig4", "ok": True},
            {"experiment_id": "sec4", "ok": False},
        ]}
        assert manifest_module.resume_ids(
            manifest, ["fig4", "sec4", "fig6"]) == ["sec4", "fig6"]

    def test_cli_resume_skips_completed(self, isolated, capsys):
        assert cli.main(["run", "fig4"]) == 0
        assert cli.main(["run", "fig4", "--resume"]) == 0
        captured = capsys.readouterr()
        assert "nothing to resume" in captured.out
        assert "1 already complete, 0 to run" in captured.err

    def test_cli_resume_reruns_failures(self, isolated, capsys):
        assert cli.main(["run", "fig4"]) == 0
        # Forge the latest manifest into a partial run: fig4 failed.
        path = manifest_module.latest_manifest_path()
        manifest = manifest_module.load_manifest(path)
        manifest["experiments"][0]["ok"] = False
        path.write_text(json.dumps(manifest))

        assert cli.main(["run", "fig4", "--resume"]) == 0
        captured = capsys.readouterr()
        assert "0 already complete, 1 to run" in captured.err
        assert "fig4" in captured.out

    def test_resume_after_a_chaos_run_completes_the_batch(self, isolated,
                                                          capsys):
        # A chaos run whose kills exhaust the retry budget leaves failed
        # rows in the manifest; a fault-free --resume finishes the job
        # and the completed outputs match a clean run.
        assert cli.main(["run", "fig4"]) == 0
        clean = capsys.readouterr().out

        cache_module.configure_cache(isolated / "retry-cache")
        _clear_memo()
        assert cli.main(["run", "fig4", "--fresh",
                         "--faults", "worker.kill:1",
                         "--fault-seed", "3"]) == 1
        capsys.readouterr()

        # The chaos CLI exported the plan to the environment (that is
        # how --jobs workers inherit it); a clean resume clears both.
        # Popped directly, NOT via monkeypatch — monkeypatch would record
        # the exported spec as the old value and restore it at teardown.
        os.environ.pop(sites.FAULTS_ENV, None)
        os.environ.pop(sites.FAULTS_SEED_ENV, None)
        sites.deactivate()
        assert cli.main(["run", "fig4", "--resume"]) == 0
        resumed = capsys.readouterr().out
        assert "fig4" in resumed
        # Identical deterministic stdout (reports) for the resumed run.
        assert resumed.split("--resume")[-1].strip() != ""
        assert resumed.strip().splitlines()[-1] == \
            clean.strip().splitlines()[-1]
