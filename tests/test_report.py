"""Tests for the text rendering helpers."""

import pytest

from repro.report import (bar_chart, format_percent, format_table,
                          horizontal_bar, stacked_bar)


class TestTables:
    def test_alignment(self):
        out = format_table(("a", "long_header"), [("xx", 1.0), ("y", 22.5)])
        lines = out.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a")
        # All data lines padded to the same visual width structure.
        assert "long_header" in lines[0]

    def test_float_formatting(self):
        out = format_table(("v",), [(0.123456,)], float_format="{:.2f}")
        assert "0.12" in out

    def test_row_width_mismatch(self):
        with pytest.raises(ValueError):
            format_table(("a", "b"), [("only-one",)])

    def test_format_percent(self):
        assert format_percent(0.1234) == "12.3%"
        assert format_percent(1.0, digits=0) == "100%"


class TestBars:
    def test_stacked_bar_width(self):
        out = stacked_bar([("x", 0.5), ("y", 0.25)], width=40)
        bar_line = out.splitlines()[0]
        assert bar_line.startswith("|") and bar_line.endswith("|")
        assert len(bar_line) == 42

    def test_stacked_bar_legend(self):
        out = stacked_bar([("alpha", 0.6)], width=20)
        assert "alpha 60.0%" in out

    def test_stacked_bar_rejects_over_one(self):
        with pytest.raises(ValueError):
            stacked_bar([("x", 0.7), ("y", 0.5)])

    def test_stacked_bar_rejects_tiny_width(self):
        with pytest.raises(ValueError):
            stacked_bar([("x", 0.5)], width=3)

    def test_bar_chart_multiple_rows(self):
        out = bar_chart([("row1", [("x", 1.0)]), ("r2", [("y", 0.5)])])
        assert out.count("|") == 4

    def test_horizontal_bar_scaling(self):
        out = horizontal_bar([("a", 10.0), ("b", 5.0)], width=10)
        lines = out.splitlines()
        assert lines[0].count("#") == 10
        assert lines[1].count("#") == 5

    def test_horizontal_bar_validation(self):
        with pytest.raises(ValueError):
            horizontal_bar([])
        with pytest.raises(ValueError):
            horizontal_bar([("a", 0.0)])


class TestExperimentRegistry:
    def test_all_experiments_render(self):
        from repro.experiments import REGISTRY, run_experiment
        # Smoke-render the cheap experiments end to end.
        for eid in ("fig6", "fig12"):
            out = run_experiment(eid)
            assert isinstance(out, str) and out
        # Every paper figure/table plus the extension studies.
        paper_ids = {"fig3", "fig4", "fig6", "fig7", "fig8", "fig9",
                     "sec4", "fig11", "fig12", "nmc", "table1"}
        assert paper_ids <= set(REGISTRY)
        assert len(REGISTRY) >= len(paper_ids) + 4

    def test_unknown_experiment_rejected(self):
        from repro.experiments import run_experiment
        with pytest.raises(KeyError):
            run_experiment("fig99")
