"""Tests for the columnar pass pipeline (trace/passes.py and the ports).

Every transform family is pinned bit-exactly against its legacy list-scan
oracle in :mod:`repro.trace.reference`, composition order is exercised both
ways, and the PassManager's signature / debug-validation / provenance
contracts are covered alongside the satellite regressions (FusionImpact
zero guards, the builder stale-table hazard, pipeline-aware caching).
"""

import dataclasses

import numpy as np
import pytest

from repro.config import (BERT_LARGE, BERT_TINY, Precision, training_point)
from repro.distributed import OptimizerShardPass, build_sliced_iteration_trace
from repro.fusion import (ElementwiseChainFusionPass, FusedAttentionPass,
                          WindowedAttentionPass)
from repro.fusion.passes import FusionImpact
from repro.memoryplan import CheckpointingPass
from repro.nmc import OptimizerOffloadPass, optimizer_workload
from repro.ops.base import Component
from repro.ops.windowed_attention import WindowConfig
from repro.trace import (PassManager, TracePass, available_passes,
                         build_iteration_trace, build_pipeline)
from repro.trace.reference import (reference_apply_checkpointing,
                                   reference_apply_fused_attention,
                                   reference_apply_windowed_attention,
                                   reference_fuse_elementwise_chains,
                                   reference_sliced_iteration_trace)

TINY = training_point(1, 2, Precision.FP32)
LARGE = training_point(2, 4, Precision.MIXED)


@pytest.fixture(scope="module")
def tiny_trace():
    return build_iteration_trace(BERT_TINY, TINY)


@pytest.fixture(scope="module")
def large_trace():
    return build_iteration_trace(BERT_LARGE, LARGE)


class TestGoldenEquivalence:
    """Each columnar pass reproduces its list-scan oracle bit-exactly."""

    def test_fuse_elementwise(self, tiny_trace, large_trace):
        for trace in (tiny_trace, large_trace):
            got = PassManager((ElementwiseChainFusionPass(),)).run(trace)
            want = reference_fuse_elementwise_chains(trace)
            assert got.kernels == want.kernels

    def test_checkpointing(self, tiny_trace, large_trace):
        for trace in (tiny_trace, large_trace):
            got = PassManager((CheckpointingPass(),)).run(trace)
            assert got.kernels == reference_apply_checkpointing(trace).kernels
        explicit = PassManager((CheckpointingPass(4),)).run(large_trace)
        want = reference_apply_checkpointing(large_trace, 4)
        assert explicit.kernels == want.kernels

    def test_fused_attention(self, tiny_trace, large_trace):
        for trace in (tiny_trace, large_trace):
            got = PassManager((FusedAttentionPass(),)).run(trace)
            want = reference_apply_fused_attention(trace)
            assert got.kernels == want.kernels

    def test_windowed_attention(self, tiny_trace, large_trace):
        for trace in (tiny_trace, large_trace):
            got = PassManager((WindowedAttentionPass(),)).run(trace)
            want = reference_apply_windowed_attention(trace)
            assert got.kernels == want.kernels
        window = WindowConfig(block=32, window_blocks=5)
        got = PassManager((WindowedAttentionPass(window),)).run(large_trace)
        want = reference_apply_windowed_attention(large_trace, window)
        assert got.kernels == want.kernels

    def test_sliced_build(self):
        for ways in (1, 4):
            got = build_sliced_iteration_trace(BERT_TINY, TINY, ways)
            want = reference_sliced_iteration_trace(BERT_TINY, TINY, ways)
            assert got.kernels == want.kernels


class TestComposition:
    def test_composed_pipeline_matches_composed_oracle(self, tiny_trace):
        pipeline = PassManager(
            (ElementwiseChainFusionPass(), CheckpointingPass()))
        got = pipeline.run(tiny_trace)
        want = reference_apply_checkpointing(
            reference_fuse_elementwise_chains(tiny_trace))
        assert got.kernels == want.kernels

    def test_order_matters_for_kernel_counts(self, tiny_trace):
        fuse, ckpt = ElementwiseChainFusionPass(), CheckpointingPass()
        fuse_then_ckpt = PassManager((fuse, ckpt)).run(tiny_trace)
        ckpt_then_fuse = PassManager((ckpt, fuse)).run(tiny_trace)
        # Fusing first shrinks the forward kernels that checkpointing
        # replays; fusing after also fuses inside the replays, but the
        # replay rows break chain adjacency differently — the two orders
        # must not be conflated by callers (or by the cache).
        assert len(fuse_then_ckpt) < len(tiny_trace) * 2
        assert len(fuse_then_ckpt) != len(ckpt_then_fuse) or (
            fuse_then_ckpt.kernels != ckpt_then_fuse.kernels)
        signatures = {PassManager((fuse, ckpt)).signature,
                      PassManager((ckpt, fuse)).signature}
        assert len(signatures) == 2

    def test_empty_manager_is_identity(self, tiny_trace):
        out = PassManager(()).run(tiny_trace)
        assert out.kernels == tiny_trace.kernels
        assert PassManager(()).signature == ""


class TestProvenance:
    def test_rewritten_rows_are_stamped(self, tiny_trace):
        fused = PassManager((ElementwiseChainFusionPass(),)).run(tiny_trace)
        table = fused.table
        stamped = table.provenance >= 0
        assert stamped.any() and not stamped.all()
        names = {table.provenance_names[c]
                 for c in np.unique(table.provenance[stamped])}
        assert names == {"fuse_elementwise"}

    def test_generator_rows_are_unstamped(self, tiny_trace):
        assert (tiny_trace.table.provenance == -1).all()

    def test_provenance_survives_composition(self, tiny_trace):
        out = PassManager((ElementwiseChainFusionPass(),
                           CheckpointingPass())).run(tiny_trace)
        table = out.table
        names = {table.provenance_names[c]
                 for c in np.unique(table.provenance) if c >= 0}
        assert names == {"fuse_elementwise", "checkpointing"}


class TestSignatureAndRegistry:
    def test_signature_is_stable_and_parameterized(self):
        manager = build_pipeline("fuse_elementwise,checkpointing:4")
        assert manager.signature == ("fuse_elementwise"
                                     "|checkpointing(num_checkpoints=4)")
        assert build_pipeline("windowed_attention:32").signature == (
            "windowed_attention(block=32,window_blocks=3)")

    def test_unknown_pass_lists_valid_names(self):
        with pytest.raises(KeyError, match="fuse_elementwise"):
            build_pipeline("nonsense")

    def test_registry_factories_build_their_pass(self):
        for name, (description, factory) in available_passes().items():
            instance = factory(None)
            assert isinstance(instance, TracePass)
            assert instance.name == name
            assert description

    def test_distinct_cache_keys_per_pipeline(self):
        from repro.hw.device import mi100
        from repro.runner.cache import ResultCache

        cache = ResultCache()
        raw = cache.key(BERT_TINY, TINY, mi100())
        fused = cache.key(BERT_TINY, TINY, mi100(),
                          pipeline="fuse_elementwise")
        composed = cache.key(
            BERT_TINY, TINY, mi100(),
            pipeline="fuse_elementwise|checkpointing(num_checkpoints=4)")
        assert len({raw, fused, composed}) == 3
        assert cache.key(BERT_TINY, TINY, mi100(), pipeline="") == raw


class _BrokenPass(TracePass):
    name = "broken"

    def apply(self, table, ctx):
        # Drop every layer-0 row: the surviving layer indices no longer
        # start at zero, a structural invariant validate_trace enforces.
        return table.select(table.layer != 0)


class TestDebugValidation:
    def test_debug_mode_validates_after_each_pass(self, tiny_trace):
        manager = PassManager((_BrokenPass(),), debug=True)
        with pytest.raises(ValueError, match="broken"):
            manager.run(tiny_trace)

    def test_real_passes_survive_debug_mode(self, tiny_trace):
        manager = PassManager(
            (ElementwiseChainFusionPass(), FusedAttentionPass(),
             CheckpointingPass(), OptimizerShardPass(4)), debug=True)
        out = manager.run(tiny_trace)
        assert len(out) > 0

    def test_debug_defaults_from_environment(self, monkeypatch):
        monkeypatch.setenv("REPRO_PASS_DEBUG", "1")
        assert PassManager(()).debug
        monkeypatch.setenv("REPRO_PASS_DEBUG", "0")
        assert not PassManager(()).debug


class TestDistributedAndNmcPasses:
    def test_shard_divides_all_but_grad_norm(self, tiny_trace):
        sharded = PassManager((OptimizerShardPass(8),)).run(tiny_trace)
        assert len(sharded) == len(tiny_trace)
        before = {k.name: k for k in tiny_trace.kernels
                  if k.component is Component.OPTIMIZER}
        after = {k.name: k for k in sharded.kernels
                 if k.component is Component.OPTIMIZER}
        assert before, "trace has no optimizer kernels"
        for name, kernel in before.items():
            if "grad_norm" in name:
                assert after[name] == kernel
            else:
                assert after[name].flops == -(-kernel.flops // 8)
                assert after[name].bytes_read == -(-kernel.bytes_read // 8)

    def test_shard_one_device_is_identity(self, tiny_trace):
        out = PassManager((OptimizerShardPass(1),)).run(tiny_trace)
        assert out.kernels == tiny_trace.kernels

    def test_shard_rejects_zero_devices(self):
        with pytest.raises(ValueError):
            OptimizerShardPass(0)

    def test_offload_drops_exactly_the_optimizer(self, tiny_trace):
        flops, moved, groups = optimizer_workload(tiny_trace)
        legacy = [k for k in tiny_trace.kernels
                  if k.component is Component.OPTIMIZER]
        assert (flops, moved, groups) == (
            sum(k.flops for k in legacy),
            sum(k.bytes_total for k in legacy), len(legacy))
        offloaded = PassManager((OptimizerOffloadPass(),)).run(tiny_trace)
        assert len(offloaded) == len(tiny_trace) - groups
        assert not any(k.component is Component.OPTIMIZER
                       for k in offloaded.kernels)


class TestFusionImpactGuards:
    def test_both_sides_zero_is_identity_ratio(self):
        impact = FusionImpact(kernels_before=0, kernels_after=0,
                              bytes_before=0, bytes_after=0,
                              time_before=0.0, time_after=0.0)
        assert impact.kernel_ratio == 1.0
        assert impact.bytes_ratio == 1.0
        assert impact.time_ratio == 1.0

    def test_empty_fused_side_raises_not_zero_division(self):
        impact = FusionImpact(kernels_before=5, kernels_after=0,
                              bytes_before=10, bytes_after=0,
                              time_before=1.0, time_after=0.0)
        for ratio in ("kernel_ratio", "bytes_ratio", "time_ratio"):
            with pytest.raises(ValueError, match="empty fused side"):
                getattr(impact, ratio)


class TestBuilderStaleTable:
    def test_inplace_same_length_mutation_rebuilds_table(self):
        trace = build_iteration_trace(BERT_TINY, TINY)
        table_before = trace.table
        flops_before = trace.total_flops
        kernels = trace.kernels
        original = kernels[0]
        kernels[0] = dataclasses.replace(original,
                                         flops=original.flops + 1000)
        assert trace.table is not table_before
        assert int(trace.table.flops[0]) == original.flops + 1000
        assert trace.total_flops == flops_before + 1000

    def test_materialization_alone_keeps_the_table(self):
        trace = build_iteration_trace(BERT_TINY, TINY)
        table = trace.table
        _ = trace.kernels
        assert trace.table is table


class TestRunPointPipelines:
    def test_passes_kwarg_changes_the_result(self):
        from repro.experiments.common import run_point

        raw_trace, raw_profile = run_point(BERT_TINY, TINY)
        fused_trace, fused_profile = run_point(
            BERT_TINY, TINY,
            passes=PassManager((ElementwiseChainFusionPass(),)))
        assert len(fused_trace) < len(raw_trace)
        assert fused_profile.total_time < raw_profile.total_time
        # Serving the raw point again must not return the fused variant.
        again, _ = run_point(BERT_TINY, TINY)
        assert len(again) == len(raw_trace)
