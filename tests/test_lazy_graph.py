"""Golden tests for the lazy tensor graph and its trace lowering.

Three contracts pin the lazy refactor:

* **Tracing.** The analytic iteration graph, lowered through the
  scheduler, is *bit-identical* (list-equality of frozen kernel records)
  to the layer-templated builder — on BERT Large and the tiny variants,
  at FP32 and mixed precision, with and without activation
  checkpointing, and for the schedule rewrites vs their columnar-pass
  twins.
* **Execution.** Eager mode is the golden oracle: losses and gradients
  realized through the lazy scheduler match it bit for bit, and both
  modes report the same op stream to the recorder.
* **Scheduling.** Schedules are deterministic, acyclic, and never
  double-realize; validation rejects the broken shapes.
"""

import numpy as np
import pytest

from repro.config import BERT_LARGE, BERT_TINY, Precision, TrainingConfig, \
    training_point
from repro.model import BertForPreTraining
from repro.tensor import lazy_mode, recording, tensor
from repro.tensor.schedule import (ScheduleError, execute, linearize,
                                   realize, validate_schedule)
from repro.trace.bert_trace import build_iteration_trace
from repro.trace.builder import Trace
from repro.trace.lowerer import (bert_iteration_graph, checkpointing_rewrite,
                                 fusion_rewrite, lower_schedule)


def _builder_kernels(model, training):
    return build_iteration_trace(model, training).table.to_kernels()


def _graph_kernels(model, training, rewrites=()):
    graph = bert_iteration_graph(model, training, rewrites=rewrites)
    graph.validate()
    return graph.lower().to_kernels()


class TestLoweringBitIdentical:
    """Lazily lowered kernel streams vs the layer-templated builder."""

    @pytest.mark.parametrize("model,training", [
        (BERT_LARGE, training_point(1, 32, Precision.FP32)),
        (BERT_LARGE, training_point(1, 32, Precision.MIXED)),
        (BERT_LARGE, training_point(2, 4, Precision.FP32,
                                    activation_checkpointing=True)),
        (BERT_TINY, training_point(1, 2, Precision.FP32)),
        (BERT_TINY, training_point(1, 2, Precision.MIXED,
                                   activation_checkpointing=True)),
    ], ids=["large-fp32", "large-mixed", "large-ph2-ckpt", "tiny-fp32",
            "tiny-mixed-ckpt"])
    def test_bit_identical_stream(self, model, training):
        assert _graph_kernels(model, training) == _builder_kernels(
            model, training)

    def test_trace_from_schedule(self):
        model, training = BERT_TINY, training_point(1, 2, Precision.FP32)
        graph = bert_iteration_graph(model, training)
        trace = Trace.from_schedule(model, training, graph.schedule)
        assert trace.table.to_kernels() == _builder_kernels(model, training)

    def test_graph_trace_totals_match_builder(self):
        model, training = BERT_LARGE, training_point(1, 32, Precision.FP32)
        ref = build_iteration_trace(model, training)
        got = Trace.from_table(model, training,
                               bert_iteration_graph(model, training).lower())
        assert got.total_flops == ref.total_flops
        assert got.total_bytes == ref.total_bytes


class TestScheduleRewrites:
    """Graph-schedule rewrites vs their columnar-pass twins."""

    def test_fusion_rewrite_matches_pass(self):
        from repro.fusion.passes import ElementwiseChainFusionPass
        from repro.trace.passes import PassManager

        model, training = BERT_TINY, training_point(1, 2, Precision.FP32)
        ref = PassManager([ElementwiseChainFusionPass()]).run_table(
            build_iteration_trace(model, training).table,
            model, training).to_kernels()
        got = _graph_kernels(model, training,
                             rewrites=("fuse_elementwise",))
        assert got == ref

    def test_checkpointing_rewrite_matches_pass(self):
        # The builder applies CheckpointingPass when the training point
        # sets the flag, so the flagged comparison covers the pass twin.
        model = BERT_TINY
        training = training_point(1, 2, Precision.FP32,
                                  activation_checkpointing=True)
        assert _graph_kernels(model, training) == _builder_kernels(
            model, training)

    def test_rewritten_schedule_still_validates(self):
        model, training = BERT_TINY, training_point(1, 2, Precision.FP32)
        graph = bert_iteration_graph(model, training)
        rewritten = checkpointing_rewrite(graph.schedule)
        validate_schedule(rewritten, require_nid_order=False)
        fused = fusion_rewrite(bert_iteration_graph(model, training).schedule)
        validate_schedule(fused, require_nid_order=False)


class TestLazyVsEagerGradients:
    """Eager execution is the golden oracle for the lazy scheduler."""

    @staticmethod
    def _batch():
        training = TrainingConfig(batch_size=2, seq_len=8)
        rng = np.random.default_rng(3)
        tokens = rng.integers(4, BERT_TINY.vocab_size,
                              size=(training.batch_size, training.seq_len))
        labels = np.full_like(tokens, -100)
        labels[:, 3] = 7
        nsp = np.zeros(training.batch_size, dtype=int)
        return tokens, labels, nsp

    def test_loss_and_gradients_bit_identical_fp32(self):
        tokens, labels, nsp = self._batch()

        eager = BertForPreTraining(BERT_TINY, seed=0, dropout_p=0.0)
        eager_loss = eager.loss(tokens, labels, nsp)
        eager_loss.backward()

        lazy = BertForPreTraining(BERT_TINY, seed=0, dropout_p=0.0)
        with lazy_mode():
            lazy_loss = lazy.loss(tokens, labels, nsp)
            lazy_loss.backward()
        assert not lazy_loss.is_realized  # nothing ran at graph build

        assert np.array_equal(eager_loss.data, lazy_loss.data)
        eager_params = dict(eager.named_parameters())
        for name, param in lazy.named_parameters():
            expected = eager_params[name].grad
            got = param.grad
            assert got is not None, name
            assert np.array_equal(expected, got), name

    @pytest.mark.parametrize("dtype", [np.float32, np.float16],
                             ids=["fp32", "fp16"])
    def test_tensor_computation_matches_eager(self, dtype):
        rng = np.random.default_rng(7)
        a_data = rng.standard_normal((4, 6)).astype(dtype)
        b_data = rng.standard_normal((6, 3)).astype(dtype)

        def run():
            a = tensor(a_data, requires_grad=True, dtype=dtype)
            b = tensor(b_data, requires_grad=True, dtype=dtype)
            out = (a.matmul(b) * 2.0).sum()
            out.backward()
            return out.data.copy(), a.grad.copy(), b.grad.copy()

        eager_out, eager_ga, eager_gb = run()
        with lazy_mode():
            lazy_out, lazy_ga, lazy_gb = run()

        assert np.array_equal(eager_out, lazy_out)
        assert np.array_equal(eager_ga, lazy_ga)
        assert np.array_equal(eager_gb, lazy_gb)


class TestScheduleValidation:
    """Acyclicity, determinism, and the no-double-realize guarantee."""

    @staticmethod
    def _graph():
        return bert_iteration_graph(BERT_TINY,
                                    training_point(1, 2, Precision.FP32))

    def test_analytic_graph_validates(self):
        self._graph().validate()

    def test_linearize_is_deterministic(self):
        graph = self._graph()
        assert linearize(graph.roots) == graph.schedule
        assert linearize(graph.roots) == linearize(graph.roots)

    def test_shuffled_schedule_rejected(self):
        graph = self._graph()
        shuffled = list(graph.schedule)
        shuffled[10], shuffled[40] = shuffled[40], shuffled[10]
        with pytest.raises(ScheduleError):
            validate_schedule(shuffled)

    def test_duplicate_item_rejected(self):
        graph = self._graph()
        broken = list(graph.schedule) + [graph.schedule[-1]]
        with pytest.raises(ScheduleError, match="twice"):
            validate_schedule(broken)

    def test_missing_source_rejected(self):
        graph = self._graph()
        # Drop an early item another item depends on.
        broken = graph.schedule[1:]
        with pytest.raises(ScheduleError):
            validate_schedule(broken)

    def test_double_realize_raises(self):
        graph = self._graph()
        node = graph.schedule[0]
        execute(node)
        with pytest.raises(ScheduleError, match="double realize"):
            execute(node)

    def test_no_double_realize_across_full_run(self):
        graph = self._graph()
        report = realize(graph.roots, report=True)
        assert len(report.executed) == len(graph.schedule)
        assert report.freed > 0
        assert report.peak_live_bytes > 0
        # The terminal node stays realized (nothing consumed it) and is
        # never re-executed: linearize treats it as data, not work.
        terminal = graph.schedule[-1]
        assert terminal.realized is not None
        again = realize([terminal], report=True)
        assert again.executed == []


class TestExecutedStreamMatchesTrace:
    """Executing the analytic graph *is* tracing it."""

    def test_executed_kinds_match_builder_names(self):
        model, training = BERT_TINY, training_point(1, 2, Precision.FP32)
        graph = bert_iteration_graph(model, training)
        report = realize(graph.roots, report=True)
        executed = [node.kind for node in report.executed]
        expected = [k.name for k in _builder_kernels(model, training)]
        assert executed == expected

    def test_rewritten_schedule_executes(self):
        model = BERT_TINY
        training = training_point(1, 2, Precision.FP32,
                                  activation_checkpointing=True)
        graph = bert_iteration_graph(model, training)
        for node in graph.schedule:
            execute(node)
        lowered = lower_schedule(graph.schedule).to_kernels()
        assert lowered == _builder_kernels(model, training)


class TestRecordingSemantics:
    """Record at realize, not at graph build; tokens detach under nesting."""

    def test_no_records_at_graph_build(self):
        with recording.capture() as ops:
            with lazy_mode():
                a = tensor(np.ones((2, 3), dtype=np.float32))
                b = tensor(np.ones((3, 4), dtype=np.float32))
                out = a.matmul(b).sum()
                assert ops == []  # graph build executed nothing
            assert ops == []
            out.realize()
        kinds = [r.kind for r in ops]
        assert "matmul" in kinds and "sum" in kinds

    def test_eager_and_lazy_captures_identical(self):
        def run():
            a = tensor(np.full((2, 3), 2.0, dtype=np.float32))
            b = tensor(np.full((3, 4), 3.0, dtype=np.float32))
            return (a.matmul(b) + 1.0).sum()

        with recording.capture() as eager_ops:
            run()
        with recording.capture() as lazy_ops:
            with lazy_mode():
                run().realize()
        assert [(r.kind, r.shapes, r.dtype, r.out_shape)
                for r in eager_ops] == \
               [(r.kind, r.shapes, r.dtype, r.out_shape)
                for r in lazy_ops]

    def test_records_carry_dtype_and_out_shape(self):
        with recording.capture() as ops:
            a = tensor(np.ones((2, 3), dtype=np.float32))
            b = tensor(np.ones((3, 4), dtype=np.float32))
            a.matmul(b)
        (record,) = recording.matmuls(ops)
        assert record.dtype == "float32"
        assert record.out_shape == (2, 4)

    def test_detach_is_nesting_safe(self):
        outer: list = []
        inner: list = []
        outer_token = recording.attach(outer)
        inner_token = recording.attach(inner)
        recording.record("op1", (1,))
        # Detach the *outer* capture first: inner must keep recording.
        recording.detach(outer_token)
        recording.record("op2", (2,))
        recording.detach(inner_token)
        recording.record("op3", (3,))  # no sinks left: dropped

        assert [r.kind for r in outer] == ["op1"]
        assert [r.kind for r in inner] == ["op1", "op2"]
        # Detach is idempotent.
        recording.detach(outer_token)
        recording.detach(inner_token)
