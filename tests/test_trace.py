"""Tests for trace generation: parameter inventory, builder, full iteration."""

import pytest

from repro.config import (BERT_LARGE, BERT_TINY, Precision, TrainingConfig,
                          training_point)
from repro.ops.base import Component, DType, OpClass, Phase, Region
from repro.trace.bert_trace import (build_iteration_trace,
                                    transformer_layer_backward_kernels,
                                    transformer_layer_forward_kernels)
from repro.trace.builder import Trace, TraceBuilder
from repro.trace.parameters import (bert_parameter_inventory, group_by_layer,
                                    total_parameters)


class TestParameterInventory:
    def test_totals_match_config_formula(self):
        for config in (BERT_TINY, BERT_LARGE):
            assert total_parameters(config) == config.total_parameters()

    def test_tensor_count_per_layer(self):
        inventory = bert_parameter_inventory(BERT_LARGE)
        layer0 = [t for t in inventory if t.layer_index == 0]
        # 4 projections x (w, b) + 2 LN x (gain, bias) + 2 FC x (w, b).
        assert len(layer0) == 16

    def test_group_by_layer_covers_everything(self):
        inventory = bert_parameter_inventory(BERT_LARGE)
        groups = group_by_layer(inventory)
        assert len(groups) == BERT_LARGE.num_layers + 2  # + embed + output
        grouped = sum(len(v) for v in groups.values())
        assert grouped == len(inventory)

    def test_shapes_are_consistent(self):
        for tensor in bert_parameter_inventory(BERT_TINY):
            assert tensor.n_elements > 0
            assert tensor.bytes(4) == tensor.n_elements * 4


class TestTraceBuilder:
    def _kernel(self, name="k"):
        return [k.renamed(name) for k in
                transformer_layer_forward_kernels(
                    BERT_TINY, TrainingConfig(batch_size=2, seq_len=16))[:1]]

    def test_layer_stamping(self):
        training = TrainingConfig(batch_size=2, seq_len=16)
        builder = TraceBuilder(BERT_TINY, training)
        builder.set_layer(5)
        builder.add(self._kernel())
        trace = builder.build()
        assert trace.kernels[0].layer_index == 5

    def test_select_filters_compose(self):
        trace = build_iteration_trace(BERT_TINY,
                                      TrainingConfig(batch_size=2, seq_len=16))
        picked = trace.select(phase=Phase.FORWARD,
                              component=Component.TRANSFORMER,
                              layer_index=1, op_class=OpClass.GEMM)
        assert picked
        for k in picked:
            assert k.phase is Phase.FORWARD and k.layer_index == 1
            assert k.op_class is OpClass.GEMM

    def test_predicate_filter(self):
        trace = build_iteration_trace(BERT_TINY,
                                      TrainingConfig(batch_size=2, seq_len=16))
        gelus = trace.select(predicate=lambda k: "gelu" in k.name)
        assert all("gelu" in k.name for k in gelus) and gelus

    def test_replaced_preserves_configs(self):
        trace = build_iteration_trace(BERT_TINY,
                                      TrainingConfig(batch_size=2, seq_len=16))
        other = trace.replaced(trace.kernels[:3])
        assert len(other) == 3 and other.model is trace.model


class TestIterationTrace:
    @pytest.fixture(scope="class")
    def trace(self) -> Trace:
        return build_iteration_trace(BERT_LARGE,
                                     training_point(1, 32, Precision.FP32))

    def test_every_component_present(self, trace):
        for component in (Component.EMBEDDING, Component.TRANSFORMER,
                          Component.OUTPUT, Component.OPTIMIZER):
            assert trace.select(component=component)

    def test_gemm_count_per_layer(self, trace):
        layer_gemms = [k for k in trace.gemms() if k.layer_index == 0]
        # FWD: 4 linear + 2 FC + 2 batched; BWD: 2 per linear/FC (12) + 4.
        assert len(layer_gemms) == 8 + 16

    def test_backward_flops_twice_forward(self, trace):
        fwd = sum(k.flops for k in trace.select(
            phase=Phase.FORWARD, component=Component.TRANSFORMER))
        bwd = sum(k.flops for k in trace.select(
            phase=Phase.BACKWARD, component=Component.TRANSFORMER))
        assert bwd == pytest.approx(2 * fwd, rel=0.05)

    def test_total_gemm_flops_formula(self, trace):
        # Per layer FWD: 4 linear (2*T*d*d) + FC (2*2*T*d*dff) + attention
        # batched (2 * 2*B*h*n^2*d_h); x3 with backward.
        d, dff = BERT_LARGE.d_model, BERT_LARGE.d_ff
        T, n = 4096, 128
        B, h, dh = 32, 16, 64
        per_layer_fwd = (4 * 2 * T * d * d + 2 * (2 * T * d * dff)
                         + 2 * (2 * B * h * n * n * dh))
        expected_encoder = 3 * per_layer_fwd * BERT_LARGE.num_layers
        encoder_gemm_flops = sum(
            k.flops for k in trace.gemms()
            if k.component is Component.TRANSFORMER)
        assert encoder_gemm_flops == expected_encoder

    def test_layers_attributed(self, trace):
        layers = {k.layer_index for k in trace.kernels
                  if k.component is Component.TRANSFORMER}
        assert layers == set(range(BERT_LARGE.num_layers))

    def test_optimizer_follows_backward(self, trace):
        phases = [k.phase for k in trace.kernels]
        last_backward = max(i for i, p in enumerate(phases)
                            if p is Phase.BACKWARD)
        first_opt = min(i for i, p in enumerate(phases)
                        if p is Phase.OPTIMIZER)
        assert first_opt > last_backward

    def test_mixed_precision_dtypes(self):
        trace = build_iteration_trace(BERT_LARGE,
                                      training_point(1, 32, Precision.MIXED))
        for k in trace.select(component=Component.TRANSFORMER):
            assert k.dtype is DType.FP16
        for k in trace.select(component=Component.OPTIMIZER):
            assert k.dtype is DType.FP32  # updates stay FP32 (Sec. 2.4)

    def test_mixed_precision_halves_transformer_traffic(self):
        fp32 = build_iteration_trace(BERT_LARGE,
                                     training_point(1, 32, Precision.FP32))
        mp = build_iteration_trace(BERT_LARGE,
                                   training_point(1, 32, Precision.MIXED))
        bytes32 = sum(k.bytes_total for k in
                      fp32.select(component=Component.TRANSFORMER))
        bytes16 = sum(k.bytes_total for k in
                      mp.select(component=Component.TRANSFORMER))
        # Not exactly half: dropout masks stay 1 byte/element.
        assert 0.45 < bytes16 / bytes32 < 0.62

    def test_batch_one_still_matrix_ops(self):
        # Takeaway 5.
        trace = build_iteration_trace(BERT_LARGE,
                                      training_point(1, 1, Precision.FP32))
        encoder = [k for k in trace.gemms()
                   if k.component is Component.TRANSFORMER]
        assert min(min(k.gemm.m, k.gemm.n, k.gemm.k) for k in encoder) >= 64

    def test_kernel_count_scale_invariant_to_batch(self):
        # Same iteration structure regardless of B (Sec. 3.1.4).
        small = build_iteration_trace(BERT_LARGE,
                                      training_point(1, 4, Precision.FP32))
        large = build_iteration_trace(BERT_LARGE,
                                      training_point(1, 32, Precision.FP32))
        assert len(small) == len(large)

    def test_regions_cover_all_transformer_kernels(self, trace):
        for k in trace.select(component=Component.TRANSFORMER):
            assert k.region in (Region.ATTENTION_LINEAR,
                                Region.ATTENTION_BGEMM,
                                Region.ATTENTION_SMDSM, Region.FC_GEMM,
                                Region.FC_GELU, Region.DR_RC_LN)

    def test_layer_forward_backward_symmetry(self):
        training = training_point(1, 32, Precision.FP32)
        fwd = transformer_layer_forward_kernels(BERT_LARGE, training)
        bwd = transformer_layer_backward_kernels(BERT_LARGE, training)
        fwd_gemms = [k for k in fwd if k.op_class.is_gemm]
        bwd_gemms = [k for k in bwd if k.op_class.is_gemm]
        assert len(bwd_gemms) == 2 * len(fwd_gemms)
