"""Tests for fused (FlashAttention-style) attention: numerical equivalence
of the executable block-wise algorithm and properties of the cost model."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments import fused_attention_study
from repro.model.fused_attention import (attention_memory_elements,
                                         blockwise_attention,
                                         reference_attention)
from repro.ops.base import DType, Phase
from repro.ops.fused_attention import (fused_attention_backward_kernel,
                                       fused_attention_forward_kernel,
                                       fused_attention_kernels)
from repro.tensor import functional as F


class TestBlockwiseEquivalence:
    """The fused algorithm must compute exactly what the eager one does."""

    def _tensors(self, seed, batch=2, heads=3, n=40, d_head=8):
        rng = np.random.default_rng(seed)
        shape = (batch, heads, n, d_head)
        return (rng.normal(size=shape), rng.normal(size=shape),
                rng.normal(size=shape))

    @pytest.mark.parametrize("block", [1, 7, 16, 40, 64])
    def test_matches_reference_any_block_size(self, block):
        q, k, v = self._tensors(0)
        np.testing.assert_allclose(
            blockwise_attention(q, k, v, block=block),
            reference_attention(q, k, v), rtol=1e-10, atol=1e-12)

    def test_matches_with_padding_mask(self):
        q, k, v = self._tensors(1)
        mask = np.ones((2, 40), dtype=bool)
        mask[:, 30:] = False
        bias = F.attention_mask_bias(mask, dtype=np.float64)
        np.testing.assert_allclose(
            blockwise_attention(q, k, v, bias=bias, block=16),
            reference_attention(q, k, v, bias=bias),
            rtol=1e-10, atol=1e-12)

    def test_matches_with_causal_mask(self):
        q, k, v = self._tensors(2)
        bias = F.causal_attention_bias(40, dtype=np.float64)
        np.testing.assert_allclose(
            blockwise_attention(q, k, v, bias=bias, block=8),
            reference_attention(q, k, v, bias=bias),
            rtol=1e-10, atol=1e-12)

    def test_stable_under_large_scores(self):
        q, k, v = self._tensors(3)
        out = blockwise_attention(q * 100, k * 100, v, block=8)
        assert np.isfinite(out).all()

    def test_rejects_bad_block(self):
        q, k, v = self._tensors(4)
        with pytest.raises(ValueError):
            blockwise_attention(q, k, v, block=0)

    @given(n=st.integers(2, 24), d=st.sampled_from([2, 4, 8]),
           block=st.integers(1, 24), seed=st.integers(0, 100))
    @settings(max_examples=25, deadline=None)
    def test_property_equivalence(self, n, d, block, seed):
        rng = np.random.default_rng(seed)
        q = rng.normal(size=(1, 1, n, d))
        k = rng.normal(size=(1, 1, n, d))
        v = rng.normal(size=(1, 1, n, d))
        np.testing.assert_allclose(
            blockwise_attention(q, k, v, block=block),
            reference_attention(q, k, v), rtol=1e-9, atol=1e-11)

    def test_rows_are_convex_combinations(self):
        q, k, v = self._tensors(5)
        out = blockwise_attention(q, k, v, block=16)
        assert out.min() >= v.min() - 1e-9
        assert out.max() <= v.max() + 1e-9


class TestFusedAttentionCostModel:
    ARGS = dict(seq_len=512, d_head=64, batch_heads=128, dtype=DType.FP32)

    def test_forward_flops_conserved(self):
        """Fusion saves traffic, not forward arithmetic."""
        from repro.ops.gemm import (attention_output_gemms,
                                    attention_score_gemms)
        kernel = fused_attention_forward_kernel(**self.ARGS)
        score = attention_score_gemms(512, 64, 128)["fwd"].flops
        context = attention_output_gemms(512, 64, 128)["fwd"].flops
        assert kernel.flops > score + context  # + softmax arithmetic
        assert kernel.flops < 1.5 * (score + context)

    def test_no_score_matrix_traffic(self):
        # The kernel's entire traffic (Q+K+V+mask in, O+stats out) is less
        # than even a single materialization of the score matrix.
        kernel = fused_attention_forward_kernel(**self.ARGS)
        score_bytes = 128 * 512 * 512 * 4
        assert kernel.bytes_total < score_bytes

    def test_backward_recomputes(self):
        fwd = fused_attention_forward_kernel(**self.ARGS)
        bwd = fused_attention_backward_kernel(**self.ARGS)
        assert bwd.flops > 2 * fwd.flops  # 2x grads + recompute
        assert bwd.phase is Phase.BACKWARD

    def test_kernel_pair(self):
        kernels = fused_attention_kernels(**self.ARGS)
        assert len(kernels) == 2
        assert {k.phase for k in kernels} == {Phase.FORWARD, Phase.BACKWARD}

    def test_stash_savings_grow_quadratically(self):
        eager_512 = attention_memory_elements(512, 64, 16, 8, fused=False)
        fused_512 = attention_memory_elements(512, 64, 16, 8, fused=True)
        eager_2k = attention_memory_elements(2048, 64, 16, 2, fused=False)
        fused_2k = attention_memory_elements(2048, 64, 16, 2, fused=True)
        assert (eager_2k / fused_2k) > 3 * (eager_512 / fused_512)


class TestFusedAttentionStudy:
    @pytest.fixture(scope="class")
    def rows(self):
        return fused_attention_study.run(seq_lens=(128, 512, 2048))

    def test_speedup_everywhere(self, rows):
        assert all(row.speedup > 2.0 for row in rows)

    def test_savings_grow_with_sequence_length(self, rows):
        assert rows[-1].traffic_ratio > 5 * rows[0].traffic_ratio
        assert rows[-1].stash_ratio > 5 * rows[0].stash_ratio

    def test_kernel_count_collapse(self, rows):
        for row in rows:
            assert row.fused_kernels == 2
            assert row.eager_kernels > 10

    def test_render(self, rows):
        out = fused_attention_study.render(rows)
        assert "speedup" in out and "stash saved" in out
