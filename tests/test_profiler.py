"""Tests for the simulated profiler and breakdown aggregation."""

import pytest

from repro.config import BERT_LARGE, BERT_TINY, Precision, TrainingConfig, training_point
from repro.hw import mi100
from repro.ops.base import Component, Phase, Region
from repro.profiler import (REGION_ORDER, component_breakdown, gemm_fraction,
                            memory_bound_fraction, optimizer_fraction,
                            profile_trace, region_breakdown, summarize,
                            transformer_breakdown)
from repro.trace import build_iteration_trace


@pytest.fixture(scope="module")
def profile():
    trace = build_iteration_trace(BERT_TINY,
                                  TrainingConfig(batch_size=2, seq_len=16))
    return profile_trace(trace.kernels, mi100())


class TestProfile:
    def test_every_kernel_timed_positive(self, profile):
        assert len(profile) > 0
        assert all(r.time_s > 0 for r in profile)

    def test_total_time_is_sum(self, profile):
        assert profile.total_time == pytest.approx(
            sum(r.time_s for r in profile.records))

    def test_time_of_filters_partition(self, profile):
        by_phase = sum(profile.time_of(phase=p)
                       for p in (Phase.FORWARD, Phase.BACKWARD,
                                 Phase.OPTIMIZER))
        assert by_phase == pytest.approx(profile.total_time)

    def test_fraction_where_bounds(self, profile):
        f = profile.fraction_where(lambda k: k.op_class.is_gemm)
        assert 0.0 < f < 1.0

    def test_achieved_rates(self, profile):
        record = profile.records[0]
        assert record.achieved_bandwidth == pytest.approx(
            record.kernel.bytes_total / record.time_s)


class TestBreakdowns:
    def test_component_breakdown_sums_to_one(self, profile):
        entries = component_breakdown(profile)
        assert sum(e.fraction for e in entries) == pytest.approx(1.0)

    def test_region_breakdown_covers_transformer(self, profile):
        regions = region_breakdown(profile)
        assert set(regions) == set(REGION_ORDER)
        transformer = profile.time_of(component=Component.TRANSFORMER)
        assert sum(e.time_s for e in regions.values()) == pytest.approx(
            transformer)

    def test_transformer_breakdown_matches_regions(self, profile):
        bars = {e.label: e.time_s for e in transformer_breakdown(profile)}
        regions = region_breakdown(profile)
        attention = sum(regions[r].time_s for r in
                        (Region.ATTENTION_LINEAR, Region.ATTENTION_BGEMM,
                         Region.ATTENTION_SMDSM))
        assert bars["attention"] == pytest.approx(attention)

    def test_gemm_plus_non_gemm_is_one(self, profile):
        assert (gemm_fraction(profile) + memory_bound_fraction(profile)
                == pytest.approx(1.0))

    def test_summarize_keys(self, profile):
        s = summarize(profile)
        assert set(s) == {"total_time_s", "transformer", "output",
                          "embedding", "optimizer", "gemm", "non_gemm"}
        component_sum = (s["transformer"] + s["output"] + s["embedding"]
                         + s["optimizer"])
        assert component_sum == pytest.approx(1.0)

    def test_optimizer_fraction(self, profile):
        assert optimizer_fraction(profile) == pytest.approx(
            profile.time_of(component=Component.OPTIMIZER)
            / profile.total_time)


class TestScalingSanity:
    """Coarse physical sanity of the timing model at BERT Large scale."""

    def test_iteration_time_plausible(self):
        trace = build_iteration_trace(BERT_LARGE,
                                      training_point(1, 32, Precision.FP32))
        profile = profile_trace(trace.kernels, mi100())
        # A B=32, n=128 FP32 iteration on an MI100-class GPU lands in the
        # hundreds of milliseconds.
        assert 0.1 < profile.total_time < 2.0

    def test_mixed_precision_speeds_up_iteration(self):
        fp32 = profile_trace(build_iteration_trace(
            BERT_LARGE, training_point(1, 32, Precision.FP32)).kernels,
            mi100())
        mp = profile_trace(build_iteration_trace(
            BERT_LARGE, training_point(1, 32, Precision.MIXED)).kernels,
            mi100())
        # Paper: FWD+BWD speed up ~2x under MP.
        speedup = fp32.total_time / mp.total_time
        assert 1.6 < speedup < 3.0

    def test_phase2_slower_than_phase1_at_equal_tokens(self):
        # Iteration time grows superlinearly with n (Sec. 3.3.1).
        ph1 = profile_trace(build_iteration_trace(
            BERT_LARGE, training_point(1, 16, Precision.FP32)).kernels,
            mi100())
        ph2 = profile_trace(build_iteration_trace(
            BERT_LARGE, training_point(2, 4, Precision.FP32)).kernels,
            mi100())
        assert ph2.total_time > ph1.total_time
