"""Tests for the metrics registry (:mod:`repro.obs.metrics`) and the
``threading.local`` telemetry regression (satellite of the observability
PR: the old module-level stack interleaved collectors across threads)."""

from __future__ import annotations

import threading

import pytest

from repro.obs import metrics as metrics_mod
from repro.obs.metrics import (MetricsRegistry, diff_snapshots, hit_rates,
                               merge_snapshots)
from repro.runner import telemetry


@pytest.fixture
def registry():
    return MetricsRegistry()


class TestCounter:
    def test_inc_and_value(self, registry):
        counter = registry.counter("c")
        counter.inc()
        counter.inc(2)
        assert counter.value() == 3

    def test_labeled_series_are_independent(self, registry):
        counter = registry.counter("c")
        counter.inc(result="hit")
        counter.inc(3, result="miss")
        assert counter.value(result="hit") == 1
        assert counter.value(result="miss") == 3
        assert counter.value() == 0

    def test_label_key_is_order_insensitive(self, registry):
        counter = registry.counter("c")
        counter.inc(a=1, b=2)
        counter.inc(b=2, a=1)
        assert counter.value(b=2, a=1) == 2
        assert registry.snapshot()["c"]["series"] == {"a=1,b=2": 2}

    def test_counters_only_go_up(self, registry):
        with pytest.raises(ValueError):
            registry.counter("c").inc(-1)


class TestGaugeAndHistogram:
    def test_gauge_keeps_last_write(self, registry):
        gauge = registry.gauge("g")
        gauge.set(1.5)
        gauge.set(0.5)
        assert gauge.value() == 0.5

    def test_histogram_stats(self, registry):
        histogram = registry.histogram("h")
        for value in (1.0, 3.0, 2.0):
            histogram.observe(value)
        assert histogram.stats() == {"count": 3, "sum": 6.0,
                                     "min": 1.0, "max": 3.0,
                                     "p50": 2.0,
                                     "p90": pytest.approx(2.8),
                                     "p99": pytest.approx(2.98)}
        assert histogram.stats(experiment="none") is None

    def test_histogram_percentiles_exact_below_reservoir(self, registry):
        histogram = registry.histogram("h")
        for value in range(1, 101):  # 1..100, shuffled order irrelevant
            histogram.observe(float(value))
        stats = histogram.stats()
        assert stats["p50"] == pytest.approx(50.5)
        assert stats["p90"] == pytest.approx(90.1)
        assert stats["p99"] == pytest.approx(99.01)

    def test_histogram_reservoir_is_bounded(self, registry):
        histogram = registry.histogram("h")
        for value in range(4 * metrics_mod.RESERVOIR_SIZE):
            histogram.observe(float(value))
        series = histogram._series[""]
        assert len(series["sample"]) == metrics_mod.RESERVOIR_SIZE
        stats = histogram.stats()
        assert stats["count"] == 4 * metrics_mod.RESERVOIR_SIZE
        # The sample stays within the observed range and the quantile
        # estimates stay ordered.
        assert stats["min"] <= stats["p50"] <= stats["p90"] \
            <= stats["p99"] <= stats["max"]

    def test_single_observation_percentiles(self, registry):
        histogram = registry.histogram("h")
        histogram.observe(7.0)
        stats = histogram.stats()
        assert stats["p50"] == stats["p90"] == stats["p99"] == 7.0


class TestRegistry:
    def test_same_name_returns_same_metric(self, registry):
        assert registry.counter("c") is registry.counter("c")

    def test_kind_conflict_raises(self, registry):
        registry.counter("c")
        with pytest.raises(TypeError):
            registry.gauge("c")

    def test_snapshot_shape(self, registry):
        registry.counter("c").inc(result="hit")
        registry.histogram("h").observe(2.0)
        snapshot = registry.snapshot()
        assert snapshot["c"] == {"kind": "counter",
                                 "series": {"result=hit": 1}}
        assert snapshot["h"]["kind"] == "histogram"
        assert snapshot["h"]["series"][""]["count"] == 1

    def test_snapshot_is_detached(self, registry):
        counter = registry.counter("c")
        counter.inc()
        snapshot = registry.snapshot()
        counter.inc()
        assert snapshot["c"]["series"][""] == 1

    def test_thread_safety(self, registry):
        counter = registry.counter("c")

        def work():
            for _ in range(1000):
                counter.inc(result="hit")

        threads = [threading.Thread(target=work) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert counter.value(result="hit") == 4000


class TestSnapshotAlgebra:
    def test_diff_counters_and_drop_zero(self, registry):
        counter = registry.counter("c")
        counter.inc(5, result="hit")
        before = registry.snapshot()
        counter.inc(2, result="hit")
        delta = diff_snapshots(before, registry.snapshot())
        assert delta == {"c": {"kind": "counter",
                               "series": {"result=hit": 2}}}

    def test_diff_histograms(self, registry):
        histogram = registry.histogram("h")
        histogram.observe(1.0)
        before = registry.snapshot()
        histogram.observe(5.0)
        delta = diff_snapshots(before, registry.snapshot())
        entry = delta["h"]["series"][""]
        assert entry["count"] == 1
        assert entry["sum"] == 5.0

    def test_diff_of_identical_snapshots_is_empty(self, registry):
        registry.counter("c").inc()
        snapshot = registry.snapshot()
        assert diff_snapshots(snapshot, snapshot) == {}

    def test_merge_adds_counters_and_widens_histograms(self):
        one = {"c": {"kind": "counter", "series": {"result=hit": 2}},
               "h": {"kind": "histogram",
                     "series": {"": {"count": 1, "sum": 1.0,
                                     "min": 1.0, "max": 1.0}}}}
        two = {"c": {"kind": "counter", "series": {"result=hit": 3,
                                                   "result=miss": 1}},
               "h": {"kind": "histogram",
                     "series": {"": {"count": 2, "sum": 7.0,
                                     "min": 0.5, "max": 6.5}}}}
        merged = merge_snapshots([one, two])
        assert merged["c"]["series"] == {"result=hit": 5, "result=miss": 1}
        assert merged["h"]["series"][""] == {"count": 3, "sum": 8.0,
                                             "min": 0.5, "max": 6.5}

    def test_hit_rates(self):
        snapshot = {
            "cache": {"kind": "counter",
                      "series": {"result=hit": 3, "result=miss": 1}},
            "quiet": {"kind": "counter", "series": {}},
            "g": {"kind": "gauge", "series": {"": 1.0}},
        }
        assert hit_rates(snapshot) == {"cache.hit_rate": 0.75}


class TestTelemetryThreadLocal:
    """Regression: the collector stack used to be one module-level list
    shared by every thread, so concurrent collectors attributed each
    other's points.  It is now ``threading.local``."""

    def test_collectors_do_not_leak_across_threads(self):
        errors: list[str] = []
        barrier = threading.Barrier(4)

        def work(index):
            with telemetry.collect() as collector:
                barrier.wait()  # all four collectors open at once
                for _ in range(25):
                    collector_now = telemetry.current()
                    if collector_now is not collector:
                        errors.append(f"thread {index} saw foreign "
                                      "collector")
                        return
                    collector_now.record_point(kernels=1, hit=True)
                barrier.wait()
            if collector.points != 25 or collector.kernels != 25:
                errors.append(f"thread {index} counted "
                              f"{collector.points}/{collector.kernels}")

        threads = [threading.Thread(target=work, args=(i,))
                   for i in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []

    def test_thread_without_collector_sees_none(self):
        seen: list[object] = []
        with telemetry.collect():
            thread = threading.Thread(
                target=lambda: seen.append(telemetry.current()))
            thread.start()
            thread.join()
        assert seen == [None]

    def test_collectors_nest_on_one_thread(self):
        with telemetry.collect() as outer:
            with telemetry.collect() as inner:
                assert telemetry.current() is inner
                inner.record_point(kernels=10, hit=False)
            assert telemetry.current() is outer
        assert (inner.points, inner.cache_misses) == (1, 1)
        assert outer.points == 0

    def test_record_point_feeds_registry(self):
        from repro.obs import metrics

        resolutions = metrics.counter("run_point.resolutions")
        before = resolutions.value(result="hit")
        with telemetry.collect() as collector:
            collector.record_point(kernels=5, hit=True)
        assert resolutions.value(result="hit") == before + 1
