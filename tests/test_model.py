"""Tests for the executable BERT model."""

import numpy as np
import pytest

from repro.config import BERT_TINY
from repro.model import BertForPreTraining
from repro.model.attention import MultiHeadSelfAttention
from repro.tensor import functional as F


@pytest.fixture(scope="module")
def model():
    return BertForPreTraining(BERT_TINY, seed=0, dropout_p=0.0)


@pytest.fixture(scope="module")
def batch():
    rng = np.random.default_rng(1)
    tokens = rng.integers(4, BERT_TINY.vocab_size, size=(2, 16))
    return tokens


class TestForwardShapes:
    def test_encode_shape(self, model, batch):
        hidden = model.encode(batch)
        assert hidden.shape == (2, 16, BERT_TINY.d_model)

    def test_head_shapes(self, model, batch):
        mlm, nsp = model(batch)
        assert mlm.shape == (2, 16, BERT_TINY.vocab_size)
        assert nsp.shape == (2, 2)

    def test_rejects_bad_rank(self, model):
        with pytest.raises(ValueError):
            model.encode(np.zeros(16, dtype=int))

    def test_rejects_too_long_sequence(self, model):
        too_long = np.zeros((1, BERT_TINY.max_position + 1), dtype=int)
        with pytest.raises(ValueError):
            model.encode(too_long)


class TestModelSemantics:
    def test_parameter_count_matches_config(self, model):
        assert model.num_parameters() == BERT_TINY.total_parameters()

    def test_deterministic_given_seed(self, batch):
        a = BertForPreTraining(BERT_TINY, seed=7, dropout_p=0.0)
        b = BertForPreTraining(BERT_TINY, seed=7, dropout_p=0.0)
        np.testing.assert_allclose(a.encode(batch).data,
                                   b.encode(batch).data)

    def test_different_seeds_differ(self, batch):
        a = BertForPreTraining(BERT_TINY, seed=1, dropout_p=0.0)
        b = BertForPreTraining(BERT_TINY, seed=2, dropout_p=0.0)
        assert not np.allclose(a.encode(batch).data, b.encode(batch).data)

    def test_attention_probs_are_distributions(self, model, batch):
        attention: MultiHeadSelfAttention = model.encoder.layers()[0].attention
        hidden = model.embeddings(batch)
        probs = attention.attention_scores(hidden).data
        assert probs.shape == (2, BERT_TINY.num_heads, 16, 16)
        np.testing.assert_allclose(probs.sum(axis=-1),
                                   np.ones((2, BERT_TINY.num_heads, 16)),
                                   rtol=1e-5)

    def test_padding_mask_blocks_attention(self, model, batch):
        mask = np.ones((2, 16), dtype=bool)
        mask[:, 8:] = False
        bias = F.attention_mask_bias(mask)
        attention = model.encoder.layers()[0].attention
        hidden = model.embeddings(batch)
        probs = attention.attention_scores(hidden, bias).data
        # No probability mass on masked (padded) key positions.
        assert probs[..., 8:].max() < 1e-6

    def test_padding_positions_do_not_affect_valid_outputs(self, model):
        rng = np.random.default_rng(2)
        tokens = rng.integers(4, BERT_TINY.vocab_size, size=(1, 16))
        mask = np.ones((1, 16), dtype=bool)
        mask[:, 12:] = False
        base = model.encode(tokens, padding_mask=mask).data[:, :12]
        tokens2 = tokens.copy()
        tokens2[:, 12:] = 5  # change only padded positions
        other = model.encode(tokens2, padding_mask=mask).data[:, :12]
        np.testing.assert_allclose(base, other, atol=1e-5)

    def test_tied_decoder_weight(self, model):
        assert (model.heads.mlm._decoder_weight
                is model.embeddings.token.weight)

    def test_loss_is_finite_and_near_uniform_at_init(self, model, batch):
        labels = np.full((2, 16), -100)
        labels[0, 3] = 10
        labels[1, 5] = 20
        loss = model.loss(batch, labels, np.array([0, 1]))
        uniform = np.log(BERT_TINY.vocab_size) + np.log(2)
        assert 0.5 * uniform < loss.item() < 1.5 * uniform

    def test_backward_populates_all_gradients(self, batch):
        model = BertForPreTraining(BERT_TINY, seed=3, dropout_p=0.0)
        labels = np.full((2, 16), -100)
        labels[:, 4] = 9
        model.loss(batch, labels, np.array([1, 0])).backward()
        for name, param in model.named_parameters():
            assert param.grad is not None, f"no grad for {name}"
            assert np.isfinite(param.grad).all(), f"non-finite grad {name}"


class TestFullModelGradcheck:
    def test_loss_gradient_matches_finite_difference(self):
        """End-to-end gradcheck of the full model on a few coordinates."""
        from repro.config import BertConfig
        tiny = BertConfig(num_layers=1, d_model=8, num_heads=2, d_ff=16,
                          vocab_size=32, max_position=16, name="nano")
        model = BertForPreTraining(tiny, seed=4, dropout_p=0.0)
        for param in model.parameters():
            param.data = param.data.astype(np.float64)
        rng = np.random.default_rng(5)
        tokens = rng.integers(4, 32, size=(1, 8))
        labels = np.full((1, 8), -100)
        labels[0, 2] = 11
        nsp = np.array([1])

        def loss_value():
            return float(model.loss(tokens, labels, nsp).data)

        model.zero_grad()
        model.loss(tokens, labels, nsp).backward()

        checked = 0
        eps = 1e-4
        for name, param in model.named_parameters():
            if "fc1.weight" in name or "query.weight" in name:
                index = (0, 0)
                orig = param.data[index]
                param.data[index] = orig + eps
                plus = loss_value()
                param.data[index] = orig - eps
                minus = loss_value()
                param.data[index] = orig
                numeric = (plus - minus) / (2 * eps)
                assert param.grad[index] == pytest.approx(numeric, rel=2e-2,
                                                          abs=1e-6), name
                checked += 1
        assert checked == 2
