"""Trace-context propagation (:mod:`repro.obs.spans`).

The span stack lives in a ``contextvars.ContextVar``: threads and asyncio
tasks nest independently (as with the old ``threading.local``), but the
context can now be *carried* — ``contextvars.copy_context()`` hands a
worker thread the caller's open stack, and ``TraceContext`` snapshots
replay across process boundaries.  These tests pin every propagation
path the serve executor and the batch runner rely on.
"""

from __future__ import annotations

import asyncio
import contextvars
import pickle
import threading

import pytest

from repro.obs.spans import SpanTracer, TraceContext, new_trace_id


@pytest.fixture
def tracer():
    tracer = SpanTracer()
    tracer.enable()
    return tracer


class TestTraceIds:
    def test_root_span_generates_a_trace_id(self, tracer):
        with tracer.span("root"):
            pass
        (record,) = tracer.reset()
        assert len(record.trace_id) == 16
        int(record.trace_id, 16)  # hex

    def test_children_inherit_the_root_trace_id(self, tracer):
        with tracer.span("root"):
            with tracer.span("child"):
                with tracer.span("grandchild"):
                    pass
        records = tracer.reset()
        assert len({r.trace_id for r in records}) == 1

    def test_sibling_roots_get_distinct_trace_ids(self, tracer):
        with tracer.span("first"):
            pass
        with tracer.span("second"):
            pass
        first, second = tracer.reset()
        assert first.trace_id != second.trace_id

    def test_new_trace_ids_are_unique(self):
        assert len({new_trace_id() for _ in range(100)}) == 100

    def test_as_dict_carries_the_trace_id(self, tracer):
        with tracer.span("root"):
            pass
        payload = tracer.reset()[0].as_dict()
        assert payload["trace_id"]


class TestThreadIsolation:
    def test_concurrent_threads_get_disjoint_traces(self, tracer):
        """A fresh thread has a fresh context: no accidental nesting."""
        barrier = threading.Barrier(2)

        def work(name):
            with tracer.span(name):
                barrier.wait()
                barrier.wait()

        threads = [threading.Thread(target=work, args=(f"t{i}",))
                   for i in range(2)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        records = tracer.reset()
        assert all(r.parent_id == -1 for r in records)
        assert len({r.trace_id for r in records}) == 2

    def test_concurrent_tasks_get_disjoint_traces(self, tracer):
        """Each asyncio task copies the (empty) context at creation."""
        async def request(name):
            with tracer.span(name):
                await asyncio.sleep(0)

        async def storm():
            await asyncio.gather(*(request(f"r{i}") for i in range(10)))

        asyncio.run(storm())
        records = tracer.reset()
        assert len({r.trace_id for r in records}) == 10
        assert all(r.depth == 0 for r in records)


class TestCopiedContext:
    def test_copy_context_carries_the_open_stack_into_a_thread(self,
                                                               tracer):
        """The serve executor pattern: the worker's spans parent to the
        caller's open span instead of starting an orphan trace."""
        def compute_job():
            with tracer.span("compute"):
                pass

        with tracer.span("request") as request_span:
            context = contextvars.copy_context()
            worker = threading.Thread(
                target=lambda: context.run(compute_job))
            worker.start()
            worker.join()
        compute, request = tracer.reset()
        assert compute.name == "compute"
        assert compute.parent_id == request_span.span_id
        assert compute.trace_id == request.trace_id
        assert compute.depth == request.depth + 1

    def test_worker_pop_does_not_corrupt_the_caller_stack(self, tracer):
        def worker_job():
            with tracer.span("w"):
                pass

        with tracer.span("request"):
            context = contextvars.copy_context()
            worker = threading.Thread(
                target=lambda: context.run(worker_job))
            worker.start()
            worker.join()
            # The caller's own stack is untouched by the worker's pop.
            assert tracer.current().name == "request"
        assert tracer.current() is None


class TestTraceContextSnapshot:
    def test_current_context_of_the_innermost_span(self, tracer):
        assert tracer.current_context() is None
        with tracer.span("outer"):
            with tracer.span("inner") as inner:
                context = tracer.current_context()
                assert context.trace_id == inner.trace_id
                assert context.span_id == inner.span_id
                assert context.depth == inner.depth
        assert tracer.current_context() is None

    def test_attach_joins_root_spans_to_the_context(self, tracer):
        context = TraceContext(trace_id="feedc0ffee000001", span_id=7,
                               depth=2)
        with tracer.attach(context):
            with tracer.span("joined"):
                pass
        (record,) = tracer.reset()
        assert record.trace_id == "feedc0ffee000001"
        assert record.parent_id == 7
        assert record.depth == 3

    def test_attach_restores_on_exit(self, tracer):
        with tracer.attach(TraceContext(trace_id="aa" * 8)):
            pass
        with tracer.span("after"):
            pass
        (record,) = tracer.reset()
        assert record.trace_id != "aa" * 8

    def test_open_stack_wins_over_attached_context(self, tracer):
        with tracer.span("local_root") as root:
            with tracer.attach(TraceContext(trace_id="bb" * 8)):
                with tracer.span("child"):
                    pass
        child = tracer.reset()[0]
        assert child.trace_id == root.trace_id
        assert child.parent_id == root.span_id

    def test_ambient_context_visible_via_current_context(self, tracer):
        context = TraceContext(trace_id="cc" * 8)
        with tracer.attach(context):
            assert tracer.current_context() == context

    def test_round_trips_through_dict_and_pickle(self):
        context = TraceContext(trace_id="dd" * 8, span_id=42, depth=3)
        assert TraceContext.from_dict(context.as_dict()) == context
        assert pickle.loads(pickle.dumps(context)) == context

    def test_from_dict_defaults_to_root_parenting(self):
        context = TraceContext.from_dict({"trace_id": "ee" * 8})
        assert context.span_id == -1
        assert context.depth == -1


class TestSinksAndRetention:
    def test_sink_sees_every_finished_span(self, tracer):
        seen = []
        tracer.add_sink(seen.append)
        with tracer.span("a"):
            pass
        assert [s.name for s in seen] == ["a"]
        tracer.remove_sink(seen.append)
        with tracer.span("b"):
            pass
        assert [s.name for s in seen] == ["a"]

    def test_retain_false_delivers_to_sinks_without_accumulating(self):
        tracer = SpanTracer()
        tracer.enable(retain=False)
        seen = []
        tracer.add_sink(seen.append)
        for _ in range(50):
            with tracer.span("request"):
                pass
        assert len(seen) == 50
        assert tracer.reset() == []  # nothing retained: bounded memory

    def test_capture_forces_retention_while_open(self):
        tracer = SpanTracer()
        tracer.enable(retain=False)
        with tracer.capture() as scope:
            with tracer.span("inside"):
                pass
        assert [s.name for s in scope.spans] == ["inside"]
        with tracer.span("after"):
            pass
        assert tracer.reset() == []

    def test_raising_sink_never_breaks_the_caller(self, tracer):
        def explode(span):
            raise RuntimeError("sink on fire")

        tracer.add_sink(explode)
        with tracer.span("survives"):
            pass
        assert tracer.reset()[0].name == "survives"


class TestEnginePipelineJoinsAttachedContext:
    def test_trace_build_and_passes_share_the_attached_trace_id(self):
        """The runner-worker pattern: replay a parent-assigned context,
        then run the real engine pipeline (trace build + rewrite passes)
        and observe one connected tree under the parent's trace id."""
        from repro.experiments.points import POINT_REGISTRY
        from repro.obs.spans import get_tracer
        from repro.trace.bert_trace import build_iteration_trace
        from repro.trace.passes import build_pipeline

        model, training = POINT_REGISTRY["tiny.ph1-b2-fp32"]
        context = TraceContext(trace_id=new_trace_id())
        tracer = get_tracer()
        with tracer.capture() as scope:
            with tracer.attach(context):
                trace = build_iteration_trace(model, training)
                build_pipeline("fuse_elementwise").run(trace)

        names = {s.name for s in scope.spans}
        assert "trace.build_iteration" in names
        assert "pass_pipeline.run" in names
        assert any(name.startswith("pass.") for name in names)
        assert {s.trace_id for s in scope.spans} == {context.trace_id}
