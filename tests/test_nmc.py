"""Tests for the near-memory compute model (Sec. 6.2.1)."""

import pytest

from repro.config import BERT_LARGE, FIG3_POINTS, Precision, training_point
from repro.hw import mi100
from repro.nmc import NmcConfig, evaluate_lamb_offload, hbm2_bank_nmc


@pytest.fixture(scope="module")
def device():
    return mi100()


@pytest.fixture(scope="module")
def nmc():
    return hbm2_bank_nmc()


class TestNmcConfig:
    def test_internal_bandwidth_exceeds_pin_bandwidth(self, device, nmc):
        # The point of bank-level NMC: ~4x the external bandwidth.
        ratio = nmc.internal_bandwidth / device.peak_bandwidth
        assert 3.0 < ratio < 6.0

    def test_execution_time_bandwidth_bound(self, nmc):
        t = nmc.execution_time(flops=1, bytes_moved=10**9)
        expected = 10**9 / nmc.internal_bandwidth
        assert t == pytest.approx(expected + nmc.command_overhead_us * 1e-6)

    def test_execution_time_alu_bound(self, nmc):
        t = nmc.execution_time(flops=10**13, bytes_moved=1)
        assert t >= 10**13 / nmc.alu_throughput

    def test_command_overhead_scales_with_groups(self, nmc):
        one = nmc.execution_time(flops=0, bytes_moved=10**6,
                                 command_groups=1)
        many = nmc.execution_time(flops=0, bytes_moved=10**6,
                                  command_groups=100)
        assert many - one == pytest.approx(99 * nmc.command_overhead_us
                                           * 1e-6)

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            NmcConfig(name="bad", banks=0, bank_bandwidth_gbps=1.0,
                      alu_ops_per_cycle=1, clock_ghz=1.0)
        with pytest.raises(ValueError):
            NmcConfig(name="bad", banks=1, bank_bandwidth_gbps=-1.0,
                      alu_ops_per_cycle=1, clock_ghz=1.0)

    def test_invalid_workload_rejected(self, nmc):
        with pytest.raises(ValueError):
            nmc.execution_time(flops=-1, bytes_moved=0)


class TestLambOffload:
    def test_headline_speedup_near_3_8(self, device, nmc):
        # Sec. 6.2.1: NMC speeds LAMB by ~3.8x vs the optimistic GPU model.
        result = evaluate_lamb_offload(
            BERT_LARGE, training_point(1, 32, Precision.FP32), device, nmc)
        assert 3.2 < result.lamb_speedup_vs_optimistic < 4.4

    def test_end_to_end_band(self, device, nmc):
        # Paper: 5-22% end-to-end (our B=4 points run a touch above).
        gains = [evaluate_lamb_offload(BERT_LARGE, tp, device,
                                       nmc).end_to_end_improvement
                 for tp in FIG3_POINTS]
        assert min(gains) > 0.04
        assert max(gains) < 0.30

    def test_gain_tracks_lamb_share(self, device, nmc):
        b32 = evaluate_lamb_offload(
            BERT_LARGE, training_point(1, 32, Precision.FP32), device, nmc)
        b4 = evaluate_lamb_offload(
            BERT_LARGE, training_point(1, 4, Precision.FP32), device, nmc)
        assert b4.end_to_end_improvement > b32.end_to_end_improvement

    def test_iteration_accounting_consistent(self, device, nmc):
        r = evaluate_lamb_offload(
            BERT_LARGE, training_point(1, 32, Precision.FP32), device, nmc)
        assert r.iteration_nmc_s == pytest.approx(
            r.iteration_baseline_s - r.lamb_gpu_actual_s + r.lamb_nmc_s)
        assert r.lamb_nmc_s < r.lamb_gpu_optimistic_s < r.lamb_gpu_actual_s
