"""Robustness-study tests, checkpoint-resume determinism, and doctests."""

import doctest

import numpy as np
import pytest

from repro.config import BERT_TINY
from repro.data import MarkovCorpus, PreTrainingDataset, Vocab
from repro.experiments import robustness
from repro.model import BertForPreTraining
from repro.optim import Adam, Lamb
from repro.train import Trainer, load_checkpoint, save_checkpoint


class TestRobustnessStudy:
    @pytest.fixture(scope="class")
    def rows(self):
        return robustness.run()

    def test_baseline_row_first(self, rows):
        assert rows[0].label == "baseline"
        assert rows[0].all_hold

    def test_every_perturbation_checked(self, rows):
        assert len(rows) == 1 + len(robustness.PERTURBATIONS)
        for row in rows:
            assert set(row.results) == set(robustness.CLAIMS)

    def test_all_conclusions_robust(self, rows):
        """The headline: no paper conclusion hinges on a single calibration
        constant."""
        failing = [(row.label, claim)
                   for row in rows
                   for claim, held in row.results.items() if not held]
        assert not failing, failing

    def test_render(self, rows):
        out = robustness.render(rows)
        assert "baseline" in out and "launch overhead x2" in out


class TestResumeDeterminism:
    """Saving mid-run and resuming must reproduce the uninterrupted run."""

    def _dataset(self):
        vocab = Vocab(size=BERT_TINY.vocab_size)
        return PreTrainingDataset(vocab, MarkovCorpus(vocab, seed=0),
                                  seq_len=16, seed=7)

    @pytest.mark.parametrize("optimizer_cls,kwargs", [
        (Adam, {"lr": 1e-3}),
        (Lamb, {"lr": 1e-2, "clip_global_norm": None}),
    ])
    def test_resume_matches_uninterrupted(self, tmp_path, optimizer_cls,
                                          kwargs):
        # Fixed batches so both runs consume identical data.
        batches = list(self._dataset().batches(4, 6))

        # Uninterrupted: 6 steps straight.
        model_a = BertForPreTraining(BERT_TINY, seed=3, dropout_p=0.0)
        opt_a = optimizer_cls(model_a.parameters(), **kwargs)
        trainer_a = Trainer(model_a, opt_a, self._dataset())
        for batch in batches:
            trainer_a.train_step(batch)

        # Interrupted: 3 steps, checkpoint, fresh objects, 3 more steps.
        model_b = BertForPreTraining(BERT_TINY, seed=3, dropout_p=0.0)
        opt_b = optimizer_cls(model_b.parameters(), **kwargs)
        trainer_b = Trainer(model_b, opt_b, self._dataset())
        for batch in batches[:3]:
            trainer_b.train_step(batch)
        path = str(tmp_path / "mid.npz")
        save_checkpoint(path, model_b, opt_b)

        model_c = BertForPreTraining(BERT_TINY, seed=99, dropout_p=0.0)
        opt_c = optimizer_cls(model_c.parameters(), **kwargs)
        load_checkpoint(path, model_c, opt_c)
        trainer_c = Trainer(model_c, opt_c, self._dataset())
        for batch in batches[3:]:
            trainer_c.train_step(batch)

        for (name, pa), (_, pc) in zip(model_a.named_parameters(),
                                       model_c.named_parameters()):
            np.testing.assert_allclose(pa.data, pc.data, rtol=1e-6,
                                       atol=1e-7, err_msg=name)

    def test_resume_restores_step_count_for_bias_correction(self, tmp_path):
        """Adam's bias correction depends on the step count; a resume that
        reset it would take visibly different steps."""
        model = BertForPreTraining(BERT_TINY, seed=4, dropout_p=0.0)
        opt = Adam(model.parameters(), lr=1e-3)
        trainer = Trainer(model, opt, self._dataset())
        for batch in self._dataset().batches(4, 5):
            trainer.train_step(batch)
        path = str(tmp_path / "s.npz")
        save_checkpoint(path, model, opt)
        fresh = Adam(BertForPreTraining(BERT_TINY, seed=4).parameters(),
                     lr=1e-3)
        load_checkpoint(path,
                        BertForPreTraining(BERT_TINY, seed=4,
                                           dropout_p=0.0), fresh)
        assert fresh.step_count == 5


class TestDoctests:
    @pytest.mark.parametrize("module_name", [
        "repro.model.bert",
        "repro.config",
    ])
    def test_module_doctests(self, module_name):
        import importlib
        module = importlib.import_module(module_name)
        results = doctest.testmod(module, verbose=False)
        assert results.failed == 0
