"""Fault plans and fault sites: parsing, determinism, injection helpers.

The contract under test is the one the chaos-determinism suite builds
on: a :class:`~repro.faults.plan.FaultPlan` is a *pure* function of
``(seed, site, occurrence index)`` — no RNG state, no ordering
dependence — and the site helpers are no-ops without an active plan.
"""

import os
import pickle

import pytest

from repro.distributed.network import LinkSpec
from repro.distributed.simulator import (CollectiveFaults,
                                         simulate_hierarchical_allreduce,
                                         simulate_ring_allreduce,
                                         simulate_tree_allreduce)
from repro.faults import sites
from repro.faults.plan import (FaultPlan, FaultRule, parse_duration,
                               parse_rule, site_uniform)
from repro.runner.cache import QUARANTINE_DIR, ResultCache


@pytest.fixture(autouse=True)
def no_active_plan():
    """Every test starts and ends with no process-wide plan."""
    sites.deactivate()
    os.environ.pop(sites.FAULTS_ENV, None)
    os.environ.pop(sites.FAULTS_SEED_ENV, None)
    yield
    sites.deactivate()
    os.environ.pop(sites.FAULTS_ENV, None)
    os.environ.pop(sites.FAULTS_SEED_ENV, None)


class TestParsing:
    def test_duration_units(self):
        assert parse_duration("50ms") == pytest.approx(0.05)
        assert parse_duration("1.5s") == pytest.approx(1.5)
        assert parse_duration("200us") == pytest.approx(2e-4)

    def test_duration_junk_raises(self):
        with pytest.raises(ValueError):
            parse_duration("fast")

    def test_rule_forms(self):
        assert parse_rule("worker.kill:0.2") == FaultRule(
            "worker.kill", rate=0.2)
        assert parse_rule("compute.slow:50ms") == FaultRule(
            "compute.slow", rate=1.0, delay_s=0.05)
        assert parse_rule("cache.corrupt:0.3:10ms") == FaultRule(
            "cache.corrupt", rate=0.3, delay_s=0.01)

    def test_rule_validation(self):
        with pytest.raises(ValueError):
            parse_rule("worker.kill")
        with pytest.raises(ValueError):
            FaultRule("x", rate=1.5)
        with pytest.raises(ValueError):
            FaultRule("x", rate=0.5, delay_s=-1.0)

    def test_spec_round_trips(self):
        spec = "cache.corrupt:0.1,compute.slow:50ms,worker.kill:0.2"
        plan = FaultPlan.parse(spec, seed=7)
        assert plan.spec() == spec
        again = FaultPlan.parse(plan.spec(), seed=plan.seed)
        assert again.spec() == plan.spec()

    def test_duplicate_site_rejected(self):
        with pytest.raises(ValueError):
            FaultPlan.parse("worker.kill:0.1,worker.kill:0.2")

    def test_empty_spec_rejected(self):
        with pytest.raises(ValueError):
            FaultPlan.parse("  , ,")


class TestDeterminism:
    def test_site_uniform_is_pure_and_in_range(self):
        draws = [site_uniform(3, "worker.kill", k) for k in range(100)]
        assert draws == [site_uniform(3, "worker.kill", k)
                         for k in range(100)]
        assert all(0.0 <= d < 1.0 for d in draws)

    def test_schedule_same_seed_identical(self):
        a = FaultPlan.parse("worker.kill:0.3", seed=11)
        b = FaultPlan.parse("worker.kill:0.3", seed=11)
        assert a.schedule("worker.kill", 200) == b.schedule(
            "worker.kill", 200)

    def test_schedule_is_independent_of_other_sites(self):
        alone = FaultPlan.parse("worker.kill:0.3", seed=5)
        crowded = FaultPlan.parse(
            "worker.kill:0.3,cache.corrupt:0.9,serve.fail:0.5", seed=5)
        assert alone.schedule("worker.kill", 100) == crowded.schedule(
            "worker.kill", 100)

    def test_decide_consumes_occurrences_in_order(self):
        plan = FaultPlan.parse("worker.kill:0.5", seed=9)
        expected = plan.schedule("worker.kill", 50)
        fired = [k for k in range(50)
                 if plan.decide("worker.kill") is not None]
        assert fired == expected
        assert plan.occurrences() == {"worker.kill": 50}

    def test_unknown_site_consumes_nothing(self):
        plan = FaultPlan.parse("worker.kill:0.5", seed=9)
        assert plan.decide("not.a.site") is None
        assert plan.occurrences() == {}

    def test_reset_replays_the_schedule(self):
        plan = FaultPlan.parse("worker.kill:0.5", seed=9)
        first = [plan.decide("worker.kill") for _ in range(20)]
        plan.reset()
        assert [plan.decide("worker.kill") for _ in range(20)] == first

    def test_rate_edges(self):
        always = FaultPlan([FaultRule("s", rate=1.0)])
        never = FaultPlan([FaultRule("s", rate=0.0)])
        assert always.schedule("s", 10) == list(range(10))
        assert never.schedule("s", 10) == []


class TestSites:
    def test_inactive_helpers_are_noops(self):
        assert sites.decide("worker.kill") is None
        assert sites.inject_delay("compute.slow") == 0.0
        sites.inject_failure("worker.kill")  # must not raise
        assert sites.corrupt_bytes("cache.corrupt", b"abc") == b"abc"

    def test_inject_failure_raises_scheduled_kind(self):
        sites.activate(FaultPlan.parse("worker.kill:1", seed=0))
        with pytest.raises(sites.InjectedWorkerKill) as caught:
            sites.inject_failure("worker.kill", sites.InjectedWorkerKill)
        assert caught.value.site == "worker.kill"
        assert caught.value.index == 0

    def test_inject_delay_sleeps_the_scheduled_amount(self):
        sites.activate(FaultPlan.parse("compute.slow:1ms", seed=0))
        assert sites.inject_delay("compute.slow") == pytest.approx(1e-3)

    def test_corrupt_bytes_flips_exactly_one_byte(self):
        sites.activate(FaultPlan.parse("cache.corrupt:1", seed=0))
        data = bytes(range(32))
        mangled = sites.corrupt_bytes("cache.corrupt", data)
        assert mangled != data
        assert len(mangled) == len(data)
        assert sum(a != b for a, b in zip(data, mangled)) == 1

    def test_environment_round_trip(self):
        plan = FaultPlan.parse("worker.kill:0.25,compute.slow:5ms", seed=42)
        sites.export_to_env(plan)
        sites.deactivate()  # force the lazy env read
        loaded = sites.active_plan()
        assert loaded is not None
        assert loaded.spec() == plan.spec()
        assert loaded.seed == 42

    def test_explicit_activation_beats_environment(self):
        os.environ[sites.FAULTS_ENV] = "worker.kill:1"
        sites.activate(None)
        assert sites.active_plan() is None


class TestCacheQuarantine:
    def test_injected_corruption_is_a_miss_and_quarantines(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put_payload("deadbeef" * 8, {"output": "x" * 100})
        sites.activate(FaultPlan.parse("cache.corrupt:1", seed=0))
        assert cache.get_payload("deadbeef" * 8) is None
        assert cache.stats.corrupt == 1
        quarantined = list((tmp_path / QUARANTINE_DIR).iterdir())
        assert len(quarantined) == 1
        assert quarantined[0].suffix == ".corrupt"

    def test_on_disk_corruption_detected_without_a_plan(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = "feedface" * 8
        cache.put_payload(key, {"output": "y" * 100})
        path = next(p for p in tmp_path.glob("*/*.pkl"))
        raw = bytearray(path.read_bytes())
        raw[len(raw) // 2] ^= 0xFF
        path.write_bytes(bytes(raw))
        assert cache.get_payload(key) is None
        assert cache.stats.corrupt == 1
        assert not path.exists()  # moved aside, not left to re-fail

    def test_legacy_unframed_entries_still_load(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = "cafebabe" * 8
        cache.put_payload(key, {"output": "z"})
        path = next(p for p in tmp_path.glob("*/*.pkl"))
        path.write_bytes(pickle.dumps({"output": "z"}))  # pre-CRC format
        assert cache.get_payload(key) == {"output": "z"}


LINK = LinkSpec(name="test", bandwidth_gbps=100.0, latency_us=1.0)


class TestCollectiveFaults:
    def test_none_is_the_fault_free_simulation(self):
        base = simulate_ring_allreduce(1 << 20, 8, LINK)
        assert base.failed_ranks == ()
        assert base.detect_s == 0.0

    def test_same_faults_same_timeline(self):
        faults = CollectiveFaults(seed=7, straggler_rate=0.3,
                                  straggler_delay_s=1e-3,
                                  degraded_link_rate=0.2,
                                  rank_fail_rate=0.2)
        a = simulate_ring_allreduce(1 << 20, 8, LINK, faults)
        b = simulate_ring_allreduce(1 << 20, 8, LINK, faults)
        assert a.events == b.events
        assert a.failed_ranks == b.failed_ranks

    def test_different_seed_different_timeline(self):
        runs = [simulate_ring_allreduce(
            1 << 20, 8, LINK,
            CollectiveFaults(seed=seed, straggler_rate=0.3,
                             straggler_delay_s=1e-3))
            for seed in (1, 2)]
        assert runs[0].events != runs[1].events

    def test_stragglers_slow_the_ring(self):
        base = simulate_ring_allreduce(1 << 20, 8, LINK)
        slow = simulate_ring_allreduce(
            1 << 20, 8, LINK,
            CollectiveFaults(seed=3, straggler_rate=0.5,
                             straggler_delay_s=1e-3))
        assert slow.completion_s > base.completion_s

    def test_failed_ranks_drop_out_and_pay_detection(self):
        faults = CollectiveFaults(seed=0, failed_ranks=(2, 5),
                                  detect_timeout_s=0.25)
        run = simulate_ring_allreduce(1 << 20, 8, LINK, faults)
        assert run.failed_ranks == (2, 5)
        assert run.detect_s == 0.25
        participants = ({e.source for e in run.events}
                        | {e.destination for e in run.events})
        assert participants == {0, 1, 3, 4, 6, 7}
        assert min(e.start_s for e in run.events) >= 0.25

    def test_somebody_always_survives(self):
        faults = CollectiveFaults(seed=0, failed_ranks=(0, 1, 2, 3))
        assert len(faults.failed(4)) == 3

    def test_tree_under_faults_is_deterministic(self):
        faults = CollectiveFaults(seed=5, straggler_rate=0.4,
                                  straggler_delay_s=2e-3, rank_fail_rate=0.2)
        a = simulate_tree_allreduce(1 << 20, 8, LINK, faults)
        assert a.events == simulate_tree_allreduce(1 << 20, 8, LINK,
                                                   faults).events

    def test_hierarchical_faults_hit_the_inter_node_ring(self):
        faults = CollectiveFaults(seed=1, failed_ranks=(1,),
                                  detect_timeout_s=0.1)
        run = simulate_hierarchical_allreduce(
            1 << 20, nodes=4, devices_per_node=2, intra_link=LINK,
            inter_link=LINK, faults=faults)
        assert run.failed_ranks == (1,)  # a dead *node*

    def test_from_plan_maps_net_sites(self):
        plan = FaultPlan.parse(
            "net.straggle:0.3:2ms,net.degrade:0.1,net.rank_fail:0.25",
            seed=3)
        faults = CollectiveFaults.from_plan(plan)
        assert faults.seed == 3
        assert faults.straggler_rate == 0.3
        assert faults.straggler_delay_s == pytest.approx(2e-3)
        assert faults.degraded_link_rate == 0.1
        assert faults.rank_fail_rate == 0.25
