"""End-to-end packed-sequence semantics on the executable model.

Packing several segments into one sequence must be *semantically invisible*
when the block-diagonal attention bias is applied: each segment's encoder
output equals what it would get processed alone.  These tests drive the
real NumPy model to verify that, closing the loop between the data-pipeline
optimization and the model's attention masking.
"""

import numpy as np
import pytest

from repro.config import BertConfig
from repro.data import (MarkovCorpus, SequencePacker, Vocab,
                        packed_attention_bias)
from repro.model import BertForPreTraining

TINY = BertConfig(num_layers=2, d_model=32, num_heads=2, d_ff=64,
                  vocab_size=256, max_position=128, name="pack-tiny")


@pytest.fixture(scope="module")
def setup():
    vocab = Vocab(size=TINY.vocab_size)
    corpus = MarkovCorpus(vocab, seed=0)
    packer = SequencePacker(vocab, corpus, seq_len=96, min_pair=16,
                            max_pair=24, seed=1)
    model = BertForPreTraining(TINY, seed=2, dropout_p=0.0)
    packed = next(p for p in packer.pack(12)
                  if (p.sequence_ids >= 0).any()
                  and p.sequence_ids.max() >= 1)
    return vocab, model, packed


class TestPackedSemantics:
    def test_fixture_has_multiple_segments(self, setup):
        _, _, packed = setup
        assert packed.sequence_ids.max() >= 1
        assert 0.0 < packed.efficiency <= 1.0

    def test_segments_isolated_under_packed_bias(self, setup):
        """Changing tokens of segment 1 must not change segment 0's
        encoder output when the packed bias is applied."""
        vocab, model, packed = setup
        bias = packed_attention_bias(packed)
        tokens = packed.token_ids[None, :]
        base = model.encoder(
            model.embeddings(tokens, packed.segment_ids[None, :]),
            bias).data

        altered = packed.token_ids.copy()
        seg1 = np.flatnonzero(packed.sequence_ids == 1)
        altered[seg1] = vocab.first_regular  # clobber segment 1
        other = model.encoder(
            model.embeddings(altered[None, :],
                             packed.segment_ids[None, :]),
            bias).data

        seg0 = np.flatnonzero(packed.sequence_ids == 0)
        np.testing.assert_allclose(base[0, seg0], other[0, seg0],
                                   atol=1e-5)

    def test_without_bias_segments_interfere(self, setup):
        vocab, model, packed = setup
        tokens = packed.token_ids[None, :]
        base = model.encoder(
            model.embeddings(tokens, packed.segment_ids[None, :])).data
        altered = packed.token_ids.copy()
        seg1 = np.flatnonzero(packed.sequence_ids == 1)
        altered[seg1] = vocab.first_regular
        other = model.encoder(
            model.embeddings(altered[None, :],
                             packed.segment_ids[None, :])).data
        seg0 = np.flatnonzero(packed.sequence_ids == 0)
        assert not np.allclose(base[0, seg0], other[0, seg0], atol=1e-5)

    def test_attention_rows_sum_to_one_under_packed_bias(self, setup):
        vocab, model, packed = setup
        bias = packed_attention_bias(packed)
        attention = model.encoder.layers()[0].attention
        hidden = model.embeddings(packed.token_ids[None, :],
                                  packed.segment_ids[None, :])
        probs = attention.attention_scores(hidden, bias).data
        valid = np.flatnonzero(packed.sequence_ids >= 0)
        sums = probs[0, :, valid, :].sum(axis=-1)
        np.testing.assert_allclose(sums, np.ones_like(sums), rtol=1e-5)
