"""Tests for GEMM shapes: cost math and Table 2b correspondence."""

import pytest

from repro.config import BERT_LARGE, Precision, training_point
from repro.ops.base import DType
from repro.ops.gemm import (GemmShape, attention_output_gemms,
                            attention_score_gemms, linear_layer_gemms)
from repro.trace.bert_trace import transformer_gemm_shapes


class TestGemmShape:
    def test_flops_counts_two_per_mac(self):
        shape = GemmShape(m=4, n=5, k=6)
        assert shape.flops == 2 * 4 * 5 * 6

    def test_batch_multiplies_cost(self):
        single = GemmShape(m=4, n=5, k=6)
        batched = GemmShape(m=4, n=5, k=6, batch=7)
        assert batched.flops == 7 * single.flops
        assert batched.elements() == 7 * single.elements()

    def test_bytes_accounting_fp32(self):
        shape = GemmShape(m=2, n=3, k=4)
        assert shape.bytes_read(DType.FP32) == (2 * 4 + 4 * 3) * 4
        assert shape.bytes_written(DType.FP32) == 2 * 3 * 4

    def test_accumulate_reads_output(self):
        base = GemmShape(m=2, n=3, k=4)
        acc = GemmShape(m=2, n=3, k=4, accumulate=True)
        assert acc.bytes_read(DType.FP32) == base.bytes_read(DType.FP32) + 24

    def test_fp16_halves_traffic(self):
        shape = GemmShape(m=8, n=8, k=8)
        assert shape.bytes_total(DType.FP16) * 2 == shape.bytes_total(DType.FP32)

    def test_intensity_grows_with_square_size(self):
        small = GemmShape(m=64, n=64, k=64)
        large = GemmShape(m=1024, n=1024, k=1024)
        assert (large.arithmetic_intensity(DType.FP32)
                > small.arithmetic_intensity(DType.FP32))

    def test_label_format_matches_fig6(self):
        shape = GemmShape(m=128, n=128, k=64, batch=512, transpose_b=True)
        assert shape.label == "NT,128,128,64,[512]"
        plain = GemmShape(m=1024, n=4096, k=1024)
        assert plain.label == "NN,1024,4096,1024"

    def test_transposed_swaps_dims_and_flags(self):
        shape = GemmShape(m=3, n=5, k=7, transpose_a=True)
        t = shape.transposed()
        assert (t.m, t.n, t.k) == (5, 3, 7)
        assert t.transpose_a is True   # not B -> not transpose_b(False)
        assert t.transpose_b is False  # not A -> not transpose_a(True)
        assert t.flops == shape.flops

    @pytest.mark.parametrize("bad", [
        dict(m=0, n=1, k=1), dict(m=1, n=-1, k=1), dict(m=1, n=1, k=1, batch=0),
    ])
    def test_invalid_dims_rejected(self, bad):
        with pytest.raises(ValueError):
            GemmShape(**bad)


class TestTable2bShapes:
    """The GEMM shapes must match Table 2b symbol for symbol."""

    @pytest.fixture
    def dims(self):
        training = training_point(1, 32, Precision.FP32)
        return {
            "d": BERT_LARGE.d_model,
            "dff": BERT_LARGE.d_ff,
            "dh": BERT_LARGE.d_head,
            "nB": training.tokens_per_iteration,
            "n": training.seq_len,
            "Bh": training.batch_size * BERT_LARGE.num_heads,
            "shapes": transformer_gemm_shapes(BERT_LARGE, training),
        }

    def test_linear_row(self, dims):
        d, nB = dims["d"], dims["nB"]
        linear = dims["shapes"]["linear"]
        assert (linear["fwd"].m, linear["fwd"].n, linear["fwd"].k) == (d, nB, d)
        assert (linear["bwd_act"].m, linear["bwd_act"].n,
                linear["bwd_act"].k) == (d, nB, d)
        assert (linear["bwd_wt"].m, linear["bwd_wt"].n,
                linear["bwd_wt"].k) == (d, d, nB)

    def test_attention_score_row(self, dims):
        n, dh, Bh = dims["n"], dims["dh"], dims["Bh"]
        score = dims["shapes"]["attn_score"]
        assert (score["fwd"].m, score["fwd"].n, score["fwd"].k) == (n, n, dh)
        assert score["fwd"].batch == Bh
        assert (score["bwd_act"].m, score["bwd_act"].n,
                score["bwd_act"].k) == (n, dh, n)
        assert (score["bwd_wt"].m, score["bwd_wt"].n,
                score["bwd_wt"].k) == (dh, n, n)

    def test_attention_output_row(self, dims):
        n, dh, Bh = dims["n"], dims["dh"], dims["Bh"]
        out = dims["shapes"]["attn_output"]
        assert (out["fwd"].m, out["fwd"].n, out["fwd"].k) == (dh, n, n)
        assert out["fwd"].batch == Bh
        assert (out["bwd_act"].m, out["bwd_act"].n,
                out["bwd_act"].k) == (dh, n, n)
        assert (out["bwd_wt"].m, out["bwd_wt"].n,
                out["bwd_wt"].k) == (n, n, dh)

    def test_fc_rows(self, dims):
        d, dff, nB = dims["d"], dims["dff"], dims["nB"]
        fc1, fc2 = dims["shapes"]["fc1"], dims["shapes"]["fc2"]
        assert (fc1["fwd"].m, fc1["fwd"].n, fc1["fwd"].k) == (dff, nB, d)
        assert (fc1["bwd_act"].m, fc1["bwd_act"].n,
                fc1["bwd_act"].k) == (d, nB, dff)
        assert (fc1["bwd_wt"].m, fc1["bwd_wt"].n,
                fc1["bwd_wt"].k) == (d, dff, nB)
        assert (fc2["fwd"].m, fc2["fwd"].n, fc2["fwd"].k) == (d, nB, dff)
        assert (fc2["bwd_act"].m, fc2["bwd_act"].n,
                fc2["bwd_act"].k) == (dff, nB, d)
        assert (fc2["bwd_wt"].m, fc2["bwd_wt"].n,
                fc2["bwd_wt"].k) == (dff, d, nB)

    def test_weight_gradients_accumulate(self, dims):
        for op in ("linear", "fc1", "fc2"):
            assert dims["shapes"][op]["bwd_wt"].accumulate

    def test_gemm_dims_scale_with_tokens(self):
        # Takeaway 5: GEMM dims are multiples of B*n and hidden sizes.
        small = transformer_gemm_shapes(BERT_LARGE,
                                        training_point(1, 4, Precision.FP32))
        large = transformer_gemm_shapes(BERT_LARGE,
                                        training_point(1, 8, Precision.FP32))
        assert large["linear"]["fwd"].n == 2 * small["linear"]["fwd"].n
        assert (large["attn_score"]["fwd"].batch
                == 2 * small["attn_score"]["fwd"].batch)

    def test_slicing_divides_per_device_dims(self):
        training = training_point(1, 32, Precision.FP32)
        full = transformer_gemm_shapes(BERT_LARGE, training, slicing=1)
        half = transformer_gemm_shapes(BERT_LARGE, training, slicing=2)
        assert half["linear"]["fwd"].m * 2 == full["linear"]["fwd"].m
        assert half["linear_out"]["fwd"].k * 2 == full["linear_out"]["fwd"].k
        assert half["fc1"]["fwd"].m * 2 == full["fc1"]["fwd"].m
        assert (half["attn_score"]["fwd"].batch * 2
                == full["attn_score"]["fwd"].batch)

    def test_slicing_must_divide_model(self):
        training = training_point(1, 32, Precision.FP32)
        with pytest.raises(ValueError):
            transformer_gemm_shapes(BERT_LARGE, training, slicing=5)


class TestShapeConstructors:
    def test_linear_layer_gemms_flops_balance(self):
        # Backward has exactly 2x forward FLOPs for a dense layer.
        shapes = linear_layer_gemms(64, 128, 256)
        fwd = shapes["fwd"].flops
        assert shapes["bwd_act"].flops + shapes["bwd_wt"].flops == 2 * fwd

    def test_attention_constructors_flops_balance(self):
        for ctor in (attention_score_gemms, attention_output_gemms):
            shapes = ctor(128, 64, 512)
            assert (shapes["bwd_act"].flops + shapes["bwd_wt"].flops
                    == 2 * shapes["fwd"].flops)
