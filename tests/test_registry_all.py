"""End-to-end smoke: every registered experiment runs and renders."""

import pytest

from repro.experiments import REGISTRY, run_experiment


@pytest.mark.parametrize("experiment_id", sorted(REGISTRY))
def test_experiment_runs_and_renders(experiment_id):
    output = run_experiment(experiment_id)
    assert isinstance(output, str)
    assert len(output.strip()) > 20
    # Rendered tables/bars always carry multiple lines.
    assert "\n" in output


def test_registry_descriptions_unique_and_present():
    descriptions = [e.description for e in REGISTRY.values()]
    assert all(descriptions)
    assert len(set(descriptions)) == len(descriptions)


def test_cli_run_all(capsys):
    from repro.cli import main
    assert main(["run", "all"]) == 0
    out = capsys.readouterr().out
    for experiment_id in REGISTRY:
        assert f"{experiment_id}:" in out


def test_cli_export(tmp_path, capsys):
    from repro.cli import main
    path = str(tmp_path / "fig3.csv")
    assert main(["export", "fig3", path]) == 0
    with open(path) as handle:
        header = handle.readline()
    assert header.startswith("label,")


def test_cli_export_rejects_non_row_experiment(tmp_path, capsys):
    from repro.cli import main
    assert main(["export", "fig4", str(tmp_path / "x.csv")]) == 2
