"""Tests for the analytical multi-device training models (Sec. 5)."""

import pytest

from repro.config import BERT_LARGE, BERT_TINY, Precision, TrainingConfig, training_point
from repro.distributed import (ALLREDUCES_PER_LAYER, PCIE4, XGMI, LinkSpec,
                               allgather_time, broadcast_time,
                               build_sliced_iteration_trace,
                               data_parallel_timeline,
                               exposed_dp_communication, hybrid_timeline,
                               ring_allreduce_time, single_device_timeline,
                               sliced_parameter_inventory,
                               tensor_slicing_communication,
                               tensor_slicing_timeline)
from repro.hw import mi100
from repro.ops.base import Component
from repro.profiler import profile_trace
from repro.trace import bert_parameter_inventory, build_iteration_trace


@pytest.fixture(scope="module")
def device():
    return mi100()


@pytest.fixture(scope="module")
def b16():
    return training_point(1, 16, Precision.FP32)


class TestLinksAndCollectives:
    def test_link_transfer_time(self):
        link = LinkSpec(name="t", bandwidth_gbps=10.0, latency_us=1.0)
        assert link.transfer_time(10**9) == pytest.approx(0.1 + 1e-6)

    def test_invalid_link_rejected(self):
        with pytest.raises(ValueError):
            LinkSpec(name="bad", bandwidth_gbps=0.0)
        with pytest.raises(ValueError):
            LinkSpec(name="bad", bandwidth_gbps=1.0, latency_us=-1.0)

    def test_ring_allreduce_single_device_free(self):
        assert ring_allreduce_time(10**9, 1, PCIE4) == 0.0

    def test_ring_allreduce_formula(self):
        link = LinkSpec(name="t", bandwidth_gbps=1.0, latency_us=0.0)
        # 2*(D-1) steps of (bytes/D) each.
        t = ring_allreduce_time(8 * 10**9, 8, link)
        assert t == pytest.approx(2 * 7 * 1e9 / 1e9)

    def test_ring_allreduce_grows_slowly_with_devices(self):
        t8 = ring_allreduce_time(10**9, 8, PCIE4)
        t128 = ring_allreduce_time(10**9, 128, PCIE4)
        # Bandwidth term approaches 2x payload/bw; far less than 16x.
        assert t128 < 1.5 * t8

    def test_other_collectives(self):
        assert allgather_time(10**6, 4, PCIE4) > 0
        assert broadcast_time(10**6, 4, PCIE4) > 0
        assert allgather_time(10**6, 1, PCIE4) == 0.0
        with pytest.raises(ValueError):
            ring_allreduce_time(-1, 2, PCIE4)
        with pytest.raises(ValueError):
            ring_allreduce_time(1, 0, PCIE4)


class TestDataParallel:
    def test_single_device_has_no_comm(self, device, b16):
        timeline = single_device_timeline(BERT_LARGE, b16, device)
        assert timeline.buckets["communication"] == 0.0
        assert timeline.devices == 1

    def test_overlap_hides_most_communication(self, device, b16):
        with_overlap = data_parallel_timeline(BERT_LARGE, b16, device,
                                              PCIE4, 128, overlap=True)
        without = data_parallel_timeline(BERT_LARGE, b16, device, PCIE4,
                                         128, overlap=False)
        assert (with_overlap.buckets["communication"]
                < 0.35 * without.buckets["communication"])

    def test_no_overlap_matches_full_allreduce(self, device, b16):
        trace = build_iteration_trace(BERT_LARGE, b16)
        profile = profile_trace(trace.kernels, device)
        exposed = exposed_dp_communication(BERT_LARGE, b16, profile, PCIE4,
                                           128, overlap=False)
        grads = sum(t.n_elements
                    for t in bert_parameter_inventory(BERT_LARGE)) * 4
        assert exposed == pytest.approx(
            ring_allreduce_time(grads, 128, PCIE4))

    def test_d2_profile_close_to_s1(self, device, b16):
        # Obs. 5: DP with overlap looks like single-GPU training.
        s1 = single_device_timeline(BERT_LARGE, b16, device)
        d2 = data_parallel_timeline(BERT_LARGE, b16, device, PCIE4, 128,
                                    overlap=True)
        assert d2.total < 1.15 * s1.total

    def test_d1_communication_share_in_band(self, device, b16):
        # Fig. 11: D1 spends ~19% communicating (we allow 15-30%).
        d1 = data_parallel_timeline(BERT_LARGE, b16, device, PCIE4, 128,
                                    overlap=False)
        assert 0.15 < d1.communication_fraction < 0.30

    def test_compute_buckets_unchanged_by_dp(self, device, b16):
        s1 = single_device_timeline(BERT_LARGE, b16, device)
        d1 = data_parallel_timeline(BERT_LARGE, b16, device, PCIE4, 128,
                                    overlap=False)
        for bucket in ("transformer", "optimizer", "output"):
            assert d1.buckets[bucket] == pytest.approx(s1.buckets[bucket])

    def test_faster_link_reduces_exposure(self, device, b16):
        slow = data_parallel_timeline(BERT_LARGE, b16, device, PCIE4, 128,
                                      overlap=True)
        fast = data_parallel_timeline(BERT_LARGE, b16, device, XGMI, 128,
                                      overlap=True)
        assert (fast.buckets["communication"]
                <= slow.buckets["communication"])


class TestTensorSlicing:
    def test_sliced_inventory_shrinks_matrices(self):
        full = bert_parameter_inventory(BERT_LARGE)
        half = sliced_parameter_inventory(BERT_LARGE, 2)
        full_total = sum(t.n_elements for t in full)
        half_total = sum(t.n_elements for t in half)
        assert 0.5 < half_total / full_total < 0.56  # LN/embed replicated

    def test_sliced_trace_has_less_encoder_work(self, b16):
        full = build_iteration_trace(BERT_LARGE, b16)
        sliced = build_sliced_iteration_trace(BERT_LARGE, b16, 4)
        full_flops = sum(k.flops for k in full.select(
            component=Component.TRANSFORMER))
        sliced_flops = sum(k.flops for k in sliced.select(
            component=Component.TRANSFORMER))
        assert sliced_flops == pytest.approx(full_flops / 4, rel=0.05)

    def test_communication_count(self, b16):
        # 4 AllReduces per layer per iteration (Sec. 5.1).
        per_ar = ring_allreduce_time(
            b16.tokens_per_iteration * BERT_LARGE.d_model * 4, 2, PCIE4)
        total = tensor_slicing_communication(BERT_LARGE, b16, PCIE4, 2)
        assert total == pytest.approx(
            per_ar * BERT_LARGE.num_layers * ALLREDUCES_PER_LAYER)

    def test_one_way_is_free(self, b16):
        assert tensor_slicing_communication(BERT_LARGE, b16, PCIE4, 1) == 0.0

    def test_lamb_share_halves_with_two_way(self, device, b16):
        # Takeaway 12.
        s1 = single_device_timeline(BERT_LARGE, b16, device)
        t1 = tensor_slicing_timeline(BERT_LARGE, b16, device, PCIE4, 2)
        s1_lamb = s1.buckets["optimizer"]
        t1_lamb = t1.buckets["optimizer"]
        assert t1_lamb == pytest.approx(0.5 * s1_lamb, rel=0.15)

    def test_communication_share_grows_with_ways(self, device):
        # Takeaway 13 (T2 uses a larger per-device batch, as in Fig. 11).
        t1 = tensor_slicing_timeline(BERT_LARGE,
                                     training_point(1, 16, Precision.FP32),
                                     device, PCIE4, 2)
        t2 = tensor_slicing_timeline(BERT_LARGE,
                                     training_point(1, 64, Precision.FP32),
                                     device, PCIE4, 8)
        assert t2.communication_fraction > 2 * t1.communication_fraction
        assert 0.30 < t2.communication_fraction < 0.55  # paper: ~42%

    def test_replicated_layers_share_grows(self, device, b16):
        t1 = tensor_slicing_timeline(BERT_LARGE, b16, device, PCIE4, 2)
        t8 = tensor_slicing_timeline(BERT_LARGE, b16, device, PCIE4, 8)
        assert (t8.fraction("dr_rc_ln_replicated")
                > t1.fraction("dr_rc_ln_replicated"))

    def test_invalid_ways_rejected(self, b16):
        with pytest.raises(ValueError):
            build_sliced_iteration_trace(BERT_LARGE, b16, 5)
        with pytest.raises(ValueError):
            sliced_parameter_inventory(BERT_LARGE, 0)


class TestHybrid:
    def test_hybrid_combines_both_costs(self, device, b16):
        ts_only = tensor_slicing_timeline(BERT_LARGE, b16, device, XGMI, 2)
        hybrid = hybrid_timeline(BERT_LARGE, b16, device, ts_link=XGMI,
                                 dp_link=PCIE4, ts_ways=2, dp_replicas=64)
        assert hybrid.devices == 128
        assert (hybrid.buckets["communication"]
                >= ts_only.buckets["communication"])

    def test_single_replica_adds_nothing(self, device, b16):
        ts_only = tensor_slicing_timeline(BERT_LARGE, b16, device, XGMI, 2)
        hybrid = hybrid_timeline(BERT_LARGE, b16, device, ts_link=XGMI,
                                 dp_link=PCIE4, ts_ways=2, dp_replicas=1)
        assert hybrid.total == pytest.approx(ts_only.total)

    def test_validation(self, device, b16):
        with pytest.raises(ValueError):
            hybrid_timeline(BERT_LARGE, b16, device, ts_link=XGMI,
                            dp_link=PCIE4, ts_ways=2, dp_replicas=0)
        with pytest.raises(ValueError):
            hybrid_timeline(BERT_LARGE, b16, device, ts_link=XGMI,
                            dp_link=PCIE4, ts_ways=2, dp_replicas=2,
                            overlap_fraction=1.5)


class TestTimeline:
    def test_fractions_sum_to_one(self, device, b16):
        timeline = tensor_slicing_timeline(BERT_TINY,
                                           TrainingConfig(batch_size=2,
                                                          seq_len=16),
                                           device, PCIE4, 2)
        total = sum(timeline.fraction(b) for b in timeline.buckets)
        assert total == pytest.approx(1.0)
