"""Tests for the device model: roofline, GEMM timing, bandwidth curves."""

import pytest

from repro.hw.device import (DeviceModel, GemmEngineSpec,
                             balanced_accelerator, mi100)
from repro.hw.gemm_model import gemm_time, is_memory_bound, shape_efficiency
from repro.hw.roofline import attainable, classify_kernels, place, ridge_point
from repro.hw.timing import kernel_time, trace_time
from repro.ops.base import (AccessPattern, Component, DType, Kernel, OpClass,
                            Phase, Region)
from repro.ops.gemm import GemmShape
from repro.ops.intensity import Boundedness, IntensityRecord


@pytest.fixture
def device():
    return mi100()


class TestDeviceModel:
    def test_mi100_published_numbers(self, device):
        assert device.mem_bandwidth_gbps == pytest.approx(1228.8)
        assert device.compute_units == 120
        assert device.gemm_engines[DType.FP16].peak_tflops == pytest.approx(184.6)

    def test_machine_balance_orders_by_dtype(self, device):
        # FP16 GEMMs need far more intensity to be compute-bound.
        assert (device.machine_balance(DType.FP16)
                > device.machine_balance(DType.FP32))

    def test_achieved_bandwidth_saturates(self, device):
        small = device.achieved_bandwidth(AccessPattern.STREAMING, 1024)
        large = device.achieved_bandwidth(AccessPattern.STREAMING, 1 << 30)
        assert small < large <= device.peak_bandwidth

    def test_access_pattern_ordering(self, device):
        size = 1 << 26
        streaming = device.achieved_bandwidth(AccessPattern.STREAMING, size)
        irregular = device.achieved_bandwidth(AccessPattern.IRREGULAR, size)
        assert irregular < streaming

    def test_unknown_dtype_falls_back_to_fp32(self, device):
        assert device.gemm_engine(DType.FP64) is device.gemm_engines[DType.FP32]

    def test_with_overrides_is_a_copy(self, device):
        faster = device.with_overrides(mem_bandwidth_gbps=2000.0)
        assert faster.mem_bandwidth_gbps == 2000.0
        assert device.mem_bandwidth_gbps == pytest.approx(1228.8)

    def test_invalid_device_rejected(self):
        with pytest.raises(ValueError):
            DeviceModel(name="bad", gemm_engines={}, vector_tflops={},
                        mem_bandwidth_gbps=100.0)
        with pytest.raises(ValueError):
            DeviceModel(
                name="bad",
                gemm_engines={DType.FP32: GemmEngineSpec(10.0, 0.5)},
                vector_tflops={DType.FP32: 5.0}, mem_bandwidth_gbps=0.0)

    def test_balanced_accelerator_ratio(self):
        dev = balanced_accelerator(100.0, 1000.0, name="x")
        assert dev.machine_balance(DType.FP32) == pytest.approx(
            100e12 * 0.52 / 1e12, rel=1e-6)


class TestGemmTiming:
    def test_efficiency_bounded(self, device):
        for shape in (GemmShape(4096, 4096, 1024), GemmShape(17, 33, 7),
                      GemmShape(128, 128, 64, batch=512)):
            eff = shape_efficiency(shape, device)
            assert 0.0 < eff <= 1.0

    def test_large_square_gemm_is_efficient(self, device):
        assert shape_efficiency(GemmShape(4096, 4096, 4096), device) > 0.8

    def test_small_gemm_is_inefficient(self, device):
        assert (shape_efficiency(GemmShape(64, 64, 64), device)
                < shape_efficiency(GemmShape(4096, 4096, 4096), device))

    def test_fc_gemm_compute_bound_attention_memory_bound(self, device):
        # Takeaway 6 at the shape level (Ph1-B32).
        fc = GemmShape(m=4096, n=4096, k=1024)
        score = GemmShape(m=128, n=128, k=64, batch=512)
        assert not is_memory_bound(fc, DType.FP32, device)
        assert is_memory_bound(score, DType.FP32, device)

    def test_time_includes_launch_overhead(self, device):
        tiny = GemmShape(1, 1, 1)
        t = gemm_time(tiny, DType.FP32, device)
        assert t.total_s >= device.kernel_launch_overhead_s

    def test_fp16_faster_than_fp32_for_large_gemm(self, device):
        shape = GemmShape(4096, 4096, 1024)
        t32 = gemm_time(shape, DType.FP32, device).total_s
        t16 = gemm_time(shape, DType.FP16, device).total_s
        # The paper observes roughly 2-4x GEMM speedup under MP.
        assert 2.0 < t32 / t16 < 5.0

    def test_time_scales_with_flops_for_compute_bound(self, device):
        small = gemm_time(GemmShape(4096, 2048, 1024), DType.FP32,
                          device).total_s
        large = gemm_time(GemmShape(4096, 4096, 1024), DType.FP32,
                          device).total_s
        assert large == pytest.approx(2 * small, rel=0.2)

    def test_missing_shape_rejected_by_kernel_time(self, device):
        k = Kernel(name="g", op_class=OpClass.GEMM, phase=Phase.FORWARD,
                   component=Component.TRANSFORMER, region=Region.FC_GEMM,
                   flops=10, bytes_read=10, bytes_written=10)
        with pytest.raises(ValueError):
            kernel_time(k, device)


class TestKernelTiming:
    def _ew(self, n_bytes: int, flops: int = 0) -> Kernel:
        return Kernel(name="ew", op_class=OpClass.ELEMENTWISE,
                      phase=Phase.FORWARD, component=Component.TRANSFORMER,
                      region=Region.DR_RC_LN, flops=flops,
                      bytes_read=n_bytes, bytes_written=0)

    def test_memory_bound_time_matches_bandwidth(self, device):
        n_bytes = 1 << 28
        t = kernel_time(self._ew(n_bytes), device)
        bw = device.achieved_bandwidth(AccessPattern.STREAMING, n_bytes)
        assert t == pytest.approx(n_bytes / bw
                                  + device.kernel_launch_overhead_s)

    def test_flop_heavy_kernel_limited_by_vector_pipe(self, device):
        heavy = self._ew(1024, flops=10**12)
        t = kernel_time(heavy, device)
        assert t >= 10**12 / (device.vector_tflops[DType.FP32] * 1e12)

    def test_communication_kernels_rejected(self, device):
        k = Kernel(name="ar", op_class=OpClass.COMMUNICATION,
                   phase=Phase.COMMUNICATION,
                   component=Component.COMMUNICATION,
                   region=Region.COMM_ALLREDUCE, flops=0, bytes_read=0,
                   bytes_written=0)
        with pytest.raises(ValueError):
            kernel_time(k, device)

    def test_trace_time_is_additive(self, device):
        kernels = [self._ew(1 << 20) for _ in range(5)]
        assert trace_time(kernels, device) == pytest.approx(
            5 * kernel_time(kernels[0], device))


class TestRoofline:
    def test_ridge_point_positive(self, device):
        assert ridge_point(device, DType.FP32) > 0

    def test_attainable_clamps_at_compute_roof(self, device):
        roof = device.gemm_engine(DType.FP32).effective_peak
        assert attainable(1e9, device, DType.FP32) == pytest.approx(roof)

    def test_attainable_linear_in_memory_region(self, device):
        low = attainable(0.5, device, DType.FP32)
        assert low == pytest.approx(0.5 * device.peak_bandwidth)

    def test_attainable_rejects_negative(self, device):
        with pytest.raises(ValueError):
            attainable(-1.0, device, DType.FP32)

    def test_place_classifies(self, device):
        hot = IntensityRecord(label="fc", flops=10**12, bytes_total=10**9)
        cold = IntensityRecord(label="ew", flops=10**6, bytes_total=10**9)
        assert place(hot, device,
                     DType.FP32).boundedness is Boundedness.COMPUTE_BOUND
        assert place(cold, device,
                     DType.FP32).boundedness is Boundedness.MEMORY_BOUND

    def test_classify_kernels(self, device):
        ew = Kernel(name="ew", op_class=OpClass.ELEMENTWISE,
                    phase=Phase.FORWARD, component=Component.TRANSFORMER,
                    region=Region.DR_RC_LN, flops=100, bytes_read=10**6,
                    bytes_written=10**6)
        result = classify_kernels([ew], device)
        assert result["ew"] is Boundedness.MEMORY_BOUND
