"""Tests for sequence packing and the training-configuration advisor."""

import numpy as np
import pytest

from repro.config import BERT_LARGE, BERT_TINY
from repro.core import advise, render_advice
from repro.data import (MarkovCorpus, SequencePacker, Vocab,
                        first_fit_decreasing, packed_attention_bias)
from repro.hw import mi100
from repro.config import Precision


@pytest.fixture
def packer():
    vocab = Vocab(size=256)
    corpus = MarkovCorpus(vocab, seed=0)
    return SequencePacker(vocab, corpus, seq_len=512, min_pair=32,
                          max_pair=128, seed=1)


class TestFirstFitDecreasing:
    def test_simple_packing(self):
        bins = first_fit_decreasing([50, 50, 50, 50], 100)
        assert len(bins) == 2
        assert all(len(b) == 2 for b in bins)

    def test_all_items_placed_once(self):
        lengths = [37, 81, 12, 55, 99, 3, 44]
        bins = first_fit_decreasing(lengths, 100)
        placed = sorted(i for b in bins for i in b)
        assert placed == list(range(len(lengths)))

    def test_no_bin_overflows(self):
        rng = np.random.default_rng(0)
        lengths = list(rng.integers(10, 90, size=60))
        bins = first_fit_decreasing(lengths, 100)
        for b in bins:
            assert sum(lengths[i] for i in b) <= 100

    def test_oversized_item_rejected(self):
        with pytest.raises(ValueError):
            first_fit_decreasing([150], 100)
        with pytest.raises(ValueError):
            first_fit_decreasing([1], 0)


class TestSequencePacker:
    def test_packed_shape_and_efficiency(self, packer):
        packed = packer.pack(40)
        assert packed
        for sequence in packed:
            assert sequence.token_ids.shape == (512,)
            assert 0.0 < sequence.efficiency <= 1.0
        # Packing several ~100-token segments into 512 should be dense.
        mean_efficiency = np.mean([p.efficiency for p in packed])
        assert mean_efficiency > 0.6

    def test_saves_most_sequences(self, packer):
        # ~80-token average segments: roughly 5-6 fit per 512 sequence.
        assert packer.padding_saved(60) > 0.6

    def test_sequence_ids_contiguous_per_segment(self, packer):
        sequence = packer.pack(12)[0]
        ids = sequence.sequence_ids
        used = ids[ids >= 0]
        # Segments appear in slot order without interleaving.
        changes = np.flatnonzero(np.diff(used))
        assert all(used[c + 1] == used[c] + 1 for c in changes)

    def test_cross_segment_attention_blocked(self, packer):
        sequence = packer.pack(12)[0]
        allowed = sequence.attention_allowed()
        ids = sequence.sequence_ids
        first = np.flatnonzero(ids == 0)
        second = np.flatnonzero(ids == 1)
        if len(second):
            assert not allowed[first[0], second[0]]
            assert allowed[first[0], first[-1]]

    def test_padding_never_attended(self, packer):
        sequence = packer.pack(3)[0]
        allowed = sequence.attention_allowed()
        padding = np.flatnonzero(sequence.sequence_ids < 0)
        if len(padding):
            assert not allowed[:, padding].any()
            assert not allowed[padding, :].any()

    def test_bias_shape(self, packer):
        bias = packed_attention_bias(packer.pack(3)[0])
        assert bias.shape == (1, 1, 512, 512)
        assert bias.min() < -1e8 and bias.max() == 0.0

    def test_validation(self, packer):
        with pytest.raises(ValueError):
            packer.pack(0)
        vocab = Vocab(size=256)
        corpus = MarkovCorpus(vocab, seed=0)
        with pytest.raises(ValueError):
            SequencePacker(vocab, corpus, seq_len=64, min_pair=100,
                           max_pair=120)


class TestAdvisor:
    @pytest.fixture(scope="class")
    def advice(self):
        return advise(BERT_LARGE, mi100(),
                      batch_sizes=(8, 32, 96))

    def test_best_fits_and_leads(self, advice):
        assert advice.best is not None
        assert advice.best.fits
        throughputs = [o.tokens_per_second for o in advice.options
                       if o.fits]
        assert advice.best.tokens_per_second == max(throughputs)

    def test_mixed_precision_wins(self, advice):
        # MP doubles effective capacity and triples GEMM speed; it should
        # dominate the frontier on this device.
        assert advice.best.training.precision is Precision.MIXED

    def test_checkpointing_only_offered_when_needed(self, advice):
        for option in advice.options:
            if option.training.activation_checkpointing:
                plain = next(
                    o for o in advice.options
                    if o.training.batch_size == option.training.batch_size
                    and o.training.precision is option.training.precision
                    and not o.training.activation_checkpointing)
                assert not plain.fits

    def test_non_fitting_configs_reported(self):
        advice = advise(BERT_LARGE, mi100(), batch_sizes=(96,),
                        precisions=(Precision.FP32,),
                        consider_checkpointing=False)
        assert advice.best is None
        assert all(not o.fits for o in advice.options)

    def test_tiny_model_everything_fits(self):
        advice = advise(BERT_TINY, mi100(), seq_len=32,
                        batch_sizes=(8, 16))
        assert all(o.fits for o in advice.options)

    def test_render(self, advice):
        out = render_advice(advice)
        assert "throughput" in out and "best" in out
