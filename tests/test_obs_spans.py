"""Tests for the span tracer (:mod:`repro.obs.spans`)."""

from __future__ import annotations

import threading
import time

import pytest

from repro.obs.spans import (SpanTracer, aggregate_spans, get_tracer,
                             merge_span_summaries, span, traced)


@pytest.fixture
def tracer():
    tracer = SpanTracer()
    tracer.enable()
    return tracer


class TestSpanBasics:
    def test_disabled_tracer_records_nothing(self):
        tracer = SpanTracer()
        with tracer.span("work"):
            pass
        assert tracer.reset() == []

    def test_disabled_span_is_shared_noop(self):
        tracer = SpanTracer()
        assert tracer.span("a") is tracer.span("b")

    def test_span_records_duration_and_attrs(self, tracer):
        with tracer.span("work", kernels=7):
            time.sleep(0.001)
        (record,) = tracer.reset()
        assert record.name == "work"
        assert record.duration_s >= 0.001
        assert record.attrs == {"kernels": 7}

    def test_nesting_sets_parent_and_depth(self, tracer):
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        inner, outer = tracer.reset()  # finish order: inner first
        assert inner.parent_id == outer.span_id
        assert (outer.depth, inner.depth) == (0, 1)
        assert outer.parent_id == -1

    def test_annotate_targets_innermost_open_span(self, tracer):
        with tracer.span("outer"):
            with tracer.span("inner"):
                tracer.annotate(result="hit")
        inner, outer = tracer.reset()
        assert inner.attrs == {"result": "hit"}
        assert outer.attrs == {}

    def test_current_tracks_the_open_stack(self, tracer):
        assert tracer.current() is None
        with tracer.span("outer") as outer:
            assert tracer.current() is outer
        assert tracer.current() is None

    def test_span_survives_exceptions(self, tracer):
        with pytest.raises(RuntimeError):
            with tracer.span("doomed"):
                raise RuntimeError("boom")
        (record,) = tracer.reset()
        assert record.name == "doomed"
        assert record.end_s >= record.start_s
        assert tracer.current() is None  # stack unwound

    def test_as_dict_is_json_shaped(self, tracer):
        with tracer.span("work", category="test", n=1):
            pass
        payload = tracer.reset()[0].as_dict()
        assert payload["name"] == "work"
        assert payload["category"] == "test"
        assert payload["attrs"] == {"n": 1}
        assert payload["duration_s"] >= 0


class TestThreadSafety:
    def test_stacks_are_per_thread(self, tracer):
        """Spans on different threads must not nest into each other."""
        barrier = threading.Barrier(2)

        def work(name):
            with tracer.span(name):
                barrier.wait()  # both spans open concurrently
                barrier.wait()

        threads = [threading.Thread(target=work, args=(f"t{i}",))
                   for i in range(2)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        records = tracer.reset()
        assert len(records) == 2
        assert all(r.parent_id == -1 and r.depth == 0 for r in records)
        assert len({r.span_id for r in records}) == 2
        assert len({r.thread_id for r in records}) == 2

    def test_concurrent_spans_all_collected(self, tracer):
        def work():
            for _ in range(50):
                with tracer.span("w"):
                    pass

        threads = [threading.Thread(target=work) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(tracer.reset()) == 200


class TestCapture:
    def test_capture_enables_and_scopes(self):
        tracer = SpanTracer()
        assert not tracer.enabled
        with tracer.capture() as scope:
            assert tracer.enabled
            with tracer.span("inside"):
                pass
        assert not tracer.enabled
        assert [s.name for s in scope.spans] == ["inside"]
        assert tracer.reset() == []  # outermost scope drained

    def test_nested_captures_share_spans(self):
        tracer = SpanTracer()
        with tracer.capture() as outer:
            with tracer.span("before"):
                pass
            with tracer.capture() as inner:
                with tracer.span("within"):
                    pass
            assert tracer.enabled  # inner exit must not disable
        assert [s.name for s in inner.spans] == ["within"]
        assert [s.name for s in outer.spans] == ["before", "within"]


class TestModuleLevelAPI:
    def test_module_span_reports_to_process_tracer(self):
        tracer = get_tracer()
        with tracer.capture() as scope:
            with span("module.level", flag=True):
                pass
        assert [s.name for s in scope.spans] == ["module.level"]
        assert scope.spans[0].attrs == {"flag": True}

    def test_traced_decorator(self):
        @traced("decorated.work")
        def work(x):
            return x * 2

        assert work(3) == 6  # disabled: plain call
        with get_tracer().capture() as scope:
            assert work(4) == 8
        assert [s.name for s in scope.spans] == ["decorated.work"]

    def test_traced_default_name(self):
        @traced()
        def helper():
            return None

        with get_tracer().capture() as scope:
            helper()
        assert scope.spans[0].name.endswith("helper")


class TestAggregation:
    def test_aggregate_spans(self, tracer):
        for _ in range(3):
            with tracer.span("a"):
                pass
        with tracer.span("b"):
            pass
        summary = aggregate_spans(tracer.reset())
        assert summary["a"]["count"] == 3
        assert summary["b"]["count"] == 1
        assert summary["a"]["total_s"] >= summary["a"]["max_s"] >= 0

    def test_merge_span_summaries(self):
        one = {"a": {"count": 2, "total_s": 1.0, "max_s": 0.8}}
        two = {"a": {"count": 1, "total_s": 0.5, "max_s": 0.5},
               "b": {"count": 1, "total_s": 0.1, "max_s": 0.1}}
        merged = merge_span_summaries([one, two])
        assert merged["a"] == {"count": 3, "total_s": 1.5, "max_s": 0.8}
        assert merged["b"]["count"] == 1

    def test_merge_of_nothing_is_empty(self):
        assert merge_span_summaries([]) == {}
