"""Request-scoped telemetry through the serve stack.

The acceptance surface of the telemetry pipeline, asserted against the
real App (and, for header checks, the real socket transport):

* a cold ``/profile`` request is **one connected span tree** under one
  ``trace_id`` — ``serve.request`` rooting the engine spans the worker
  thread opened (trace build, profiling, kernel timing);
* ``GET /metrics`` emits valid Prometheus exposition;
* ``GET /debug/trace/<id>`` round-trips the tree through the Perfetto
  exporter's ``validate_chrome_trace``;
* under the 100-client coalescing storm every request keeps its own
  trace id and only the leader's tree carries engine spans;
* batch runs (``--jobs N``) stamp per-experiment trace ids into results
  and manifests.
"""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.obs.flight import build_span_tree
from repro.obs.prometheus import CONTENT_TYPE, validate_exposition
from repro.obs.timeline_export import validate_chrome_trace
from repro.serve import App, HotCache

TINY = "tiny.ph1-b2-fp32"


@pytest.fixture
def app():
    instance = App(workers=2, queue_limit=8, hot_cache=HotCache())
    yield instance
    instance.close()


@pytest.fixture
def cold_engine(tmp_path, monkeypatch):
    """Point the disk cache at an empty directory and drop the memo, so
    the request under test actually computes (and opens engine spans)."""
    from repro.experiments import common
    from repro.runner import cache

    monkeypatch.setenv(cache.CACHE_DIR_ENV, str(tmp_path / "cache"))
    cache.reset_cache()
    common.clear_memo()
    yield
    common.clear_memo()
    monkeypatch.undo()
    cache.reset_cache()


def run(coro):
    return asyncio.run(coro)


class TestConnectedSpanTree:
    def test_cold_profile_request_yields_one_connected_tree(self, app,
                                                            cold_engine):
        """The tentpole acceptance criterion: serve -> engine in one
        trace, across the executor boundary."""
        response = run(app.handle("GET", f"/profile/{TINY}"))
        assert response.status == 200

        (record,) = [r for r in app.flight.records()
                     if r.route == "profile"]
        assert record.cache == "computed"
        assert record.trace_id == response.headers["X-Trace-Id"]

        # Every span of the request shares the record's trace id.
        assert {s["trace_id"] for s in record.spans} == {record.trace_id}

        # One root: serve.request; the engine spans opened inside the
        # worker thread hang off it (the executor carried the context).
        roots = build_span_tree(record.spans)
        assert [r["name"] for r in roots] == ["serve.request"]
        (profile_run,) = roots[0]["children"]
        assert profile_run["name"] == "profile.run"

        def names(node):
            yield node["name"]
            for child in node["children"]:
                yield from names(child)

        descendants = set(names(profile_run))
        assert "trace.build_iteration" in descendants
        assert "timing.kernel_times" in descendants

        # Depths are consistent with the nesting.
        assert roots[0]["depth"] == 0
        assert profile_run["depth"] == 1

    def test_hot_hit_records_no_engine_spans(self, app):
        async def twice():
            await app.handle("GET", f"/profile/{TINY}")
            return await app.handle("GET", f"/profile/{TINY}")

        run(twice())
        hot = [r for r in app.flight.records() if r.cache == "hot"]
        assert len(hot) == 1
        assert [s["name"] for s in hot[0].spans] == ["serve.request"]

    def test_storm_keeps_trace_ids_disjoint(self, app):
        """100 concurrent identical requests: one computation, 100
        distinct traces, engine spans only under the leader's root."""
        async def storm():
            return await asyncio.gather(*(
                app.handle("GET", f"/profile/{TINY}") for _ in range(100)))

        responses = run(storm())
        assert [r.status for r in responses] == [200] * 100

        records = [r for r in app.flight.records() if r.route == "profile"]
        assert len(records) >= 100
        storm_records = records[:100]
        assert len({r.trace_id for r in storm_records}) == 100

        computed = [r for r in storm_records if r.cache == "computed"]
        coalesced = [r for r in storm_records if r.cache == "coalesced"]
        assert len(computed) == 1
        assert len(coalesced) == 99

        # The leader's tree contains the compute; followers only their
        # own serve.request span.
        (leader,) = computed
        leader_names = {s["name"] for s in leader.spans}
        assert "profile.run" in leader_names
        for follower in coalesced:
            assert [s["name"] for s in follower.spans] == ["serve.request"]
            (root,) = build_span_tree(follower.spans)
            assert root["children"] == []


class TestMetricsEndpoint:
    def test_metrics_is_valid_exposition(self, app):
        async def scenario():
            await app.handle("GET", "/healthz")
            return await app.handle("GET", "/metrics")

        response = run(scenario())
        assert response.status == 200
        assert response.content_type == CONTENT_TYPE
        text = response.body.decode()
        assert validate_exposition(text) == []
        assert "serve_requests_total" in text

    def test_metrics_rejects_post(self, app):
        response = run(app.handle("POST", "/metrics"))
        assert response.status == 405


class TestDebugEndpoints:
    def test_debug_requests_lists_the_ring(self, app):
        async def scenario():
            await app.handle("GET", f"/profile/{TINY}")
            return await app.handle("GET", "/debug/requests")

        response = run(scenario())
        payload = json.loads(response.body)
        assert payload["flight"]["capacity"] == app.flight.capacity
        routes = [r["route"] for r in payload["requests"]]
        assert "profile" in routes
        for entry in payload["requests"]:
            assert {"trace_id", "route", "status", "duration_ms",
                    "cache", "spans"} <= set(entry)

    def test_debug_trace_round_trips_through_perfetto(self, app):
        async def scenario():
            first = await app.handle("GET", f"/profile/{TINY}")
            trace_id = first.headers["X-Trace-Id"]
            return await app.handle("GET", f"/debug/trace/{trace_id}")

        response = run(scenario())
        assert response.status == 200
        payload = json.loads(response.body)
        assert payload["spans"]
        assert payload["tree"][0]["name"] == "serve.request"
        assert validate_chrome_trace(payload["perfetto"]) == []

    def test_debug_trace_unknown_id_is_404(self, app):
        response = run(app.handle("GET", "/debug/trace/deadbeef00000000"))
        assert response.status == 404

    def test_trace_id_header_reaches_the_socket_client(self, app):
        from tests.test_serve import http_request, with_server

        async def scenario(host, port):
            return await http_request(host, port, "GET", "/healthz")

        _, headers, _ = run(with_server(app, scenario))
        assert len(headers["x-trace-id"]) == 16


class TestStatsExtensions:
    def test_stats_reports_routes_latency_and_flight(self, app):
        async def scenario():
            await app.handle("GET", f"/profile/{TINY}")
            await app.handle("GET", "/healthz")
            return await app.handle("GET", "/stats")

        payload = json.loads(run(scenario()).body)
        assert payload["uptime_s"] >= 0
        assert payload["hot_cache"]["capacity_bytes"] > 0
        assert {"bytes", "evictions"} <= set(payload["hot_cache"])

        by_route = payload["requests_by_route"]
        assert by_route["profile"]["total"] >= 1
        assert by_route["profile"]["by_status"]["200"] >= 1

        latency = payload["route_latency"]
        assert latency["profile"]["count"] >= 1
        assert {"mean_ms", "p50_ms", "p99_ms"} <= set(latency["profile"])

        assert payload["flight"]["recorded"] >= 2
        assert payload["flight"]["capacity"] == app.flight.capacity


class TestRunnerTraceIds:
    def test_batch_results_and_manifest_carry_trace_ids(self):
        """``repro run all --jobs N``: the parent pre-assigns one trace
        id per experiment; results (even failures) and the manifest
        carry them."""
        from repro.runner.executor import run_experiments
        from repro.runner.manifest import build_manifest

        results = run_experiments(["ghost.one", "ghost.two"], jobs=2,
                                  use_result_cache=False)
        trace_ids = [r.trace_id for r in results]
        assert all(len(t) == 16 for t in trace_ids)
        assert len(set(trace_ids)) == 2

        manifest = build_manifest(results, jobs=2, command="run all")
        listed = [e["trace_id"] for e in manifest["experiments"]]
        assert listed == trace_ids

    def test_run_one_attaches_the_given_context(self):
        """Spans a (simulated) worker opens join the parent's trace."""
        from repro.obs import spans
        from repro.runner.executor import run_one

        tracer = spans.get_tracer()
        context = spans.TraceContext(trace_id=spans.new_trace_id())
        with tracer.capture() as scope:
            result = run_one("ghost.experiment", use_result_cache=False,
                             trace_context=context.as_dict())
        assert result.trace_id == context.trace_id
        experiment_spans = [s for s in scope.spans
                            if s.name == "experiment.ghost.experiment"]
        assert experiment_spans
        assert all(s.trace_id == context.trace_id
                   for s in experiment_spans)

    def test_run_one_generates_a_trace_id_when_none_given(self):
        from repro.runner.executor import run_one

        result = run_one("ghost.experiment", use_result_cache=False)
        assert len(result.trace_id) == 16
