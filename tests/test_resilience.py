"""Resilience policies: retry, circuit breaker, timeout budgets.

The hypothesis properties pin the guarantees the chaos subsystem leans
on: fault schedules are a pure function of the seed (same seed — same
schedule, different seed — different schedule somewhere), and a retry
policy with a deadline *never* sleeps past it, proven on a fake clock
so the test costs no wall-time.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.faults.plan import FaultPlan, FaultRule
from repro.faults.sites import InjectedFault
from repro.resilience.breaker import (CLOSED, HALF_OPEN, OPEN,
                                      CircuitBreaker)
from repro.resilience.retry import (Retry, RetryBudgetExceeded,
                                    TransientError)
from repro.resilience.timeout import Deadline, Timeout

seeds = st.integers(0, 2 ** 32 - 1)


class FakeClock:
    """Deterministic monotonic clock advanced by fake sleeps."""

    def __init__(self):
        self.now = 0.0
        self.sleeps = []

    def __call__(self):
        return self.now

    def sleep(self, seconds):
        self.sleeps.append(seconds)
        self.now += seconds


class TestScheduleProperties:
    @given(seed=seeds, rate=st.floats(0.01, 0.99))
    @settings(max_examples=50, deadline=None)
    def test_same_seed_same_schedule(self, seed, rate):
        rule = FaultRule("worker.kill", rate=rate)
        a = FaultPlan([rule], seed=seed)
        b = FaultPlan([rule], seed=seed)
        assert a.schedule("worker.kill", 128) == b.schedule(
            "worker.kill", 128)

    @given(seed=seeds)
    @settings(max_examples=50, deadline=None)
    def test_different_seeds_differ(self, seed):
        rule = FaultRule("worker.kill", rate=0.5)
        a = FaultPlan([rule], seed=seed)
        b = FaultPlan([rule], seed=seed + 1)
        # 256 draws at rate 0.5: identical schedules from unrelated
        # seeds would need a 2^-256 coincidence.
        assert a.schedule("worker.kill", 256) != b.schedule(
            "worker.kill", 256)

    @given(seed=seeds, attempts=st.integers(2, 8))
    @settings(max_examples=50, deadline=None)
    def test_backoff_is_pure_and_capped(self, seed, attempts):
        policy = Retry(max_attempts=attempts, base_delay_s=0.05,
                       max_delay_s=0.4, seed=seed)
        delays = policy.delays("token")
        assert delays == policy.delays("token")
        assert all(0.0 <= d <= 0.4 for d in delays)

    @given(seed=seeds,
           deadline_s=st.floats(0.05, 5.0),
           attempts=st.integers(1, 10))
    @settings(max_examples=100, deadline=None)
    def test_retry_never_exceeds_deadline(self, seed, deadline_s, attempts):
        clock = FakeClock()
        policy = Retry(max_attempts=attempts, base_delay_s=0.1,
                       max_delay_s=2.0, deadline_s=deadline_s, seed=seed)

        def always_fails():
            raise TransientError("nope")

        with pytest.raises(RetryBudgetExceeded):
            policy.call(always_fails, token="t", sleep=clock.sleep,
                        clock=clock)
        assert clock.now <= deadline_s


class TestRetry:
    def test_succeeds_after_transient_failures(self):
        clock = FakeClock()
        calls = []

        def flaky():
            calls.append(1)
            if len(calls) < 3:
                raise TransientError("again")
            return "done"

        policy = Retry(max_attempts=4, base_delay_s=0.01, seed=0)
        assert policy.call(flaky, sleep=clock.sleep,
                           clock=clock) == "done"
        assert len(calls) == 3
        assert len(clock.sleeps) == 2

    def test_non_transient_propagates_immediately(self):
        calls = []

        def broken():
            calls.append(1)
            raise ValueError("a real bug")

        with pytest.raises(ValueError):
            Retry(max_attempts=5).call(broken, sleep=lambda _s: None)
        assert len(calls) == 1

    def test_exhaustion_wraps_the_last_error(self):
        def always_fails():
            raise TransientError("persistent")

        policy = Retry(max_attempts=3, base_delay_s=0.0, jitter=0.0)
        with pytest.raises(RetryBudgetExceeded) as caught:
            policy.call(always_fails, sleep=lambda _s: None)
        assert caught.value.attempts == 3
        assert isinstance(caught.value.last, TransientError)

    def test_injected_faults_are_transient_by_default(self):
        plan = FaultPlan.parse("s:1", seed=0)
        decision = plan.decide("s")
        calls = []

        def faulted_once():
            calls.append(1)
            if len(calls) == 1:
                raise InjectedFault(decision)
            return "ok"

        assert Retry(max_attempts=2, base_delay_s=0.0).call(
            faulted_once, sleep=lambda _s: None) == "ok"

    def test_on_retry_sees_each_retried_attempt(self):
        seen = []

        def flaky():
            if len(seen) < 2:
                raise TransientError("x")
            return True

        Retry(max_attempts=4, base_delay_s=0.0).call(
            flaky, sleep=lambda _s: None,
            on_retry=lambda attempt, error: seen.append(attempt))
        assert seen == [0, 1]

    def test_deadline_cuts_before_the_sleep(self):
        clock = FakeClock()
        policy = Retry(max_attempts=10, base_delay_s=1.0, jitter=0.0,
                       deadline_s=2.5)

        def always_fails():
            raise TransientError("nope")

        with pytest.raises(RetryBudgetExceeded):
            policy.call(always_fails, sleep=clock.sleep, clock=clock)
        # Slept 1s, then 2s; the next 2s backoff would pass 2.5s.
        assert clock.now <= 2.5


class TestCircuitBreaker:
    def _breaker(self, **kwargs):
        clock = FakeClock()
        defaults = dict(failure_threshold=3, reset_timeout_s=10.0,
                        clock=clock)
        defaults.update(kwargs)
        return CircuitBreaker(**defaults), clock

    def test_opens_after_consecutive_failures(self):
        breaker, _ = self._breaker()
        for _ in range(2):
            breaker.record_failure()
        assert breaker.state == CLOSED
        breaker.record_failure()
        assert breaker.state == OPEN
        assert breaker.opens == 1

    def test_success_resets_the_failure_streak(self):
        breaker, _ = self._breaker()
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == CLOSED

    def test_open_rejects_until_reset_timeout(self):
        breaker, clock = self._breaker()
        for _ in range(3):
            breaker.record_failure()
        assert not breaker.allow()
        assert breaker.retry_after_s() == pytest.approx(10.0)
        clock.now += 10.0
        assert breaker.state == HALF_OPEN

    def test_half_open_admits_exactly_one_probe(self):
        breaker, clock = self._breaker()
        for _ in range(3):
            breaker.record_failure()
        clock.now += 10.0
        assert breaker.allow()       # the probe
        assert not breaker.allow()   # everyone else waits

    def test_probe_success_closes(self):
        breaker, clock = self._breaker()
        for _ in range(3):
            breaker.record_failure()
        clock.now += 10.0
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == CLOSED
        assert breaker.allow()

    def test_probe_failure_reopens_and_restarts_the_clock(self):
        breaker, clock = self._breaker()
        for _ in range(3):
            breaker.record_failure()
        clock.now += 10.0
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == OPEN
        assert breaker.retry_after_s() == pytest.approx(10.0)
        assert breaker.opens == 2

    def test_snapshot_shape(self):
        breaker, _ = self._breaker()
        snapshot = breaker.snapshot()
        assert snapshot == {
            "state": CLOSED, "consecutive_failures": 0,
            "failure_threshold": 3, "reset_timeout_s": 10.0, "opens": 0,
        }


class TestTimeout:
    def test_route_budgets_and_default(self):
        timeout = Timeout(budgets_s={"profile": 1.0}, default_s=5.0)
        assert timeout.budget_s("profile") == 1.0
        assert timeout.budget_s("anything-else") == 5.0

    def test_none_default_means_unlimited(self):
        timeout = Timeout(budgets_s={}, default_s=None)
        assert timeout.budget_s("grid") is None

    def test_scaled_shrinks_everything(self):
        timeout = Timeout(budgets_s={"profile": 30.0}, default_s=60.0)
        tiny = timeout.scaled(0.001)
        assert tiny.budget_s("profile") == pytest.approx(0.03)
        assert tiny.budget_s("other") == pytest.approx(0.06)

    def test_deadline_arithmetic(self):
        clock = FakeClock()
        deadline = Deadline(2.0, clock=clock)
        assert deadline.remaining_s() == pytest.approx(2.0)
        clock.now += 1.5
        assert deadline.remaining_s() == pytest.approx(0.5)
        assert not deadline.expired()
        clock.now += 1.0
        assert deadline.remaining_s() == 0.0
        assert deadline.expired()

    def test_deadline_rejects_nonpositive_budget(self):
        with pytest.raises(ValueError):
            Deadline(0.0)
