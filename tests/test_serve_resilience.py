"""Serve-path resilience: breaker, stale degradation, timeouts, drain.

Driven through the transport-agnostic :class:`repro.serve.App` where
event-loop scheduling is deterministic.  The regression centerpiece is
the failing-leader storm: when the leader of a 100-client coalesced
storm dies, its whole storm shares the one error — and the *next*
request for the same key computes fresh (the key is never poisoned).
"""

import asyncio
import json

import pytest

from repro.faults import sites
from repro.faults.plan import FaultPlan
from repro.obs import metrics
from repro.resilience.breaker import CircuitBreaker
from repro.resilience.retry import Retry
from repro.resilience.timeout import Timeout
from repro.serve import App, HotCache

TINY = "tiny.ph1-b2-fp32"

_COMPUTATIONS = metrics.counter("serve.computations")
_STALE = metrics.counter("resilience.stale_served")
_TIMEOUTS = metrics.counter("resilience.timeouts")
_RETRIES = metrics.counter("resilience.retries")


def run(coro):
    return asyncio.run(coro)


@pytest.fixture(autouse=True)
def no_active_plan():
    sites.deactivate()
    yield
    sites.deactivate()


def make_app(**kwargs):
    defaults = dict(workers=2, queue_limit=64, hot_cache=HotCache())
    defaults.update(kwargs)
    return App(**defaults)


class TestFailingLeaderStorm:
    def test_storm_shares_the_error_but_key_is_not_poisoned(self):
        app = make_app()
        try:
            calls = {"n": 0}
            real = app.service.profile_payload

            def dies_once(point):
                calls["n"] += 1
                if calls["n"] == 1:
                    raise RuntimeError("leader died mid-compute")
                return real(point)

            app.service.profile_payload = dies_once
            computed_before = _COMPUTATIONS.value(route="profile")

            async def storm():
                return await asyncio.gather(*(
                    app.handle("GET", f"/profile/{TINY}")
                    for _ in range(100)))

            responses = run(storm())
            # One computation, one death, 100 shared failures.
            assert [r.status for r in responses] == [500] * 100
            assert calls["n"] == 1
            assert (_COMPUTATIONS.value(route="profile")
                    - computed_before == 1)

            # The failed task must not poison the key: the very next
            # request leads a fresh computation and succeeds.
            follow_up = run(app.handle("GET", f"/profile/{TINY}"))
            assert follow_up.status == 200
            assert calls["n"] == 2
        finally:
            app.close()


class TestBreakerDegradation:
    def test_open_breaker_serves_stale_bytes(self):
        app = make_app(breaker=CircuitBreaker(failure_threshold=1,
                                              reset_timeout_s=60.0))
        try:
            good = run(app.handle("GET", f"/profile/{TINY}"))
            assert good.status == 200

            app.hot = HotCache()  # hot bytes gone, stale store keeps its copy
            app.breaker.record_failure()
            assert app.breaker.state == "open"
            stale_before = _STALE.value(route="profile")

            degraded = run(app.handle("GET", f"/profile/{TINY}"))
            assert degraded.status == 200
            assert degraded.headers.get("X-Repro-Stale") == "1"
            assert degraded.body == good.body  # outdated, never wrong
            assert _STALE.value(route="profile") - stale_before == 1
        finally:
            app.close()

    def test_open_breaker_without_stale_is_503_with_retry_after(self):
        app = make_app(breaker=CircuitBreaker(failure_threshold=1,
                                              reset_timeout_s=60.0))
        try:
            app.breaker.record_failure()
            response = run(app.handle("GET", f"/profile/{TINY}"))
            assert response.status == 503
            assert int(response.headers["Retry-After"]) >= 1
            payload = json.loads(response.body)
            assert "breaker" in payload["error"]
        finally:
            app.close()

    def test_breaker_state_in_stats_and_readyz(self):
        app = make_app()
        try:
            stats = json.loads(run(app.handle("GET", "/stats")).body)
            assert stats["breaker"]["state"] == "closed"
            assert stats["draining"] is False
            ready = json.loads(run(app.handle("GET", "/readyz")).body)
            assert ready == {"ready": True, "draining": False,
                             "breaker": "closed"}
        finally:
            app.close()


class TestInjectedServeFaults:
    def test_transient_injection_absorbed_by_retry(self):
        # A seed whose serve.fail schedule injects occurrence 0 only:
        # the first attempt dies, the in-place retry answers 200.
        seed = next(s for s in range(1000)
                    if FaultPlan.parse("serve.fail:0.5", seed=s)
                    .schedule("serve.fail", 3) == [0])
        sites.activate(FaultPlan.parse("serve.fail:0.5", seed=seed))
        app = make_app(retry=Retry(max_attempts=3, base_delay_s=0.001,
                                   max_delay_s=0.01))
        try:
            retries_before = _RETRIES.value(site="profile")
            response = run(app.handle("GET", f"/profile/{TINY}"))
            assert response.status == 200
            assert _RETRIES.value(site="profile") - retries_before == 1
            assert app.breaker.state == "closed"
        finally:
            app.close()

    def test_persistent_injection_exhausts_retries_to_503(self):
        sites.activate(FaultPlan.parse("serve.fail:1", seed=0))
        app = make_app(retry=Retry(max_attempts=2, base_delay_s=0.001,
                                   max_delay_s=0.01))
        try:
            response = run(app.handle("GET", f"/profile/{TINY}"))
            assert response.status == 503
            assert "Retry-After" in response.headers
        finally:
            app.close()

    def test_persistent_injection_with_stale_degrades_to_200(self):
        app = make_app(retry=Retry(max_attempts=2, base_delay_s=0.001,
                                   max_delay_s=0.01))
        try:
            good = run(app.handle("GET", f"/profile/{TINY}"))
            assert good.status == 200
            app.hot = HotCache()
            sites.activate(FaultPlan.parse("serve.fail:1", seed=0))
            degraded = run(app.handle("GET", f"/profile/{TINY}"))
            assert degraded.status == 200
            assert degraded.headers.get("X-Repro-Stale") == "1"
            assert degraded.body == good.body
        finally:
            app.close()


class TestTimeouts:
    def test_budget_expiry_is_504(self):
        app = make_app(timeout=Timeout(budgets_s={}, default_s=0.05))
        try:
            def stuck(point):
                import time
                time.sleep(0.5)
                return {"point": point}

            app.service.profile_payload = stuck
            timeouts_before = _TIMEOUTS.value(route="profile")
            response = run(app.handle("GET", f"/profile/{TINY}"))
            assert response.status == 504
            assert _TIMEOUTS.value(route="profile") - timeouts_before == 1
        finally:
            app.close()

    def test_budget_expiry_with_stale_degrades_to_200(self):
        app = make_app(timeout=Timeout(budgets_s={}, default_s=0.05))
        try:
            good = run(app.handle("GET", f"/profile/{TINY}"))
            app.hot = HotCache()

            def stuck(point):
                import time
                time.sleep(0.5)
                return {"point": point}

            app.service.profile_payload = stuck
            response = run(app.handle("GET", f"/profile/{TINY}"))
            assert response.status == 200
            assert response.headers.get("X-Repro-Stale") == "1"
            assert response.body == good.body
        finally:
            app.close()


class TestDrain:
    def test_drain_flips_readyz_and_flushes_the_event_log(self, tmp_path):
        log = tmp_path / "events.jsonl"
        app = make_app(event_log=str(log))
        try:
            async def scenario():
                ok = await app.handle("GET", f"/profile/{TINY}")
                assert ok.status == 200
                drained = await app.drain(timeout_s=5.0)
                assert drained
                refused = await app.handle("GET", "/readyz")
                return refused

            refused = run(scenario())
            assert refused.status == 503
            assert json.loads(refused.body)["draining"] is True
            lines = [json.loads(line)
                     for line in log.read_text().splitlines()]
            assert any(entry.get("route") == "profile" for entry in lines)
        finally:
            app.close()

    def test_drain_waits_for_active_requests(self):
        app = make_app()
        try:
            async def scenario():
                real = app.service.profile_payload

                def slow(point):
                    import time
                    time.sleep(0.1)
                    return real(point)

                app.service.profile_payload = slow
                request = asyncio.ensure_future(
                    app.handle("GET", f"/profile/{TINY}"))
                await asyncio.sleep(0.01)  # let it become active
                assert app.active_requests == 1
                drained = await app.drain(timeout_s=5.0)
                response = await request
                return drained, response

            drained, response = run(scenario())
            assert drained
            assert response.status == 200
            assert app.active_requests == 0
        finally:
            app.close()
