"""Grid engine: bit-exact equivalence against the run_point oracle,
sweep failure isolation, and the CSV-export bugfixes."""

import numpy as np
import pytest

from repro.config import (BERT_LARGE, BERT_TINY, BertConfig, Precision,
                          TrainingConfig, training_point)
from repro.experiments import sweeps
from repro.experiments.common import run_point
from repro.grid import (GridPoint, LaneTraining, build_grid_trace,
                        family_key, grid_points, grid_summaries,
                        profile_grid)
from repro.hw.device import mi100
from repro.profiler.breakdown import region_breakdown, summarize
from repro.runner.cache import get_cache
from repro.trace.passes import build_pipeline

TINY_GRID = [
    TrainingConfig(batch_size=batch, seq_len=seq_len, precision=precision)
    for batch in (1, 2, 8)
    for seq_len in (64, 128)
    for precision in (Precision.FP32, Precision.MIXED)
]


def _bad_point() -> TrainingConfig:
    """A point that pickles fine but fails inside the emitters."""
    training = TrainingConfig(batch_size=2, seq_len=128)
    object.__setattr__(training, "seq_len", -5)  # bypass frozen validation
    return training


# ---------------------------------------------------------------- equivalence
def _assert_point_matches(grid_profile, index, model, training, device):
    _, oracle = run_point(model, training, device)
    point = grid_profile.point_profile(index)
    assert grid_profile.point_total(index) == oracle.total_time
    assert np.array_equal(point.times, oracle.times)
    assert point.gemm_time() == oracle.gemm_time()
    assert point.non_gemm_time() == oracle.non_gemm_time()
    assert summarize(point) == summarize(oracle)
    ours = region_breakdown(point)
    theirs = region_breakdown(oracle)
    assert ours.keys() == theirs.keys()
    for region in ours:
        assert ours[region].fraction == theirs[region].fraction


def test_tiny_grid_matches_run_point_loop_bit_exactly():
    device = mi100()
    profile = profile_grid(grid_points(BERT_TINY, TINY_GRID), device)
    for index, training in enumerate(TINY_GRID):
        _assert_point_matches(profile, index, BERT_TINY, training, device)


def test_bert_large_grid_matches_run_point_loop_bit_exactly():
    device = mi100()
    points = [training_point(1, 4, Precision.FP32),
              training_point(1, 32, Precision.FP32),
              training_point(2, 4, Precision.MIXED)]
    profile = profile_grid(grid_points(BERT_LARGE, points), device)
    for index, training in enumerate(points):
        _assert_point_matches(profile, index, BERT_LARGE, training, device)


def test_grid_applies_pass_pipeline_per_point():
    device = mi100()
    passes = build_pipeline("fuse_elementwise,fused_attention")
    profile = profile_grid(grid_points(BERT_TINY, TINY_GRID), device,
                           passes=passes)
    for index, training in enumerate(TINY_GRID):
        _, oracle = run_point(BERT_TINY, training, device, passes=passes)
        assert profile.point_total(index) == oracle.total_time
        assert np.array_equal(profile.point_profile(index).times,
                              oracle.times)


def test_grid_applies_activation_checkpointing_per_point():
    device = mi100()
    points = [TrainingConfig(batch_size=batch, seq_len=128,
                             activation_checkpointing=True)
              for batch in (1, 2, 4)]
    profile = profile_grid(grid_points(BERT_TINY, points), device)
    for index, training in enumerate(points):
        _, oracle = run_point(BERT_TINY, training, device)
        assert profile.point_total(index) == oracle.total_time


def test_multi_model_grid_keeps_input_order():
    device = mi100()
    small = BertConfig(num_layers=1, d_model=64, num_heads=4, d_ff=256,
                       vocab_size=512, max_position=128, name="unit-1l")
    mixed = [(BERT_TINY, TINY_GRID[0]), (small, TINY_GRID[1]),
             (BERT_TINY, TINY_GRID[2]), (small, TINY_GRID[0])]
    profile = profile_grid(mixed, device)
    for index, (model, training) in enumerate(mixed):
        _, oracle = run_point(model, training, device)
        assert profile.point_total(index) == oracle.total_time


def test_grid_trace_row_ranges_partition_the_table():
    grid = build_grid_trace(grid_points(BERT_TINY, TINY_GRID))
    order = np.argsort(grid.starts)
    covered = 0
    for index in order:
        start, stop = grid.point_rows(int(index))
        assert start == covered
        covered = stop
        assert np.all(grid.point_index[start:stop] == index)
    assert covered == len(grid.table)


def test_lane_training_matches_scalar_derived_sizes():
    lanes = LaneTraining(TINY_GRID)
    for index, training in enumerate(TINY_GRID):
        assert lanes.tokens_per_iteration[index] == \
            training.tokens_per_iteration
        assert lanes.masked_positions[index] == training.masked_positions


def test_family_key_groups_only_compatible_points():
    base = TrainingConfig(batch_size=4, seq_len=128)
    same = TrainingConfig(batch_size=32, seq_len=512)
    assert family_key(BERT_TINY, base) == family_key(BERT_TINY, same)
    different = (
        TrainingConfig(batch_size=4, seq_len=128, precision=Precision.MIXED),
        TrainingConfig(batch_size=4, seq_len=128, optimizer="adam"),
        TrainingConfig(batch_size=4, seq_len=128, fuse_optimizer=False),
        TrainingConfig(batch_size=4, seq_len=128,
                       activation_checkpointing=True),
    )
    for training in different:
        assert family_key(BERT_TINY, training) != family_key(BERT_TINY, base)
    assert family_key(BERT_TINY, base) != family_key(BERT_LARGE, base)


def test_empty_grid_is_rejected():
    with pytest.raises(ValueError, match="at least one point"):
        build_grid_trace([])


# -------------------------------------------------------------------- caching
def test_grid_summaries_cached_as_one_entry_per_grid():
    device = mi100()
    points = grid_points(BERT_TINY, TINY_GRID[:4])
    cache = get_cache()
    key = cache.grid_key([(p.model, p.training) for p in points], device)
    before = cache.stats.hits
    first = grid_summaries(points, device)
    again = grid_summaries(points, device)
    assert again == first
    assert cache.stats.hits > before
    assert cache.get_payload(key) is not None
    # Grid signature is order-sensitive: rows come back positionally.
    reordered = cache.grid_key(
        [(p.model, p.training) for p in reversed(points)], device)
    assert reordered != key


# ---------------------------------------------------------- sweep integration
def test_grid_sweep_rows_match_run_point_summaries():
    device = mi100()
    rows = sweeps.grid_sweep(BERT_TINY, TINY_GRID[:4], device)
    for training, row in zip(TINY_GRID[:4], rows):
        _, oracle = run_point(BERT_TINY, training, device)
        assert row["label"] == training.label
        assert row["tokens"] == training.tokens_per_iteration
        for column, value in summarize(oracle).items():
            assert row[column] == value


def test_grid_sweep_isolates_failing_point_in_process():
    points = [TINY_GRID[0], _bad_point(), TINY_GRID[1]]
    rows = sweeps.grid_sweep(BERT_TINY, points, mi100())
    assert len(rows) == 3
    assert "error" in rows[1]
    assert "ValueError" in rows[1]["error"]
    assert rows[1]["batch_size"] == 2
    for survivor in (rows[0], rows[2]):
        assert "error" not in survivor
        assert survivor["total_time_s"] > 0


def test_grid_sweep_isolates_failing_point_across_workers():
    points = [TINY_GRID[0], _bad_point(), TINY_GRID[1], TINY_GRID[2]]
    rows = sweeps.grid_sweep(BERT_TINY, points, jobs=2)
    assert len(rows) == 4
    assert "error" in rows[1]
    assert "ValueError" in rows[1]["error"]
    for index in (0, 2, 3):
        assert "error" not in rows[index]
        assert rows[index]["label"] == points[index].label


def test_grid_sweep_metrics_skip_error_rows():
    points = [TINY_GRID[0], _bad_point()]
    rows = sweeps.grid_sweep(BERT_TINY, points, mi100(),
                             metrics=lambda row: {"t": row["total_time_s"]})
    assert set(rows[0]) == {"t"}
    assert "error" in rows[1]  # untouched by the metrics projection


# ------------------------------------------------------------- CSV bug fixes
def test_flatten_expands_tuples_into_indexed_columns():
    flat = sweeps._flatten({"shape": (3, 5), "name": "x",
                            "nested": [{"a": 1}, {"a": 2}]})
    assert flat == {"shape.0": 3, "shape.1": 5, "name": "x",
                    "nested.0.a": 1, "nested.1.a": 2}


def test_rows_to_csv_renders_sequence_fields_as_columns():
    text = sweeps.rows_to_csv([{"dims": (2, 7), "label": "p"}])
    header, row = text.strip().splitlines()
    assert header.split(",") == ["dims.0", "dims.1", "label"]
    assert row.split(",") == ["2", "7", "p"]


def test_export_csv_failure_leaves_existing_file_intact(tmp_path,
                                                        monkeypatch):
    from repro.experiments.registry import REGISTRY

    class _EmptyExperiment:
        def run(self):
            return []

    monkeypatch.setitem(REGISTRY, "empty-rows", _EmptyExperiment())
    target = tmp_path / "out.csv"
    target.write_text("precious,previous\n1,2\n")
    with pytest.raises(ValueError, match="no rows"):
        sweeps.export_experiment_csv("empty-rows", str(target))
    assert target.read_text() == "precious,previous\n1,2\n"


def test_export_csv_writes_rendered_rows(tmp_path, monkeypatch):
    from repro.experiments.registry import REGISTRY

    class _RowsExperiment:
        def run(self):
            return [{"label": "a", "dims": (1, 2)}]

    monkeypatch.setitem(REGISTRY, "two-rows", _RowsExperiment())
    target = tmp_path / "out.csv"
    sweeps.export_experiment_csv("two-rows", str(target))
    assert target.read_text().splitlines() == ["label,dims.0,dims.1",
                                               "a,1,2"]


# -------------------------------------------------------------------- obs
def test_profile_grid_emits_spans_and_counters():
    from repro.obs import metrics, spans

    grids = metrics.counter("grid_engine.grids", "")
    points_counter = metrics.counter("grid_engine.points", "")
    grids_before = grids.value()
    points_before = points_counter.value()
    with spans.get_tracer().capture() as scope:
        profile_grid(grid_points(BERT_TINY, TINY_GRID[:3]), mi100())
    names = [span.name for span in scope.spans]
    assert "grid.build" in names
    assert "grid.stamp" in names
    assert "grid.profile" in names
    assert grids.value() == grids_before + 1
    assert points_counter.value() == points_before + 3


def test_grid_point_trace_is_regular_trace():
    grid = build_grid_trace([GridPoint(BERT_TINY, TINY_GRID[0])])
    trace = grid.point_trace(0)
    oracle, _ = run_point(BERT_TINY, TINY_GRID[0], mi100())
    assert len(trace) == len(oracle)
