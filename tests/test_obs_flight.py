"""Flight recorder (:mod:`repro.obs.flight`): ring, sink, event log."""

from __future__ import annotations

import json

import pytest

from repro.obs.flight import (FlightRecorder, build_span_tree,
                              read_event_log, render_flight_table,
                              render_trace_tree, spans_from_dicts)
from repro.obs.spans import Span, SpanTracer


@pytest.fixture
def tracer():
    return SpanTracer()


@pytest.fixture
def recorder(tracer):
    recorder = FlightRecorder(capacity=4)
    recorder.install(tracer)
    yield recorder
    recorder.uninstall()


def drive_request(tracer, recorder, trace_id_holder=None, **complete_kw):
    """One request through the begin -> spans -> complete lifecycle."""
    with tracer.span("serve.request", category="serve") as request_span:
        recorder.begin(request_span.trace_id)
        with tracer.span("profile.run"):
            pass
    keywords = dict(route="profile", method="GET", path="/profile/x",
                    status=200, duration_s=0.01, cache="computed")
    keywords.update(complete_kw)
    if trace_id_holder is not None:
        trace_id_holder.append(request_span.trace_id)
    return recorder.complete(request_span.trace_id, **keywords)


class TestRecorderLifecycle:
    def test_watched_spans_are_buffered_into_the_record(self, tracer,
                                                        recorder):
        record = drive_request(tracer, recorder)
        assert record.route == "profile"
        assert record.cache == "computed"
        assert [s["name"] for s in record.spans] == ["profile.run",
                                                     "serve.request"]
        assert len({s["trace_id"] for s in record.spans}) == 1

    def test_unwatched_spans_are_dropped(self, tracer, recorder):
        with tracer.span("background.noise"):
            pass
        assert recorder.snapshot()["dropped_spans"] == 1
        assert recorder.records() == []

    def test_spans_after_complete_are_dropped(self, tracer, recorder):
        """A straggler finishing after the record sealed (client hung
        up) must not leak into the pending map."""
        from repro.obs.spans import TraceContext

        record = drive_request(tracer, recorder)
        with tracer.attach(TraceContext(trace_id=record.trace_id)):
            with tracer.span("late"):
                pass
        assert recorder.snapshot()["dropped_spans"] >= 1
        assert recorder.snapshot()["pending"] == 0
        assert len(record.spans) == 2

    def test_ring_is_bounded_and_newest_first(self, tracer, recorder):
        ids = []
        for index in range(6):
            drive_request(tracer, recorder, trace_id_holder=ids,
                          path=f"/profile/{index}")
        records = recorder.records()
        assert len(records) == 4  # capacity
        assert [r.trace_id for r in records] == ids[::-1][:4]
        assert recorder.lookup(ids[0]) is None  # evicted
        assert recorder.lookup(ids[-1]).path == "/profile/5"
        snapshot = recorder.snapshot()
        assert snapshot["recorded"] == 6 and snapshot["held"] == 4

    def test_install_enables_tracing_without_retention(self, tracer,
                                                       recorder):
        assert tracer.enabled
        drive_request(tracer, recorder)
        assert tracer.reset() == []  # server mode: nothing accumulates

    def test_uninstall_restores_prior_tracer_state(self, tracer):
        recorder = FlightRecorder()
        recorder.install(tracer)
        assert tracer.enabled
        recorder.uninstall()
        assert not tracer.enabled
        with tracer.span("after"):
            pass
        assert tracer.reset() == []  # disabled again, sink removed

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            FlightRecorder(capacity=0)

    def test_summary_counts_spans_without_inlining_them(self, tracer,
                                                        recorder):
        record = drive_request(tracer, recorder)
        summary = record.summary()
        assert summary["spans"] == 2
        assert summary["span_names"] == ["profile.run", "serve.request"]
        assert summary["duration_ms"] == 10.0
        assert "children" not in summary


class TestEventLog:
    def test_jsonl_append_and_read_back(self, tracer, tmp_path):
        log = tmp_path / "flight.jsonl"
        recorder = FlightRecorder(capacity=4, event_log=log)
        recorder.install(tracer)
        try:
            drive_request(tracer, recorder)
            drive_request(tracer, recorder, status=503, cache="shed")
        finally:
            recorder.uninstall()
        records = read_event_log(log)
        assert len(records) == 2
        assert records[0]["route"] == "profile"
        assert records[1]["status"] == 503
        assert all(isinstance(r["spans"], list) for r in records)

    def test_bad_lines_are_skipped(self, tmp_path):
        log = tmp_path / "flight.jsonl"
        log.write_text('not json\n{"no_trace": 1}\n'
                       '{"trace_id": "ab", "route": "profile"}\n\n')
        records = read_event_log(log)
        assert len(records) == 1
        assert records[0]["trace_id"] == "ab"


class TestSpanTrees:
    def _spans(self):
        return [
            {"name": "serve.request", "span_id": 1, "parent_id": -1,
             "start_s": 0.0, "duration_s": 1.0, "depth": 0,
             "trace_id": "t", "attrs": {}},
            {"name": "profile.run", "span_id": 2, "parent_id": 1,
             "start_s": 0.1, "duration_s": 0.8, "depth": 1,
             "trace_id": "t", "attrs": {}},
            {"name": "timing.kernel_times", "span_id": 3, "parent_id": 2,
             "start_s": 0.2, "duration_s": 0.5, "depth": 2,
             "trace_id": "t", "attrs": {"kernels": 7}},
        ]

    def test_build_span_tree_nests_by_parent_id(self):
        (root,) = build_span_tree(self._spans())
        assert root["name"] == "serve.request"
        (child,) = root["children"]
        assert child["name"] == "profile.run"
        assert child["children"][0]["name"] == "timing.kernel_times"

    def test_foreign_parents_surface_as_extra_roots(self):
        spans = self._spans()
        spans.append({"name": "worker.orphan", "span_id": 9,
                      "parent_id": 777, "start_s": 0.3,
                      "duration_s": 0.1, "depth": 0, "trace_id": "t",
                      "attrs": {}})
        roots = build_span_tree(spans)
        assert {r["name"] for r in roots} == {"serve.request",
                                              "worker.orphan"}

    def test_spans_from_dicts_round_trips(self):
        span = Span(name="x", category="serve", start_s=1.0, end_s=2.5,
                    thread_id=4, span_id=8, parent_id=2, depth=1,
                    trace_id="t" * 16, attrs={"k": 1})
        (back,) = spans_from_dicts([span.as_dict()])
        assert back == span


class TestRenderers:
    def test_flight_table_lists_requests(self, tracer, recorder):
        ids = []
        drive_request(tracer, recorder, trace_id_holder=ids)
        rendered = render_flight_table(
            [r.as_dict() for r in recorder.records()[::-1]])
        assert ids[0] in rendered
        assert "profile" in rendered and "computed" in rendered

    def test_flight_table_handles_empty_logs(self):
        assert render_flight_table([]) == "no flight records"

    def test_trace_tree_render_shows_nesting_and_totals(self, tracer,
                                                        recorder):
        record = drive_request(tracer, recorder)
        rendered = render_trace_tree(record.as_dict())
        lines = rendered.splitlines()
        assert any(line.startswith("serve.request") for line in lines)
        assert any(line.startswith("  profile.run") for line in lines)
        assert "totals:" in rendered
        assert record.trace_id in rendered

    def test_trace_tree_render_without_spans(self):
        rendered = render_trace_tree({"trace_id": "x", "spans": []})
        assert "no spans recorded" in rendered
