"""Tests for activation checkpointing and memory footprint (Sec. 4)."""

import dataclasses

import pytest

from repro.config import (BERT_LARGE, BERT_TINY, Precision, TrainingConfig,
                          training_point)
from repro.memoryplan import (apply_checkpointing, checkpoint_segments,
                              layer_activation_bytes, max_batch_size,
                              recompute_overhead, training_footprint)
from repro.ops.base import Component, Phase
from repro.trace import build_iteration_trace


class TestSegments:
    def test_bert_large_default_is_four_by_six(self):
        segments = checkpoint_segments(24)
        assert len(segments) == 5  # round(sqrt(24)) = 5 checkpoints
        # The paper's setup: explicitly four checkpoints of six layers.
        four = checkpoint_segments(24, 4)
        assert len(four) == 4
        assert all(len(s) == 6 for s in four)

    def test_segments_cover_all_layers(self):
        for n, c in ((24, 4), (12, 3), (7, 2), (5, 5)):
            segments = checkpoint_segments(n, c)
            covered = [layer for s in segments for layer in s]
            assert covered == list(range(n))

    def test_more_checkpoints_than_layers_clamped(self):
        assert len(checkpoint_segments(3, 10)) == 3

    def test_invalid_layer_count(self):
        with pytest.raises(ValueError):
            checkpoint_segments(0)


class TestCheckpointTransform:
    @pytest.fixture(scope="class")
    def traces(self):
        training = training_point(1, 32, Precision.FP32)
        base = build_iteration_trace(BERT_LARGE, training)
        return base, apply_checkpointing(base, 4)

    def test_kernel_overhead_near_paper_band(self, traces):
        base, ckpt = traces
        overhead = recompute_overhead(base, ckpt)
        # Paper: ~33% more kernels.
        assert 0.25 < overhead < 0.45

    def test_recompute_kernels_marked(self, traces):
        base, ckpt = traces
        recompute = [k for k in ckpt.kernels
                     if k.name.startswith("recompute.")]
        forward_encoder = [k for k in base.kernels
                           if k.phase is Phase.FORWARD
                           and k.component is Component.TRANSFORMER]
        # Every encoder forward kernel is replayed exactly once.
        assert len(recompute) == len(forward_encoder)
        assert all(k.phase is Phase.BACKWARD for k in recompute)

    def test_recompute_precedes_segment_backward(self, traces):
        _, ckpt = traces
        names = [k.name for k in ckpt.kernels]
        first_recompute = names.index(next(n for n in names
                                           if n.startswith("recompute.")))
        # Backward of the deepest layer starts after its recompute block.
        bwd_layer23 = next(i for i, k in enumerate(ckpt.kernels)
                           if k.phase is Phase.BACKWARD
                           and k.layer_index == 23
                           and not k.name.startswith("recompute."))
        assert first_recompute < bwd_layer23

    def test_optimizer_untouched(self, traces):
        base, ckpt = traces
        assert (len(base.select(component=Component.OPTIMIZER))
                == len(ckpt.select(component=Component.OPTIMIZER)))

    def test_config_flag_applies_transform(self):
        training = dataclasses.replace(training_point(1, 4, Precision.FP32),
                                       activation_checkpointing=True)
        base = build_iteration_trace(
            BERT_LARGE, training_point(1, 4, Precision.FP32))
        ckpt = build_iteration_trace(BERT_LARGE, training)
        assert len(ckpt) > len(base)

    def test_trace_without_layers_passthrough(self):
        base = build_iteration_trace(BERT_TINY,
                                     TrainingConfig(batch_size=2, seq_len=16))
        empty = base.replaced([k for k in base.kernels
                               if k.component is Component.OPTIMIZER])
        assert len(apply_checkpointing(empty)) == len(empty)


class TestFootprint:
    def test_checkpointing_cuts_activation_memory(self):
        training = training_point(1, 32, Precision.FP32)
        base = training_footprint(BERT_LARGE, training)
        ckpt = training_footprint(
            BERT_LARGE,
            dataclasses.replace(training, activation_checkpointing=True))
        assert ckpt.activations < 0.4 * base.activations
        # Weights/optimizer state unchanged.
        assert ckpt.weights == base.weights
        assert ckpt.optimizer_state == base.optimizer_state

    def test_activation_bytes_scale_with_tokens(self):
        small = layer_activation_bytes(BERT_LARGE,
                                       training_point(1, 4, Precision.FP32))
        large = layer_activation_bytes(BERT_LARGE,
                                       training_point(1, 8, Precision.FP32))
        assert large == pytest.approx(2 * small, rel=0.01)

    def test_mixed_precision_smaller_activations(self):
        fp32 = training_footprint(BERT_LARGE,
                                  training_point(1, 32, Precision.FP32))
        mp = training_footprint(BERT_LARGE,
                                training_point(1, 32, Precision.MIXED))
        assert mp.activations < fp32.activations
        # But MP carries an extra FP16 weight copy.
        assert mp.weights > fp32.weights

    def test_bert_large_fits_32gb_at_b32(self):
        footprint = training_footprint(BERT_LARGE,
                                       training_point(1, 32, Precision.FP32))
        assert footprint.fits(32.0)

    def test_total_is_sum_of_parts(self):
        f = training_footprint(BERT_TINY,
                               TrainingConfig(batch_size=2, seq_len=16))
        assert f.total == (f.weights + f.gradients + f.optimizer_state
                           + f.activations + f.workspace)

    def test_max_batch_size_monotone_in_capacity(self):
        training = training_point(1, 1, Precision.FP32)
        small = max_batch_size(BERT_LARGE, training, 16.0)
        large = max_batch_size(BERT_LARGE, training, 32.0)
        assert 0 < small < large

    def test_checkpointing_enables_larger_batch(self):
        # The whole point of Sec. 4.
        training = training_point(1, 1, Precision.FP32)
        ckpt = dataclasses.replace(training, activation_checkpointing=True)
        assert (max_batch_size(BERT_LARGE, ckpt, 32.0)
                > max_batch_size(BERT_LARGE, training, 32.0))

    def test_max_batch_size_zero_when_nothing_fits(self):
        training = training_point(1, 1, Precision.FP32)
        assert max_batch_size(BERT_LARGE, training, 0.1) == 0
