"""Gradient correctness of the autograd engine (vs. finite differences)."""

import numpy as np
import pytest

from repro.tensor.tensor import Tensor, ones, tensor, zeros


def numeric_grad(fn, x: np.ndarray, eps: float = 1e-6) -> np.ndarray:
    """Central-difference gradient of scalar ``fn`` w.r.t. ``x``."""
    grad = np.zeros_like(x, dtype=np.float64)
    flat = x.reshape(-1)
    grad_flat = grad.reshape(-1)
    for i in range(flat.size):
        orig = flat[i]
        flat[i] = orig + eps
        plus = fn(x)
        flat[i] = orig - eps
        minus = fn(x)
        flat[i] = orig
        grad_flat[i] = (plus - minus) / (2 * eps)
    return grad


def check_grad(op, shape_a, shape_b=None, seed=0, rtol=1e-4):
    """Compare autograd and numeric gradients of ``sum(op(a[, b]))``."""
    rng = np.random.default_rng(seed)
    a_data = rng.normal(size=shape_a).astype(np.float64) + 0.5
    args = [a_data]
    if shape_b is not None:
        args.append(rng.normal(size=shape_b).astype(np.float64) + 0.5)

    tensors = [Tensor(arg.copy(), requires_grad=True) for arg in args]
    out = op(*tensors)
    out.sum().backward()

    for index, arg in enumerate(args):
        def scalar(x, index=index):
            probe = [Tensor(v.copy()) for v in args]
            probe[index] = Tensor(x)
            return float(op(*probe).sum().data)
        numeric = numeric_grad(scalar, arg.copy())
        np.testing.assert_allclose(tensors[index].grad, numeric, rtol=rtol,
                                   atol=1e-6)


class TestArithmeticGradients:
    def test_add(self):
        check_grad(lambda a, b: a + b, (3, 4), (3, 4))

    def test_add_broadcast(self):
        check_grad(lambda a, b: a + b, (3, 4), (4,))

    def test_mul(self):
        check_grad(lambda a, b: a * b, (3, 4), (3, 4))

    def test_mul_broadcast_rows(self):
        check_grad(lambda a, b: a * b, (3, 4), (3, 1))

    def test_sub_and_neg(self):
        check_grad(lambda a, b: a - b, (2, 5), (2, 5))

    def test_div(self):
        check_grad(lambda a, b: a / (b * b + 1.0), (3, 3), (3, 3))

    def test_pow(self):
        check_grad(lambda a: (a * a + 1.0) ** 1.5, (4,))

    def test_scalar_operand(self):
        check_grad(lambda a: 3.0 * a + 2.0 - a / 4.0, (5,))


class TestMatmulGradients:
    def test_matmul_2d(self):
        check_grad(lambda a, b: a.matmul(b), (3, 4), (4, 5))

    def test_matmul_batched(self):
        check_grad(lambda a, b: a.matmul(b), (2, 3, 4), (2, 4, 5))

    def test_matmul_operator(self):
        a = Tensor(np.eye(3), requires_grad=True)
        b = Tensor(np.ones((3, 3)))
        (a @ b).sum().backward()
        np.testing.assert_allclose(a.grad, 3 * np.ones((3, 3)))


class TestUnaryGradients:
    @pytest.mark.parametrize("op", ["exp", "log", "sqrt", "tanh", "erf"])
    def test_unary(self, op):
        check_grad(lambda a: getattr(a * 0.5 + 1.5, op)(), (3, 4))


class TestReductionGradients:
    def test_sum_all(self):
        check_grad(lambda a: a.sum() * 2.0, (3, 4))

    def test_sum_axis(self):
        check_grad(lambda a: (a.sum(axis=0) ** 2.0), (3, 4))

    def test_sum_keepdims(self):
        check_grad(lambda a: a * a.sum(axis=1, keepdims=True), (3, 4))

    def test_mean(self):
        check_grad(lambda a: (a.mean(axis=-1, keepdims=True) - a) ** 2.0,
                   (4, 6))

    def test_max(self):
        rng = np.random.default_rng(3)
        data = rng.permutation(12).astype(np.float64).reshape(3, 4)
        x = Tensor(data, requires_grad=True)
        x.max(axis=1).sum().backward()
        expected = (data == data.max(axis=1, keepdims=True)).astype(float)
        np.testing.assert_allclose(x.grad, expected)


class TestShapeGradients:
    def test_reshape(self):
        check_grad(lambda a: (a.reshape(2, 6) ** 2.0), (3, 4))

    def test_transpose(self):
        check_grad(lambda a: a.transpose(1, 0) * 2.0, (3, 4))

    def test_transpose_4d(self):
        check_grad(lambda a: a.transpose(0, 2, 1, 3) ** 2.0, (2, 3, 4, 5))

    def test_getitem(self):
        check_grad(lambda a: a[1:, :2] * 3.0, (3, 4))


class TestEngineMechanics:
    def test_grad_accumulates_across_uses(self):
        x = Tensor(np.ones(3), requires_grad=True)
        y = x * 2.0 + x * 3.0
        y.sum().backward()
        np.testing.assert_allclose(x.grad, 5 * np.ones(3))

    def test_diamond_graph(self):
        x = Tensor(np.array([2.0]), requires_grad=True)
        a = x * 3.0
        b = x * 4.0
        (a * b).backward()  # d/dx 12x^2 = 24x = 48
        np.testing.assert_allclose(x.grad, [48.0])

    def test_backward_requires_grad(self):
        with pytest.raises(RuntimeError):
            Tensor(np.ones(2)).backward()

    def test_detach_cuts_graph(self):
        x = Tensor(np.ones(3), requires_grad=True)
        y = (x * 2.0).detach()
        assert not y.requires_grad

    def test_zero_grad(self):
        x = Tensor(np.ones(2), requires_grad=True)
        (x * x).sum().backward()
        x.zero_grad()
        assert x.grad is None

    def test_no_grad_tracking_for_constants(self):
        a = Tensor(np.ones(2))
        b = Tensor(np.ones(2))
        assert not (a + b).requires_grad

    def test_deep_chain_does_not_recurse(self):
        # Iterative topological sort: thousands of nodes must not overflow.
        x = Tensor(np.ones(1), requires_grad=True)
        y = x
        for _ in range(3000):
            y = y + 1.0
        y.backward()
        np.testing.assert_allclose(x.grad, [1.0])

    def test_constructors(self):
        assert zeros((2, 3)).shape == (2, 3)
        assert ones((2,)).data.sum() == 2.0
        t = tensor([1.0, 2.0], requires_grad=True, name="t")
        assert t.requires_grad and t.name == "t"
