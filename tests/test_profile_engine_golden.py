"""Golden equivalence: columnar engine vs. the reference implementations.

The layer-templated trace build, the batched GEMM/bandwidth timing of
``kernel_times`` and the masked-reduction aggregation of ``Profile`` are
optimizations over the seed's per-layer walk + scalar loop — they must not
change a single number.  For every operating point the registry
experiments exercise, this suite requires:

* identical kernel sequences (count, order, and full record equality);
* bit-identical per-kernel times — the vectorized models apply the same
  float64 operations in the same order as the scalar ones, so ``==``, not
  ``approx``;
* matching totals and breakdown fractions (``rel=1e-12``: ``np.sum`` is
  pairwise while the reference uses sequential Python ``sum``).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import (BERT_BASE, BERT_LARGE, BERT_TINY, FIG3_POINTS,
                          Precision, training_point)
from repro.hw.device import a100_like, mi100, v100_like
from repro.hw.timing import kernel_time, kernel_times
from repro.profiler.breakdown import region_breakdown, summarize
from repro.profiler.profiler import profile_trace
from repro.trace.bert_trace import build_iteration_trace
from repro.trace.reference import (reference_finetuning_trace,
                                   reference_inference_trace,
                                   reference_iteration_trace,
                                   reference_profile, reference_summarize)
from repro.trace.variants import build_finetuning_trace, build_inference_trace

# Every operating-point family the registry experiments touch: the Fig. 3
# points, the Fig. 8 batch ladder corner, checkpointing (Sec. 4), the
# unfused-optimizer ablation (Fig. 12), and the adam/sgd emitters.
PRETRAIN_POINTS = [
    ("large-" + name, BERT_LARGE, training)
    for name, training in zip(
        ("ph1-b32", "ph1-b4", "ph2-b4", "ph1-b32-mixed", "ph2-b4-mixed"),
        FIG3_POINTS)
] + [
    ("base-ph1-b16", BERT_BASE, training_point(1, 16, Precision.FP32)),
    ("tiny-ph2-b4-ckpt", BERT_TINY,
     training_point(2, 4, Precision.FP32, activation_checkpointing=True)),
    ("tiny-ph1-b32-unfused", BERT_TINY,
     training_point(1, 32, Precision.FP32, fuse_optimizer=False)),
    ("tiny-ph1-b8-adam", BERT_TINY,
     training_point(1, 8, Precision.MIXED, optimizer="adam")),
    ("tiny-ph1-b8-sgd", BERT_TINY,
     training_point(1, 8, Precision.FP32, optimizer="sgd")),
]

DEVICES = {"mi100": mi100, "v100": v100_like, "a100": a100_like}


def _assert_same_kernels(columnar, reference):
    assert len(columnar) == len(reference)
    assert columnar.kernels == reference.kernels


def _assert_same_profiles(fast, slow):
    times_fast = fast.times
    times_slow = np.array([r.time_s for r in slow.records])
    assert len(times_fast) == len(times_slow)
    # Bit-identical: same float64 operations in the same order.
    mismatched = (times_fast != times_slow).nonzero()[0]
    assert len(mismatched) == 0, (
        f"{len(mismatched)} kernel times differ; first at row "
        f"{mismatched[0]}: {times_fast[mismatched[0]]!r} vs "
        f"{times_slow[mismatched[0]]!r} "
        f"({slow.records[mismatched[0]].kernel.name})")

    assert fast.total_time == pytest.approx(slow.total_time, rel=1e-12)
    fast_summary = summarize(fast)
    slow_summary = reference_summarize(slow)
    assert fast_summary.keys() == slow_summary.keys()
    for key in fast_summary:
        assert fast_summary[key] == pytest.approx(slow_summary[key],
                                                  rel=1e-12), key


@pytest.mark.parametrize("name,model,training",
                         PRETRAIN_POINTS, ids=[p[0] for p in PRETRAIN_POINTS])
def test_pretraining_point_equivalence(name, model, training):
    columnar = build_iteration_trace(model, training)
    reference = reference_iteration_trace(model, training)
    _assert_same_kernels(columnar, reference)

    device = mi100()
    _assert_same_profiles(profile_trace(columnar, device),
                          reference_profile(reference, device))


@pytest.mark.parametrize("device_name", sorted(DEVICES))
def test_devices_equivalence(device_name):
    """The batched timing path matches on every device model."""
    model, training = BERT_TINY, training_point(2, 4, Precision.MIXED)
    trace = build_iteration_trace(model, training)
    device = DEVICES[device_name]()
    _assert_same_profiles(profile_trace(trace, device),
                          reference_profile(trace, device))


def test_inference_equivalence():
    model, training = BERT_BASE, training_point(1, 8, Precision.MIXED)
    columnar = build_inference_trace(model, training)
    reference = reference_inference_trace(model, training)
    _assert_same_kernels(columnar, reference)
    device = mi100()
    _assert_same_profiles(profile_trace(columnar, device),
                          reference_profile(reference, device))


def test_finetuning_equivalence():
    model, training = BERT_BASE, training_point(1, 8, Precision.FP32)
    columnar = build_finetuning_trace(model, training)
    reference = reference_finetuning_trace(model, training)
    _assert_same_kernels(columnar, reference)
    device = mi100()
    _assert_same_profiles(profile_trace(columnar, device),
                          reference_profile(reference, device))


def test_region_breakdown_equivalence():
    """Masked-reduction region fractions match record-scan fractions."""
    trace = build_iteration_trace(BERT_TINY,
                                  training_point(1, 32, Precision.FP32))
    device = mi100()
    fast = profile_trace(trace, device)
    slow = reference_profile(trace, device)
    fast_regions = region_breakdown(fast)
    slow_regions = region_breakdown(slow)  # record-backed -> scan path
    assert fast_regions.keys() == slow_regions.keys()
    for region, entry in fast_regions.items():
        assert entry.fraction == pytest.approx(
            slow_regions[region].fraction, rel=1e-12), region


def test_kernel_times_matches_scalar_rowwise():
    """kernel_times == [kernel_time(k) for k] including fused-GEMM rows."""
    from repro.fusion.attention_fusion import apply_fused_attention

    trace = build_iteration_trace(BERT_TINY,
                                  training_point(1, 4, Precision.FP32))
    fused = apply_fused_attention(trace)  # produces fused-GEMM records
    device = mi100()
    batched = kernel_times(fused, device)
    scalar = np.array([kernel_time(k, device) for k in fused.kernels])
    assert (batched == scalar).all()


def test_mutated_trace_still_equivalent():
    """Once the kernel list is touched, the legacy scan paths take over
    and still agree with a rebuilt columnar profile."""
    training = training_point(1, 4, Precision.FP32)
    trace = build_iteration_trace(BERT_TINY, training)
    device = mi100()
    half = trace.kernels[:len(trace.kernels) // 2]  # materializes the view
    truncated = trace.replaced(half)
    fast = profile_trace(truncated, device)
    slow = reference_profile(truncated, device)
    _assert_same_profiles(fast, slow)


def test_pickle_roundtrip_preserves_equivalence():
    """The columnar pickle form (runner cache payload) loses nothing."""
    import pickle

    training = training_point(2, 4, Precision.FP32)
    trace = build_iteration_trace(BERT_TINY, training)
    device = mi100()
    profile = profile_trace(trace, device)

    trace2 = pickle.loads(pickle.dumps(trace))
    profile2 = pickle.loads(pickle.dumps(profile))
    assert trace2.kernels == trace.kernels
    assert (profile2.times == profile.times).all()
    assert profile2.records == profile.records
