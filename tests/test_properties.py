"""Property-based tests (hypothesis) on core invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import BERT_TINY, BertConfig, TrainingConfig
from repro.distributed import LinkSpec, ring_allreduce_time
from repro.fusion import fuse_chain
from repro.hw import mi100, shape_efficiency
from repro.ops.base import Component, DType, Phase, Region
from repro.ops.elementwise import elementwise
from repro.ops.gemm import GemmShape
from repro.tensor import functional as F
from repro.tensor.tensor import Tensor
from repro.trace.parameters import bert_parameter_inventory

dims = st.integers(min_value=1, max_value=4096)
small_dims = st.integers(min_value=1, max_value=64)


class TestGemmShapeProperties:
    @given(m=dims, n=dims, k=dims, batch=st.integers(1, 64))
    def test_flops_and_bytes_positive_and_consistent(self, m, n, k, batch):
        shape = GemmShape(m=m, n=n, k=k, batch=batch)
        assert shape.flops == 2 * m * n * k * batch
        assert shape.bytes_total(DType.FP32) == 4 * shape.elements()
        assert shape.arithmetic_intensity(DType.FP32) > 0

    @given(m=dims, n=dims, k=dims)
    def test_transpose_preserves_cost(self, m, n, k):
        shape = GemmShape(m=m, n=n, k=k)
        t = shape.transposed()
        assert t.flops == shape.flops
        assert t.bytes_total(DType.FP16) == shape.bytes_total(DType.FP16)

    @given(m=dims, n=dims, k=dims, batch=st.integers(1, 16))
    def test_efficiency_in_unit_interval(self, m, n, k, batch):
        eff = shape_efficiency(GemmShape(m=m, n=n, k=k, batch=batch),
                               mi100())
        assert 0.0 < eff <= 1.0

    @given(m=dims, n=dims, k=dims)
    def test_intensity_below_smallest_dim(self, m, n, k):
        # ops/byte of a GEMM is bounded by min(m, n, k) / 2 elements: exact
        # bound is mnk/(mk+kn+mn) <= min/3 per element -> *2flops /4bytes.
        shape = GemmShape(m=m, n=n, k=k)
        bound = min(m, n, k) * 2 / 4  # FLOPs per FP32 byte upper bound
        assert shape.arithmetic_intensity(DType.FP32) <= bound + 1e-9


class TestCollectiveProperties:
    link = LinkSpec(name="p", bandwidth_gbps=20.0, latency_us=2.0)

    @given(payload=st.integers(1, 1 << 32), devices=st.integers(2, 512))
    def test_allreduce_positive_and_latency_bounded(self, payload, devices):
        t = ring_allreduce_time(payload, devices, self.link)
        assert t >= 2 * (devices - 1) * self.link.latency_s

    @given(payload=st.integers(1, 1 << 30), devices=st.integers(2, 128))
    def test_allreduce_monotone_in_payload(self, payload, devices):
        t1 = ring_allreduce_time(payload, devices, self.link)
        t2 = ring_allreduce_time(2 * payload, devices, self.link)
        assert t2 > t1


class TestFusionProperties:
    @given(steps=st.integers(2, 10),
           n_elements=st.integers(1024, 1 << 22))
    @settings(max_examples=30)
    def test_fusion_conserves_flops_and_reduces_traffic(self, steps,
                                                        n_elements):
        chain = [elementwise(f"s{i}", n_elements=n_elements,
                             dtype=DType.FP32, phase=Phase.FORWARD,
                             component=Component.TRANSFORMER,
                             region=Region.FC_GELU, inputs=1, outputs=1,
                             flops_per_element=1.0, fusion_group="g")
                 for i in range(steps)]
        fused = fuse_chain(chain)
        assert fused.flops == sum(k.flops for k in chain)
        assert fused.bytes_total < sum(k.bytes_total for k in chain)
        # A pure chain collapses to one read + one write.
        assert fused.bytes_total == 2 * n_elements * 4


class TestAutogradProperties:
    @given(rows=st.integers(1, 8), cols=st.integers(2, 16),
           seed=st.integers(0, 1000))
    @settings(max_examples=30)
    def test_softmax_rows_always_sum_to_one(self, rows, cols, seed):
        rng = np.random.default_rng(seed)
        x = Tensor(rng.normal(scale=10.0, size=(rows, cols)))
        out = F.softmax(x).data
        np.testing.assert_allclose(out.sum(axis=-1), np.ones(rows),
                                   rtol=1e-5)
        assert (out >= 0).all()

    @given(n=st.integers(1, 32), seed=st.integers(0, 1000))
    @settings(max_examples=30)
    def test_add_gradient_is_ones(self, n, seed):
        rng = np.random.default_rng(seed)
        a = Tensor(rng.normal(size=n), requires_grad=True)
        b = Tensor(rng.normal(size=n), requires_grad=True)
        (a + b).sum().backward()
        np.testing.assert_allclose(a.grad, np.ones(n))
        np.testing.assert_allclose(b.grad, np.ones(n))

    @given(m=st.integers(1, 8), k=st.integers(1, 8), n=st.integers(1, 8),
           seed=st.integers(0, 100))
    @settings(max_examples=30)
    def test_matmul_gradient_shapes(self, m, k, n, seed):
        rng = np.random.default_rng(seed)
        a = Tensor(rng.normal(size=(m, k)), requires_grad=True)
        b = Tensor(rng.normal(size=(k, n)), requires_grad=True)
        a.matmul(b).sum().backward()
        assert a.grad.shape == (m, k)
        assert b.grad.shape == (k, n)

    @given(seed=st.integers(0, 1000))
    @settings(max_examples=20)
    def test_gelu_between_zero_and_identity(self, seed):
        rng = np.random.default_rng(seed)
        x = rng.normal(scale=3.0, size=50)
        out = F.gelu(Tensor(x)).data
        positive = x > 0
        assert (out[positive] <= x[positive] + 1e-9).all()
        assert (out[positive] >= 0).all()
        assert (np.abs(out[~positive]) <= np.abs(x[~positive]) + 1e-9).all()


class TestConfigProperties:
    @given(layers=st.integers(1, 48), heads=st.sampled_from([1, 2, 4, 8]),
           mult=st.integers(1, 8))
    @settings(max_examples=30)
    def test_parameter_inventory_matches_formula(self, layers, heads, mult):
        d = heads * 8 * mult
        config = BertConfig(num_layers=layers, d_model=d, num_heads=heads,
                            d_ff=4 * d, vocab_size=128, max_position=64)
        inventory_total = sum(t.n_elements
                              for t in bert_parameter_inventory(config))
        assert inventory_total == config.total_parameters()

    @given(batch=st.integers(1, 64), seq=st.sampled_from([16, 128, 512]))
    def test_tokens_per_iteration(self, batch, seq):
        t = TrainingConfig(batch_size=batch, seq_len=seq)
        assert t.tokens_per_iteration == batch * seq


class TestTraceProperties:
    @given(batch=st.sampled_from([1, 2, 4]), seq=st.sampled_from([16, 32]))
    @settings(max_examples=10, deadline=None)
    def test_iteration_trace_invariants(self, batch, seq):
        from repro.trace import build_iteration_trace
        trace = build_iteration_trace(
            BERT_TINY, TrainingConfig(batch_size=batch, seq_len=seq))
        assert trace.total_flops > 0
        for kernel in trace:
            assert kernel.bytes_total > 0 or kernel.flops >= 0
            if kernel.op_class.is_gemm:
                assert kernel.gemm is not None
                assert kernel.flops == kernel.gemm.flops
