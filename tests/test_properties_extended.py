"""Second round of property-based tests across newer subsystems."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.packing import first_fit_decreasing
from repro.distributed import LinkSpec, simulate_ring_allreduce
from repro.distributed.pipeline import pipeline_bubble_fraction
from repro.hw import default_energy_spec, kernel_energy, mi100
from repro.hw.microsim import simulate_kernel
from repro.hw.timing import kernel_time
from repro.ops.base import (AccessPattern, Component, DType, Kernel, OpClass,
                            Phase, Region)
from repro.ops.elementwise import elementwise
from repro.ops.gemm import GemmShape

DEVICE = mi100()


def _gemm_kernel(shape: GemmShape, dtype=DType.FP32) -> Kernel:
    return Kernel(name="g", op_class=OpClass.GEMM, phase=Phase.FORWARD,
                  component=Component.TRANSFORMER, region=Region.FC_GEMM,
                  flops=shape.flops, bytes_read=shape.bytes_read(dtype),
                  bytes_written=shape.bytes_written(dtype), dtype=dtype,
                  gemm=shape, n_elements=shape.m * shape.n * shape.batch)


class TestBackendAgreementProperties:
    @given(m=st.integers(16, 4096), n=st.integers(16, 4096),
           k=st.integers(16, 2048), batch=st.integers(1, 64))
    @settings(max_examples=40, deadline=None)
    def test_microsim_never_faster_than_analytical_by_much(self, m, n, k,
                                                           batch):
        """The wave simulation adds tail effects on top of the closed
        form; it may be slower but never meaningfully faster."""
        kernel = _gemm_kernel(GemmShape(m=m, n=n, k=k, batch=batch))
        analytical = kernel_time(kernel, DEVICE)
        simulated = simulate_kernel(kernel, DEVICE).time_s
        assert simulated > 0.5 * analytical

    @given(elements=st.integers(1024, 1 << 24))
    @settings(max_examples=30, deadline=None)
    def test_elementwise_backends_close(self, elements):
        kernel = elementwise("e", n_elements=elements, dtype=DType.FP32,
                             phase=Phase.FORWARD,
                             component=Component.TRANSFORMER,
                             region=Region.DR_RC_LN, inputs=2, outputs=1)
        analytical = kernel_time(kernel, DEVICE)
        simulated = simulate_kernel(kernel, DEVICE).time_s
        assert 0.5 < simulated / analytical < 2.0


class TestPackingProperties:
    @given(lengths=st.lists(st.integers(1, 100), min_size=1, max_size=80),
           capacity=st.integers(100, 300))
    @settings(max_examples=50)
    def test_every_item_placed_exactly_once_without_overflow(self, lengths,
                                                             capacity):
        bins = first_fit_decreasing(lengths, capacity)
        placed = sorted(i for b in bins for i in b)
        assert placed == list(range(len(lengths)))
        for b in bins:
            assert sum(lengths[i] for i in b) <= capacity

    @given(lengths=st.lists(st.integers(1, 50), min_size=1, max_size=60))
    @settings(max_examples=30)
    def test_never_worse_than_one_bin_per_item(self, lengths):
        bins = first_fit_decreasing(lengths, 100)
        assert len(bins) <= len(lengths)
        # And never better than the volume bound.
        assert len(bins) >= -(-sum(lengths) // 100)


class TestEnergyProperties:
    spec = default_energy_spec()

    @given(elements=st.integers(1, 1 << 22),
           flops_per=st.floats(0.0, 16.0))
    @settings(max_examples=40)
    def test_energy_positive_and_monotone_in_size(self, elements,
                                                  flops_per):
        small = elementwise("e", n_elements=elements, dtype=DType.FP32,
                            phase=Phase.FORWARD,
                            component=Component.TRANSFORMER,
                            region=Region.DR_RC_LN,
                            flops_per_element=flops_per)
        large = elementwise("e", n_elements=2 * elements, dtype=DType.FP32,
                            phase=Phase.FORWARD,
                            component=Component.TRANSFORMER,
                            region=Region.DR_RC_LN,
                            flops_per_element=flops_per)
        assert 0 < kernel_energy(small, self.spec) < kernel_energy(
            large, self.spec)

    @given(elements=st.integers(1024, 1 << 22))
    @settings(max_examples=30)
    def test_nmc_pricing_never_more_expensive(self, elements):
        kernel = elementwise("e", n_elements=elements, dtype=DType.FP32,
                             phase=Phase.OPTIMIZER,
                             component=Component.OPTIMIZER,
                             region=Region.OPT_STAGE1)
        assert (kernel_energy(kernel, self.spec, nmc=True)
                <= kernel_energy(kernel, self.spec))


class TestDistributedProperties:
    link = LinkSpec(name="l", bandwidth_gbps=25.0, latency_us=3.0)

    @given(payload=st.integers(1 << 10, 1 << 28),
           devices=st.integers(2, 64))
    @settings(max_examples=30, deadline=None)
    def test_ring_simulation_event_conservation(self, payload, devices):
        run = simulate_ring_allreduce(payload, devices, self.link)
        assert len(run.events) == 2 * (devices - 1) * devices
        # Events never travel backward in time.
        for event in run.events:
            assert event.end_s >= event.start_s >= 0.0

    @given(stages=st.integers(1, 16), micro=st.integers(1, 64))
    @settings(max_examples=50)
    def test_bubble_fraction_bounds(self, stages, micro):
        bubble = pipeline_bubble_fraction(stages, micro)
        assert 0.0 <= bubble < 1.0
        # More micro-batches never grow the bubble.
        assert bubble >= pipeline_bubble_fraction(stages, micro + 1)


class TestBandwidthModelProperties:
    @given(size=st.integers(1, 1 << 30))
    @settings(max_examples=50)
    def test_achieved_bandwidth_bounded_by_peak(self, size):
        for access in AccessPattern:
            achieved = DEVICE.achieved_bandwidth(access, size)
            assert 0 < achieved <= DEVICE.peak_bandwidth

    @given(size=st.integers(1, 1 << 28))
    @settings(max_examples=40)
    def test_achieved_bandwidth_monotone_in_size(self, size):
        small = DEVICE.achieved_bandwidth(AccessPattern.STREAMING, size)
        large = DEVICE.achieved_bandwidth(AccessPattern.STREAMING, 2 * size)
        assert large >= small
