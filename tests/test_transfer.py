"""Tests for the Sec. 7 cross-device transferability claims."""

import pytest

from repro.config import BERT_LARGE, Precision, training_point
from repro.experiments import transfer_study
from repro.hw import a100_like, balanced_accelerator, mi100, v100_like
from repro.ops.base import DType, Region
from repro.profiler.breakdown import region_breakdown, summarize
from repro.profiler.profiler import profile_trace
from repro.trace import build_iteration_trace


@pytest.fixture(scope="module")
def devices():
    return (mi100(), v100_like(), a100_like())


@pytest.fixture(scope="module")
def trace():
    return build_iteration_trace(BERT_LARGE,
                                 training_point(1, 32, Precision.FP32))


class TestDevicePresets:
    def test_published_numbers(self):
        v100 = v100_like()
        assert v100.mem_bandwidth_gbps == 900.0
        assert v100.compute_units == 80
        a100 = a100_like()
        assert a100.mem_bandwidth_gbps == 1555.0

    def test_balance_ordering(self, devices):
        balances = [d.machine_balance(DType.FP32) for d in devices]
        assert balances[1] < balances[0] < balances[2]  # V100 < MI100 < A100


class TestTransferability:
    def test_qualitative_orderings_hold_everywhere(self, devices, trace):
        """The architecture-agnostic takeaways must hold on every device:
        Transformer dominates, FC region beats linear beats attention
        B-GEMMs, embedding negligible."""
        for device in devices:
            profile = profile_trace(trace.kernels, device)
            stats = summarize(profile)
            regions = region_breakdown(profile)
            assert stats["transformer"] > 0.7, device.name
            assert stats["embedding"] < 0.02, device.name
            assert (regions[Region.FC_GEMM].fraction
                    > regions[Region.ATTENTION_LINEAR].fraction
                    > regions[Region.ATTENTION_BGEMM].fraction), device.name

    def test_memory_bound_share_tracks_machine_balance(self, devices,
                                                       trace):
        """Sec. 7: as compute outpaces bandwidth, memory-bound operations'
        share grows monotonically."""
        rows = sorted(
            ((d.machine_balance(DType.FP32),
              summarize(profile_trace(trace.kernels, d))["non_gemm"])
             for d in devices))
        shares = [share for _, share in rows]
        assert shares == sorted(shares)

    def test_takeaway_amplified_on_future_device(self, trace):
        """A compute-rich future device amplifies the memory-bound share
        (the paper's 'hold or be amplified' claim for Takeaways 7-9)."""
        today = summarize(profile_trace(trace.kernels, mi100()))
        future_device = balanced_accelerator(46.1 * 4, 1228.8,
                                             name="4x-compute")
        future = summarize(profile_trace(trace.kernels, future_device))
        assert future["non_gemm"] > today["non_gemm"]
        assert future["optimizer"] > today["optimizer"]

    def test_lamb_small_batch_dominance_everywhere(self, devices):
        """Takeaway 1 is architecture-agnostic: LAMB is the second-highest
        contributor at B=4 on every device."""
        small = build_iteration_trace(BERT_LARGE,
                                      training_point(1, 4, Precision.FP32))
        for device in devices:
            stats = summarize(profile_trace(small.kernels, device))
            assert stats["optimizer"] > stats["output"], device.name
            assert stats["optimizer"] > 0.10, device.name


class TestTransferExperiment:
    def test_rows_and_render(self):
        rows = transfer_study.run()
        assert {r.device_name for r in rows} == {"mi100", "v100-like",
                                                 "a100-like"}
        out = transfer_study.render(rows)
        assert "balance" in out and "mi100" in out

    def test_iteration_time_scales_with_hardware(self):
        rows = {r.device_name: r for r in transfer_study.run()}
        assert (rows["a100-like"].iteration_s < rows["mi100"].iteration_s
                < rows["v100-like"].iteration_s)
