"""Scaling-trends tests plus coverage of miscellaneous helpers."""

import pytest

from repro.config import BERT_TINY, TrainingConfig
from repro.experiments import scaling_trends
from repro.ops import (IntensityRecord, bandwidth_demand, group_intensity,
                       kernel_intensity)
from repro.ops.base import Component, DType, OpClass, Phase, Region
from repro.ops.elementwise import elementwise
from repro.trace import build_iteration_trace


class TestScalingTrends:
    @pytest.fixture(scope="class")
    def rows(self):
        return scaling_trends.run()

    def test_ladder_order_and_sizes(self, rows):
        params = [row.parameters for row in rows]
        assert params == sorted(params)
        assert rows[0].parameters < 120e6        # BERT Base
        assert rows[-1].parameters > 6e9         # GPT-3-6.7B-like

    def test_lamb_share_grows_monotonically(self, rows):
        # Takeaway 11 extrapolated to the intro's model lineage.
        shares = [row.lamb for row in rows]
        assert shares == sorted(shares)
        assert shares[-1] > 0.25

    def test_linear_fc_share_grows(self, rows):
        shares = [row.linear_fc for row in rows]
        assert shares == sorted(shares)

    def test_memory_wall_forces_model_parallelism(self, rows):
        # The billion-parameter models cannot train on one 32 GB device —
        # the motivation for Sec. 5's tensor slicing.
        by_name = {row.name: row for row in rows}
        assert by_name["bert-large"].fits_32gb
        assert not by_name["megatron-3.9b"].fits_32gb
        assert not by_name["gpt3-6.7b-like"].fits_32gb

    def test_render(self, rows):
        out = scaling_trends.render(rows)
        assert "model parallel" in out and "megatron-3.9b" in out


class TestIntensityHelpers:
    def _kernel(self, flops=100, n=1000):
        return elementwise("k", n_elements=n, dtype=DType.FP32,
                           phase=Phase.FORWARD,
                           component=Component.TRANSFORMER,
                           region=Region.DR_RC_LN,
                           flops_per_element=flops / n)

    def test_kernel_intensity(self):
        record = kernel_intensity(self._kernel())
        assert record.label == "k"
        assert record.intensity == pytest.approx(100 / 8000)

    def test_group_intensity_sums(self):
        kernels = [self._kernel(), self._kernel()]
        record = group_intensity("pair", kernels)
        assert record.flops == 200
        assert record.bytes_total == 16000

    def test_group_intensity_rejects_byte_free_group(self):
        zero = IntensityRecord(label="z", flops=0, bytes_total=0)
        assert zero.intensity == 0.0
        with pytest.raises(ValueError):
            group_intensity("empty", [])

    def test_bandwidth_demand(self):
        kernels = [self._kernel(), self._kernel()]
        bw = bandwidth_demand(kernels, [1e-3, 1e-3])
        assert bw == pytest.approx(16000 / 2e-3)
        with pytest.raises(ValueError):
            bandwidth_demand(kernels, [0.0, 0.0])


class TestTraceHelpers:
    @pytest.fixture(scope="class")
    def trace(self):
        return build_iteration_trace(BERT_TINY,
                                     TrainingConfig(batch_size=2,
                                                    seq_len=16))

    def test_kernel_count_matches_select(self, trace):
        assert (trace.kernel_count(op_class=OpClass.GEMM)
                == len(trace.select(op_class=OpClass.GEMM)))

    def test_gemm_non_gemm_partition(self, trace):
        assert len(trace.gemms()) + len(trace.non_gemms()) == len(trace)

    def test_totals_positive(self, trace):
        assert trace.total_flops > 0
        assert trace.total_bytes > 0

    def test_iteration_is_deterministic(self):
        a = build_iteration_trace(BERT_TINY,
                                  TrainingConfig(batch_size=2, seq_len=16))
        b = build_iteration_trace(BERT_TINY,
                                  TrainingConfig(batch_size=2, seq_len=16))
        assert [k.name for k in a] == [k.name for k in b]
        assert a.total_flops == b.total_flops


class TestReportEdgeCases:
    def test_stacked_bar_pads_remainder(self):
        from repro.report import stacked_bar
        out = stacked_bar([("x", 0.3)], width=20)
        bar = out.splitlines()[0]
        assert bar.count(" ") >= 13  # unfilled remainder stays blank

    def test_bar_chart_label_alignment(self):
        from repro.report import bar_chart
        out = bar_chart([("long-label", [("x", 1.0)]),
                         ("s", [("y", 1.0)])])
        lines = out.splitlines()
        assert lines[0].index("|") == lines[2].index("|")


class TestRunPointCustomDevice:
    def test_custom_device_bypasses_cache(self):
        from repro.config import TrainingConfig
        from repro.experiments.common import run_point
        from repro.hw import balanced_accelerator

        custom = balanced_accelerator(100.0, 2000.0, name="weird")
        trace, profile = run_point(
            BERT_TINY, TrainingConfig(batch_size=2, seq_len=16), custom)
        assert profile.device.name == "weird"
        assert len(trace) == len(profile)

    def test_default_device_results_cached(self):
        from repro.config import TrainingConfig
        from repro.experiments.common import run_point
        from repro.runner.telemetry import collect

        training = TrainingConfig(batch_size=2, seq_len=16)
        first = run_point(BERT_TINY, training)
        with collect() as telemetry:
            second = run_point(BERT_TINY, training)
        assert telemetry.cache_hits == 1  # served from the cache...
        assert first[0] is not second[0]  # ...as a defensive copy
        assert first[0].kernels == second[0].kernels


class TestPackingStudy:
    def test_savings_ordered_by_pair_length(self):
        from repro.experiments import packing_study
        rows = packing_study.run(segments=256)
        saved = [row.compute_saved for row in rows]
        # Shorter pairs pack denser -> bigger savings.
        assert saved == sorted(saved, reverse=True)
        assert saved[0] > 0.7

    def test_occupancy_high_everywhere(self):
        from repro.experiments import packing_study
        for row in packing_study.run(segments=256):
            assert row.mean_efficiency > 0.85
            assert row.sequences_packed < row.sequences_unpacked

    def test_render_includes_context(self):
        from repro.experiments import packing_study
        out = packing_study.render(packing_study.run(segments=128))
        assert "compute saved" in out and "occupancy" in out
