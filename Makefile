# Convenience targets. Everything works offline (NumPy is the only
# runtime dependency; pytest/pytest-benchmark/hypothesis/scipy for tests).

.PHONY: install test bench experiments examples lint verify all

install:
	python setup.py develop

test:
	pytest tests/

bench:
	pytest benchmarks/ --benchmark-only -s

experiments:
	python -m repro run all

# Tier-1 gate: the full test suite, a parallel end-to-end smoke of
# every registered experiment (exercises the runner, cache and manifest),
# a validated Perfetto export (exercises the observability layer), a
# live-server telemetry smoke (scrapes /metrics, validates the Prometheus
# exposition, round-trips a trace through the flight recorder), a
# lazy-graph smoke (schedule validity, determinism, no double-realize,
# graph-lowered trace bit-identical to the builder), and a chaos smoke
# (seeded fault injection: runner outputs byte-identical under faults,
# a faulted serve storm degrades to stale bytes or 503/504 only).
verify:
	PYTHONPATH=src python -m pytest tests/ -x -q
	PYTHONPATH=src python -m repro run all --jobs 2
	PYTHONPATH=src python scripts/check_perfetto.py perfetto-smoke
	PYTHONPATH=src python scripts/check_prometheus.py prometheus-smoke
	PYTHONPATH=src python scripts/check_lazy_graph.py
	PYTHONPATH=src python scripts/check_chaos.py chaos-smoke

examples:
	python examples/quickstart.py
	python examples/accelerator_design_space.py
	python examples/distributed_scaleout.py
	python examples/checkpointing_memory.py
	python examples/characterize_and_export.py
	python examples/plan_training_run.py
	python examples/train_tiny_bert.py

all: test bench experiments
