"""Setup shim enabling legacy editable installs where `wheel` is absent.

Offline environments without the `wheel` package cannot build PEP 517
editable wheels; `pip install -e . --no-build-isolation --no-use-pep517`
uses this shim instead.  All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
