#!/usr/bin/env python
"""CI smoke check of the request-scoped telemetry pipeline.

Boots the real serve stack in-process (App + asyncio HTTP transport on a
free port), drives a handful of requests through the socket path, then
checks every acceptance surface of the pipeline:

* ``GET /metrics`` declares the exposition content type and the body
  passes :func:`repro.obs.prometheus.validate_exposition` (and carries
  the serve request counters the traffic just incremented);
* the cold ``/profile`` request produced **one connected span tree**
  under a single trace id — ``serve.request`` rooting the engine spans
  the worker thread opened;
* ``GET /debug/trace/<id>`` round-trips that tree through
  :func:`repro.obs.timeline_export.validate_chrome_trace`;
* the ``--event-log`` JSONL written during the run parses and records
  the traffic (saved as a CI artifact).

Dependency-free (stdlib + the repo).  Exits nonzero on any problem.

Usage::

    python scripts/check_prometheus.py [output-dir]
"""

from __future__ import annotations

import asyncio
import json
import sys
import urllib.request
from pathlib import Path

from repro.obs.flight import build_span_tree, read_event_log
from repro.obs.prometheus import CONTENT_TYPE, validate_exposition
from repro.obs.timeline_export import validate_chrome_trace

POINT = "fig3.ph1-b32-fp32"


def _get(base: str, path: str) -> tuple[dict, bytes]:
    with urllib.request.urlopen(base + path, timeout=60) as response:
        return dict(response.headers), response.read()


async def _drive(out: Path) -> None:
    from repro.serve import App, HotCache, create_server, server_address

    event_log = out / "flight.jsonl"
    app = App(workers=2, queue_limit=8, hot_cache=HotCache(),
              event_log=str(event_log))
    server = await create_server(app, port=0)
    host, port = server_address(server)
    base = f"http://{host}:{port}"
    loop = asyncio.get_running_loop()

    try:
        # Cold profile (computes on a worker thread), then a hot repeat.
        for _ in range(2):
            await loop.run_in_executor(
                None, _get, base, f"/profile/{POINT}")
        await loop.run_in_executor(None, _get, base, "/healthz")

        headers, body = await loop.run_in_executor(
            None, _get, base, "/metrics")
        if headers.get("Content-Type") != CONTENT_TYPE:
            raise SystemExit(f"/metrics Content-Type is "
                             f"{headers.get('Content-Type')!r}, "
                             f"expected {CONTENT_TYPE!r}")
        text = body.decode()
        (out / "metrics.prom").write_text(text)
        problems = validate_exposition(text)
        if problems:
            raise SystemExit("/metrics failed validation: "
                             + "; ".join(problems))
        for needle in ("serve_requests_total", "serve_request_seconds"):
            if needle not in text:
                raise SystemExit(f"/metrics missing {needle}")
        print(f"ok: /metrics ({len(text.splitlines())} lines, "
              "exposition-valid)")

        _, debug = await loop.run_in_executor(
            None, _get, base, "/debug/requests")
        requests = json.loads(debug)["requests"]
        cold = [r for r in requests
                if r["route"] == "profile" and r["cache"] == "computed"]
        if not cold:
            raise SystemExit("no computed /profile request in the flight "
                             "recorder")
        trace_id = cold[-1]["trace_id"]

        _, trace = await loop.run_in_executor(
            None, _get, base, f"/debug/trace/{trace_id}")
        record = json.loads(trace)
        roots = build_span_tree(record["spans"])
        if len(roots) != 1 or roots[0]["name"] != "serve.request":
            raise SystemExit(
                f"trace {trace_id}: expected one serve.request root, got "
                f"{[r['name'] for r in roots]}")
        if not roots[0]["children"]:
            raise SystemExit(f"trace {trace_id}: serve.request has no "
                             "engine children (context not propagated)")
        problems = validate_chrome_trace(record["perfetto"])
        if problems:
            raise SystemExit(f"trace {trace_id}: perfetto export invalid: "
                             + "; ".join(problems))
        print(f"ok: /debug/trace/{trace_id} ({len(record['spans'])} spans, "
              "one connected tree, perfetto-valid)")
    finally:
        server.close()
        await server.wait_closed()
        app.close()

    records = read_event_log(event_log)
    if len(records) < 3:
        raise SystemExit(f"event log has {len(records)} records, "
                         "expected the driven traffic")
    print(f"ok: {event_log} ({len(records)} records)")


def main() -> None:
    out = Path(sys.argv[1]) if len(sys.argv) > 1 else Path(
        "prometheus-smoke")
    out.mkdir(parents=True, exist_ok=True)
    asyncio.run(_drive(out))


if __name__ == "__main__":
    main()
