#!/usr/bin/env python
"""CI smoke check of the lazy tensor graph and its scheduler.

Validates the structural guarantees the lazy refactor rests on, end to
end on real graphs:

* **Acyclicity / source-before-use** — the analytic BERT graphs (plain,
  mixed-precision, checkpointed, fused) pass ``validate_schedule``.
* **Deterministic schedule order** — ``linearize`` over the graph roots
  reproduces the construction-order schedule, twice.
* **No double-realize** — executing a realized node raises, and a full
  ``realize`` of the tiny graph executes each schedule item exactly once.
* **Lowering agreement** — the lazily lowered BERT Large kernel stream
  is bit-identical to the layer-templated builder, through the CLI path
  (``repro trace --from-graph`` performs the same comparison and exits
  nonzero on divergence).

Exits nonzero on any problem.

Usage::

    python scripts/check_lazy_graph.py
"""

from __future__ import annotations

from repro.cli import main as repro_main
from repro.config import BERT_TINY, Precision, training_point
from repro.tensor.schedule import (ScheduleError, execute, linearize,
                                   realize, validate_schedule)
from repro.trace.lowerer import bert_iteration_graph

GRAPHS = {
    "tiny-fp32": (BERT_TINY, training_point(1, 2, Precision.FP32), ()),
    "tiny-mixed": (BERT_TINY, training_point(1, 2, Precision.MIXED), ()),
    "tiny-ckpt": (BERT_TINY,
                  training_point(1, 2, Precision.FP32,
                                 activation_checkpointing=True), ()),
    "tiny-fused": (BERT_TINY, training_point(1, 2, Precision.FP32),
                   ("fuse_elementwise",)),
}

CLI_POINT = "fig3.ph1-b32-fp32"


def main() -> None:
    for name, (model, training, rewrites) in GRAPHS.items():
        graph = bert_iteration_graph(model, training, rewrites=rewrites)
        graph.validate()  # acyclic, source-before-use, no replays
        print(f"ok: {name} validates ({len(graph.schedule)} items)")

    # Deterministic schedule order: linearize is pure and reproduces the
    # construction-order schedule.
    graph = bert_iteration_graph(BERT_TINY,
                                 training_point(1, 2, Precision.FP32))
    first = linearize(graph.roots)
    if first != graph.schedule or first != linearize(graph.roots):
        raise SystemExit("linearize is not deterministic")
    print(f"ok: deterministic schedule order ({len(first)} items)")

    # No double-realize: one full execution, then re-execution raises.
    report = realize(graph.roots, report=True)
    if len(report.executed) != len(graph.schedule):
        raise SystemExit(
            f"executed {len(report.executed)} items, "
            f"schedule has {len(graph.schedule)}")
    try:
        execute(report.executed[-1])
    except ScheduleError:
        pass
    else:
        raise SystemExit("double realize did not raise")
    print(f"ok: no double-realize ({len(report.executed)} executed, "
          f"{report.freed} buffers recycled)")

    # Lowering agreement on BERT Large, through the CLI comparison path.
    if repro_main(["trace", CLI_POINT, "--from-graph"]):
        raise SystemExit(f"repro trace {CLI_POINT} --from-graph failed")


if __name__ == "__main__":
    main()
