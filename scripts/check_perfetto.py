#!/usr/bin/env python
"""CI smoke check of the Perfetto export path.

Runs ``repro export --format perfetto`` on one registry operating point
(and the Fig. 11 multi-device timelines), then re-validates the written
JSON from disk: parseable, schema-clean (``validate_chrome_trace``),
non-empty, and — for the profile export — slice durations summing to the
profile's total time.  Exits nonzero on any problem.

Usage::

    python scripts/check_perfetto.py [output-dir]
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

from repro.cli import main as repro_main
from repro.experiments.common import run_point
from repro.experiments.points import resolve_point
from repro.obs.timeline_export import validate_chrome_trace

POINT = "fig3.ph1-b32-fp32"


def _check(path: Path, *, expect_total_us: float | None = None) -> None:
    payload = json.loads(path.read_text())
    problems = validate_chrome_trace(payload)
    if problems:
        raise SystemExit(f"{path}: invalid trace: {'; '.join(problems)}")
    slices = [e for e in payload["traceEvents"] if e["ph"] == "X"]
    if not slices:
        raise SystemExit(f"{path}: no slices")
    if expect_total_us is not None:
        total_us = sum(e["dur"] for e in slices)
        if abs(total_us - expect_total_us) > 1e-6 * expect_total_us:
            raise SystemExit(
                f"{path}: slice durations sum to {total_us} us, "
                f"profile says {expect_total_us} us")
    print(f"ok: {path} ({len(slices)} slices)")


def main() -> None:
    out = Path(sys.argv[1]) if len(sys.argv) > 1 else Path("perfetto-smoke")
    out.mkdir(parents=True, exist_ok=True)

    point_path = out / "fig3_point.json"
    if repro_main(["export", "--format", "perfetto", POINT,
                   str(point_path)]):
        raise SystemExit(f"export of {POINT} failed")
    _, profile = run_point(*resolve_point(POINT))
    _check(point_path, expect_total_us=profile.total_time * 1e6)

    fig11_path = out / "fig11_timelines.json"
    if repro_main(["export", "--format", "perfetto", "fig11",
                   str(fig11_path)]):
        raise SystemExit("export of fig11 failed")
    _check(fig11_path)


if __name__ == "__main__":
    main()
