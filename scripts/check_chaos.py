#!/usr/bin/env python
"""CI smoke check of the fault-injection subsystem and resilience stack.

Two legs, both driven by seeded :class:`~repro.faults.plan.FaultPlan`\\ s
so every run of this script injects the *same* schedule:

* **Runner chaos** — ``run_experiments`` under ≥50% worker kills, ≥30%
  cache-read corruption and slowed computes, against a fault-free
  baseline.  Every experiment must complete (retries absorb the kills,
  quarantine absorbs the corruption) and every completed output must be
  **byte-identical** to the fault-free run — the chaos-determinism
  invariant.  A warm-cache replay under 100% read corruption must
  quarantine entries and still reproduce the same bytes.

* **Serve chaos** — a live asyncio server (real sockets) under injected
  ``serve.fail``/``serve.slow`` faults, hit by a concurrent storm.
  Acceptance: zero wrong bytes (every 200 body is byte-identical to the
  fault-free rendering; degraded answers are stale bytes or 503/504,
  never garbage) and an availability floor — at least
  :data:`MIN_AVAILABILITY` of the storm answered 200.

Dependency-free (stdlib + the repo).  Writes a JSON summary artifact.
Exits nonzero on any problem.

Usage::

    python scripts/check_chaos.py [output-dir]
"""

from __future__ import annotations

import asyncio
import json
import sys
import tempfile
import time
from pathlib import Path

from repro.experiments.common import clear_memo
from repro.faults import sites
from repro.faults.plan import FaultPlan
from repro.runner.cache import configure_cache, get_cache, reset_cache
from repro.runner.executor import run_experiments

#: Runner-leg experiments (small and fast; the invariant is per-byte).
IDS = ["fig4", "sec4", "fig6", "fig3"]

#: Runner chaos plan: kills force retries, corruption forces recomputes.
RUNNER_CHAOS = "worker.kill:0.5,cache.corrupt:0.3,compute.slow:1ms"
RUNNER_SEED = 11

#: Serve chaos plan: ~30% of compute attempts die, the rest are slowed.
SERVE_CHAOS = "serve.fail:0.3,serve.slow:5ms"
SERVE_SEED = 5

#: Storm shape and the availability floor CI enforces.
STORM_REQUESTS = 100
STORM_POINTS = ("tiny.ph1-b2-fp32", "fig8.ph1-b4-fp32")
MIN_AVAILABILITY = 0.90


def _fresh(root: Path, tag: str) -> None:
    configure_cache(root / f"cache-{tag}")
    clear_memo()


def check_runner(root: Path) -> dict:
    """Chaos-determinism over the batch runner; returns the summary."""
    sites.deactivate()
    _fresh(root, "baseline")
    baseline = run_experiments(IDS)
    if not all(r.ok for r in baseline):
        raise SystemExit("fault-free baseline failed: "
                         + ", ".join(r.experiment_id
                                     for r in baseline if not r.ok))
    reference = {r.experiment_id: r.output for r in baseline}

    _fresh(root, "chaos")
    plan = FaultPlan.parse(RUNNER_CHAOS, seed=RUNNER_SEED)
    sites.activate(plan)
    chaotic = run_experiments(IDS)
    failed = [r.experiment_id for r in chaotic if not r.ok]
    if failed:
        raise SystemExit(f"chaos run failed experiments: {failed} "
                         "(retries should have absorbed the kills)")
    mismatched = [r.experiment_id for r in chaotic
                  if r.output != reference[r.experiment_id]]
    if mismatched:
        raise SystemExit("CHAOS-DETERMINISM VIOLATION: outputs moved "
                         f"under faults: {mismatched}")
    retries = sum(r.counters.get("retries", 0) for r in chaotic)
    if retries < 1:
        raise SystemExit("chaos run absorbed no retries; the plan "
                         "injected nothing (seed/schedule drift?)")

    # Warm replay under total read corruption: every cached entry is
    # quarantined and recomputed — bytes still must not move.
    sites.activate(FaultPlan.parse("cache.corrupt:1", seed=RUNNER_SEED))
    clear_memo()
    replay = run_experiments(IDS)
    sites.deactivate()
    if not all(r.ok for r in replay):
        raise SystemExit("corrupted-cache replay failed")
    mismatched = [r.experiment_id for r in replay
                  if r.output != reference[r.experiment_id]]
    if mismatched:
        raise SystemExit("CHAOS-DETERMINISM VIOLATION on corrupted "
                         f"replay: {mismatched}")
    quarantined = get_cache().stats.corrupt
    if quarantined < 1:
        raise SystemExit("100% corruption plan quarantined nothing")

    print(f"ok: runner chaos — {len(IDS)} experiments byte-identical "
          f"under {RUNNER_CHAOS!r} (retries={retries}, "
          f"quarantined={quarantined})")
    return {"experiments": IDS, "plan": plan.spec(), "seed": RUNNER_SEED,
            "retries": retries, "quarantined": quarantined,
            "byte_identical": True}


async def _get(host: str, port: int, path: str) -> tuple[int, dict, bytes]:
    reader, writer = await asyncio.open_connection(host, port)
    try:
        writer.write(f"GET {path} HTTP/1.1\r\nHost: c\r\n\r\n".encode())
        await writer.drain()
        status = int((await reader.readline()).split()[1])
        headers: dict = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n"):
                break
            name, _, value = line.decode().partition(":")
            headers[name.strip().lower()] = value.strip()
        body = await reader.readexactly(int(headers["content-length"]))
        return status, headers, body
    finally:
        writer.close()


async def _serve_leg(root: Path) -> dict:
    from repro.resilience.retry import Retry
    from repro.serve import App, HotCache, create_server, server_address

    # Fault-free reference bytes for every storm point.
    sites.deactivate()
    _fresh(root, "serve-reference")
    app = App(workers=4, queue_limit=64, hot_cache=HotCache())
    server = await create_server(app)
    host, port = server_address(server)
    reference: dict[str, bytes] = {}
    try:
        for point in STORM_POINTS:
            status, _, body = await _get(host, port, f"/profile/{point}")
            if status != 200:
                raise SystemExit(f"reference request for {point} -> "
                                 f"{status}")
            reference[point] = body
    finally:
        server.close()
        await server.wait_closed()
        app.close()

    # Storm the same points with serve faults active.
    _fresh(root, "serve-chaos")
    sites.activate(FaultPlan.parse(SERVE_CHAOS, seed=SERVE_SEED))
    app = App(workers=4, queue_limit=64, hot_cache=HotCache(),
              retry=Retry(max_attempts=4, base_delay_s=0.005,
                          max_delay_s=0.05, deadline_s=30.0))
    server = await create_server(app)
    host, port = server_address(server)
    try:
        started = time.perf_counter()
        responses = await asyncio.gather(*(
            _get(host, port,
                 f"/profile/{STORM_POINTS[i % len(STORM_POINTS)]}")
            for i in range(STORM_REQUESTS)))
        wall_s = time.perf_counter() - started
    finally:
        server.close()
        await server.wait_closed()
        app.close()
        sites.deactivate()

    ok = sum(1 for status, _, _ in responses if status == 200)
    wrong = []
    for i, (status, headers, body) in enumerate(responses):
        point = STORM_POINTS[i % len(STORM_POINTS)]
        if status == 200 and body != reference[point]:
            wrong.append(point)
        if status not in (200, 503, 504):
            wrong.append(f"status-{status}")
    if wrong:
        raise SystemExit(f"serve chaos produced wrong answers: {wrong} "
                         "(degradation must be stale bytes or 503/504)")
    availability = ok / len(responses)
    if availability < MIN_AVAILABILITY:
        raise SystemExit(f"availability {availability:.1%} under "
                         f"{SERVE_CHAOS!r} below the "
                         f"{MIN_AVAILABILITY:.0%} floor")

    print(f"ok: serve chaos — {len(responses)} requests under "
          f"{SERVE_CHAOS!r}: {ok} x 200, zero wrong bytes, "
          f"availability {availability:.1%} (wall {wall_s * 1e3:.0f}ms)")
    return {"plan": SERVE_CHAOS, "seed": SERVE_SEED,
            "requests": len(responses), "ok": ok,
            "availability": availability, "wall_s": wall_s,
            "zero_wrong_bytes": True}


def main() -> int:
    out = Path(sys.argv[1] if len(sys.argv) > 1 else "chaos-smoke")
    out.mkdir(parents=True, exist_ok=True)
    summary: dict = {}
    try:
        with tempfile.TemporaryDirectory(prefix="check-chaos-") as root:
            summary["runner"] = check_runner(Path(root))
            summary["serve"] = asyncio.run(_serve_leg(Path(root)))
    finally:
        sites.deactivate()
        reset_cache()
        clear_memo()
        (out / "chaos-summary.json").write_text(
            json.dumps(summary, indent=2) + "\n")
    print(f"wrote {out / 'chaos-summary.json'}")
    print("chaos smoke: all checks passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
