"""Calibration sanity check: print modeled breakdowns vs. paper bands."""
from repro.config import BERT_LARGE, FIG3_POINTS
from repro.hw import mi100
from repro.profiler import (profile_trace, region_breakdown, summarize,
                            transformer_breakdown)
from repro.trace import build_iteration_trace

device = mi100()
for training in FIG3_POINTS:
    trace = build_iteration_trace(BERT_LARGE, training)
    profile = profile_trace(trace, device)
    s = summarize(profile)
    print(f"\n== {training.label}  total={s['total_time_s']*1e3:.1f} ms  "
          f"kernels={len(trace)}")
    print("  transformer={transformer:.1%} output={output:.1%} "
          "embedding={embedding:.1%} optimizer={optimizer:.1%} "
          "gemm={gemm:.1%} non_gemm={non_gemm:.1%}".format(**s))
    for region, entry in region_breakdown(profile).items():
        print(f"    {entry.label:45s} {entry.fraction:6.1%}")
    for entry in transformer_breakdown(profile):
        print(f"  [transformer] {entry.label:12s} {entry.fraction:6.1%}")
