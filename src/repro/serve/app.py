"""The async application: routing, worker pool, backpressure, telemetry.

Request lifecycle for the cacheable routes (``/profile``, ``/perfetto``,
``/grid``):

1. resolve + validate on the event loop (unknown point -> 404, bad grid
   spec -> 400; nothing invalid ever reaches a worker);
2. **hot cache** — a hit returns pre-rendered bytes immediately;
3. **coalesce** — if an identical computation is already in flight the
   request attaches to it (``serve.coalesced``) and consumes no worker;
4. **shed** — a request that would *start* a computation while
   ``queue_limit`` computations are already pending is refused with
   ``503`` + ``Retry-After`` (``serve.shed``).  Shedding leaders instead
   of followers keeps an identical-query storm cheap no matter how wide;
5. **compute** — the leader runs the service's sync compute on the
   bounded ``ThreadPoolExecutor`` (``serve.computations``), renders
   once, and populates the hot cache.

Every request increments ``serve.requests{route=,status=}`` and observes
``serve.request_seconds{route=}`` (whose ``p50``/``p99`` feed ``/stats``
and the load harness); when span tracing is enabled each request also
opens a ``serve.request`` span.
"""

from __future__ import annotations

import asyncio
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field

from repro.obs import metrics, spans
from repro.serve.coalesce import Coalescer
from repro.serve.hot_cache import HotCache
from repro.serve.service import ProfilingService, render_json

_REQUESTS = metrics.counter(
    "serve.requests", "HTTP requests by route and status")
_COMPUTATIONS = metrics.counter(
    "serve.computations", "engine computations dispatched to the pool")
_SHED = metrics.counter(
    "serve.shed", "requests refused with 503 under backpressure")
_LATENCY = metrics.histogram(
    "serve.request_seconds", "request wall-clock by route")
_INFLIGHT = metrics.gauge(
    "serve.inflight", "computations currently pending or running")

#: Default worker threads: engine computes release the GIL inside NumPy
#: for long stretches, but they are still CPU-heavy — a small pool.
DEFAULT_WORKERS = 4

#: Default queue-depth limit: leaders pending + running before shedding.
DEFAULT_QUEUE_LIMIT = 32

#: Seconds suggested to a shed client.
RETRY_AFTER_S = 1


@dataclass
class Response:
    """One HTTP response: status, rendered body, extra headers."""

    status: int
    body: bytes
    content_type: str = "application/json"
    headers: dict = field(default_factory=dict)


def _json_response(status: int, payload: dict, **headers) -> Response:
    return Response(status, render_json(payload), headers=headers)


def _error(status: int, message: str, **extra) -> Response:
    return _json_response(status, {"error": message, **extra})


class App:
    """Routes requests onto one :class:`ProfilingService`.

    Transport-agnostic: :meth:`handle` maps ``(method, path, body)`` to
    a :class:`Response`, so tests and the load harness can drive it
    in-process while :mod:`repro.serve.http` exposes it over sockets.
    """

    def __init__(self, service: ProfilingService | None = None, *,
                 workers: int = DEFAULT_WORKERS,
                 queue_limit: int = DEFAULT_QUEUE_LIMIT,
                 hot_cache: HotCache | None = None):
        if workers <= 0:
            raise ValueError("workers must be positive")
        if queue_limit <= 0:
            raise ValueError("queue_limit must be positive")
        self.service = service if service is not None else ProfilingService()
        self.hot = hot_cache if hot_cache is not None else HotCache()
        self.coalescer = Coalescer()
        self.queue_limit = queue_limit
        self.workers = workers
        self.executor = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="repro-serve")
        self.inflight = 0
        self.started = time.monotonic()

    def close(self) -> None:
        """Stop the worker pool (idempotent)."""
        self.executor.shutdown(wait=False, cancel_futures=True)

    # ---------------------------------------------------------------- handle
    async def handle(self, method: str, path: str,
                     body: bytes = b"") -> Response:
        """Serve one request; never raises (errors become 4xx/5xx JSON)."""
        start = time.perf_counter()
        route = "unknown"
        with spans.span("serve.request", category="serve", method=method,
                        path=path):
            try:
                route, response = await self._route(method, path, body)
            except Exception as error:  # the server must outlive any bug
                response = _error(500, f"{type(error).__name__}: {error}")
            spans.annotate(route=route, status=response.status)
        _REQUESTS.inc(route=route, status=response.status)
        _LATENCY.observe(time.perf_counter() - start, route=route)
        return response

    async def _route(self, method: str, path: str,
                     body: bytes) -> tuple[str, Response]:
        if path == "/healthz":
            return "healthz", self._healthz(method)
        if path == "/stats":
            return "stats", self._stats(method)
        if path == "/points":
            if method != "GET":
                return "points", _error(405, "use GET")
            return "points", _json_response(
                200, self.service.points_payload())
        if path.startswith("/profile/"):
            return "profile", await self._point_route(
                method, "profile", path[len("/profile/"):],
                self.service.profile_payload)
        if path.startswith("/perfetto/"):
            return "perfetto", await self._point_route(
                method, "perfetto", path[len("/perfetto/"):],
                self.service.perfetto_payload)
        if path == "/grid":
            return "grid", await self._grid(method, body)
        return "unknown", _error(404, f"no route for {path!r}", routes=[
            "/healthz", "/stats", "/points", "/profile/<point>",
            "/perfetto/<point>", "/grid"])

    # ---------------------------------------------------------------- routes
    def _healthz(self, method: str) -> Response:
        if method != "GET":
            return _error(405, "use GET")
        return _json_response(200, {
            "status": "ok",
            "uptime_s": round(time.monotonic() - self.started, 3),
        })

    def _stats(self, method: str) -> Response:
        if method != "GET":
            return _error(405, "use GET")
        snapshot = metrics.get_registry().snapshot()
        return _json_response(200, {
            "uptime_s": round(time.monotonic() - self.started, 3),
            "workers": self.workers,
            "queue_limit": self.queue_limit,
            "inflight": self.inflight,
            "hot_cache": self.hot.snapshot(),
            "metrics": snapshot,
            "hit_rates": metrics.hit_rates(snapshot),
        })

    async def _point_route(self, method: str, route: str, point: str,
                           payload_of) -> Response:
        if method != "GET":
            return _error(405, "use GET")
        try:
            key = self.service.point_key(route, point)
        except KeyError:
            from repro.experiments.points import POINT_REGISTRY
            return _error(404, f"unknown operating point {point!r}",
                          valid=sorted(POINT_REGISTRY))
        return await self._cached(route, key, lambda: payload_of(point))

    async def _grid(self, method: str, body: bytes) -> Response:
        if method != "POST":
            return _error(405, "POST a grid spec")
        import json as json_mod
        try:
            spec = json_mod.loads(body or b"{}")
        except json_mod.JSONDecodeError as error:
            return _error(400, f"request body is not JSON: {error}")
        try:
            model, trainings = self.service.parse_grid_spec(spec)
        except ValueError as error:
            return _error(400, str(error))
        key = self.service.grid_cache_key(model, trainings)
        return await self._cached(
            "grid", key, lambda: self.service.grid_payload(model, trainings))

    # ----------------------------------------------------- cache + coalesce
    async def _cached(self, route: str, key: str, compute) -> Response:
        """Hot cache -> coalesce -> shed -> worker pool, in that order."""
        cached = self.hot.get(key)
        if cached is not None:
            return Response(200, cached)

        # No awaits between the leadership check and Coalescer.run:
        # the decision is atomic on the event loop.
        if self.coalescer.leader(key):
            if self.inflight >= self.queue_limit:
                _SHED.inc(route=route)
                shed = _error(503, "profiling queue is full, retry shortly",
                              retry_after_s=RETRY_AFTER_S)
                shed.headers["Retry-After"] = str(RETRY_AFTER_S)
                return shed
            self.inflight += 1
            _INFLIGHT.set(self.inflight)

        loop = asyncio.get_running_loop()

        async def leader_compute() -> bytes:
            try:
                _COMPUTATIONS.inc(route=route)
                rendered = await loop.run_in_executor(
                    self.executor, lambda: render_json(compute()))
            finally:
                self.inflight -= 1
                _INFLIGHT.set(self.inflight)
            self.hot.put(key, rendered)
            return rendered

        try:
            body = await self.coalescer.run(key, leader_compute, route=route)
        except Exception as error:
            return _error(500, f"{type(error).__name__}: {error}")
        return Response(200, body)
