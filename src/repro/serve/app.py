"""The async application: routing, worker pool, backpressure, telemetry.

Request lifecycle for the cacheable routes (``/profile``, ``/perfetto``,
``/grid``):

1. resolve + validate on the event loop (unknown point -> 404, bad grid
   spec -> 400; nothing invalid ever reaches a worker);
2. **hot cache** — a hit returns pre-rendered bytes immediately;
3. **coalesce** — if an identical computation is already in flight the
   request attaches to it (``serve.coalesced``) and consumes no worker;
4. **shed** — a request that would *start* a computation while
   ``queue_limit`` computations are already pending is refused with
   ``503`` + ``Retry-After`` (``serve.shed``).  Shedding leaders instead
   of followers keeps an identical-query storm cheap no matter how wide;
5. **compute** — the leader runs the service's sync compute on the
   bounded ``ThreadPoolExecutor`` (``serve.computations``), renders
   once, and populates the hot cache.

Every request increments ``serve.requests{route=,status=}`` and observes
``serve.request_seconds{route=}`` (whose ``p50``/``p99`` feed ``/stats``
and the load harness).  Each request also opens a ``serve.request`` span
under a fresh ``trace_id``; the open span stack is *carried into the
worker pool* via ``contextvars.copy_context()``, so the engine spans the
compute opens (``profile.run → trace.build → ... → hw.*``) parent to the
leader's request span and the whole request is one connected tree.  The
:class:`~repro.obs.flight.FlightRecorder` (installed as a tracer sink)
groups that tree per trace id into a bounded ring served by the
``/debug/requests`` and ``/debug/trace/<trace_id>`` endpoints, and
``GET /metrics`` exposes the registry in Prometheus text format.
"""

from __future__ import annotations

import asyncio
import contextvars
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field

from repro.obs import metrics, prometheus, spans
from repro.obs.flight import DEFAULT_CAPACITY, FlightRecorder, build_span_tree
from repro.serve.coalesce import Coalescer
from repro.serve.hot_cache import HotCache
from repro.serve.service import ProfilingService, render_json

_REQUESTS = metrics.counter(
    "serve.requests", "HTTP requests by route and status")
_COMPUTATIONS = metrics.counter(
    "serve.computations", "engine computations dispatched to the pool")
_SHED = metrics.counter(
    "serve.shed", "requests refused with 503 under backpressure")
_LATENCY = metrics.histogram(
    "serve.request_seconds", "request wall-clock by route")
_INFLIGHT = metrics.gauge(
    "serve.inflight", "computations currently pending or running")

#: Default worker threads: engine computes release the GIL inside NumPy
#: for long stretches, but they are still CPU-heavy — a small pool.
DEFAULT_WORKERS = 4

#: Default queue-depth limit: leaders pending + running before shedding.
DEFAULT_QUEUE_LIMIT = 32

#: Seconds suggested to a shed client.
RETRY_AFTER_S = 1


@dataclass
class Response:
    """One HTTP response: status, rendered body, extra headers."""

    status: int
    body: bytes
    content_type: str = "application/json"
    headers: dict = field(default_factory=dict)


def _json_response(status: int, payload: dict, **headers) -> Response:
    return Response(status, render_json(payload), headers=headers)


def _error(status: int, message: str, **extra) -> Response:
    return _json_response(status, {"error": message, **extra})


class App:
    """Routes requests onto one :class:`ProfilingService`.

    Transport-agnostic: :meth:`handle` maps ``(method, path, body)`` to
    a :class:`Response`, so tests and the load harness can drive it
    in-process while :mod:`repro.serve.http` exposes it over sockets.
    """

    def __init__(self, service: ProfilingService | None = None, *,
                 workers: int = DEFAULT_WORKERS,
                 queue_limit: int = DEFAULT_QUEUE_LIMIT,
                 hot_cache: HotCache | None = None,
                 flight: FlightRecorder | None = None,
                 flight_capacity: int = DEFAULT_CAPACITY,
                 event_log: str | None = None):
        if workers <= 0:
            raise ValueError("workers must be positive")
        if queue_limit <= 0:
            raise ValueError("queue_limit must be positive")
        self.service = service if service is not None else ProfilingService()
        self.hot = hot_cache if hot_cache is not None else HotCache()
        self.coalescer = Coalescer()
        self.queue_limit = queue_limit
        self.workers = workers
        self.executor = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="repro-serve")
        self.inflight = 0
        self.started = time.monotonic()
        self.flight = flight if flight is not None else FlightRecorder(
            capacity=flight_capacity, event_log=event_log)
        self.flight.install(spans.get_tracer())

    def close(self) -> None:
        """Stop the worker pool and detach the recorder (idempotent)."""
        self.executor.shutdown(wait=False, cancel_futures=True)
        self.flight.uninstall()

    # ---------------------------------------------------------------- handle
    async def handle(self, method: str, path: str,
                     body: bytes = b"") -> Response:
        """Serve one request; never raises (errors become 4xx/5xx JSON)."""
        start = time.perf_counter()
        route = "unknown"
        trace_id = ""
        meta = {"cache": "none"}
        with spans.span("serve.request", category="serve", method=method,
                        path=path) as request_span:
            if request_span is not None:
                trace_id = request_span.trace_id
                self.flight.begin(trace_id)
            try:
                route, response = await self._route(method, path, body, meta)
            except Exception as error:  # the server must outlive any bug
                response = _error(500, f"{type(error).__name__}: {error}")
            spans.annotate(route=route, status=response.status,
                           cache=meta["cache"])
        duration_s = time.perf_counter() - start
        _REQUESTS.inc(route=route, status=response.status)
        _LATENCY.observe(duration_s, route=route)
        if trace_id:
            response.headers.setdefault("X-Trace-Id", trace_id)
            self.flight.complete(
                trace_id, route=route, method=method, path=path,
                status=response.status, duration_s=duration_s,
                cache=meta["cache"])
        return response

    async def _route(self, method: str, path: str, body: bytes,
                     meta: dict) -> tuple[str, Response]:
        if path == "/healthz":
            return "healthz", self._healthz(method)
        if path == "/stats":
            return "stats", self._stats(method)
        if path == "/metrics":
            return "metrics", self._metrics(method)
        if path == "/debug/requests":
            return "debug", self._debug_requests(method)
        if path.startswith("/debug/trace/"):
            return "debug", self._debug_trace(
                method, path[len("/debug/trace/"):])
        if path == "/points":
            if method != "GET":
                return "points", _error(405, "use GET")
            return "points", _json_response(
                200, self.service.points_payload())
        if path.startswith("/profile/"):
            return "profile", await self._point_route(
                method, "profile", path[len("/profile/"):],
                self.service.profile_payload, meta)
        if path.startswith("/perfetto/"):
            return "perfetto", await self._point_route(
                method, "perfetto", path[len("/perfetto/"):],
                self.service.perfetto_payload, meta)
        if path == "/grid":
            return "grid", await self._grid(method, body, meta)
        return "unknown", _error(404, f"no route for {path!r}", routes=[
            "/healthz", "/stats", "/metrics", "/points",
            "/profile/<point>", "/perfetto/<point>", "/grid",
            "/debug/requests", "/debug/trace/<trace_id>"])

    # ---------------------------------------------------------------- routes
    def _healthz(self, method: str) -> Response:
        if method != "GET":
            return _error(405, "use GET")
        return _json_response(200, {
            "status": "ok",
            "uptime_s": round(time.monotonic() - self.started, 3),
        })

    def _stats(self, method: str) -> Response:
        if method != "GET":
            return _error(405, "use GET")
        snapshot = metrics.get_registry().snapshot()
        return _json_response(200, {
            "uptime_s": round(time.monotonic() - self.started, 3),
            "workers": self.workers,
            "queue_limit": self.queue_limit,
            "inflight": self.inflight,
            "hot_cache": self.hot.snapshot(),
            "requests_by_route": _requests_by_route(snapshot),
            "route_latency": _route_latency(snapshot),
            "flight": self.flight.snapshot(),
            "metrics": snapshot,
            "hit_rates": metrics.hit_rates(snapshot),
        })

    def _metrics(self, method: str) -> Response:
        if method != "GET":
            return _error(405, "use GET")
        text = prometheus.render_registry()
        return Response(200, text.encode(),
                        content_type=prometheus.CONTENT_TYPE)

    def _debug_requests(self, method: str) -> Response:
        if method != "GET":
            return _error(405, "use GET")
        return _json_response(200, {
            "flight": self.flight.snapshot(),
            "requests": [record.summary()
                         for record in self.flight.records()],
        })

    def _debug_trace(self, method: str, trace_id: str) -> Response:
        if method != "GET":
            return _error(405, "use GET")
        record = self.flight.lookup(trace_id)
        if record is None:
            return _error(404, f"trace {trace_id!r} not in the flight "
                          "recorder (expired or never recorded)",
                          held=self.flight.snapshot()["held"])
        from repro.obs.flight import spans_from_dicts
        from repro.obs.timeline_export import spans_to_chrome_trace
        return _json_response(200, {
            **record.as_dict(),
            "tree": build_span_tree(record.spans),
            "perfetto": spans_to_chrome_trace(
                spans_from_dicts(record.spans)),
        })

    async def _point_route(self, method: str, route: str, point: str,
                           payload_of, meta: dict) -> Response:
        if method != "GET":
            return _error(405, "use GET")
        try:
            key = self.service.point_key(route, point)
        except KeyError:
            from repro.experiments.points import POINT_REGISTRY
            return _error(404, f"unknown operating point {point!r}",
                          valid=sorted(POINT_REGISTRY))
        return await self._cached(route, key, lambda: payload_of(point),
                                  meta)

    async def _grid(self, method: str, body: bytes, meta: dict) -> Response:
        if method != "POST":
            return _error(405, "POST a grid spec")
        import json as json_mod
        try:
            spec = json_mod.loads(body or b"{}")
        except json_mod.JSONDecodeError as error:
            return _error(400, f"request body is not JSON: {error}")
        try:
            model, trainings = self.service.parse_grid_spec(spec)
        except ValueError as error:
            return _error(400, str(error))
        key = self.service.grid_cache_key(model, trainings)
        return await self._cached(
            "grid", key, lambda: self.service.grid_payload(model, trainings),
            meta)

    # ----------------------------------------------------- cache + coalesce
    async def _cached(self, route: str, key: str, compute,
                      meta: dict) -> Response:
        """Hot cache -> coalesce -> shed -> worker pool, in that order."""
        cached = self.hot.get(key)
        if cached is not None:
            meta["cache"] = "hot"
            return Response(200, cached)

        # No awaits between the leadership check and Coalescer.run:
        # the decision is atomic on the event loop.
        if self.coalescer.leader(key):
            if self.inflight >= self.queue_limit:
                _SHED.inc(route=route)
                meta["cache"] = "shed"
                shed = _error(503, "profiling queue is full, retry shortly",
                              retry_after_s=RETRY_AFTER_S)
                shed.headers["Retry-After"] = str(RETRY_AFTER_S)
                return shed
            meta["cache"] = "computed"
            self.inflight += 1
            _INFLIGHT.set(self.inflight)
        else:
            meta["cache"] = "coalesced"

        loop = asyncio.get_running_loop()

        async def leader_compute() -> bytes:
            try:
                _COMPUTATIONS.inc(route=route)
                # Carry the open span stack (the leader's serve.request
                # span) into the worker thread: engine spans opened by
                # the compute parent into the request's trace instead of
                # starting orphan traces.
                context = contextvars.copy_context()
                rendered = await loop.run_in_executor(
                    self.executor,
                    lambda: context.run(lambda: render_json(compute())))
            finally:
                self.inflight -= 1
                _INFLIGHT.set(self.inflight)
            self.hot.put(key, rendered)
            return rendered

        try:
            body = await self.coalescer.run(key, leader_compute, route=route)
        except Exception as error:
            return _error(500, f"{type(error).__name__}: {error}")
        return Response(200, body)


# -------------------------------------------------- derived /stats sections
def _requests_by_route(snapshot: dict) -> dict:
    """Fold ``serve.requests{route=,status=}`` into per-route totals."""
    from repro.obs.prometheus import parse_label_key

    by_route: dict[str, dict] = {}
    series = snapshot.get("serve.requests", {}).get("series", {})
    for key, count in series.items():
        labels = parse_label_key(key)
        route = labels.get("route", "unknown")
        entry = by_route.setdefault(route, {"total": 0, "by_status": {}})
        entry["total"] += count
        status = labels.get("status", "?")
        entry["by_status"][status] = \
            entry["by_status"].get(status, 0) + count
    return {route: by_route[route] for route in sorted(by_route)}


def _route_latency(snapshot: dict) -> dict:
    """Per-route latency summaries (ms) from ``serve.request_seconds``."""
    from repro.obs.prometheus import parse_label_key

    latency: dict[str, dict] = {}
    series = snapshot.get("serve.request_seconds", {}).get("series", {})
    for key, stats in series.items():
        route = parse_label_key(key).get("route", "unknown")
        latency[route] = {
            "count": stats["count"],
            "mean_ms": round(stats["sum"] / stats["count"] * 1e3, 3)
            if stats["count"] else 0.0,
            **{f"{q}_ms": round(stats[q] * 1e3, 3)
               for q in ("p50", "p90", "p99") if q in stats},
        }
    return {route: latency[route] for route in sorted(latency)}
