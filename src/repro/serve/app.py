"""The async application: routing, worker pool, backpressure, telemetry.

Request lifecycle for the cacheable routes (``/profile``, ``/perfetto``,
``/grid``):

1. resolve + validate on the event loop (unknown point -> 404, bad grid
   spec -> 400; nothing invalid ever reaches a worker);
2. **hot cache** — a hit returns pre-rendered bytes immediately;
3. **coalesce** — if an identical computation is already in flight the
   request attaches to it (``serve.coalesced``) and consumes no worker;
4. **shed** — a request that would *start* a computation while
   ``queue_limit`` computations are already pending is refused with
   ``503`` + ``Retry-After`` (``serve.shed``).  Shedding leaders instead
   of followers keeps an identical-query storm cheap no matter how wide;
5. **compute** — the leader runs the service's sync compute on the
   bounded ``ThreadPoolExecutor`` (``serve.computations``), renders
   once, and populates the hot cache.

Every request increments ``serve.requests{route=,status=}`` and observes
``serve.request_seconds{route=}`` (whose ``p50``/``p99`` feed ``/stats``
and the load harness).  Each request also opens a ``serve.request`` span
under a fresh ``trace_id``; the open span stack is *carried into the
worker pool* via ``contextvars.copy_context()``, so the engine spans the
compute opens (``profile.run → trace.build → ... → hw.*``) parent to the
leader's request span and the whole request is one connected tree.  The
:class:`~repro.obs.flight.FlightRecorder` (installed as a tracer sink)
groups that tree per trace id into a bounded ring served by the
``/debug/requests`` and ``/debug/trace/<trace_id>`` endpoints, and
``GET /metrics`` exposes the registry in Prometheus text format.
"""

from __future__ import annotations

import asyncio
import contextvars
import time
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field

from repro.faults import sites as fault_sites
from repro.obs import metrics, prometheus, spans
from repro.obs.flight import DEFAULT_CAPACITY, FlightRecorder, build_span_tree
from repro.resilience import (CircuitBreaker, Retry, RetryBudgetExceeded,
                              Timeout)
from repro.serve.coalesce import Coalescer
from repro.serve.hot_cache import HotCache
from repro.serve.service import ProfilingService, render_json

_REQUESTS = metrics.counter(
    "serve.requests", "HTTP requests by route and status")
_COMPUTATIONS = metrics.counter(
    "serve.computations", "engine computations dispatched to the pool")
_SHED = metrics.counter(
    "serve.shed", "requests refused with 503 under backpressure")
_LATENCY = metrics.histogram(
    "serve.request_seconds", "request wall-clock by route")
_INFLIGHT = metrics.gauge(
    "serve.inflight", "computations currently pending or running")
_STALE_SERVED = metrics.counter(
    "resilience.stale_served",
    "degraded responses served from last-known-good bytes")
_DEGRADED = metrics.counter(
    "resilience.degraded",
    "degraded refusals (503/504) with no stale bytes to fall back on")

#: Default worker threads: engine computes release the GIL inside NumPy
#: for long stretches, but they are still CPU-heavy — a small pool.
DEFAULT_WORKERS = 4

#: Default queue-depth limit: leaders pending + running before shedding.
DEFAULT_QUEUE_LIMIT = 32

#: Seconds suggested to a shed client.
RETRY_AFTER_S = 1

#: Default breaker: a handful of consecutive compute failures opens the
#: circuit; the next probe is admitted a few seconds later.
DEFAULT_BREAKER_THRESHOLD = 5
DEFAULT_BREAKER_RESET_S = 5.0

#: Last-known-good entries kept for stale-while-revalidate degradation.
STALE_STORE_ENTRIES = 4096

#: Default serve-side retry: computes are seconds, so two quick retries
#: absorb an injected transient without blowing the route budget.
DEFAULT_SERVE_RETRY = Retry(max_attempts=3, base_delay_s=0.01,
                            max_delay_s=0.1, deadline_s=10.0)


class StaleStore:
    """Last-known-good response bytes, kept beyond hot-cache eviction.

    The hot cache is bytes-bounded and churns under load; this store is
    entry-bounded LRU and *only* consulted when the engine cannot be
    asked (breaker open, compute failed, budget expired) — stale bytes
    are by construction a previously-correct rendering of the same
    content-addressed key, so degrading to them can serve outdated
    freshness but never wrong bytes.
    """

    def __init__(self, capacity: int = STALE_STORE_ENTRIES):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._entries: OrderedDict[str, bytes] = OrderedDict()

    def get(self, key: str) -> bytes | None:
        value = self._entries.get(key)
        if value is not None:
            self._entries.move_to_end(key)
        return value

    def put(self, key: str, value: bytes) -> None:
        self._entries[key] = value
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)

    def __len__(self) -> int:
        return len(self._entries)


@dataclass
class Response:
    """One HTTP response: status, rendered body, extra headers."""

    status: int
    body: bytes
    content_type: str = "application/json"
    headers: dict = field(default_factory=dict)


def _json_response(status: int, payload: dict, **headers) -> Response:
    return Response(status, render_json(payload), headers=headers)


def _error(status: int, message: str, **extra) -> Response:
    return _json_response(status, {"error": message, **extra})


class App:
    """Routes requests onto one :class:`ProfilingService`.

    Transport-agnostic: :meth:`handle` maps ``(method, path, body)`` to
    a :class:`Response`, so tests and the load harness can drive it
    in-process while :mod:`repro.serve.http` exposes it over sockets.
    """

    def __init__(self, service: ProfilingService | None = None, *,
                 workers: int = DEFAULT_WORKERS,
                 queue_limit: int = DEFAULT_QUEUE_LIMIT,
                 hot_cache: HotCache | None = None,
                 flight: FlightRecorder | None = None,
                 flight_capacity: int = DEFAULT_CAPACITY,
                 event_log: str | None = None,
                 breaker: CircuitBreaker | None = None,
                 timeout: Timeout | None = None,
                 retry: Retry | None = None):
        if workers <= 0:
            raise ValueError("workers must be positive")
        if queue_limit <= 0:
            raise ValueError("queue_limit must be positive")
        self.service = service if service is not None else ProfilingService()
        self.hot = hot_cache if hot_cache is not None else HotCache()
        self.stale = StaleStore()
        self.coalescer = Coalescer()
        self.breaker = breaker if breaker is not None else CircuitBreaker(
            failure_threshold=DEFAULT_BREAKER_THRESHOLD,
            reset_timeout_s=DEFAULT_BREAKER_RESET_S)
        self.timeout = timeout if timeout is not None else Timeout()
        self.retry = retry if retry is not None else DEFAULT_SERVE_RETRY
        self.queue_limit = queue_limit
        self.workers = workers
        self.executor = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="repro-serve")
        self.inflight = 0
        self.active_requests = 0
        self.draining = False
        self.started = time.monotonic()
        self.flight = flight if flight is not None else FlightRecorder(
            capacity=flight_capacity, event_log=event_log)
        self.flight.install(spans.get_tracer())

    def close(self) -> None:
        """Stop the worker pool and detach the recorder (idempotent)."""
        self.executor.shutdown(wait=False, cancel_futures=True)
        self.flight.uninstall()

    async def drain(self, timeout_s: float = 30.0) -> bool:
        """Graceful-shutdown half of SIGTERM handling: stop admitting
        (``/readyz`` flips to 503, keep-alive connections close after
        their in-flight response), wait for active requests to finish,
        then flush the flight recorder's event log.  True if everything
        finished inside ``timeout_s``.
        """
        self.draining = True
        deadline = time.monotonic() + timeout_s
        while self.active_requests > 0 and time.monotonic() < deadline:
            await asyncio.sleep(0.02)
        drained = self.active_requests == 0
        self.flight.close()  # flushes + closes the event log
        return drained

    # ---------------------------------------------------------------- handle
    async def handle(self, method: str, path: str,
                     body: bytes = b"") -> Response:
        """Serve one request; never raises (errors become 4xx/5xx JSON)."""
        start = time.perf_counter()
        route = "unknown"
        trace_id = ""
        meta = {"cache": "none"}
        self.active_requests += 1
        with spans.span("serve.request", category="serve", method=method,
                        path=path) as request_span:
            if request_span is not None:
                trace_id = request_span.trace_id
                self.flight.begin(trace_id)
            try:
                route, response = await self._route(method, path, body, meta)
            except Exception as error:  # the server must outlive any bug
                response = _error(500, f"{type(error).__name__}: {error}")
            finally:
                self.active_requests -= 1
            spans.annotate(route=route, status=response.status,
                           cache=meta["cache"])
        duration_s = time.perf_counter() - start
        _REQUESTS.inc(route=route, status=response.status)
        _LATENCY.observe(duration_s, route=route)
        if trace_id:
            response.headers.setdefault("X-Trace-Id", trace_id)
            self.flight.complete(
                trace_id, route=route, method=method, path=path,
                status=response.status, duration_s=duration_s,
                cache=meta["cache"])
        return response

    async def _route(self, method: str, path: str, body: bytes,
                     meta: dict) -> tuple[str, Response]:
        if path == "/healthz":
            return "healthz", self._healthz(method)
        if path == "/readyz":
            return "readyz", self._readyz(method)
        if path == "/stats":
            return "stats", self._stats(method)
        if path == "/metrics":
            return "metrics", self._metrics(method)
        if path == "/debug/requests":
            return "debug", self._debug_requests(method)
        if path.startswith("/debug/trace/"):
            return "debug", self._debug_trace(
                method, path[len("/debug/trace/"):])
        if path == "/points":
            if method != "GET":
                return "points", _error(405, "use GET")
            return "points", _json_response(
                200, self.service.points_payload())
        if path.startswith("/profile/"):
            return "profile", await self._point_route(
                method, "profile", path[len("/profile/"):],
                self.service.profile_payload, meta)
        if path.startswith("/perfetto/"):
            return "perfetto", await self._point_route(
                method, "perfetto", path[len("/perfetto/"):],
                self.service.perfetto_payload, meta)
        if path == "/grid":
            return "grid", await self._grid(method, body, meta)
        return "unknown", _error(404, f"no route for {path!r}", routes=[
            "/healthz", "/readyz", "/stats", "/metrics", "/points",
            "/profile/<point>", "/perfetto/<point>", "/grid",
            "/debug/requests", "/debug/trace/<trace_id>"])

    # ---------------------------------------------------------------- routes
    def _healthz(self, method: str) -> Response:
        if method != "GET":
            return _error(405, "use GET")
        return _json_response(200, {
            "status": "ok",
            "uptime_s": round(time.monotonic() - self.started, 3),
        })

    def _readyz(self, method: str) -> Response:
        """Readiness: 503 while draining so load balancers stop routing
        here; the breaker state rides along for dashboards (an open
        breaker still serves hot/stale bytes, so it stays *ready*)."""
        if method != "GET":
            return _error(405, "use GET")
        payload = {
            "ready": not self.draining,
            "draining": self.draining,
            "breaker": self.breaker.state,
        }
        return _json_response(503 if self.draining else 200, payload)

    def _stats(self, method: str) -> Response:
        if method != "GET":
            return _error(405, "use GET")
        snapshot = metrics.get_registry().snapshot()
        return _json_response(200, {
            "uptime_s": round(time.monotonic() - self.started, 3),
            "workers": self.workers,
            "queue_limit": self.queue_limit,
            "inflight": self.inflight,
            "draining": self.draining,
            "breaker": self.breaker.snapshot(),
            "stale_entries": len(self.stale),
            "hot_cache": self.hot.snapshot(),
            "requests_by_route": _requests_by_route(snapshot),
            "route_latency": _route_latency(snapshot),
            "flight": self.flight.snapshot(),
            "metrics": snapshot,
            "hit_rates": metrics.hit_rates(snapshot),
        })

    def _metrics(self, method: str) -> Response:
        if method != "GET":
            return _error(405, "use GET")
        text = prometheus.render_registry()
        return Response(200, text.encode(),
                        content_type=prometheus.CONTENT_TYPE)

    def _debug_requests(self, method: str) -> Response:
        if method != "GET":
            return _error(405, "use GET")
        return _json_response(200, {
            "flight": self.flight.snapshot(),
            "requests": [record.summary()
                         for record in self.flight.records()],
        })

    def _debug_trace(self, method: str, trace_id: str) -> Response:
        if method != "GET":
            return _error(405, "use GET")
        record = self.flight.lookup(trace_id)
        if record is None:
            return _error(404, f"trace {trace_id!r} not in the flight "
                          "recorder (expired or never recorded)",
                          held=self.flight.snapshot()["held"])
        from repro.obs.flight import spans_from_dicts
        from repro.obs.timeline_export import spans_to_chrome_trace
        return _json_response(200, {
            **record.as_dict(),
            "tree": build_span_tree(record.spans),
            "perfetto": spans_to_chrome_trace(
                spans_from_dicts(record.spans)),
        })

    async def _point_route(self, method: str, route: str, point: str,
                           payload_of, meta: dict) -> Response:
        if method != "GET":
            return _error(405, "use GET")
        try:
            key = self.service.point_key(route, point)
        except KeyError:
            from repro.experiments.points import POINT_REGISTRY
            return _error(404, f"unknown operating point {point!r}",
                          valid=sorted(POINT_REGISTRY))
        return await self._cached(route, key, lambda: payload_of(point),
                                  meta)

    async def _grid(self, method: str, body: bytes, meta: dict) -> Response:
        if method != "POST":
            return _error(405, "POST a grid spec")
        import json as json_mod
        try:
            spec = json_mod.loads(body or b"{}")
        except json_mod.JSONDecodeError as error:
            return _error(400, f"request body is not JSON: {error}")
        try:
            model, trainings = self.service.parse_grid_spec(spec)
        except ValueError as error:
            return _error(400, str(error))
        key = self.service.grid_cache_key(model, trainings)
        return await self._cached(
            "grid", key, lambda: self.service.grid_payload(model, trainings),
            meta)

    # ----------------------------------------------------- cache + coalesce
    async def _cached(self, route: str, key: str, compute,
                      meta: dict) -> Response:
        """Hot cache -> breaker -> coalesce -> shed -> worker pool.

        Degradation ladder when the engine cannot answer (breaker open,
        compute failed after retries, route budget expired): stale bytes
        from :class:`StaleStore` if the key was ever rendered — outdated
        freshness, never wrong bytes — else 503/504 with ``Retry-After``.
        """
        cached = self.hot.get(key)
        if cached is not None:
            meta["cache"] = "hot"
            return Response(200, cached)

        # No awaits between the leadership check and Coalescer.run:
        # the decision is atomic on the event loop.  The breaker guards
        # *computations*, so only would-be leaders consult it (followers
        # ride an admitted in-flight compute; hot hits skip it above).
        if self.coalescer.leader(key):
            if not self.breaker.allow():
                return self._degraded(
                    route, key, meta, 503,
                    "engine circuit breaker is open, retry shortly")
            if self.inflight >= self.queue_limit:
                _SHED.inc(route=route)
                meta["cache"] = "shed"
                shed = _error(503, "profiling queue is full, retry shortly",
                              retry_after_s=RETRY_AFTER_S)
                shed.headers["Retry-After"] = str(RETRY_AFTER_S)
                return shed
            meta["cache"] = "computed"
            self.inflight += 1
            _INFLIGHT.set(self.inflight)
        else:
            meta["cache"] = "coalesced"

        loop = asyncio.get_running_loop()

        async def leader_compute() -> bytes:
            try:
                _COMPUTATIONS.inc(route=route)
                # Carry the open span stack (the leader's serve.request
                # span) into the worker thread: engine spans opened by
                # the compute parent into the request's trace instead of
                # starting orphan traces.  The serve fault sites and the
                # retry policy run inside the worker thread too, so an
                # injected transient is absorbed without a loop stall.
                context = contextvars.copy_context()

                def _attempt() -> bytes:
                    fault_sites.inject_delay("serve.slow")
                    fault_sites.inject_failure("serve.fail")
                    return render_json(compute())

                rendered = await loop.run_in_executor(
                    self.executor,
                    lambda: context.run(
                        lambda: self.retry.call(_attempt, token=route)))
            except BaseException:
                self.breaker.record_failure()
                raise
            finally:
                self.inflight -= 1
                _INFLIGHT.set(self.inflight)
            self.hot.put(key, rendered)
            self.stale.put(key, rendered)
            self.breaker.record_success()
            return rendered

        budget_s = self.timeout.budget_s(route)
        # acquire() is synchronous: no await separates the leader()
        # check above from the table insertion, even under wait_for.
        task = self.coalescer.acquire(key, leader_compute, route=route)
        try:
            if budget_s is not None:
                body = await asyncio.wait_for(asyncio.shield(task),
                                              timeout=budget_s)
            else:
                body = await asyncio.shield(task)
        except asyncio.TimeoutError:
            # This waiter's budget expired; the leader (shielded inside
            # the coalescer) keeps running and will settle the breaker.
            self.timeout.expired(route)
            return self._degraded(
                route, key, meta, 504,
                f"{route} exceeded its {budget_s:g}s budget")
        except RetryBudgetExceeded as error:
            return self._degraded(route, key, meta, 503, str(error))
        except Exception as error:
            return _error(500, f"{type(error).__name__}: {error}")
        return Response(200, body)

    def _degraded(self, route: str, key: str, meta: dict, status: int,
                  reason: str) -> Response:
        """Stale bytes when available, else ``status`` + ``Retry-After``."""
        stale = self.stale.get(key)
        if stale is not None:
            meta["cache"] = "stale"
            _STALE_SERVED.inc(route=route)
            return Response(200, stale, headers={"X-Repro-Stale": "1"})
        meta["cache"] = "degraded"
        _DEGRADED.inc(route=route)
        retry_after_s = max(round(self.breaker.retry_after_s()),
                            RETRY_AFTER_S)
        degraded = _error(status, f"service degraded: {reason}",
                          retry_after_s=retry_after_s)
        degraded.headers["Retry-After"] = str(retry_after_s)
        return degraded


# -------------------------------------------------- derived /stats sections
def _requests_by_route(snapshot: dict) -> dict:
    """Fold ``serve.requests{route=,status=}`` into per-route totals."""
    from repro.obs.prometheus import parse_label_key

    by_route: dict[str, dict] = {}
    series = snapshot.get("serve.requests", {}).get("series", {})
    for key, count in series.items():
        labels = parse_label_key(key)
        route = labels.get("route", "unknown")
        entry = by_route.setdefault(route, {"total": 0, "by_status": {}})
        entry["total"] += count
        status = labels.get("status", "?")
        entry["by_status"][status] = \
            entry["by_status"].get(status, 0) + count
    return {route: by_route[route] for route in sorted(by_route)}


def _route_latency(snapshot: dict) -> dict:
    """Per-route latency summaries (ms) from ``serve.request_seconds``."""
    from repro.obs.prometheus import parse_label_key

    latency: dict[str, dict] = {}
    series = snapshot.get("serve.request_seconds", {}).get("series", {})
    for key, stats in series.items():
        route = parse_label_key(key).get("route", "unknown")
        latency[route] = {
            "count": stats["count"],
            "mean_ms": round(stats["sum"] / stats["count"] * 1e3, 3)
            if stats["count"] else 0.0,
            **{f"{q}_ms": round(stats[q] * 1e3, 3)
               for q in ("p50", "p90", "p99") if q in stats},
        }
    return {route: latency[route] for route in sorted(latency)}
