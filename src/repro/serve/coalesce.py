"""Request coalescing: N concurrent identical queries, one computation.

The serving analogue of the engine's memoization: when a storm of
clients asks for the same operating point before the first answer
lands, only the *leader* request dispatches the computation; every
*follower* awaits the leader's task and shares its result.  Keys are
the same content addresses the runner cache computes, so "identical"
means identical in the exact sense the engine already uses (model +
training + device fingerprint + code version).

This is single-flight in the golang ``singleflight`` sense, but it
needs no locks: all bookkeeping happens on the event loop, and the
in-flight table is keyed by ``key -> asyncio.Task``.  The leader's task
is shielded from follower cancellation — a client hanging up must not
cancel a computation 99 other clients are waiting on.

Followers are counted per key (``serve.coalesced``); the caller decides
whether a computation may even start (load shedding happens *before*
a leader is admitted, never to followers — waiting on an in-flight
result consumes no worker).
"""

from __future__ import annotations

import asyncio
from typing import Awaitable, Callable

from repro.obs import metrics

_COALESCED = metrics.counter(
    "serve.coalesced", "requests that shared an in-flight computation")


class Coalescer:
    """Single-flight table for one event loop."""

    def __init__(self) -> None:
        self._inflight: dict[str, asyncio.Task] = {}

    def __len__(self) -> int:
        return len(self._inflight)

    def leader(self, key: str) -> bool:
        """Would a request for ``key`` start a new computation?

        A finished task whose cleanup callback has not run yet counts as
        absent — the next request for the key leads a fresh computation.
        """
        task = self._inflight.get(key)
        return task is None or task.done()

    def acquire(self, key: str, compute: Callable[[], Awaitable],
                **labels) -> asyncio.Task:
        """The shared in-flight task for ``key``, creating it if absent.

        Synchronous on purpose: the caller checks :meth:`leader` and then
        acquires with no ``await`` in between, so the decision and the
        table insertion are one atomic step on the event loop — wrapping
        the await in :func:`asyncio.wait_for` (which defers the coroutine
        to a task) cannot open a window where a whole storm elects itself
        leader.
        """
        task = self._inflight.get(key)
        if task is not None and task.done():
            # The pop-on-done callback is *scheduled*, not synchronous: a
            # request landing in the microtask window between the task
            # finishing and the callback running would attach to a spent
            # task — and inherit a dead leader's exception even though a
            # fresh computation could succeed.  Evict eagerly so a failed
            # storm poisons exactly its own followers, never the key.
            self._inflight.pop(key, None)
            task = None
        if task is None:
            task = asyncio.ensure_future(compute())
            self._inflight[key] = task
            task.add_done_callback(
                lambda _t, _key=key: self._inflight.pop(_key, None))
        else:
            _COALESCED.inc(**labels)
        return task

    async def run(self, key: str, compute: Callable[[], Awaitable],
                  **labels):
        """Result of ``compute()``, shared across concurrent callers.

        The first caller for ``key`` becomes the leader: it creates the
        task and removes it from the table once finished (success *and*
        failure — errors propagate to every waiter but are never cached
        here).  Later callers attach to the existing task and increment
        ``serve.coalesced``.
        """
        return await asyncio.shield(self.acquire(key, compute, **labels))
