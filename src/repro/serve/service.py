"""The profiling service: engine facade + canonical response payloads.

One :class:`ProfilingService` wraps the whole existing pipeline — the
operating-point registry, :func:`~repro.experiments.common.run_point`,
the batched grid engine and the Chrome-trace exporter — behind a handful
of *synchronous* compute methods that the async server dispatches onto
its worker pool.  Two properties matter:

* **Content-addressed keys.**  Every cacheable response is keyed by the
  same :class:`~repro.runner.cache.ResultCache` addresses the runner
  computes (model + training + device fingerprint + code version), so
  the hot cache and the request coalescer agree with the disk cache on
  what "identical query" means, and a code change rotates every layer
  at once.

* **Canonical rendering.**  Responses are rendered by
  :func:`render_json` exactly once and cached as bytes; the Perfetto
  endpoint reuses the ``indent=1`` formatting of
  :func:`repro.obs.timeline_export.write_chrome_trace`, so a served
  trace is byte-identical to the file ``repro export --format perfetto``
  writes (the golden equivalence test pins this).
"""

from __future__ import annotations

import json

from repro.config import (BERT_BASE, BERT_LARGE, BERT_TINY, C1, C2, C3,
                          BertConfig, Precision, TrainingConfig)
from repro.experiments.common import default_device, run_point
from repro.experiments.points import POINT_REGISTRY
from repro.faults import sites as fault_sites
from repro.obs import spans
from repro.hw.device import DeviceModel
from repro.profiler.breakdown import (component_breakdown, region_breakdown,
                                      summarize, transformer_breakdown)
from repro.runner.cache import get_cache

#: Architectures addressable in a ``POST /grid`` spec (the CLI's set).
GRID_MODELS: dict[str, BertConfig] = {
    "bert-tiny": BERT_TINY, "bert-base": BERT_BASE,
    "bert-large": BERT_LARGE, "c1": C1, "c2": C2, "c3": C3,
}

_PRECISIONS = {"fp32": Precision.FP32, "mixed": Precision.MIXED,
               "fp16": Precision.MIXED}

#: Upper bound on points per ``POST /grid`` — a single request must not
#: stamp an unbounded KernelTable.
MAX_GRID_POINTS = 4096


def render_json(payload: dict) -> bytes:
    """Canonical response rendering, shared with the golden tests.

    ``indent=1`` plus a trailing newline is exactly what
    :func:`~repro.obs.timeline_export.write_chrome_trace` produces, so
    rendering *any* payload this way keeps the Perfetto endpoint
    byte-identical to the CLI export file.
    """
    return (json.dumps(payload, indent=1) + "\n").encode()


def _entries_payload(entries) -> list[dict]:
    return [{"label": entry.label, "time_s": entry.time_s,
             "fraction": entry.fraction} for entry in entries]


class ProfilingService:
    """Synchronous compute core served by :class:`~repro.serve.app.App`.

    Stateless apart from the frozen device model: all memoization lives
    in the layers around it (hot cache, request coalescer, disk cache,
    ``run_point``'s in-process memo).
    """

    def __init__(self, device: DeviceModel | None = None):
        self.device = device if device is not None else default_device()

    # ------------------------------------------------------------------ keys
    def point_key(self, route: str, point: str) -> str:
        """Hot-cache/coalescing key of one point route: the runner's
        content address prefixed with the route name."""
        model, training = POINT_REGISTRY[point]
        return f"{route}:{get_cache().key(model, training, self.device)}"

    def grid_cache_key(self, model: BertConfig,
                       trainings: list[TrainingConfig]) -> str:
        """Hot-cache/coalescing key of one grid spec."""
        address = get_cache().grid_key(
            ((model, training) for training in trainings), self.device)
        return f"grid:{address}"

    # ------------------------------------------------------------- computes
    def points_payload(self) -> dict:
        """``GET /points``: the addressable operating-point registry."""
        points = []
        for point in sorted(POINT_REGISTRY):
            model, training = POINT_REGISTRY[point]
            points.append({
                "id": point,
                "model": model.name,
                "label": training.label,
                "batch_size": training.batch_size,
                "seq_len": training.seq_len,
                "precision": training.precision.value,
                "tokens": training.tokens_per_iteration,
            })
        return {"points": points, "count": len(points)}

    def profile_payload(self, point: str) -> dict:
        """``GET /profile/<point>``: summary + breakdowns of one point.

        Every number comes verbatim from the same ``run_point`` /
        ``summarize`` / breakdown calls the experiments make — the
        golden equivalence test compares this payload bit-for-bit
        against those direct calls.
        """
        model, training = POINT_REGISTRY[point]
        with spans.span("profile.run", category="serve", point=point):
            fault_sites.inject("compute.slow")
            fault_sites.inject_failure("compute.fail")
            _, profile = run_point(model, training, self.device)
            payload = self._profile_payload_of(point, model, training,
                                               profile)
        return payload

    def _profile_payload_of(self, point, model, training, profile) -> dict:
        return {
            "point": point,
            "model": {
                "name": model.name,
                "num_layers": model.num_layers,
                "d_model": model.d_model,
                "num_heads": model.num_heads,
                "d_ff": model.d_ff,
                "parameters": model.total_parameters(),
            },
            "training": {
                "label": training.label,
                "batch_size": training.batch_size,
                "seq_len": training.seq_len,
                "precision": training.precision.value,
                "optimizer": training.optimizer,
                "tokens": training.tokens_per_iteration,
            },
            "device": self.device.name,
            "kernels": len(profile),
            "summary": summarize(profile),
            "components": _entries_payload(component_breakdown(profile)),
            "transformer": _entries_payload(transformer_breakdown(profile)),
            "regions": _entries_payload(region_breakdown(profile).values()),
        }

    def perfetto_payload(self, point: str) -> dict:
        """``GET /perfetto/<point>``: the Chrome Trace export.

        Identical call shape to ``repro export --format perfetto`` (same
        label, no pass pipeline), so the rendered bytes match the file.
        """
        from repro.obs.timeline_export import profile_to_chrome_trace

        model, training = POINT_REGISTRY[point]
        with spans.span("perfetto.run", category="serve", point=point):
            fault_sites.inject("compute.slow")
            fault_sites.inject_failure("compute.fail")
            _, profile = run_point(model, training, self.device)
            return profile_to_chrome_trace(
                profile, label=f"{model.name} {training.label}")

    def parse_grid_spec(self, spec: dict
                        ) -> tuple[BertConfig, list[TrainingConfig]]:
        """Validate a ``POST /grid`` body; raises ``ValueError`` on junk."""
        from repro.experiments.sweeps import cross_product

        if not isinstance(spec, dict):
            raise ValueError("grid spec must be a JSON object")
        unknown = set(spec) - {"model", "batch_sizes", "seq_lens",
                               "precisions"}
        if unknown:
            raise ValueError(f"unknown grid spec fields: "
                             f"{', '.join(sorted(unknown))}")
        model_name = spec.get("model", "bert-large")
        if model_name not in GRID_MODELS:
            raise ValueError(f"unknown model {model_name!r}; valid: "
                             f"{', '.join(sorted(GRID_MODELS))}")
        try:
            batches = [int(b) for b in spec.get("batch_sizes", (32,))]
            lengths = [int(n) for n in spec.get("seq_lens", (128,))]
            precisions = [_PRECISIONS[str(p).lower()]
                          for p in spec.get("precisions", ("fp32",))]
        except (KeyError, TypeError, ValueError):
            raise ValueError("batch_sizes/seq_lens must be integer lists, "
                             "precisions from fp32,mixed") from None
        if not (batches and lengths and precisions):
            raise ValueError("empty grid axis")
        if min(batches) <= 0 or min(lengths) <= 0:
            raise ValueError("batch sizes and seq lens must be positive")
        total = len(batches) * len(lengths) * len(precisions)
        if total > MAX_GRID_POINTS:
            raise ValueError(f"grid of {total} points exceeds the "
                             f"{MAX_GRID_POINTS}-point request limit")
        return (GRID_MODELS[model_name],
                cross_product(batches, lengths, precisions))

    def grid_payload(self, model: BertConfig,
                     trainings: list[TrainingConfig]) -> dict:
        """``POST /grid``: a sweep priced through the batched grid engine."""
        from repro.experiments.sweeps import grid_sweep

        with spans.span("grid.run", category="serve", model=model.name,
                        points=len(trainings)):
            fault_sites.inject("compute.slow")
            fault_sites.inject_failure("compute.fail")
            rows = grid_sweep(model, trainings, self.device)
        return {
            "model": model.name,
            "device": self.device.name,
            "points": len(rows),
            "failed": sum(1 for row in rows if "error" in row),
            "rows": rows,
        }
