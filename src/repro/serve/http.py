"""Stdlib-only asyncio HTTP/1.1 transport for the profiling app.

A deliberately small server: request-line + headers + Content-Length
bodies, keep-alive by default, no TLS, no chunked encoding — the
endpoints are JSON-in/JSON-out and the load harness drives thousands of
requests per second through exactly this path, so every line here is on
the hot path.  Malformed requests get a 400 and the connection closes;
a handler can never raise (the app converts everything to JSON errors).
"""

from __future__ import annotations

import asyncio
import signal
from urllib.parse import unquote, urlsplit

from repro.serve.app import App, Response

#: Per-line read limit (request line / one header line).
LINE_LIMIT = 64 * 1024

#: Largest accepted request body (a grid spec is tiny; be generous).
MAX_BODY_BYTES = 8 * 1024 * 1024

_STATUS_TEXT = {
    200: "OK", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 413: "Payload Too Large",
    500: "Internal Server Error", 503: "Service Unavailable",
    504: "Gateway Timeout",
}


def _render(response: Response, *, keep_alive: bool) -> bytes:
    reason = _STATUS_TEXT.get(response.status, "Unknown")
    lines = [
        f"HTTP/1.1 {response.status} {reason}",
        f"Content-Type: {response.content_type}",
        f"Content-Length: {len(response.body)}",
        f"Connection: {'keep-alive' if keep_alive else 'close'}",
    ]
    lines += [f"{name}: {value}" for name, value in response.headers.items()]
    head = ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")
    return head + response.body


async def _read_request(reader: asyncio.StreamReader):
    """One parsed request: (method, path, body), or None at EOF/garbage."""
    try:
        request_line = await reader.readline()
    except (asyncio.LimitOverrunError, ValueError):
        return None
    if not request_line:
        return None
    parts = request_line.decode("latin-1", "replace").split()
    if len(parts) != 3 or not parts[2].startswith("HTTP/"):
        return None
    method, target, _version = parts

    headers: dict[str, str] = {}
    while True:
        try:
            line = await reader.readline()
        except (asyncio.LimitOverrunError, ValueError):
            return None
        if line in (b"\r\n", b"\n"):
            break
        if not line:
            return None
        name, _, value = line.decode("latin-1", "replace").partition(":")
        headers[name.strip().lower()] = value.strip()
        if len(headers) > 256:
            return None

    try:
        length = int(headers.get("content-length", "0") or "0")
    except ValueError:
        return None
    if length < 0 or length > MAX_BODY_BYTES:
        return None
    body = b""
    if length:
        try:
            body = await reader.readexactly(length)
        except asyncio.IncompleteReadError:
            return None

    path = unquote(urlsplit(target).path)
    close = headers.get("connection", "").lower() == "close"
    return method.upper(), path, body, close


async def handle_connection(app: App, reader: asyncio.StreamReader,
                            writer: asyncio.StreamWriter) -> None:
    """Serve one keep-alive connection until EOF or a parse error."""
    try:
        while True:
            request = await _read_request(reader)
            if request is None:
                if not reader.at_eof():
                    writer.write(_render(
                        Response(400, b'{"error": "malformed request"}\n'),
                        keep_alive=False))
                    await writer.drain()
                return
            method, path, body, close = request
            response = await app.handle(method, path, body)
            # A draining server answers the in-flight request but ends
            # the keep-alive session, steering the client elsewhere.
            close = close or app.draining
            writer.write(_render(response, keep_alive=not close))
            await writer.drain()
            if close:
                return
    except (ConnectionResetError, BrokenPipeError, asyncio.CancelledError):
        pass
    finally:
        # close() without wait_closed(): the transport finishes tearing
        # down on the next loop turn, and blocking the handler task here
        # makes event-loop shutdown cancel it mid-await (noisy logs).
        writer.close()


async def create_server(app: App, host: str = "127.0.0.1",
                        port: int = 0) -> asyncio.AbstractServer:
    """Bind and start serving ``app``; ``port=0`` picks a free port."""
    return await asyncio.start_server(
        lambda reader, writer: handle_connection(app, reader, writer),
        host, port, limit=LINE_LIMIT)


def server_address(server: asyncio.AbstractServer) -> tuple[str, int]:
    """The bound ``(host, port)`` of a running server."""
    host, port = server.sockets[0].getsockname()[:2]
    return host, port


def run_server(app: App, host: str = "127.0.0.1", port: int = 8321) -> None:
    """Blocking entry point used by ``repro serve``.

    Ctrl-C stops immediately; SIGTERM drains gracefully — the listener
    closes (no new connections), in-flight requests finish, and the
    flight recorder's event log is flushed before the process exits.
    """

    async def _serve() -> None:
        server = await create_server(app, host, port)
        bound_host, bound_port = server_address(server)
        print(f"repro serve: listening on http://{bound_host}:{bound_port} "
              f"(workers={app.workers}, queue_limit={app.queue_limit}, "
              f"hot_cache={app.hot.capacity_bytes // (1024 * 1024)}MB)")
        print("endpoints: /healthz /readyz /stats /metrics /points "
              "/profile/<point> /perfetto/<point> POST /grid "
              "/debug/requests /debug/trace/<trace_id>")
        if app.flight.event_log_path is not None:
            print(f"event log: {app.flight.event_log_path} "
                  "(inspect with `repro flight`)")

        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        try:
            loop.add_signal_handler(signal.SIGTERM, stop.set)
        except (NotImplementedError, RuntimeError):
            pass  # non-Unix event loops: Ctrl-C remains the only stop
        async with server:
            serve_task = asyncio.ensure_future(server.serve_forever())
            stop_task = asyncio.ensure_future(stop.wait())
            try:
                await asyncio.wait({serve_task, stop_task},
                                   return_when=asyncio.FIRST_COMPLETED)
            finally:
                serve_task.cancel()
                stop_task.cancel()
            if stop.is_set():
                print("repro serve: SIGTERM, draining")
                server.close()
                drained = await app.drain()
                print("repro serve: drained" if drained
                      else "repro serve: drain timed out")

    try:
        asyncio.run(_serve())
    except KeyboardInterrupt:
        print("repro serve: stopped")
    finally:
        app.close()
