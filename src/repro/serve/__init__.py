"""Profiling-as-a-service: a stdlib-only async HTTP server over the engine.

The serving stack, innermost out:

* :mod:`repro.serve.service` — :class:`ProfilingService`, the sync
  engine facade with canonical (byte-stable) response payloads;
* :mod:`repro.serve.hot_cache` — :class:`HotCache`, a bytes-bounded LRU
  of rendered responses above the disk cache;
* :mod:`repro.serve.coalesce` — :class:`Coalescer`, single-flight
  sharing of concurrent identical computations;
* :mod:`repro.serve.app` — :class:`App`, routing + worker pool +
  load shedding + per-request telemetry (trace-context propagation into
  the pool, ``/metrics`` Prometheus exposition, flight-recorder debug
  endpoints);
* :mod:`repro.serve.http` — the asyncio HTTP/1.1 transport behind
  ``repro serve``.

See ``docs/serving.md`` for endpoint contracts and semantics.
"""

from repro.serve.app import App, Response
from repro.serve.coalesce import Coalescer
from repro.serve.hot_cache import HotCache
from repro.serve.http import create_server, run_server, server_address
from repro.serve.service import ProfilingService, render_json

__all__ = [
    "App", "Coalescer", "HotCache", "ProfilingService", "Response",
    "create_server", "render_json", "run_server", "server_address",
]
