"""In-process hot cache: a bytes-bounded LRU above the disk cache.

The :class:`~repro.runner.cache.ResultCache` makes a repeated query
cheap (one pickle load); this cache makes it *free*: fully rendered
response bodies are kept in memory, keyed by the same content addresses
the runner computes, so a hot ``GET /profile/<point>`` is a dict lookup
plus a socket write — no unpickle, no re-summarize, no re-render.

The bound is **bytes, not entries**: a Perfetto export of a BERT Large
point is ~10^4x larger than a summary row, so an entry count would make
the footprint unpredictable.  Eviction is LRU (``OrderedDict`` move-to-
end on hit, pop-oldest while over budget).  A value larger than the
whole budget is not admitted — caching it would evict everything else
for a single entry.

Thread-safe: the server touches it from the event loop, but benchmarks
and tests poke it from worker threads, and the lock costs nanoseconds
next to a socket write.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass

from repro.obs import metrics

_HOT_REQUESTS = metrics.counter(
    "serve.hot_cache.requests", "hot-cache lookups by result")
_HOT_EVICTIONS = metrics.counter(
    "serve.hot_cache.evictions", "hot-cache LRU evictions")
_HOT_BYTES = metrics.gauge(
    "serve.hot_cache.bytes", "bytes currently held by the hot cache")

#: Default budget: plenty for every registry point's summary + perfetto
#: payload, small next to the interpreter itself.
DEFAULT_CAPACITY_BYTES = 64 * 1024 * 1024


@dataclass
class HotCacheStats:
    """Counters for one hot-cache instance."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    def as_dict(self) -> dict[str, int]:
        return {"hits": self.hits, "misses": self.misses,
                "evictions": self.evictions}


class HotCache:
    """Bytes-bounded LRU mapping content-address keys to response bytes."""

    def __init__(self, capacity_bytes: int = DEFAULT_CAPACITY_BYTES):
        if capacity_bytes <= 0:
            raise ValueError("capacity_bytes must be positive")
        self.capacity_bytes = capacity_bytes
        self.stats = HotCacheStats()
        self._lock = threading.Lock()
        self._entries: OrderedDict[str, bytes] = OrderedDict()
        self._bytes = 0

    def get(self, key: str) -> bytes | None:
        """The cached value, refreshed to most-recently-used; None on miss."""
        with self._lock:
            value = self._entries.get(key)
            if value is None:
                self.stats.misses += 1
                _HOT_REQUESTS.inc(result="miss")
                return None
            self._entries.move_to_end(key)
            self.stats.hits += 1
            _HOT_REQUESTS.inc(result="hit")
            return value

    def put(self, key: str, value: bytes) -> bool:
        """Admit ``value``, evicting LRU entries to fit; False if oversize."""
        size = len(value)
        if size > self.capacity_bytes:
            return False
        with self._lock:
            old = self._entries.pop(key, None)
            if old is not None:
                self._bytes -= len(old)
            self._entries[key] = value
            self._bytes += size
            while self._bytes > self.capacity_bytes:
                _, evicted = self._entries.popitem(last=False)
                self._bytes -= len(evicted)
                self.stats.evictions += 1
                _HOT_EVICTIONS.inc()
            _HOT_BYTES.set(self._bytes)
            return True

    def clear(self) -> None:
        """Drop every entry (stats survive)."""
        with self._lock:
            self._entries.clear()
            self._bytes = 0
            _HOT_BYTES.set(0)

    @property
    def size_bytes(self) -> int:
        with self._lock:
            return self._bytes

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._entries

    def snapshot(self) -> dict[str, int]:
        """JSON-able state for ``/stats``."""
        with self._lock:
            return {"entries": len(self._entries), "bytes": self._bytes,
                    "capacity_bytes": self.capacity_bytes,
                    **self.stats.as_dict()}
