"""Plain-text table rendering for experiment outputs."""

from __future__ import annotations

from typing import Sequence


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]],
                 *, float_format: str = "{:.3g}") -> str:
    """Render rows as an aligned monospace table.

    Args:
        headers: column titles.
        rows: row cells; floats are formatted with ``float_format``,
            everything else with ``str``.
        float_format: format spec applied to float cells.

    Returns:
        The table as a single string (no trailing newline).
    """
    def render(cell: object) -> str:
        if isinstance(cell, float):
            return float_format.format(cell)
        return str(cell)

    rendered = [[render(c) for c in row] for row in rows]
    for row in rendered:
        if len(row) != len(headers):
            raise ValueError("row width does not match header count")
    widths = [len(h) for h in headers]
    for row in rendered:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(width)
                         for cell, width in zip(cells, widths)).rstrip()

    separator = "  ".join("-" * w for w in widths)
    out = [line(headers), separator]
    out.extend(line(row) for row in rendered)
    return "\n".join(out)


def format_percent(value: float, digits: int = 1) -> str:
    """Render a fraction as a percent string."""
    return f"{value * 100:.{digits}f}%"
