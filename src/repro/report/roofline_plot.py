"""ASCII roofline plot.

A log-log terminal rendering of a device roofline with kernels/groups
placed on it — the visual companion to Figs. 6/7.  Points under the slanted
memory roof are bandwidth-limited; points on the flat compute roof are
FLOP-limited.
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.hw.device import DeviceModel
from repro.ops.base import DType

#: Marker characters cycled across plotted points.
_MARKERS = "ABCDEFGHIJKLMNOPQRSTUVWXYZ"


def roofline_plot(points: Sequence[tuple[str, float]],
                  device: DeviceModel, dtype: DType = DType.FP32, *,
                  width: int = 68, height: int = 18) -> str:
    """Render the roofline with labeled points.

    Args:
        points: ``(label, ops_per_byte)`` entries to place on the roof.
        device: device supplying the two roofs.
        dtype: GEMM engine whose compute roof applies.
        width/height: plot dimensions in characters.

    Returns:
        Multi-line string: the plot, axes, and a point legend.
    """
    if not points:
        raise ValueError("nothing to plot")
    if width < 20 or height < 6:
        raise ValueError("plot too small")

    peak = device.gemm_engine(dtype).effective_peak
    bandwidth = device.peak_bandwidth
    ridge = peak / bandwidth

    x_min = math.log10(min(min(p for _, p in points), ridge)) - 0.5
    x_max = math.log10(max(max(p for _, p in points), ridge)) + 0.5
    y_max = math.log10(peak) + 0.3
    y_min = y_max - (x_max - x_min) - 0.3  # keep slope ~45 degrees

    def to_col(intensity_log: float) -> int:
        return int((intensity_log - x_min) / (x_max - x_min) * (width - 1))

    def to_row(flops_log: float) -> int:
        frac = (flops_log - y_min) / (y_max - y_min)
        return height - 1 - int(frac * (height - 1))

    grid = [[" "] * width for _ in range(height)]

    # Draw the roof: attainable = min(peak, intensity * bandwidth).
    for col in range(width):
        intensity = 10 ** (x_min + (x_max - x_min) * col / (width - 1))
        attainable = min(peak, intensity * bandwidth)
        row = to_row(math.log10(attainable))
        if 0 <= row < height:
            grid[row][col] = "." if intensity < ridge else "_"

    legend = []
    for index, (label, intensity) in enumerate(points):
        marker = _MARKERS[index % len(_MARKERS)]
        attainable = min(peak, intensity * bandwidth)
        col = min(width - 1, max(0, to_col(math.log10(intensity))))
        row = min(height - 1, max(0, to_row(math.log10(attainable))))
        grid[row][col] = marker
        bound = "memory-bound" if intensity < ridge else "compute-bound"
        legend.append(f"  {marker} {label} ({intensity:.2g} ops/B, {bound})")

    lines = ["attainable FLOP/s (log)"]
    lines.extend("|" + "".join(row) for row in grid)
    lines.append("+" + "-" * width + "> ops/byte (log)")
    lines.append(f"ridge point: {ridge:.1f} ops/B   compute roof: "
                 f"{peak / 1e12:.1f} TFLOP/s   memory roof: "
                 f"{bandwidth / 1e9:.0f} GB/s")
    lines.extend(legend)
    return "\n".join(lines)
