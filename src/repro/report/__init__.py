"""Text rendering of experiment results."""

from repro.report.bars import bar_chart, horizontal_bar, stacked_bar
from repro.report.roofline_plot import roofline_plot
from repro.report.tables import format_percent, format_table

__all__ = ["bar_chart", "format_percent", "format_table", "horizontal_bar",
           "roofline_plot", "stacked_bar"]
