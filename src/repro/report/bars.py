"""ASCII stacked-bar rendering — terminal analogues of the paper's figures."""

from __future__ import annotations

from typing import Sequence

#: Fill characters cycled across bar segments.
_FILLS = "#@*=+~o."


def stacked_bar(fractions: Sequence[tuple[str, float]], *,
                width: int = 60) -> str:
    """One horizontal stacked bar plus its legend line.

    Args:
        fractions: ``(label, fraction)`` segments; fractions should sum to
            at most ~1 (a remainder segment is added if they fall short).
        width: bar width in characters.

    Returns:
        Two lines: the bar and a legend mapping fills to labels/percents.
    """
    if width < 10:
        raise ValueError("width too small")
    total = sum(f for _, f in fractions)
    if total > 1.001:
        raise ValueError(f"fractions sum to {total:.3f} > 1")
    segments = []
    legend = []
    used = 0
    for index, (label, fraction) in enumerate(fractions):
        fill = _FILLS[index % len(_FILLS)]
        chars = int(round(fraction * width))
        chars = min(chars, width - used)
        segments.append(fill * chars)
        used += chars
        legend.append(f"{fill}={label} {fraction * 100:.1f}%")
    if used < width:
        segments.append(" " * (width - used))
    return f"|{''.join(segments)}|\n  {'  '.join(legend)}"


def bar_chart(rows: Sequence[tuple[str, Sequence[tuple[str, float]]]], *,
              width: int = 60) -> str:
    """Multiple labeled stacked bars (a Fig. 3/8/9-style chart)."""
    blocks = []
    label_width = max((len(label) for label, _ in rows), default=0)
    for label, fractions in rows:
        bar = stacked_bar(fractions, width=width)
        blocks.append(f"{label.ljust(label_width)} {bar}")
    return "\n".join(blocks)


def horizontal_bar(values: Sequence[tuple[str, float]], *,
                   width: int = 50, unit: str = "") -> str:
    """Simple horizontal bar chart scaled to the max value (Fig. 6/7 style)."""
    if not values:
        raise ValueError("no values to plot")
    peak = max(v for _, v in values)
    if peak <= 0:
        raise ValueError("values must contain a positive entry")
    label_width = max(len(label) for label, _ in values)
    lines = []
    for label, value in values:
        filled = int(round(value / peak * width))
        lines.append(f"{label.ljust(label_width)} "
                     f"{'#' * filled}{' ' * (width - filled)} "
                     f"{value:.4g}{unit}")
    return "\n".join(lines)
