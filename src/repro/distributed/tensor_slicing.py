"""Megatron-style tensor slicing model (Sec. 5.1, Fig. 10).

``m``-way tensor slicing splits each layer's weight matrices among ``m``
devices — Q/K/V and FC-1 column-wise, attention-output and FC-2 row-wise —
and replicates the small DR/RC/LN layers to avoid extra communication.
Each layer requires four AllReduces of activation-sized tensors per
iteration (two forward, two backward) that, unlike data parallelism's
gradient AllReduce, **cannot** be overlapped with computation because of
data dependencies.  LAMB's work splits by ``m`` since each device owns
``1/m`` of the parameters.
"""

from __future__ import annotations

import dataclasses

from repro.config import BertConfig, TrainingConfig
from repro.distributed.collectives import ring_allreduce_time
from repro.distributed.network import LinkSpec
from repro.distributed.timeline import DeviceTimeline, compute_buckets
from repro.hw.device import DeviceModel
from repro.obs import spans
from repro.ops.base import Component, Region
from repro.profiler.profiler import profile_trace
from repro.trace.bert_trace import (embedding_backward_kernels,
                                    embedding_forward_kernels,
                                    output_head_backward_kernels,
                                    output_head_forward_kernels,
                                    transformer_layer_backward_kernels,
                                    transformer_layer_forward_kernels)
from repro.trace.builder import Trace
from repro.trace.kernel_table import KernelTable
from repro.trace.parameters import ParamTensor, bert_parameter_inventory

#: AllReduces per Transformer layer per iteration under tensor slicing:
#: one after the attention row-parallel projection and one after FC-2 in
#: the forward pass, and their mirror images in the backward pass.
ALLREDUCES_PER_LAYER = 4


def sliced_parameter_inventory(model: BertConfig,
                               ways: int) -> list[ParamTensor]:
    """One device's parameter shard under ``ways``-way slicing.

    Encoder weights are divided by ``ways``; the replicated LayerNorm
    parameters, embeddings and output head are updated redundantly on every
    device (cheap relative to the sharded matrices), so they stay whole.
    """
    if ways < 1:
        raise ValueError("ways must be >= 1")
    sharded: list[ParamTensor] = []
    for tensor in bert_parameter_inventory(model):
        is_matrix = (tensor.component is Component.TRANSFORMER
                     and len(tensor.shape) == 2)
        if is_matrix and ways > 1:
            rows = max(1, tensor.shape[0] // ways)
            sharded.append(dataclasses.replace(
                tensor, shape=(rows, tensor.shape[1])))
        else:
            sharded.append(tensor)
    return sharded


def build_sliced_iteration_trace(model: BertConfig, training: TrainingConfig,
                                 ways: int) -> Trace:
    """One device's kernel trace under ``ways``-way tensor slicing.

    Embedding and output head are replicated (full size); encoder layers
    emit their per-device shard of work; the optimizer updates only this
    device's parameter shard.  Like :func:`build_iteration_trace`, one
    sliced encoder layer is enumerated per direction and replicated
    columnarly across the rest (:meth:`KernelTable.tiled`).
    """
    from repro.optim.kernels import optimizer_kernels

    with spans.span("trace.build_sliced", model=model.name,
                    point=training.label, ways=ways):
        layer_fwd = KernelTable.from_kernels(
            transformer_layer_forward_kernels(model, training, ways))
        layer_bwd = KernelTable.from_kernels(
            transformer_layer_backward_kernels(model, training, ways))
        table = KernelTable.concat([
            KernelTable.from_kernels(
                embedding_forward_kernels(model, training)),
            layer_fwd.tiled(range(model.num_layers)),
            KernelTable.from_kernels(
                output_head_forward_kernels(model, training)
                + output_head_backward_kernels(model, training)),
            layer_bwd.tiled(range(model.num_layers - 1, -1, -1)),
            KernelTable.from_kernels(
                embedding_backward_kernels(model, training)
                + optimizer_kernels(training.optimizer,
                                    sliced_parameter_inventory(model, ways),
                                    precision=training.precision,
                                    fused=training.fuse_optimizer)),
        ])
        spans.annotate(kernels=len(table))
    return Trace.from_table(model, training, table)


def tensor_slicing_communication(model: BertConfig, training: TrainingConfig,
                                 link: LinkSpec, ways: int) -> float:
    """Serialized activation/gradient AllReduce time per iteration."""
    if ways == 1:
        return 0.0
    activation_bytes = (training.tokens_per_iteration * model.d_model
                        * training.precision.activation_bytes)
    per_allreduce = ring_allreduce_time(activation_bytes, ways, link)
    return model.num_layers * ALLREDUCES_PER_LAYER * per_allreduce


def tensor_slicing_timeline(model: BertConfig, training: TrainingConfig,
                            device: DeviceModel, link: LinkSpec,
                            ways: int, *,
                            label: str | None = None) -> DeviceTimeline:
    """Per-GPU iteration breakdown under ``ways``-way tensor slicing.

    The replicated DR+RC+LN work is reported in its own bucket, since its
    relative share grows with device count (Fig. 11's T2 observation).
    """
    trace = build_sliced_iteration_trace(model, training, ways)
    profile = profile_trace(trace, device)
    buckets = compute_buckets(profile)
    replicated = profile.time_of(component=Component.TRANSFORMER,
                                 region=Region.DR_RC_LN)
    buckets["transformer"] -= replicated
    buckets["dr_rc_ln_replicated"] = replicated
    buckets["communication"] = tensor_slicing_communication(
        model, training, link, ways)
    return DeviceTimeline(
        label=label or f"TS {ways}-way, B={training.batch_size}",
        devices=ways, per_device_batch=training.batch_size,
        buckets=buckets)
