"""Analytical multi-device training models (Sec. 5)."""

from repro.distributed.collectives import (allgather_time, broadcast_time,
                                           ring_allreduce_time)
from repro.distributed.data_parallel import (data_parallel_timeline,
                                             exposed_dp_communication,
                                             single_device_timeline)
from repro.distributed.hybrid import hybrid_timeline
from repro.distributed.network import ETH100, PCIE4, XGMI, LinkSpec
from repro.distributed.passes import OptimizerShardPass
from repro.distributed.planner import (ParallelLayout, evaluate_layout,
                                       plan, render_plan)
from repro.distributed.pipeline import (best_micro_batch_count,
                                        pipeline_bubble_fraction,
                                        pipeline_timeline)
from repro.distributed.tensor_slicing import (ALLREDUCES_PER_LAYER,
                                              build_sliced_iteration_trace,
                                              sliced_parameter_inventory,
                                              tensor_slicing_communication,
                                              tensor_slicing_timeline)
from repro.distributed.timeline import (BUCKET_ORDER, DeviceTimeline,
                                        compute_buckets)
from repro.distributed.simulator import (CollectiveRun, TransferEvent,
                                         simulate_hierarchical_allreduce,
                                         simulate_ring_allreduce,
                                         simulate_tree_allreduce)
from repro.distributed.zero import zero_dp_timeline, zero_memory_per_device

__all__ = [
    "CollectiveRun", "OptimizerShardPass", "ParallelLayout",
    "TransferEvent",
    "best_micro_batch_count", "evaluate_layout", "plan", "render_plan",
    "pipeline_bubble_fraction", "pipeline_timeline",
    "simulate_hierarchical_allreduce", "simulate_ring_allreduce",
    "simulate_tree_allreduce", "zero_dp_timeline",
    "zero_memory_per_device",
    "ALLREDUCES_PER_LAYER", "BUCKET_ORDER", "DeviceTimeline", "ETH100",
    "LinkSpec", "PCIE4", "XGMI", "allgather_time", "broadcast_time",
    "build_sliced_iteration_trace", "compute_buckets",
    "data_parallel_timeline", "exposed_dp_communication", "hybrid_timeline",
    "ring_allreduce_time", "single_device_timeline",
    "sliced_parameter_inventory", "tensor_slicing_communication",
    "tensor_slicing_timeline",
]
