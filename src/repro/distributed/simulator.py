"""Step-event simulation of collective algorithms.

The closed-form ring AllReduce cost in :mod:`repro.distributed.collectives`
is standard, but a reproduction should *show* it rather than assume it.
This module simulates collectives step by step — every point-to-point
transfer is an event with a start/end time on its link — and the test
suite checks the simulated completion time matches the closed form exactly
for rings, and that the tree/hierarchical variants behave as their
complexity suggests.

The simulator assumes full-duplex links (a device can send to its ring
successor while receiving from its predecessor), as ring pipelines do.

Collectives at scale do not run on pristine fabric: stragglers, degraded
links and failed ranks dominate tail behavior.  A
:class:`CollectiveFaults` model (deterministic — every decision is the
same :func:`~repro.faults.plan.site_uniform` hash the fault plans use,
so a seed fully determines the perturbed timeline) injects all three:
per-(rank, step) straggler delays, persistent per-link bandwidth
degradation, and failed ranks that cost one detection timeout before the
collective re-runs among the survivors.  ``faults=None`` (the default)
is byte-for-byte the original fault-free simulation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.distributed.network import LinkSpec
from repro.faults.plan import FaultPlan, site_uniform

#: Default slowdown of a degraded link (transfer time multiplier).
DEGRADED_LINK_FACTOR = 4.0

#: Default seconds to notice a dead rank before re-running the
#: collective among the survivors (a heartbeat interval, not a TCP
#: timeout — the simulation models an optimistic failure detector).
DETECT_TIMEOUT_S = 0.005


@dataclass(frozen=True)
class CollectiveFaults:
    """Deterministic fault model for simulated collectives.

    Every decision is a pure hash of ``(seed, site, index)`` — no RNG
    state — so two simulations with the same faults object produce the
    same perturbed timeline, and the property tests can assert seed
    sensitivity without fixing an execution order.

    Attributes:
        seed: decision seed (shared with the fault-plan hash).
        straggler_rate: probability a (rank, step) transfer straggles.
        straggler_delay_s: extra seconds a straggling transfer takes.
        degraded_link_rate: probability a directed link is degraded for
            the whole collective (persistent, unlike stragglers).
        degraded_link_factor: transfer-time multiplier on degraded links.
        rank_fail_rate: probability each rank is dead at the start.
        failed_ranks: explicitly dead ranks (merged with the sampled
            ones; at least one rank always survives).
        detect_timeout_s: seconds lost detecting dead ranks before the
            collective restarts among the survivors.
    """

    seed: int = 0
    straggler_rate: float = 0.0
    straggler_delay_s: float = 0.0
    degraded_link_rate: float = 0.0
    degraded_link_factor: float = DEGRADED_LINK_FACTOR
    rank_fail_rate: float = 0.0
    failed_ranks: tuple[int, ...] = ()
    detect_timeout_s: float = DETECT_TIMEOUT_S

    @classmethod
    def from_plan(cls, plan: FaultPlan) -> "CollectiveFaults":
        """Map a fault plan's ``net.*`` rules onto this model.

        ``net.straggle:<rate>:<delay>`` sets the straggler knobs,
        ``net.degrade:<rate>`` the link-degradation probability and
        ``net.rank_fail:<rate>`` the dead-rank probability — so one
        ``--faults`` spec drives the serve path, the runner *and* the
        simulated fabric from a single seed.
        """
        kwargs: dict = {"seed": plan.seed}
        for rule in plan.rules.values():
            if rule.site == "net.straggle":
                kwargs["straggler_rate"] = rule.rate
                if rule.delay_s:
                    kwargs["straggler_delay_s"] = rule.delay_s
            elif rule.site == "net.degrade":
                kwargs["degraded_link_rate"] = rule.rate
            elif rule.site == "net.rank_fail":
                kwargs["rank_fail_rate"] = rule.rate
        return cls(**kwargs)

    # ------------------------------------------------------------ decisions
    def straggle_s(self, rank: int, step: int) -> float:
        """Extra delay of ``rank``'s transfer at ``step`` (0.0 = none)."""
        if self.straggler_rate <= 0.0 or self.straggler_delay_s <= 0.0:
            return 0.0
        if site_uniform(self.seed, f"net.straggle|{rank}",
                        step) < self.straggler_rate:
            return self.straggler_delay_s
        return 0.0

    def link_factor(self, source: int, destination: int) -> float:
        """Transfer-time multiplier of one directed link (persistent)."""
        if self.degraded_link_rate <= 0.0:
            return 1.0
        if site_uniform(self.seed, f"net.degrade|{source}->{destination}",
                        0) < self.degraded_link_rate:
            return self.degraded_link_factor
        return 1.0

    def failed(self, devices: int) -> tuple[int, ...]:
        """The dead ranks among ``devices`` (at least one survives)."""
        ranks = {r for r in self.failed_ranks if 0 <= r < devices}
        if self.rank_fail_rate > 0.0:
            ranks.update(r for r in range(devices)
                         if site_uniform(self.seed, "net.rank_fail",
                                         r) < self.rank_fail_rate)
        while len(ranks) >= devices:  # someone must hold the result
            ranks.discard(min(ranks))
        return tuple(sorted(ranks))


def _survivors(devices: int, faults: CollectiveFaults | None
               ) -> tuple[list[int], tuple[int, ...], float]:
    """(surviving ranks, failed ranks, start offset) of one collective.

    Dead ranks cost one detection timeout, after which the collective
    runs among the survivors — the elastic-training recovery model.
    """
    if faults is None:
        return list(range(devices)), (), 0.0
    failed = faults.failed(devices)
    if not failed:
        return list(range(devices)), (), 0.0
    survivors = [r for r in range(devices) if r not in failed]
    return survivors, failed, faults.detect_timeout_s


@dataclass(frozen=True)
class TransferEvent:
    """One simulated point-to-point transfer.

    Attributes:
        step: algorithm step index.
        source/destination: device ranks.
        n_bytes: payload.
        start_s/end_s: simulated timestamps.
    """

    step: int
    source: int
    destination: int
    n_bytes: int
    start_s: float
    end_s: float


@dataclass
class CollectiveRun:
    """Outcome of a simulated collective.

    Attributes:
        algorithm: algorithm label.
        devices: participant count.
        events: every transfer, in issue order.
    """

    algorithm: str
    devices: int
    events: list[TransferEvent]
    failed_ranks: tuple[int, ...] = ()
    detect_s: float = field(default=0.0)

    @property
    def completion_s(self) -> float:
        """Time at which every surviving device holds the final result.

        Includes the failure-detection offset when ranks died: event
        timestamps already start at ``detect_s``, and a collective whose
        survivors number one still paid the detection cost.
        """
        return max((e.end_s for e in self.events), default=self.detect_s)

    @property
    def total_bytes_on_wire(self) -> int:
        return sum(e.n_bytes for e in self.events)


def simulate_ring_allreduce(n_bytes: int, devices: int, link: LinkSpec,
                            faults: CollectiveFaults | None = None
                            ) -> CollectiveRun:
    """Simulate ring AllReduce: reduce-scatter then all-gather.

    Each of the ``2*(D-1)`` steps moves one ``n_bytes/D`` chunk per device
    simultaneously; a device's next step cannot start before its previous
    send and the matching receive finished.

    With ``faults``, dead ranks drop out of the ring (one detection
    timeout, then the survivors form a smaller ring over larger chunks),
    degraded links multiply their transfer time and straggling ranks add
    their delay — and because the ring serializes around the slowest
    member, a single straggler stalls every rank's next step, which is
    exactly the tail-latency amplification the paper's scale-out
    discussion worries about.
    """
    if devices < 1:
        raise ValueError("devices must be >= 1")
    events: list[TransferEvent] = []
    if devices == 1 or n_bytes == 0:
        return CollectiveRun("ring-allreduce", devices, events)

    survivors, failed, offset = _survivors(devices, faults)
    ring = len(survivors)
    if ring == 1:
        return CollectiveRun("ring-allreduce", devices, events,
                             failed_ranks=failed, detect_s=offset)

    chunk = n_bytes / ring
    step_time = link.latency_s + chunk / link.bandwidth
    clock = [offset] * ring
    for step in range(2 * (ring - 1)):
        # All devices exchange simultaneously; each rank sends to rank+1.
        starts = [max(clock[i], clock[(i - 1) % ring])
                  for i in range(ring)]
        for i in range(ring):
            source = survivors[i]
            destination = survivors[(i + 1) % ring]
            cost = step_time
            if faults is not None:
                cost = (step_time * faults.link_factor(source, destination)
                        + faults.straggle_s(source, step))
            start = starts[i]
            end = start + cost
            events.append(TransferEvent(
                step=step, source=source, destination=destination,
                n_bytes=int(chunk), start_s=start, end_s=end))
            clock[i] = end
    return CollectiveRun("ring-allreduce", devices, events,
                         failed_ranks=failed, detect_s=offset)


def simulate_tree_allreduce(n_bytes: int, devices: int, link: LinkSpec,
                            faults: CollectiveFaults | None = None
                            ) -> CollectiveRun:
    """Simulate binary-tree AllReduce: reduce up, broadcast down.

    ``2 * ceil(log2 D)`` rounds moving the *full* payload each hop —
    latency-optimal, bandwidth-suboptimal; the classic contrast to the
    ring (good for small payloads / many latency-bound steps).

    Under ``faults`` the same model as the ring applies, but the blast
    radius differs: a straggling leaf only delays its own subtree's
    reduce path, while a straggler near the root delays everyone —
    trees localize stragglers where rings globalize them.
    """
    if devices < 1:
        raise ValueError("devices must be >= 1")
    events: list[TransferEvent] = []
    if devices == 1 or n_bytes == 0:
        return CollectiveRun("tree-allreduce", devices, events)

    survivors, failed, offset = _survivors(devices, faults)
    tree = len(survivors)
    if tree == 1:
        return CollectiveRun("tree-allreduce", devices, events,
                             failed_ranks=failed, detect_s=offset)

    hop = link.latency_s + n_bytes / link.bandwidth

    def cost(source: int, destination: int, step: int) -> float:
        if faults is None:
            return hop
        return (hop * faults.link_factor(source, destination)
                + faults.straggle_s(source, step))

    clock = [offset] * tree
    step = 0

    # Reduce phase: pairs at stride 1, 2, 4, ... send to the lower rank.
    stride = 1
    while stride < tree:
        for low in range(0, tree, 2 * stride):
            high = low + stride
            if high < tree:
                source, destination = survivors[high], survivors[low]
                start = max(clock[low], clock[high])
                end = start + cost(source, destination, step)
                events.append(TransferEvent(step=step, source=source,
                                            destination=destination,
                                            n_bytes=n_bytes, start_s=start,
                                            end_s=end))
                clock[low] = clock[high] = end
        stride *= 2
        step += 1

    # Broadcast phase: mirror image.
    stride //= 2
    while stride >= 1:
        for low in range(0, tree, 2 * stride):
            high = low + stride
            if high < tree:
                source, destination = survivors[low], survivors[high]
                start = clock[low]
                end = start + cost(source, destination, step)
                events.append(TransferEvent(step=step, source=source,
                                            destination=destination,
                                            n_bytes=n_bytes, start_s=start,
                                            end_s=end))
                clock[high] = end
                clock[low] = end
        stride //= 2
        step += 1
    return CollectiveRun("tree-allreduce", devices, events,
                         failed_ranks=failed, detect_s=offset)


def simulate_hierarchical_allreduce(n_bytes: int, *, nodes: int,
                                    devices_per_node: int,
                                    intra_link: LinkSpec,
                                    inter_link: LinkSpec,
                                    faults: CollectiveFaults | None = None
                                    ) -> CollectiveRun:
    """Two-level AllReduce: ring within each node, ring across nodes on
    the slow link with the reduced payload, then intra-node broadcast.

    This is the topology-aware layout the paper's Sec. 5.2 alludes to
    ("algorithms are often optimized for the underlying substrate").

    ``faults`` applies to the *inter-node* ring: the slow cross-node
    fabric is where stragglers, degraded links and whole-node failures
    live (a rank in that ring is a node, so ``failed_ranks`` there
    model dead hosts, the elastic-training case).
    """
    if nodes < 1 or devices_per_node < 1:
        raise ValueError("nodes and devices_per_node must be >= 1")
    intra = simulate_ring_allreduce(n_bytes, devices_per_node, intra_link)
    inter = simulate_ring_allreduce(n_bytes, nodes, inter_link, faults)

    offset = intra.completion_s
    events = list(intra.events)
    events.extend(TransferEvent(
        step=e.step, source=e.source, destination=e.destination,
        n_bytes=e.n_bytes, start_s=e.start_s + offset,
        end_s=e.end_s + offset) for e in inter.events)
    # Final intra-node broadcast of the result.
    offset += inter.completion_s
    if devices_per_node > 1 and n_bytes > 0:
        hop = intra_link.latency_s + n_bytes / intra_link.bandwidth
        events.append(TransferEvent(
            step=10_000, source=0, destination=1, n_bytes=n_bytes,
            start_s=offset, end_s=offset + hop))
    return CollectiveRun("hierarchical-allreduce",
                         nodes * devices_per_node, events,
                         failed_ranks=inter.failed_ranks,
                         detect_s=inter.detect_s)
