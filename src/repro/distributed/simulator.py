"""Step-event simulation of collective algorithms.

The closed-form ring AllReduce cost in :mod:`repro.distributed.collectives`
is standard, but a reproduction should *show* it rather than assume it.
This module simulates collectives step by step — every point-to-point
transfer is an event with a start/end time on its link — and the test
suite checks the simulated completion time matches the closed form exactly
for rings, and that the tree/hierarchical variants behave as their
complexity suggests.

The simulator assumes full-duplex links (a device can send to its ring
successor while receiving from its predecessor), as ring pipelines do.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.distributed.network import LinkSpec


@dataclass(frozen=True)
class TransferEvent:
    """One simulated point-to-point transfer.

    Attributes:
        step: algorithm step index.
        source/destination: device ranks.
        n_bytes: payload.
        start_s/end_s: simulated timestamps.
    """

    step: int
    source: int
    destination: int
    n_bytes: int
    start_s: float
    end_s: float


@dataclass
class CollectiveRun:
    """Outcome of a simulated collective.

    Attributes:
        algorithm: algorithm label.
        devices: participant count.
        events: every transfer, in issue order.
    """

    algorithm: str
    devices: int
    events: list[TransferEvent]

    @property
    def completion_s(self) -> float:
        """Time at which every device holds the final result."""
        return max((e.end_s for e in self.events), default=0.0)

    @property
    def total_bytes_on_wire(self) -> int:
        return sum(e.n_bytes for e in self.events)


def simulate_ring_allreduce(n_bytes: int, devices: int,
                            link: LinkSpec) -> CollectiveRun:
    """Simulate ring AllReduce: reduce-scatter then all-gather.

    Each of the ``2*(D-1)`` steps moves one ``n_bytes/D`` chunk per device
    simultaneously; a device's next step cannot start before its previous
    send and the matching receive finished.
    """
    if devices < 1:
        raise ValueError("devices must be >= 1")
    events: list[TransferEvent] = []
    if devices == 1 or n_bytes == 0:
        return CollectiveRun("ring-allreduce", devices, events)

    chunk = n_bytes / devices
    step_time = link.latency_s + chunk / link.bandwidth
    clock = [0.0] * devices
    for step in range(2 * (devices - 1)):
        # All devices exchange simultaneously; each rank sends to rank+1.
        starts = [max(clock[rank], clock[(rank - 1) % devices])
                  for rank in range(devices)]
        for rank in range(devices):
            start = starts[rank]
            end = start + step_time
            events.append(TransferEvent(
                step=step, source=rank, destination=(rank + 1) % devices,
                n_bytes=int(chunk), start_s=start, end_s=end))
            clock[rank] = end
    return CollectiveRun("ring-allreduce", devices, events)


def simulate_tree_allreduce(n_bytes: int, devices: int,
                            link: LinkSpec) -> CollectiveRun:
    """Simulate binary-tree AllReduce: reduce up, broadcast down.

    ``2 * ceil(log2 D)`` rounds moving the *full* payload each hop —
    latency-optimal, bandwidth-suboptimal; the classic contrast to the
    ring (good for small payloads / many latency-bound steps).
    """
    if devices < 1:
        raise ValueError("devices must be >= 1")
    events: list[TransferEvent] = []
    if devices == 1 or n_bytes == 0:
        return CollectiveRun("tree-allreduce", devices, events)

    hop = link.latency_s + n_bytes / link.bandwidth
    clock = [0.0] * devices
    step = 0

    # Reduce phase: pairs at stride 1, 2, 4, ... send to the lower rank.
    stride = 1
    while stride < devices:
        for low in range(0, devices, 2 * stride):
            high = low + stride
            if high < devices:
                start = max(clock[low], clock[high])
                end = start + hop
                events.append(TransferEvent(step=step, source=high,
                                            destination=low,
                                            n_bytes=n_bytes, start_s=start,
                                            end_s=end))
                clock[low] = clock[high] = end
        stride *= 2
        step += 1

    # Broadcast phase: mirror image.
    stride //= 2
    while stride >= 1:
        for low in range(0, devices, 2 * stride):
            high = low + stride
            if high < devices:
                start = clock[low]
                end = start + hop
                events.append(TransferEvent(step=step, source=low,
                                            destination=high,
                                            n_bytes=n_bytes, start_s=start,
                                            end_s=end))
                clock[high] = end
                clock[low] = end
        stride //= 2
        step += 1
    return CollectiveRun("tree-allreduce", devices, events)


def simulate_hierarchical_allreduce(n_bytes: int, *, nodes: int,
                                    devices_per_node: int,
                                    intra_link: LinkSpec,
                                    inter_link: LinkSpec) -> CollectiveRun:
    """Two-level AllReduce: ring within each node, ring across nodes on
    the slow link with the reduced payload, then intra-node broadcast.

    This is the topology-aware layout the paper's Sec. 5.2 alludes to
    ("algorithms are often optimized for the underlying substrate").
    """
    if nodes < 1 or devices_per_node < 1:
        raise ValueError("nodes and devices_per_node must be >= 1")
    intra = simulate_ring_allreduce(n_bytes, devices_per_node, intra_link)
    inter = simulate_ring_allreduce(n_bytes, nodes, inter_link)

    offset = intra.completion_s
    events = list(intra.events)
    events.extend(TransferEvent(
        step=e.step, source=e.source, destination=e.destination,
        n_bytes=e.n_bytes, start_s=e.start_s + offset,
        end_s=e.end_s + offset) for e in inter.events)
    # Final intra-node broadcast of the result.
    offset += inter.completion_s
    if devices_per_node > 1 and n_bytes > 0:
        hop = intra_link.latency_s + n_bytes / intra_link.bandwidth
        events.append(TransferEvent(
            step=10_000, source=0, destination=1, n_bytes=n_bytes,
            start_s=offset, end_s=offset + hop))
    return CollectiveRun("hierarchical-allreduce",
                         nodes * devices_per_node, events)
