"""ZeRO-style optimizer-state partitioning (the paper's Sec. 5.2 aside).

The paper notes that data-parallel training's "communication overheads and
redundant updates could potentially be reduced by making each device gather
a reduced copy of a subset of gradients and only update the corresponding
subset of parameters [ZeRO, 69]. However, certain optimizers such as LAMB
require normalization of all the layers' gradients at the beginning of the
algorithm" — a serialization caveat this model makes quantitative.

Mechanics modeled (ZeRO stage-2-like):

* gradients are reduce-scattered so each of ``D`` replicas owns ``1/D`` of
  them (same wire cost as ring AllReduce's first half);
* each device runs the optimizer on its ``1/D`` parameter shard — the
  update phase shrinks by ``D``;
* updated parameters are all-gathered back (the second half of the ring);
* for LAMB, a global gradient-norm AllReduce (tiny payload, one scalar per
  device after local partial norms) still gates the update.
"""

from __future__ import annotations

import math

from repro.config import BertConfig, TrainingConfig
from repro.distributed.collectives import allgather_time, ring_allreduce_time
from repro.distributed.data_parallel import exposed_dp_communication
from repro.distributed.network import LinkSpec
from repro.distributed.timeline import DeviceTimeline, compute_buckets
from repro.hw.device import DeviceModel
from repro.profiler.profiler import profile_trace
from repro.trace.bert_trace import build_iteration_trace
from repro.trace.parameters import bert_parameter_inventory


def zero_dp_timeline(model: BertConfig, training: TrainingConfig,
                     device: DeviceModel, link: LinkSpec, devices: int, *,
                     overlap: bool = True,
                     label: str | None = None) -> DeviceTimeline:
    """Per-GPU breakdown of data parallelism with partitioned optimizer.

    Compute buckets come from the single-device profile with the optimizer
    bucket divided by ``devices`` (each replica updates its shard, after
    the un-shardable global-norm reduction).  Communication is the exposed
    gradient reduce-scatter (≈ the DP AllReduce pipeline) plus the
    parameter all-gather, which cannot overlap backprop since it follows
    the update.
    """
    if devices < 1:
        raise ValueError("devices must be >= 1")
    trace = build_iteration_trace(model, training)
    profile = profile_trace(trace, device)
    buckets = compute_buckets(profile)

    if devices > 1:
        optimizer_full = buckets["optimizer"]
        # The global grad-norm reduction serializes and is not sharded.
        norm_time = profile.time_where(
            lambda k: "grad_norm" in k.name)
        sharded = (optimizer_full - norm_time) / devices
        buckets["optimizer"] = norm_time + sharded

        grad_bytes = sum(
            t.n_elements for t in bert_parameter_inventory(model)
        ) * training.precision.activation_bytes
        exposed_grads = exposed_dp_communication(
            model, training, profile, link, devices, overlap)
        param_gather = allgather_time(
            math.ceil(grad_bytes / devices), devices, link)
        # Norm AllReduce: one scalar per device (latency-dominated).
        norm_allreduce = ring_allreduce_time(8, devices, link)
        buckets["communication"] = (exposed_grads + param_gather
                                    + norm_allreduce)

    return DeviceTimeline(
        label=label or f"ZeRO-DP x{devices}, B={training.batch_size}",
        devices=devices, per_device_batch=training.batch_size,
        buckets=buckets)


def zero_memory_per_device(model: BertConfig, devices: int,
                           element_bytes: int = 4) -> int:
    """Optimizer-state bytes each replica holds under partitioning.

    Plain DP replicates momentum+velocity (2 states) everywhere; ZeRO
    shards them ``1/D`` — the memory headroom that lets DP train larger
    models or batches.
    """
    if devices < 1:
        raise ValueError("devices must be >= 1")
    params = sum(t.n_elements for t in bert_parameter_inventory(model))
    return 2 * params * element_bytes // devices
