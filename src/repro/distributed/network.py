"""Inter-device link models.

The paper's multi-device analysis assumes a homogeneous topology and PCIe
4.0-class bandwidth (Sec. 5.1), estimating communication time as data
volume over link bandwidth.  Latency per transfer step is included so
small-message collectives are not free.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class LinkSpec:
    """A point-to-point inter-device link.

    Attributes:
        name: link label.
        bandwidth_gbps: sustained unidirectional bandwidth in GB/s.
        latency_us: per-message latency in microseconds.
    """

    name: str
    bandwidth_gbps: float
    latency_us: float = 5.0

    def __post_init__(self) -> None:
        if self.bandwidth_gbps <= 0:
            raise ValueError("bandwidth must be positive")
        if self.latency_us < 0:
            raise ValueError("latency must be non-negative")

    @property
    def bandwidth(self) -> float:
        """Bytes per second."""
        return self.bandwidth_gbps * 1e9

    @property
    def latency_s(self) -> float:
        return self.latency_us * 1e-6

    def transfer_time(self, n_bytes: int) -> float:
        """Time to move ``n_bytes`` point to point."""
        if n_bytes < 0:
            raise ValueError("n_bytes must be non-negative")
        return self.latency_s + n_bytes / self.bandwidth


#: PCIe 4.0 x16: 32 GB/s raw, ~26 GB/s sustained after protocol overhead —
#: the interconnect the paper assumes for gradient communication.
PCIE4 = LinkSpec(name="pcie4-x16", bandwidth_gbps=26.0, latency_us=5.0)

#: An xGMI/Infinity-Fabric-class intra-node link, for what-if studies.
XGMI = LinkSpec(name="xgmi", bandwidth_gbps=75.0, latency_us=2.0)

#: A 100 Gb/s NIC-class inter-node link.
ETH100 = LinkSpec(name="eth-100g", bandwidth_gbps=12.0, latency_us=15.0)
