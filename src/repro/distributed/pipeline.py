"""Pipeline-parallel training model (GPipe/Megatron-2-style).

The paper covers data parallelism and tensor slicing; pipeline parallelism
is the third axis production systems combine with them.  The model here is
the standard synchronous-pipeline accounting:

* ``S`` stages each hold a contiguous slice of the encoder (plus the
  embedding on stage 0 and the output head on stage ``S-1``);
* the global batch is split into ``M`` micro-batches streamed through the
  stages; with forward and backward both pipelined, the bubble (idle)
  fraction is ``(S - 1) / (S - 1 + M)``;
* each stage boundary moves one activation tensor per micro-batch forward
  and one gradient back;
* the optimizer runs once per iteration on each stage's parameter slice.
"""

from __future__ import annotations

from repro.config import BertConfig, TrainingConfig
from repro.distributed.network import LinkSpec
from repro.distributed.timeline import DeviceTimeline
from repro.hw.device import DeviceModel
from repro.ops.base import Component
from repro.profiler.profiler import profile_trace
from repro.trace.bert_trace import build_iteration_trace


def pipeline_bubble_fraction(stages: int, micro_batches: int) -> float:
    """Idle fraction of a synchronous pipeline."""
    if stages < 1 or micro_batches < 1:
        raise ValueError("stages and micro_batches must be >= 1")
    return (stages - 1) / (stages - 1 + micro_batches)


def pipeline_timeline(model: BertConfig, training: TrainingConfig,
                      device: DeviceModel, link: LinkSpec, *,
                      stages: int, micro_batches: int,
                      label: str | None = None) -> DeviceTimeline:
    """Per-device iteration breakdown under ``stages``-way pipelining.

    Reported for the steady-state (deepest-loaded) stage: encoder compute
    and optimizer scale by ``1/stages``; the pipeline bubble is charged as
    idle time in its own bucket; activation transfers between stages are
    pipelined with compute and only their unhidden remainder is exposed.

    Args:
        training: the *per-iteration* batch; it is split into
            ``micro_batches`` pipeline slices, so it must divide evenly.
    """
    if model.num_layers % stages:
        raise ValueError(f"{stages} stages do not divide "
                         f"{model.num_layers} layers")
    if training.batch_size % micro_batches:
        raise ValueError("micro_batches must divide the batch size")

    profile = profile_trace(
        build_iteration_trace(model, training).kernels, device)

    encoder = profile.time_of(component=Component.TRANSFORMER)
    embedding = profile.time_of(component=Component.EMBEDDING)
    output = profile.time_of(component=Component.OUTPUT)
    optimizer = profile.time_of(component=Component.OPTIMIZER)

    per_stage_encoder = encoder / stages
    # The last stage also runs the output head; report that stage.
    stage_compute = per_stage_encoder + output
    bubble = pipeline_bubble_fraction(stages, micro_batches)
    idle = stage_compute * bubble / (1.0 - bubble)

    # Boundary traffic: activations forward + gradients backward, once per
    # micro-batch, for this stage's upstream boundary.
    activation_bytes = (training.tokens_per_iteration // micro_batches
                        * model.d_model
                        * training.precision.activation_bytes)
    per_transfer = link.transfer_time(activation_bytes)
    comm_total = 2 * micro_batches * per_transfer
    micro_compute = stage_compute / micro_batches
    exposed_comm = max(0.0, per_transfer - micro_compute) * 2 * micro_batches

    buckets = {
        "transformer": per_stage_encoder,
        "output": output,
        "embedding": embedding if stages == 1 else 0.0,
        "optimizer": optimizer / stages,
        "communication": exposed_comm if stages > 1 else 0.0,
        "pipeline_bubble": idle if stages > 1 else 0.0,
    }
    del comm_total  # diagnostic only; exposed remainder is what counts
    return DeviceTimeline(
        label=label or (f"PP {stages}-stage, M={micro_batches}, "
                        f"B={training.batch_size}"),
        devices=stages, per_device_batch=training.batch_size,
        buckets=buckets)


def best_micro_batch_count(model: BertConfig, training: TrainingConfig,
                           device: DeviceModel, link: LinkSpec,
                           stages: int, candidates=(1, 2, 4, 8, 16, 32)
                           ) -> tuple[int, DeviceTimeline]:
    """Pick the micro-batch count minimizing per-iteration time.

    More micro-batches shrink the bubble but shrink per-micro-batch
    compute below the boundary transfer time; the optimum balances both.
    """
    best: tuple[int, DeviceTimeline] | None = None
    for micro in candidates:
        if training.batch_size % micro:
            continue
        timeline = pipeline_timeline(model, training, device, link,
                                     stages=stages, micro_batches=micro)
        if best is None or timeline.total < best[1].total:
            best = (micro, timeline)
    if best is None:
        raise ValueError("no candidate micro-batch count divides the batch")
    return best
