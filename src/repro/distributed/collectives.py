"""Collective-communication cost models.

Ring AllReduce (Gibiansky [28], the algorithm the paper's DP model uses):
each of ``D`` devices sends and receives ``2 * (D-1) / D`` of the payload
across ``2 * (D-1)`` pipeline steps (reduce-scatter + all-gather).
"""

from __future__ import annotations

from repro.distributed.network import LinkSpec


def ring_allreduce_time(n_bytes: int, devices: int, link: LinkSpec) -> float:
    """Ring AllReduce completion time.

    Args:
        n_bytes: payload size per device (the gradient tensor size).
        devices: ring size ``D``.
        link: per-hop link spec.

    Returns:
        Seconds until every device holds the reduced payload.  One device
        is a no-op.
    """
    if devices < 1:
        raise ValueError("devices must be >= 1")
    if n_bytes < 0:
        raise ValueError("n_bytes must be non-negative")
    if devices == 1 or n_bytes == 0:
        return 0.0
    steps = 2 * (devices - 1)
    chunk = n_bytes / devices
    return steps * (link.latency_s + chunk / link.bandwidth)


def allgather_time(n_bytes: int, devices: int, link: LinkSpec) -> float:
    """Ring AllGather of ``n_bytes`` per device."""
    if devices < 1:
        raise ValueError("devices must be >= 1")
    if devices == 1 or n_bytes == 0:
        return 0.0
    steps = devices - 1
    return steps * (link.latency_s + n_bytes / link.bandwidth)


def broadcast_time(n_bytes: int, devices: int, link: LinkSpec) -> float:
    """Pipelined ring broadcast."""
    if devices < 1:
        raise ValueError("devices must be >= 1")
    if devices == 1 or n_bytes == 0:
        return 0.0
    return (devices - 1) * link.latency_s + n_bytes / link.bandwidth
