"""Data-parallel training model (Sec. 5.1, "Modeling Data Parallelism").

Every device holds a model replica and computes a full iteration on its
mini-batch; gradients are ring-AllReduced each iteration.  Because each
layer's gradients are ready as soon as its backward completes, their
communication can overlap the backprop of earlier layers — modeled, as in
the paper, by pipelining layer backward compute against per-layer
AllReduce, so only the un-hidden remainder is exposed.
"""

from __future__ import annotations

from repro.config import BertConfig, TrainingConfig
from repro.distributed.collectives import ring_allreduce_time
from repro.distributed.network import LinkSpec
from repro.distributed.timeline import DeviceTimeline, compute_buckets
from repro.hw.device import DeviceModel
from repro.ops.base import Component, Phase
from repro.profiler.profiler import Profile, profile_trace
from repro.trace.bert_trace import build_iteration_trace
from repro.trace.parameters import bert_parameter_inventory, group_by_layer


def _gradient_bytes_by_group(model: BertConfig,
                             training: TrainingConfig) -> list[tuple[str, int]]:
    """(group name, gradient bytes) in backprop completion order.

    Backprop finishes the output head first, then encoder layers from last
    to first, then the embeddings — the order their gradients become
    available for communication.
    """
    grad_bytes = training.precision.activation_bytes
    groups = group_by_layer(bert_parameter_inventory(model))
    ordered: list[tuple[str, int]] = []

    def bytes_of(key: str) -> int:
        return sum(t.n_elements for t in groups[key]) * grad_bytes

    ordered.append(("output", bytes_of("output")))
    for layer in reversed(range(model.num_layers)):
        key = f"encoder.{layer}"
        ordered.append((key, bytes_of(key)))
    ordered.append(("embedding", bytes_of("embedding")))
    return ordered


def _backward_compute_after(profile: Profile,
                            model: BertConfig) -> dict[str, float]:
    """Backward compute time that *follows* each group's gradient readiness.

    For group ``encoder.L`` this is the backward time of layers L-1..0 plus
    the embedding backward — the window available to hide L's AllReduce.
    """
    layer_bwd = {
        layer: profile.time_where(
            lambda k, layer=layer: k.phase is Phase.BACKWARD
            and k.layer_index == layer)
        for layer in range(model.num_layers)
    }
    embedding_bwd = profile.time_where(
        lambda k: k.phase is Phase.BACKWARD
        and k.component is Component.EMBEDDING)
    encoder_bwd_total = sum(layer_bwd.values())

    window: dict[str, float] = {
        "output": encoder_bwd_total + embedding_bwd}
    remaining = encoder_bwd_total
    for layer in reversed(range(model.num_layers)):
        remaining -= layer_bwd[layer]
        window[f"encoder.{layer}"] = remaining + embedding_bwd
    window["embedding"] = 0.0
    return window


def exposed_dp_communication(model: BertConfig, training: TrainingConfig,
                             profile: Profile, link: LinkSpec,
                             devices: int, overlap: bool) -> float:
    """Exposed (un-hidden) gradient-communication time per iteration.

    With overlap, each group's AllReduce is pipelined behind the remaining
    backward compute: the exposed time is how far the communication stream
    runs past the end of backprop.  Without overlap, all gradients are
    reduced after backprop completes and the full AllReduce time is
    exposed (the D1 configuration of Fig. 11).
    """
    if devices < 1:
        raise ValueError("devices must be >= 1")
    if devices == 1:
        return 0.0
    groups = _gradient_bytes_by_group(model, training)
    if not overlap:
        total_bytes = sum(b for _, b in groups)
        return ring_allreduce_time(total_bytes, devices, link)

    window = _backward_compute_after(profile, model)
    # Pipeline: communication of group g may start once its gradients are
    # ready and the previous AllReduce finished; compute keeps running
    # underneath.  Track both streams on a shared clock.
    compute_clock = 0.0
    comm_clock = 0.0
    total_window = window["output"]
    for name, n_bytes in groups:
        # Gradients of `name` are ready once backprop has consumed the
        # compute that precedes them.
        ready_at = total_window - window[name]
        compute_clock = max(compute_clock, ready_at)
        comm_clock = max(comm_clock, compute_clock)
        comm_clock += ring_allreduce_time(n_bytes, devices, link)
    backward_end = total_window
    return max(0.0, comm_clock - backward_end)


def data_parallel_timeline(model: BertConfig, training: TrainingConfig,
                           device: DeviceModel, link: LinkSpec,
                           devices: int, *, overlap: bool = True,
                           label: str | None = None) -> DeviceTimeline:
    """Per-GPU iteration breakdown under data parallelism.

    The compute profile equals single-device training (the model is
    replicated); only exposed AllReduce time is added.
    """
    trace = build_iteration_trace(model, training)
    profile = profile_trace(trace, device)
    buckets = compute_buckets(profile)
    buckets["communication"] = exposed_dp_communication(
        model, training, profile, link, devices, overlap)
    if label is None:
        tag = "w/ overlap" if overlap else "w/o overlap"
        label = f"DP x{devices}, B={training.batch_size}, {tag}"
    return DeviceTimeline(label=label, devices=devices,
                          per_device_batch=training.batch_size,
                          buckets=buckets)


def single_device_timeline(model: BertConfig, training: TrainingConfig,
                           device: DeviceModel,
                           label: str | None = None) -> DeviceTimeline:
    """Baseline S1: one device, no communication."""
    trace = build_iteration_trace(model, training)
    profile = profile_trace(trace, device)
    return DeviceTimeline(
        label=label or f"single, B={training.batch_size}",
        devices=1, per_device_batch=training.batch_size,
        buckets=compute_buckets(profile))
