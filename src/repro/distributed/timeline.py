"""Per-device execution timeline shared by the DP and TS models (Fig. 11)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.ops.base import Component
from repro.profiler.profiler import Profile

#: Bucket display order of the Fig. 11 bars.
BUCKET_ORDER = ("transformer", "dr_rc_ln_replicated", "output", "embedding",
                "optimizer", "communication")


@dataclass(frozen=True)
class DeviceTimeline:
    """One device's iteration breakdown in a distributed configuration.

    Attributes:
        label: configuration label (e.g. ``"D2 (DP, B=16, overlap)"``).
        devices: total devices participating.
        per_device_batch: mini-batch ``B`` each device processes.
        buckets: seconds per bucket; ``communication`` is *exposed* (not
            overlapped) time only.
    """

    label: str
    devices: int
    per_device_batch: int
    buckets: dict[str, float]

    @property
    def total(self) -> float:
        return sum(self.buckets.values())

    def fraction(self, bucket: str) -> float:
        """Share of iteration time in ``bucket``."""
        total = self.total
        return self.buckets.get(bucket, 0.0) / total if total else 0.0

    @property
    def communication_fraction(self) -> float:
        return self.fraction("communication")

    @property
    def optimizer_fraction(self) -> float:
        return self.fraction("optimizer")


def compute_buckets(profile: Profile) -> dict[str, float]:
    """Component-level time buckets of a single-device profile."""
    return {
        "transformer": profile.time_of(component=Component.TRANSFORMER),
        "output": profile.time_of(component=Component.OUTPUT),
        "embedding": profile.time_of(component=Component.EMBEDDING),
        "optimizer": profile.time_of(component=Component.OPTIMIZER),
        "communication": 0.0,
    }
