"""Parallelism planner: search (TS x PP x DP) factorizations of a cluster.

Given a device count and the intra-/inter-node links, enumerates the ways
to factor it into tensor-slicing ways x pipeline stages x data-parallel
replicas, prices each with the corresponding models, discards layouts
whose per-device footprint exceeds memory, and ranks by cluster
throughput.  The per-layout cost composition follows the models' own
assumptions:

* tensor slicing divides encoder compute and optimizer state by its ways
  and adds serialized activation AllReduces (fast intra-node link);
* pipelining divides the (possibly sliced) stage compute further and adds
  bubble + boundary-transfer time;
* data parallelism replicates and adds mostly-overlapped gradient
  AllReduce exposure on the slow link.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import BertConfig, TrainingConfig
from repro.distributed.collectives import ring_allreduce_time
from repro.distributed.network import LinkSpec
from repro.distributed.pipeline import pipeline_bubble_fraction
from repro.distributed.tensor_slicing import (
    build_sliced_iteration_trace, sliced_parameter_inventory,
    tensor_slicing_communication)
from repro.hw.device import DeviceModel
from repro.memoryplan.footprint import training_footprint
from repro.ops.base import Component
from repro.profiler.profiler import profile_trace
from repro.report.tables import format_table


@dataclass(frozen=True)
class ParallelLayout:
    """One evaluated cluster layout.

    Attributes:
        ts_ways / pp_stages / dp_replicas: the factorization.
        iteration_s: per-iteration time (None if the layout is infeasible).
        fits_memory: per-device footprint within capacity.
        feasible: divisibility and memory constraints all met.
    """

    ts_ways: int
    pp_stages: int
    dp_replicas: int
    iteration_s: float | None
    fits_memory: bool
    feasible: bool

    @property
    def devices(self) -> int:
        return self.ts_ways * self.pp_stages * self.dp_replicas

    @property
    def label(self) -> str:
        return (f"TS{self.ts_ways} x PP{self.pp_stages} x "
                f"DP{self.dp_replicas}")

    def throughput(self, tokens_per_iteration: int) -> float | None:
        """Cluster tokens/s (global batch = per-device batch x replicas)."""
        if self.iteration_s is None:
            return None
        return tokens_per_iteration * self.dp_replicas / self.iteration_s


def _factorizations(devices: int, max_ts: int = 8,
                    max_pp: int = 8) -> list[tuple[int, int, int]]:
    """All (ts, pp, dp) triples with ts*pp*dp == devices."""
    triples = []
    for ts in (1, 2, 4, 8):
        if ts > max_ts or devices % ts:
            continue
        rest = devices // ts
        for pp in (1, 2, 4, 8):
            if pp > max_pp or rest % pp:
                continue
            triples.append((ts, pp, rest // pp))
    return triples


def evaluate_layout(model: BertConfig, training: TrainingConfig,
                    device: DeviceModel, *, ts_ways: int, pp_stages: int,
                    dp_replicas: int, intra_link: LinkSpec,
                    inter_link: LinkSpec,
                    micro_batches: int = 8) -> ParallelLayout:
    """Price one (TS, PP, DP) layout."""
    divisible = (model.num_heads % ts_ways == 0
                 and model.d_ff % ts_ways == 0
                 and model.num_layers % pp_stages == 0
                 and training.batch_size % micro_batches == 0)
    if not divisible:
        return ParallelLayout(ts_ways=ts_ways, pp_stages=pp_stages,
                              dp_replicas=dp_replicas, iteration_s=None,
                              fits_memory=False, feasible=False)

    # Per-device compute from the sliced trace, then split across stages.
    trace = build_sliced_iteration_trace(model, training, ts_ways)
    profile = profile_trace(trace, device)
    encoder = profile.time_of(component=Component.TRANSFORMER)
    other = profile.total_time - encoder
    stage_compute = encoder / pp_stages + other

    # TS activation AllReduces (serialized) for this device's layers.
    ts_comm = tensor_slicing_communication(model, training, intra_link,
                                           ts_ways) / pp_stages

    # Pipeline bubble + boundary transfers.
    bubble = pipeline_bubble_fraction(pp_stages, micro_batches)
    pipeline_idle = (stage_compute * bubble / (1.0 - bubble)
                     if pp_stages > 1 else 0.0)
    boundary = 0.0
    if pp_stages > 1:
        activation_bytes = (training.tokens_per_iteration // micro_batches
                            * model.d_model
                            * training.precision.activation_bytes)
        per_transfer = intra_link.transfer_time(activation_bytes)
        micro_compute = stage_compute / micro_batches
        boundary = max(0.0, per_transfer - micro_compute) * 2 * micro_batches

    # DP gradient AllReduce (mostly overlapped; expose a conservative 10%).
    dp_exposed = 0.0
    if dp_replicas > 1:
        grad_bytes = (sum(t.n_elements for t in
                          sliced_parameter_inventory(model, ts_ways))
                      // pp_stages
                      * training.precision.activation_bytes)
        dp_exposed = 0.1 * ring_allreduce_time(grad_bytes, dp_replicas,
                                               inter_link)

    iteration = stage_compute + ts_comm + pipeline_idle + boundary + dp_exposed

    # Memory: weights/optimizer shard by TS and PP; activations by PP only.
    footprint = training_footprint(model, training)
    shard = ts_ways * pp_stages
    per_device = (footprint.weights / shard + footprint.gradients / shard
                  + footprint.optimizer_state / shard
                  + footprint.activations / pp_stages
                  + footprint.workspace)
    fits = per_device <= device.hbm_capacity_gb * 1e9

    return ParallelLayout(ts_ways=ts_ways, pp_stages=pp_stages,
                          dp_replicas=dp_replicas,
                          iteration_s=iteration, fits_memory=fits,
                          feasible=fits)


def plan(model: BertConfig, training: TrainingConfig, device: DeviceModel,
         *, devices: int, intra_link: LinkSpec, inter_link: LinkSpec,
         micro_batches: int = 8) -> list[ParallelLayout]:
    """Evaluate every factorization of ``devices``; best throughput first."""
    if devices < 1:
        raise ValueError("devices must be >= 1")
    layouts = [evaluate_layout(model, training, device, ts_ways=ts,
                               pp_stages=pp, dp_replicas=dp,
                               intra_link=intra_link, inter_link=inter_link,
                               micro_batches=micro_batches)
               for ts, pp, dp in _factorizations(devices)]
    tokens = training.tokens_per_iteration

    def key(layout: ParallelLayout) -> float:
        throughput = layout.throughput(tokens)
        return -(throughput or 0.0) if layout.feasible else 1.0
    return sorted(layouts, key=key)


def render_plan(layouts: list[ParallelLayout],
                tokens_per_iteration: int) -> str:
    rows = []
    for layout in layouts:
        if layout.feasible:
            throughput = layout.throughput(tokens_per_iteration)
            rows.append((layout.label,
                         f"{layout.iteration_s * 1e3:.0f} ms",
                         f"{throughput:,.0f} tok/s", "yes"))
        else:
            reason = ("memory" if layout.iteration_s is not None
                      else "divisibility")
            rows.append((layout.label, "-", f"infeasible ({reason})", "no"))
    return format_table(("layout", "iteration", "cluster throughput",
                         "feasible"), rows)
