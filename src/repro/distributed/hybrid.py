"""Hybrid data-parallel x tensor-slicing training (Sec. 2.5).

``M``-way tensor slicing inside each node, replicated across ``D`` data-
parallel groups: ``M * D`` devices total.  Per-device compute and the
serialized TS AllReduces come from the tensor-slicing model; on top, each
device data-parallel-reduces its *shard's* gradients across the ``D``
replicas (overlappable, as in plain DP).
"""

from __future__ import annotations

from repro.config import BertConfig, TrainingConfig
from repro.distributed.collectives import ring_allreduce_time
from repro.distributed.network import LinkSpec
from repro.distributed.tensor_slicing import (sliced_parameter_inventory,
                                              tensor_slicing_timeline)
from repro.distributed.timeline import DeviceTimeline
from repro.hw.device import DeviceModel


def hybrid_timeline(model: BertConfig, training: TrainingConfig,
                    device: DeviceModel, *, ts_link: LinkSpec,
                    dp_link: LinkSpec, ts_ways: int, dp_replicas: int,
                    overlap_fraction: float = 0.9,
                    label: str | None = None) -> DeviceTimeline:
    """Per-GPU breakdown of hybrid ``ts_ways x dp_replicas`` training.

    Args:
        ts_link: intra-group (tensor-slicing) link — usually the fast one.
        dp_link: cross-group (data-parallel) link.
        overlap_fraction: fraction of DP gradient communication hidden
            behind backprop (the per-layer pipeline of the DP model,
            summarized as a coefficient here since the shard timeline
            interleaves with TS AllReduces).
    """
    if dp_replicas < 1:
        raise ValueError("dp_replicas must be >= 1")
    if not 0.0 <= overlap_fraction <= 1.0:
        raise ValueError("overlap_fraction must be in [0, 1]")
    base = tensor_slicing_timeline(model, training, device, ts_link, ts_ways)
    buckets = dict(base.buckets)

    if dp_replicas > 1:
        grad_bytes = sum(
            t.n_elements for t in sliced_parameter_inventory(model, ts_ways)
        ) * training.precision.activation_bytes
        dp_time = ring_allreduce_time(grad_bytes, dp_replicas, dp_link)
        buckets["communication"] += dp_time * (1.0 - overlap_fraction)

    devices = ts_ways * dp_replicas
    return DeviceTimeline(
        label=label or (f"hybrid TS{ts_ways} x DP{dp_replicas}, "
                        f"B={training.batch_size}"),
        devices=devices, per_device_batch=training.batch_size,
        buckets=buckets)
