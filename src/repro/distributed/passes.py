"""Distributed trace preparation as columnar passes.

:class:`OptimizerShardPass` rewrites a single-device iteration trace into
the per-replica trace of ZeRO-style optimizer-state partitioning
(:mod:`repro.distributed.zero`): each of ``D`` replicas updates only its
``1/D`` parameter shard, so every optimizer kernel's work shrinks by
``D`` — except the global gradient-norm reduction, which LAMB requires
over *all* layers' gradients before any update and which therefore stays
full-size on every replica.

Communication kernels are deliberately not inserted here: the wire cost of
the reduce-scatter/all-gather pair lives in
:mod:`repro.distributed.collectives` and is composed at the timeline
level, keeping device traces priceable by :mod:`repro.hw.timing` (which
rejects communication rows by design).
"""

from __future__ import annotations

import numpy as np

from repro.ops.base import Component
from repro.trace.kernel_table import KernelTable
from repro.trace.passes import PassContext, TracePass


class OptimizerShardPass(TracePass):
    """Shrink optimizer kernels to one replica's ``1/D`` parameter shard.

    Ceil-divides FLOPs, bytes, and element counts of every optimizer
    kernel by ``devices``, except grad-norm kernels (the un-shardable
    global normalization LAMB serializes on).
    """

    name = "shard_optimizer"

    def __init__(self, devices: int = 8):
        if devices < 1:
            raise ValueError("devices must be >= 1")
        self.devices = devices

    def params(self) -> dict:
        return {"devices": self.devices}

    def apply(self, table: KernelTable, ctx: PassContext) -> KernelTable:
        if self.devices == 1:
            return table
        is_norm = np.array(["grad_norm" in name for name in table.names],
                           dtype=bool)[table.name_code]
        rows = np.flatnonzero(
            table.mask(component=Component.OPTIMIZER) & ~is_norm)
        if not len(rows):
            return table

        def shard(column: np.ndarray) -> np.ndarray:
            # Ceil-divide, preserving exact zeros.
            return (column[rows] + self.devices - 1) // self.devices

        return table.rewrite_rows(
            rows, provenance=self.name,
            flops=shard(table.flops),
            bytes_read=shard(table.bytes_read),
            bytes_written=shard(table.bytes_written),
            n_elements=shard(table.n_elements))
