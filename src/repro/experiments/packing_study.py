"""Extension study: what Phase-2 sequence packing saves.

Phase-2 trains at n=512 but natural pairs are much shorter; padding them
to length wastes the quadratically-priced attention.  This study samples
pair-length distributions, packs them with first-fit decreasing
(:mod:`repro.data.packing`), and prices the resulting iteration count
against the one-pair-per-sequence baseline — sequences avoided translate
directly into iterations avoided at fixed shapes (Sec. 3.1.4).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import BERT_LARGE, BertConfig, Precision, TrainingConfig
from repro.data.packing import SequencePacker
from repro.data.synthetic import MarkovCorpus, Vocab
from repro.experiments.common import default_device, run_point
from repro.hw.device import DeviceModel
from repro.report.tables import format_percent, format_table


@dataclass(frozen=True)
class PackingRow:
    """Packing outcome for one pair-length regime.

    Attributes:
        label: pair-length range description.
        segments: pairs sampled.
        sequences_unpacked / sequences_packed: fixed-shape sequences needed.
        mean_efficiency: token occupancy of the packed sequences.
        compute_saved: fraction of per-epoch iteration time avoided.
    """

    label: str
    segments: int
    sequences_unpacked: int
    sequences_packed: int
    mean_efficiency: float

    @property
    def compute_saved(self) -> float:
        return 1.0 - self.sequences_packed / self.sequences_unpacked


def run(model: BertConfig = BERT_LARGE, seq_len: int = 512,
        segments: int = 512,
        regimes: tuple[tuple[str, int, int], ...] = (
            ("short pairs (32-96)", 32, 96),
            ("medium pairs (64-192)", 64, 192),
            ("long pairs (128-384)", 128, 384),
        ),
        device: DeviceModel | None = None) -> list[PackingRow]:
    """Pack each regime's pairs and count sequences needed."""
    del device  # shapes are fixed; savings are shape-count ratios
    vocab = Vocab(size=model.vocab_size)
    rows = []
    for label, min_pair, max_pair in regimes:
        packer = SequencePacker(vocab, MarkovCorpus(vocab, seed=0),
                                seq_len=seq_len, min_pair=min_pair,
                                max_pair=max_pair, seed=1)
        packed = packer.pack(segments)
        efficiency = sum(p.efficiency for p in packed) / len(packed)
        rows.append(PackingRow(
            label=label, segments=segments,
            sequences_unpacked=segments,
            sequences_packed=len(packed),
            mean_efficiency=efficiency))
    return rows


def iteration_cost_context(model: BertConfig = BERT_LARGE,
                           device: DeviceModel | None = None) -> float:
    """Phase-2 per-sequence iteration cost (seconds) for scale context."""
    training = TrainingConfig(batch_size=4, seq_len=512,
                              precision=Precision.FP32)
    _, profile = run_point(model, training, device or default_device())
    return profile.total_time / training.batch_size


def render(rows: list[PackingRow]) -> str:
    per_sequence = iteration_cost_context()
    table = [(row.label, row.segments, row.sequences_packed,
              format_percent(row.mean_efficiency),
              format_percent(row.compute_saved),
              f"{row.compute_saved * row.segments * per_sequence:.1f} s")
             for row in rows]
    return format_table(
        ("pair regime", "pairs", "packed sequences", "occupancy",
         "compute saved", f"saved per {rows[0].segments} pairs"), table)
