"""Robustness study: which conclusions survive device-model perturbation.

The device model's efficiency constants are calibrated estimates, so an
honest reproduction must show the paper's *conclusions* do not hinge on
their exact values.  This study perturbs each knob (bandwidth ceilings,
GEMM achievable fractions, launch overhead) by substantial factors and
re-checks the architecture-relevant claims on every perturbed device:

1. the Transformer layers dominate the iteration;
2. LAMB's share grows as per-iteration tokens shrink;
3. mixed precision shrinks the GEMM share;
4. attention batched GEMMs stay memory-bound while FC GEMMs stay
   compute-bound;
5. higher n grows the attention-ops share at equal tokens.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from repro.config import BERT_LARGE, BertConfig, Precision, training_point
from repro.hw.calibration import get_knobs, set_knobs
from repro.hw.device import DeviceModel, mi100
from repro.hw.gemm_model import gemm_time
from repro.ops.base import DType, Region
from repro.profiler.breakdown import region_breakdown, summarize
from repro.profiler.profiler import profile_trace
from repro.report.tables import format_table
from repro.trace.bert_trace import (build_iteration_trace,
                                    transformer_gemm_shapes)

#: Perturbations applied one knob at a time: (label, knob or field, factor).
PERTURBATIONS: tuple[tuple[str, str, float], ...] = (
    ("streaming bw -25%", "streaming_bw", 0.75),
    ("streaming bw +25%", "streaming_bw", 1.25),
    ("multi-tensor bw -30%", "multi_tensor_bw", 0.70),
    ("gemm mem bw +30%", "gemm_mem_bw", 1.30),
    ("fp32 gemm eff -20%", "fp32_gemm_fraction", 0.80),
    ("fp16 gemm eff +20%", "fp16_gemm_fraction", 1.20),
    ("launch overhead x2", "kernel_launch_overhead_s", 2.0),
    ("launch overhead x0.5", "kernel_launch_overhead_s", 0.5),
)

CLAIMS = ("transformer_dominates", "lamb_grows_small_batch",
          "mp_shrinks_gemm_share", "attention_bgemm_memory_bound",
          "attention_grows_with_n")


@dataclass(frozen=True)
class RobustnessRow:
    """Claim checks on one perturbed device.

    Attributes:
        label: perturbation label (``"baseline"`` for the shipped model).
        results: claim name -> held?
    """

    label: str
    results: dict[str, bool]

    @property
    def all_hold(self) -> bool:
        return all(self.results.values())


def _perturbed_device(base: DeviceModel, knob: str,
                      factor: float) -> DeviceModel:
    if knob == "kernel_launch_overhead_s":
        return dataclasses.replace(
            base, kernel_launch_overhead_s=base.kernel_launch_overhead_s
            * factor)
    knobs = get_knobs(base)
    knobs[knob] = min(1.0, knobs[knob] * factor)
    return set_knobs(base, knobs)


def _check_claims(device: DeviceModel, model: BertConfig) -> dict[str, bool]:
    b32 = training_point(1, 32, Precision.FP32)
    b4 = training_point(1, 4, Precision.FP32)
    b32_mp = training_point(1, 32, Precision.MIXED)
    ph2 = training_point(2, 4, Precision.FP32)
    ph1_b16 = training_point(1, 16, Precision.FP32)

    def stats(training):
        trace = build_iteration_trace(model, training)
        return summarize(profile_trace(trace, device))

    def attention_ops_share(training):
        trace = build_iteration_trace(model, training)
        regions = region_breakdown(profile_trace(trace, device))
        return (regions[Region.ATTENTION_BGEMM].fraction
                + regions[Region.ATTENTION_SMDSM].fraction)

    s32, s4, s_mp = stats(b32), stats(b4), stats(b32_mp)
    shapes = transformer_gemm_shapes(model, b32)
    score_bound = gemm_time(shapes["attn_score"]["fwd"], DType.FP32,
                            device).memory_bound
    fc_bound = gemm_time(shapes["fc1"]["fwd"], DType.FP32,
                         device).memory_bound
    return {
        "transformer_dominates": s32["transformer"] > 0.6,
        "lamb_grows_small_batch": s4["optimizer"] > 2 * s32["optimizer"],
        "mp_shrinks_gemm_share": s_mp["gemm"] < s32["gemm"] - 0.05,
        "attention_bgemm_memory_bound": score_bound and not fc_bound,
        "attention_grows_with_n": (attention_ops_share(ph2)
                                   > 1.5 * attention_ops_share(ph1_b16)),
    }


def run(model: BertConfig = BERT_LARGE) -> list[RobustnessRow]:
    """Check the claims on the shipped and every perturbed device."""
    base = mi100()
    rows = [RobustnessRow("baseline", _check_claims(base, model))]
    for label, knob, factor in PERTURBATIONS:
        device = _perturbed_device(base, knob, factor)
        rows.append(RobustnessRow(label, _check_claims(device, model)))
    return rows


def render(rows: list[RobustnessRow]) -> str:
    table = []
    for row in rows:
        table.append((row.label,
                      *("yes" if row.results[c] else "NO" for c in CLAIMS)))
    short = ("transformer", "LAMB@B4", "MP gemm", "bgemm bound", "attn vs n")
    return format_table(("perturbation", *short), table)
