"""Extension study: ZeRO-style optimizer partitioning under data
parallelism (the paper's Sec. 5.2 aside on [69]).

Quantifies the trade the paper gestures at: sharding optimizer state
across replicas shrinks the LAMB bucket ~D-fold and frees gigabytes of
per-device state, but the post-update parameter all-gather cannot overlap
backprop and LAMB's global grad-norm still serializes the update.
"""

from __future__ import annotations

from repro.config import (BERT_LARGE, BertConfig, Precision, TrainingConfig,
                          training_point)
from repro.distributed.data_parallel import data_parallel_timeline
from repro.distributed.network import PCIE4, LinkSpec
from repro.distributed.timeline import DeviceTimeline
from repro.distributed.zero import zero_dp_timeline, zero_memory_per_device
from repro.experiments.common import default_device
from repro.hw.device import DeviceModel
from repro.report.tables import format_table


def run(model: BertConfig = BERT_LARGE,
        training: TrainingConfig | None = None,
        device: DeviceModel | None = None,
        link: LinkSpec = PCIE4,
        device_counts: tuple[int, ...] = (8, 32, 128)
        ) -> list[tuple[DeviceTimeline, DeviceTimeline, int]]:
    """(plain-DP timeline, ZeRO-DP timeline, ZeRO state bytes) per scale."""
    training = training or training_point(1, 16, Precision.FP32)
    device = device or default_device()
    rows = []
    for devices in device_counts:
        plain = data_parallel_timeline(model, training, device, link,
                                       devices, overlap=True)
        zero = zero_dp_timeline(model, training, device, link, devices)
        rows.append((plain, zero, zero_memory_per_device(model, devices)))
    return rows


def render(rows) -> str:
    table = []
    for plain, zero, state_bytes in rows:
        table.append((
            f"x{plain.devices}",
            f"{plain.total * 1e3:.0f} ms / {plain.optimizer_fraction:.1%}",
            f"{zero.total * 1e3:.0f} ms / {zero.optimizer_fraction:.1%}",
            f"{zero.communication_fraction:.1%}",
            f"{state_bytes / 1e9:.3f} GB",
        ))
    return format_table(
        ("replicas", "DP: iter / LAMB", "ZeRO: iter / LAMB",
         "ZeRO comm", "opt state per device"), table)
