"""Extension study: future-Transformer scaling trends (the intro's models).

The paper motivates itself with the model-scale explosion — BERT's 340M
parameters to Megatron-LM's 3.9B and beyond — and argues its sweep
methodology "captures future Transformer trends" (Secs. 1, 3.3).  This
study runs that projection: BERT-structured models from Base scale to
multi-billion-parameter widths, tracking the quantities the takeaways say
should move (LAMB share, linear+FC GEMM share, memory-bound share) plus
the per-device memory wall that forces model parallelism.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import (BERT_BASE, BERT_LARGE, BertConfig, Precision,
                          TrainingConfig, training_point)
from repro.experiments.common import default_device
from repro.hw.device import DeviceModel
from repro.memoryplan.footprint import training_footprint
from repro.report.tables import format_percent, format_table

#: BERT-structured scale ladder up to Megatron-class widths.  Names cite
#: the intro's lineage; hyperparameters follow the published models'
#: (encoder-equivalent) shapes.
SCALE_LADDER: tuple[BertConfig, ...] = (
    BERT_BASE,
    BERT_LARGE,
    BertConfig(num_layers=24, d_model=2048, num_heads=32, d_ff=8192,
               name="megatron-1.2b"),
    BertConfig(num_layers=40, d_model=2560, num_heads=40, d_ff=10240,
               name="megatron-3.9b"),
    BertConfig(num_layers=32, d_model=4096, num_heads=32, d_ff=16384,
               name="gpt3-6.7b-like"),
)


@dataclass(frozen=True)
class ScalingRow:
    """One model scale.

    Attributes:
        name: model label.
        parameters: trainable parameter count.
        lamb / linear_fc / non_gemm: runtime fractions at the reference
            operating point.
        footprint_gb: single-device training footprint at that point.
        fits_32gb: whether single-device training is even possible.
    """

    name: str
    parameters: int
    lamb: float
    linear_fc: float
    non_gemm: float
    footprint_gb: float
    fits_32gb: bool


def run(configs: tuple[BertConfig, ...] = SCALE_LADDER,
        training: TrainingConfig | None = None,
        device: DeviceModel | None = None) -> list[ScalingRow]:
    """Profile the scale ladder at a fixed small-batch operating point.

    A small batch keeps the biggest models addressable by the footprint
    model and matches Fig. 9's regime where the LAMB trend is strongest.
    """
    from repro.experiments.fig4 import row_from_profile
    from repro.grid.engine import profile_grid

    training = training or training_point(1, 8, Precision.FP32)
    device = device or default_device()
    profile = profile_grid([(config, training) for config in configs],
                           device)
    rows = []
    for i, config in enumerate(configs):
        regions = row_from_profile(training.label, profile.point_profile(i))
        footprint = training_footprint(config, training)
        rows.append(ScalingRow(
            name=config.name,
            parameters=config.total_parameters(),
            lamb=regions.optimizer,
            linear_fc=regions.linear_and_fc,
            non_gemm=regions.non_gemm,
            footprint_gb=footprint.total / 1e9,
            fits_32gb=footprint.fits(32.0),
        ))
    return rows


def render(rows: list[ScalingRow]) -> str:
    table = [(row.name, f"{row.parameters / 1e6:,.0f}M",
              format_percent(row.lamb), format_percent(row.linear_fc),
              format_percent(row.non_gemm),
              f"{row.footprint_gb:.0f} GB",
              "yes" if row.fits_32gb else "NO -> model parallel")
             for row in rows]
    return format_table(("model", "params", "LAMB", "linear+FC",
                         "non-GEMM", "footprint @B8", "fits 32 GB?"),
                        table)
