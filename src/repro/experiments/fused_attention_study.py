"""Extension study: kernel-fused attention vs. the eager pipeline.

Takes the paper's fusion story (Sec. 6.1) to the attention block's
logical endpoint: one fused kernel that never materializes the ``n x n``
score matrix.  For each sequence length, compares the eager
attention-operation kernels (batched GEMMs + scale/mask/softmax/dropout)
against the fused pair in time, kernel count, DRAM traffic and stashed
activation memory — the gains that grow quadratically with ``n``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import BERT_LARGE, BertConfig, Precision, TrainingConfig
from repro.experiments.common import default_device
from repro.hw.device import DeviceModel
from repro.hw.timing import trace_time
from repro.model.fused_attention import attention_memory_elements
from repro.ops.base import DType, Kernel, Region
from repro.ops.fused_attention import fused_attention_kernels
from repro.report.tables import format_table
from repro.trace.bert_trace import (attention_backward_kernels,
                                    attention_forward_kernels)


@dataclass(frozen=True)
class FusedAttentionRow:
    """Eager vs. fused attention block at one sequence length.

    Attributes:
        seq_len: sequence length ``n``.
        eager_s / fused_s: per-layer attention-op time.
        eager_kernels / fused_kernels: launch counts per layer.
        eager_bytes / fused_bytes: per-layer DRAM traffic.
        eager_stash / fused_stash: activation elements saved for backward.
    """

    seq_len: int
    eager_s: float
    fused_s: float
    eager_kernels: int
    fused_kernels: int
    eager_bytes: int
    fused_bytes: int
    eager_stash: int
    fused_stash: int

    @property
    def speedup(self) -> float:
        return self.eager_s / self.fused_s

    @property
    def traffic_ratio(self) -> float:
        return self.eager_bytes / self.fused_bytes

    @property
    def stash_ratio(self) -> float:
        return self.eager_stash / self.fused_stash


def _eager_attention_op_kernels(model: BertConfig,
                                training: TrainingConfig) -> list[Kernel]:
    """The eager kernels the fused kernel replaces: batched GEMMs plus the
    scale/mask/softmax/dropout stream (projections excluded)."""
    kernels = (attention_forward_kernels(model, training)
               + attention_backward_kernels(model, training))
    return [k for k in kernels
            if k.region in (Region.ATTENTION_BGEMM, Region.ATTENTION_SMDSM)]


def run(model: BertConfig = BERT_LARGE,
        seq_lens: tuple[int, ...] = (128, 512, 2048),
        tokens_budget: int = 4096,
        device: DeviceModel | None = None) -> list[FusedAttentionRow]:
    """Sweep sequence length at a fixed token budget."""
    device = device or default_device()
    rows = []
    for seq_len in seq_lens:
        batch = max(1, tokens_budget // seq_len)
        training = TrainingConfig(batch_size=batch, seq_len=seq_len,
                                  precision=Precision.FP32)
        batch_heads = batch * model.num_heads

        eager = _eager_attention_op_kernels(model, training)
        fused = fused_attention_kernels(
            seq_len=seq_len, d_head=model.d_head, batch_heads=batch_heads,
            dtype=DType.FP32)
        rows.append(FusedAttentionRow(
            seq_len=seq_len,
            eager_s=trace_time(eager, device),
            fused_s=trace_time(fused, device),
            eager_kernels=len(eager),
            fused_kernels=len(fused),
            eager_bytes=sum(k.bytes_total for k in eager),
            fused_bytes=sum(k.bytes_total for k in fused),
            eager_stash=attention_memory_elements(
                seq_len, model.d_head, model.num_heads, batch, fused=False),
            fused_stash=attention_memory_elements(
                seq_len, model.d_head, model.num_heads, batch, fused=True),
        ))
    return rows


def render(rows: list[FusedAttentionRow]) -> str:
    table = [(row.seq_len,
              f"{row.eager_s * 1e3:.2f} -> {row.fused_s * 1e3:.2f} ms",
              f"{row.speedup:.1f}x",
              f"{row.eager_kernels} -> {row.fused_kernels}",
              f"{row.traffic_ratio:.1f}x",
              f"{row.stash_ratio:.1f}x")
             for row in rows]
    return format_table(
        ("n", "attn-op time/layer", "speedup", "kernels",
         "traffic saved", "stash saved"), table)
