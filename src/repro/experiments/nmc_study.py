"""Sec. 6.2.1: near-memory compute for the LAMB optimizer.

Offloads the update phase to bank-level NMC across the Fig. 3 operating
points.  Paper bands: LAMB ~3.8x faster than an optimistic GPU baseline
(minimal traffic at full pin bandwidth); end-to-end training improvement
of 5-22% depending on how large LAMB's share is.
"""

from __future__ import annotations

from repro.config import BERT_LARGE, FIG3_POINTS, BertConfig, TrainingConfig
from repro.experiments.common import default_device
from repro.hw.device import DeviceModel
from repro.nmc.model import NmcConfig, hbm2_bank_nmc
from repro.nmc.offload import LambOffloadResult, evaluate_lamb_offload
from repro.report.tables import format_percent, format_table


def run(model: BertConfig = BERT_LARGE,
        points: tuple[TrainingConfig, ...] = FIG3_POINTS,
        device: DeviceModel | None = None,
        nmc: NmcConfig | None = None) -> list[LambOffloadResult]:
    """NMC offload results for every operating point."""
    device = device or default_device()
    nmc = nmc or hbm2_bank_nmc()
    return [evaluate_lamb_offload(model, training, device, nmc)
            for training in points]


def render(results: list[LambOffloadResult]) -> str:
    rows = [(r.label,
             f"{r.lamb_gpu_actual_s * 1e3:.1f}ms",
             f"{r.lamb_gpu_optimistic_s * 1e3:.1f}ms",
             f"{r.lamb_nmc_s * 1e3:.1f}ms",
             f"{r.lamb_speedup_vs_optimistic:.2f}x",
             format_percent(r.end_to_end_improvement))
            for r in results]
    return format_table(
        ("point", "LAMB (GPU)", "LAMB (optimistic)", "LAMB (NMC)",
         "speedup vs opt.", "end-to-end gain"), rows)
