"""Capstone study: the paper's Sec. 6 optimizations stacked.

The paper's conclusion calls for "holistic solutions": fuse the
memory-bound elementwise chains (Sec. 6.1.1), fuse attention's score
pipeline (the Sec. 6.1 endpoint), and move the optimizer to near-memory
compute (Sec. 6.2.1).  This study applies them cumulatively to one
training iteration and reports the waterfall — where the remaining time
goes after each step, and the compound speedup.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import (BERT_LARGE, BertConfig, Precision, TrainingConfig,
                          training_point)
from repro.experiments.common import default_device
from repro.fusion.attention_fusion import apply_fused_attention
from repro.fusion.passes import fuse_elementwise_chains
from repro.hw.device import DeviceModel
from repro.nmc.model import NmcConfig, hbm2_bank_nmc
from repro.ops.base import Component
from repro.profiler.profiler import profile_trace
from repro.report.tables import format_table


@dataclass(frozen=True)
class WaterfallStep:
    """One stage of the optimization waterfall.

    Attributes:
        name: which optimization was added.
        iteration_s: iteration time with everything up to here applied.
        kernels: kernel count at this stage.
    """

    name: str
    iteration_s: float
    kernels: int

    def speedup_vs(self, baseline: "WaterfallStep") -> float:
        return baseline.iteration_s / self.iteration_s


def run(model: BertConfig = BERT_LARGE,
        training: TrainingConfig | None = None,
        device: DeviceModel | None = None,
        nmc: NmcConfig | None = None) -> list[WaterfallStep]:
    """Apply the Sec. 6 optimizations cumulatively."""
    from repro.trace.bert_trace import build_iteration_trace

    training = training or training_point(1, 32, Precision.FP32)
    device = device or default_device()
    nmc = nmc or hbm2_bank_nmc()

    steps: list[WaterfallStep] = []
    trace = build_iteration_trace(model, training)
    profile = profile_trace(trace.kernels, device)
    steps.append(WaterfallStep("baseline (eager)", profile.total_time,
                               len(trace)))

    trace = fuse_elementwise_chains(trace)
    profile = profile_trace(trace.kernels, device)
    steps.append(WaterfallStep("+ elementwise-chain fusion",
                               profile.total_time, len(trace)))

    trace = apply_fused_attention(trace)
    profile = profile_trace(trace.kernels, device)
    steps.append(WaterfallStep("+ fused attention", profile.total_time,
                               len(trace)))

    # NMC offload of the optimizer: replace its GPU time with NMC time.
    optimizer_records = profile.records_where(
        lambda k: k.component is Component.OPTIMIZER)
    optimizer_time = sum(r.time_s for r in optimizer_records)
    nmc_time = nmc.execution_time(
        flops=sum(r.kernel.flops for r in optimizer_records),
        bytes_moved=sum(r.kernel.bytes_total for r in optimizer_records),
        command_groups=len(optimizer_records))
    steps.append(WaterfallStep(
        "+ LAMB on near-memory compute",
        profile.total_time - optimizer_time + nmc_time,
        len(trace)))
    return steps


def render(steps: list[WaterfallStep]) -> str:
    baseline = steps[0]
    rows = [(step.name, f"{step.iteration_s * 1e3:.1f} ms", step.kernels,
             f"{step.speedup_vs(baseline):.2f}x")
            for step in steps]
    return format_table(("stage", "iteration", "kernels",
                         "cumulative speedup"), rows)
