"""Capstone study: the paper's Sec. 6 optimizations stacked.

The paper's conclusion calls for "holistic solutions": fuse the
memory-bound elementwise chains (Sec. 6.1.1), fuse attention's score
pipeline (the Sec. 6.1 endpoint), and move the optimizer to near-memory
compute (Sec. 6.2.1).  This study applies them cumulatively to one
training iteration and reports the waterfall — where the remaining time
goes after each step, and the compound speedup.

Each stage is a :class:`~repro.trace.passes.PassManager` pipeline run
through :func:`~repro.experiments.common.run_point`, so stage results are
disk-cached under their pipeline signature and the rewrites stay columnar
end to end.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import (BERT_LARGE, BertConfig, Precision, TrainingConfig,
                          training_point)
from repro.experiments.common import default_device, run_point
from repro.fusion.attention_fusion import FusedAttentionPass
from repro.fusion.passes import ElementwiseChainFusionPass
from repro.hw.device import DeviceModel
from repro.nmc.model import NmcConfig, hbm2_bank_nmc
from repro.nmc.offload import optimizer_workload
from repro.ops.base import Component
from repro.report.tables import format_table
from repro.trace.passes import PassManager


@dataclass(frozen=True)
class WaterfallStep:
    """One stage of the optimization waterfall.

    Attributes:
        name: which optimization was added.
        iteration_s: iteration time with everything up to here applied.
        kernels: kernel count at this stage.
    """

    name: str
    iteration_s: float
    kernels: int

    def speedup_vs(self, baseline: "WaterfallStep") -> float:
        return baseline.iteration_s / self.iteration_s


def run(model: BertConfig = BERT_LARGE,
        training: TrainingConfig | None = None,
        device: DeviceModel | None = None,
        nmc: NmcConfig | None = None) -> list[WaterfallStep]:
    """Apply the Sec. 6 optimizations cumulatively."""
    training = training or training_point(1, 32, Precision.FP32)
    device = device or default_device()
    nmc = nmc or hbm2_bank_nmc()

    stages = (
        ("baseline (eager)", PassManager(())),
        ("+ elementwise-chain fusion",
         PassManager((ElementwiseChainFusionPass(),))),
        ("+ fused attention",
         PassManager((ElementwiseChainFusionPass(), FusedAttentionPass()))),
    )
    steps: list[WaterfallStep] = []
    for name, manager in stages:
        trace, profile = run_point(model, training, device, passes=manager)
        steps.append(WaterfallStep(name, profile.total_time, len(trace)))

    # NMC offload of the optimizer: replace its GPU time with NMC time.
    flops, bytes_moved, groups = optimizer_workload(trace)
    optimizer_time = profile.time_of(component=Component.OPTIMIZER)
    nmc_time = nmc.execution_time(flops=flops, bytes_moved=bytes_moved,
                                  command_groups=groups)
    steps.append(WaterfallStep(
        "+ LAMB on near-memory compute",
        profile.total_time - optimizer_time + nmc_time,
        len(trace)))
    return steps


def render(steps: list[WaterfallStep]) -> str:
    baseline = steps[0]
    rows = [(step.name, f"{step.iteration_s * 1e3:.1f} ms", step.kernels,
             f"{step.speedup_vs(baseline):.2f}x")
            for step in steps]
    return format_table(("stage", "iteration", "kernels",
                         "cumulative speedup"), rows)
