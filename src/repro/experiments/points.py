"""Named operating points addressable from the CLI.

``repro export --format perfetto <point>`` needs a stable vocabulary of
operating-point ids that maps onto the paper's configurations.  This
module derives it from the same presets the figures use:

* ``fig3.ph1-b32-fp32`` ... — the five Fig. 3 points on BERT Large
  (ids are the paper labels, lowercased);
* ``tiny.ph1-b2-fp32`` — BERT Tiny at B=2, a two-layer point small
  enough for golden-file tests and CI smoke runs.

Each id resolves to a ``(model, training)`` pair; callers profile it via
:func:`repro.experiments.common.run_point` on the frozen default device.
"""

from __future__ import annotations

from repro.config import (BERT_LARGE, BERT_TINY, FIG3_POINTS, BertConfig,
                          Precision, TrainingConfig, training_point)


def point_id(figure: str, training: TrainingConfig) -> str:
    """The CLI id of one operating point, e.g. ``fig3.ph1-b32-fp32``."""
    return f"{figure}.{training.label.lower()}"


def _build_registry() -> dict[str, tuple[BertConfig, TrainingConfig]]:
    registry: dict[str, tuple[BertConfig, TrainingConfig]] = {}
    for training in FIG3_POINTS:
        registry[point_id("fig3", training)] = (BERT_LARGE, training)
    tiny = training_point(1, 2, Precision.FP32)
    registry[point_id("tiny", tiny)] = (BERT_TINY, tiny)
    return registry


#: id -> (model, training) for every exportable operating point.
POINT_REGISTRY: dict[str, tuple[BertConfig, TrainingConfig]] = \
    _build_registry()


def resolve_point(point: str) -> tuple[BertConfig, TrainingConfig]:
    """Look up one operating point by id; raises ``KeyError`` with the
    valid vocabulary on an unknown id."""
    try:
        return POINT_REGISTRY[point]
    except KeyError:
        raise KeyError(
            f"unknown operating point {point!r}; valid ids: "
            f"{', '.join(sorted(POINT_REGISTRY))}") from None
