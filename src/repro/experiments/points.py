"""Named operating points addressable from the CLI and the server.

``repro export --format perfetto <point>`` and the profiling server's
``/profile/<point>`` / ``/perfetto/<point>`` endpoints need a stable
vocabulary of operating-point ids that maps onto the paper's
configurations.  This module derives it from the same presets the
figures use:

* ``fig3.ph1-b32-fp32`` ... — the five Fig. 3 points on BERT Large
  (ids are the paper labels, lowercased);
* ``fig8.ph1-b4-fp32`` ... — the Fig. 8 input-size sweep (mini-batch
  and sequence length) on BERT Large;
* ``fig9.c1.ph1-b8-fp32`` ... — the Fig. 9 layer-width sweep (C1 / C2 /
  C3); the extra segment names the swept architecture;
* ``tiny.ph1-b2-fp32`` — BERT Tiny at B=2, a two-layer point small
  enough for golden-file tests and CI smoke runs.

Each id resolves to a ``(model, training)`` pair; callers profile it via
:func:`repro.experiments.common.run_point` on the frozen default device.
"""

from __future__ import annotations

from repro.config import (BERT_LARGE, BERT_TINY, C1, C2, C3, FIG3_POINTS,
                          BertConfig, Precision, TrainingConfig,
                          training_point)


def point_id(figure: str, training: TrainingConfig, *,
             model: BertConfig | None = None) -> str:
    """The CLI id of one operating point, e.g. ``fig3.ph1-b32-fp32``.

    Figures that sweep the *architecture* (Fig. 9) pass ``model`` so the
    swept config joins the id (``fig9.c1.ph1-b8-fp32``); figures that
    sweep only the training point leave it out.
    """
    label = training.label.lower()
    if model is not None:
        return f"{figure}.{model.name.lower()}.{label}"
    return f"{figure}.{label}"


#: Fig. 8 input-size sweep (matches ``experiments.fig8.DEFAULT_POINTS``;
#: duplicated literally so the registry does not import the figure module).
FIG8_POINTS = (
    training_point(1, 4, Precision.FP32),
    training_point(1, 16, Precision.FP32),
    training_point(1, 32, Precision.FP32),
    training_point(2, 4, Precision.FP32),
    training_point(2, 16, Precision.FP32),
)

#: Fig. 9 width sweep: C1/C2/C3 at the figure's default training point.
FIG9_CONFIGS = (C1, C2, C3)
FIG9_TRAINING = training_point(1, 8, Precision.FP32)


def _build_registry() -> dict[str, tuple[BertConfig, TrainingConfig]]:
    registry: dict[str, tuple[BertConfig, TrainingConfig]] = {}
    for training in FIG3_POINTS:
        registry[point_id("fig3", training)] = (BERT_LARGE, training)
    for training in FIG8_POINTS:
        registry[point_id("fig8", training)] = (BERT_LARGE, training)
    for config in FIG9_CONFIGS:
        registry[point_id("fig9", FIG9_TRAINING, model=config)] = \
            (config, FIG9_TRAINING)
    tiny = training_point(1, 2, Precision.FP32)
    registry[point_id("tiny", tiny)] = (BERT_TINY, tiny)
    return registry


#: id -> (model, training) for every exportable operating point.
POINT_REGISTRY: dict[str, tuple[BertConfig, TrainingConfig]] = \
    _build_registry()


def resolve_point(point: str) -> tuple[BertConfig, TrainingConfig]:
    """Look up one operating point by id; raises ``KeyError`` with the
    valid vocabulary on an unknown id."""
    try:
        return POINT_REGISTRY[point]
    except KeyError:
        raise KeyError(
            f"unknown operating point {point!r}; valid ids: "
            f"{', '.join(sorted(POINT_REGISTRY))}") from None
