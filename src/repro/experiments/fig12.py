"""Fig. 12: impact of kernel fusion and GEMM fusion.

Three studies:

* **LayerNorm fusion** — the eager multi-kernel LN vs. the framework's
  fused kernels: kernel count, runtime and memory traffic all shrink
  6-8x because every unfused step re-streams the activation.
* **Optimizer (Adam) fusion** — multi-tensor-apply vs. one kernel per
  elementwise step per tensor: kernel count shrinks ~250x but runtime and
  traffic only 6-8x, because different tensors' data is independent and
  gains nothing from sharing a launch.
* **QKV GEMM fusion (Fig. 12b/13)** — 3 serial linear GEMMs (3S) vs. one
  concatenated GEMM (3F), across token counts: fusion helps most when the
  input is small.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import BERT_LARGE, BertConfig, Precision
from repro.experiments.common import default_device
from repro.fusion.gemm_fusion import GemmFusionResult, fusion_sweep
from repro.fusion.passes import FusionImpact, fusion_impact
from repro.hw.device import DeviceModel
from repro.ops.base import DType, Phase
from repro.ops.reduction import layernorm_kernels
from repro.optim.kernels import adam_kernels
from repro.report.tables import format_table
from repro.trace.parameters import bert_parameter_inventory

#: Token counts for the QKV-fusion sweep (Fig. 12b's input-size axis).
DEFAULT_TOKEN_SWEEP = (256, 512, 1024, 4096, 16384)


@dataclass(frozen=True)
class Fig12Result:
    """All three fusion studies."""

    layernorm: FusionImpact
    adam: FusionImpact
    qkv_forward: list[GemmFusionResult]
    qkv_backward_weight: list[GemmFusionResult]

    @property
    def best_qkv_improvement(self) -> float:
        """Largest fractional gain across the sweep (paper: up to ~62%)."""
        results = self.qkv_forward + self.qkv_backward_weight
        return max(r.improvement for r in results)


def layernorm_fusion_impact(tokens: int, d_model: int,
                            device: DeviceModel) -> FusionImpact:
    """Unfused vs. fused LayerNorm (forward + backward) on one tensor."""
    unfused, fused = [], []
    for phase in (Phase.FORWARD, Phase.BACKWARD):
        unfused.extend(layernorm_kernels(rows=tokens, row_len=d_model,
                                         dtype=DType.FP32, phase=phase,
                                         fused=False))
        fused.extend(layernorm_kernels(rows=tokens, row_len=d_model,
                                       dtype=DType.FP32, phase=phase,
                                       fused=True))
    return fusion_impact(unfused, fused, device)


def adam_fusion_impact(model: BertConfig,
                       device: DeviceModel) -> FusionImpact:
    """Unfused vs. multi-tensor fused Adam over the whole model."""
    inventory = bert_parameter_inventory(model)
    unfused = adam_kernels(inventory, precision=Precision.FP32, fused=False)
    fused = adam_kernels(inventory, precision=Precision.FP32, fused=True)
    return fusion_impact(unfused, fused, device)


def run(model: BertConfig = BERT_LARGE, tokens: int = 4096,
        device: DeviceModel | None = None,
        token_sweep: tuple[int, ...] = DEFAULT_TOKEN_SWEEP) -> Fig12Result:
    """Run all Fig. 12 studies."""
    device = device or default_device()
    return Fig12Result(
        layernorm=layernorm_fusion_impact(tokens, model.d_model, device),
        adam=adam_fusion_impact(model, device),
        qkv_forward=fusion_sweep(model.d_model, list(token_sweep), device,
                                 pass_name="fwd"),
        qkv_backward_weight=fusion_sweep(model.d_model, list(token_sweep),
                                         device, pass_name="bwd_wt"),
    )


def render(result: Fig12Result) -> str:
    impact_rows = []
    for name, impact in (("LayerNorm", result.layernorm),
                         ("Adam", result.adam)):
        impact_rows.append((
            name,
            f"{impact.kernels_before} -> {impact.kernels_after} "
            f"({impact.kernel_ratio:.0f}x)",
            f"{impact.bytes_ratio:.1f}x",
            f"{impact.time_ratio:.1f}x"))
    part_a = format_table(("fusion target", "kernels", "traffic", "runtime"),
                          impact_rows)

    sweep_rows = [(r.tokens,
                   f"{r.serial_s * 1e6:.0f}us",
                   f"{r.fused_s * 1e6:.0f}us",
                   f"+{r.improvement * 100:.0f}%")
                  for r in result.qkv_forward]
    part_b = format_table(("tokens", "3S (serial)", "3F (fused)", "gain"),
                          sweep_rows)
    return f"{part_a}\n\nQKV linear-GEMM fusion (forward):\n{part_b}"
