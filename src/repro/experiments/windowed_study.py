"""Extension study: windowed attention vs. sequence length.

Takeaway 10 projects attention operations dominating as ``n`` grows.  This
study quantifies the standard mitigation: block-local (windowed) attention
turns the quadratic score computation linear.  For each ``n`` it compares
the attention-operation time (batched GEMMs + scale/mask/softmax/dropout)
of the dense path against the windowed path, and the resulting share of a
full training iteration.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import BERT_LARGE, BertConfig, Precision, TrainingConfig
from repro.experiments.common import default_device
from repro.hw.device import DeviceModel
from repro.hw.timing import trace_time
from repro.ops.base import Component, DType, Region
from repro.ops.windowed_attention import (WindowConfig,
                                          windowed_attention_op_kernels)
from repro.profiler.profiler import profile_trace
from repro.report.tables import format_percent, format_table
from repro.trace.bert_trace import build_iteration_trace


@dataclass(frozen=True)
class WindowedRow:
    """Dense vs. windowed attention at one sequence length.

    Attributes:
        seq_len: sequence length ``n``.
        dense_attention_s: per-iteration dense attention-op time.
        windowed_attention_s: same under block-local attention.
        dense_share: attention ops' share of the dense iteration.
        windowed_share: share after substituting the windowed kernels.
        iteration_speedup: full-iteration speedup from windowing.
    """

    seq_len: int
    dense_attention_s: float
    windowed_attention_s: float
    dense_share: float
    windowed_share: float
    iteration_speedup: float


def run(model: BertConfig = BERT_LARGE,
        seq_lens: tuple[int, ...] = (128, 256, 512),
        tokens_budget: int = 2048,
        window: WindowConfig | None = None,
        device: DeviceModel | None = None) -> list[WindowedRow]:
    """Sweep ``n`` at a fixed token budget (B shrinks as n grows).

    Matches the paper's Fig. 8 methodology of holding ``B * n`` constant
    so only the quadratic term moves.
    """
    device = device or default_device()
    window = window or WindowConfig()
    rows = []
    for seq_len in seq_lens:
        batch = max(1, tokens_budget // seq_len)
        training = TrainingConfig(batch_size=batch, seq_len=seq_len,
                                  precision=Precision.FP32)
        trace = build_iteration_trace(model, training)
        profile = profile_trace(trace, device)
        iteration = profile.total_time
        dense_attention = profile.time_where(
            lambda k: k.component is Component.TRANSFORMER
            and k.region in (Region.ATTENTION_BGEMM,
                             Region.ATTENTION_SMDSM))

        windowed_kernels = windowed_attention_op_kernels(
            seq_len=seq_len, d_head=model.d_head,
            batch_heads=batch * model.num_heads, window=window,
            dtype=DType.FP32)
        windowed_attention = (model.num_layers
                              * trace_time(windowed_kernels, device))

        windowed_iteration = (iteration - dense_attention
                              + windowed_attention)
        rows.append(WindowedRow(
            seq_len=seq_len,
            dense_attention_s=dense_attention,
            windowed_attention_s=windowed_attention,
            dense_share=dense_attention / iteration,
            windowed_share=windowed_attention / windowed_iteration,
            iteration_speedup=iteration / windowed_iteration,
        ))
    return rows


def render(rows: list[WindowedRow]) -> str:
    table = [(row.seq_len,
              f"{row.dense_attention_s * 1e3:.1f} ms",
              f"{row.windowed_attention_s * 1e3:.1f} ms",
              format_percent(row.dense_share),
              format_percent(row.windowed_share),
              f"{row.iteration_speedup:.2f}x")
             for row in rows]
    return format_table(("n", "dense attn ops", "windowed attn ops",
                         "dense share", "windowed share",
                         "iteration speedup"), table)
