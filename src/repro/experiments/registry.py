"""Experiment registry: one entry per paper table/figure.

Maps experiment ids to ``(run, render)`` pairs so examples, benchmarks and
the command line can regenerate any result uniformly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.experiments import (energy_study, fig3, fig4, fig6, fig7, fig8,
                               fig9, fig11, fig12, fused_attention_study,
                               nmc_study, optimized_stack, packing_study,
                               pipeline_study, robustness, scaling_trends,
                               sec4, sec7_modes, takeaways, transfer_study,
                               windowed_study, zero_study)


@dataclass(frozen=True)
class Experiment:
    """A registered experiment.

    Attributes:
        experiment_id: paper reference (``"fig3"``, ``"sec4"``, ...).
        description: what the paper shows there.
        run: produces the structured result.
        render: formats a result as text.
    """

    experiment_id: str
    description: str
    run: Callable[[], object]
    render: Callable[[object], str]


REGISTRY: dict[str, Experiment] = {
    exp.experiment_id: exp for exp in (
        Experiment("fig3", "High-level runtime breakdown of pre-training",
                   fig3.run, fig3.render),
        Experiment("fig4", "Hierarchical Transformer-layer breakdown",
                   fig4.run, fig4.render),
        Experiment("fig6", "Arithmetic intensity of training GEMMs",
                   fig6.run, fig6.render),
        Experiment("fig7", "Op-group intensity and bandwidth demand",
                   fig7.run, fig7.render),
        Experiment("fig8", "Input-size (B, n) sweep",
                   fig8.run, fig8.render),
        Experiment("fig9", "Layer-size (d_model) sweep",
                   fig9.run, fig9.render),
        Experiment("sec4", "Activation checkpointing overhead",
                   sec4.run, sec4.render),
        Experiment("fig11", "Multi-device per-GPU breakdown",
                   fig11.run, fig11.render),
        Experiment("fig12", "Kernel and GEMM fusion impact",
                   fig12.run, fig12.render),
        Experiment("nmc", "Near-memory compute for LAMB",
                   nmc_study.run, nmc_study.render),
        Experiment("table1", "Takeaway verification",
                   takeaways.run, takeaways.render),
        Experiment("sec7", "Inference and fine-tuning profiles",
                   sec7_modes.run, sec7_modes.render),
        Experiment("zero", "ZeRO optimizer-state partitioning (extension)",
                   zero_study.run, zero_study.render),
        Experiment("windowed", "Windowed attention vs sequence length "
                   "(extension)", windowed_study.run,
                   windowed_study.render),
        Experiment("energy", "Iteration energy accounting (extension)",
                   energy_study.run, energy_study.render),
        Experiment("pipeline", "Pipeline vs tensor parallelism "
                   "(extension)", pipeline_study.run,
                   pipeline_study.render),
        Experiment("fused-attention", "Kernel-fused attention vs eager "
                   "(extension)", fused_attention_study.run,
                   fused_attention_study.render),
        Experiment("transfer", "Cross-device transferability (Sec. 7)",
                   transfer_study.run, transfer_study.render),
        Experiment("optimized", "Sec. 6 optimizations stacked (capstone)",
                   optimized_stack.run, optimized_stack.render),
        Experiment("robustness", "Conclusions under device-model "
                   "perturbation", robustness.run, robustness.render),
        Experiment("scaling", "Future-Transformer scaling trends "
                   "(extension)", scaling_trends.run,
                   scaling_trends.render),
        Experiment("packing", "Phase-2 sequence-packing savings "
                   "(extension)", packing_study.run,
                   packing_study.render),
    )
}


def run_experiment(experiment_id: str) -> str:
    """Run one experiment and return its rendered report."""
    if experiment_id not in REGISTRY:
        raise KeyError(f"unknown experiment {experiment_id!r}; "
                       f"known: {sorted(REGISTRY)}")
    experiment = REGISTRY[experiment_id]
    return experiment.render(experiment.run())


def run_all(jobs: int = 1) -> dict[str, str]:
    """Run every registered experiment; returns id -> rendered report.

    Runs through :mod:`repro.runner.executor`, so every experiment
    executes even if some fail; failures are collected and raised as one
    ``RuntimeError`` at the end.
    """
    from repro.runner.executor import run_experiments

    results = run_experiments(list(REGISTRY), jobs=jobs)
    failures = [r for r in results if not r.ok]
    if failures:
        detail = "\n\n".join(f"{r.experiment_id}:\n{r.error}"
                             for r in failures)
        raise RuntimeError(
            f"{len(failures)} experiment(s) failed: "
            f"{[r.experiment_id for r in failures]}\n{detail}")
    return {r.experiment_id: r.output for r in results}
