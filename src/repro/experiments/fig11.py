"""Fig. 11: per-GPU iteration breakdown under multi-device training.

The paper's five configurations on 128-GPU-class systems with PCIe 4.0:

* S1 — single GPU, B=16;
* D1 — 128-way data parallel, B=16, gradients communicated after backprop
  (no overlap): ~19% of runtime exposed as communication;
* D2 — same with per-layer overlap: profile ≈ S1 (Obs. 5);
* T1 — 2-way tensor slicing, B=16: ~9% communication, LAMB share halved;
* T2 — 8-way tensor slicing, B=64: ~42% communication, LAMB negligible,
  replicated DR+RC+LN share grows (Takeaways 12/13).
"""

from __future__ import annotations

from repro.config import BERT_LARGE, BertConfig, Precision, training_point
from repro.distributed.data_parallel import (data_parallel_timeline,
                                             single_device_timeline)
from repro.distributed.network import PCIE4, LinkSpec
from repro.distributed.tensor_slicing import tensor_slicing_timeline
from repro.distributed.timeline import BUCKET_ORDER, DeviceTimeline
from repro.hw.device import DeviceModel
from repro.report.bars import bar_chart
from repro.experiments.common import default_device


def run(model: BertConfig = BERT_LARGE,
        device: DeviceModel | None = None,
        link: LinkSpec = PCIE4,
        dp_devices: int = 128) -> list[DeviceTimeline]:
    """The five Fig. 11 configurations, in the paper's order."""
    device = device or default_device()
    b16 = training_point(1, 16, Precision.FP32)
    b64 = training_point(1, 64, Precision.FP32)
    return [
        single_device_timeline(model, b16, device, label="S1 (1 GPU, B=16)"),
        data_parallel_timeline(model, b16, device, link, dp_devices,
                               overlap=False,
                               label="D1 (DP, B=16, w/o overlap)"),
        data_parallel_timeline(model, b16, device, link, dp_devices,
                               overlap=True,
                               label="D2 (DP, B=16, w/ overlap)"),
        tensor_slicing_timeline(model, b16, device, link, 2,
                                label="T1 (TS, 2-way, B=16)"),
        tensor_slicing_timeline(model, b64, device, link, 8,
                                label="T2 (TS, 8-way, B=64)"),
    ]


def render(timelines: list[DeviceTimeline]) -> str:
    """ASCII stacked bars of per-GPU time shares."""
    rows = []
    for timeline in timelines:
        total = timeline.total
        fractions = [(bucket, timeline.buckets.get(bucket, 0.0) / total)
                     for bucket in BUCKET_ORDER
                     if timeline.buckets.get(bucket, 0.0) > 0]
        rows.append((timeline.label, fractions))
    return bar_chart(rows)
