"""Generic sweep utilities and CSV export of experiment results.

Every experiment module returns dataclass rows; these helpers flatten them
into CSV so results can be plotted or diffed outside the repository, and
provide a generic grid sweep over (model, training) parameters for ad-hoc
studies.
"""

from __future__ import annotations

import csv
import dataclasses
import io
import itertools
from typing import Callable, Iterable

from repro.config import BertConfig, TrainingConfig
from repro.experiments.common import run_point
from repro.hw.device import DeviceModel
from repro.profiler.breakdown import summarize


def _flatten(value, prefix: str = "") -> dict[str, object]:
    """Flatten dataclasses/dicts/sequences/enums into scalar CSV cells."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        out = {}
        for field in dataclasses.fields(value):
            out.update(_flatten(getattr(value, field.name),
                                f"{prefix}{field.name}."))
        return out
    if isinstance(value, dict):
        out = {}
        for key, item in value.items():
            out.update(_flatten(item, f"{prefix}{key}."))
        return out
    if isinstance(value, (list, tuple)):
        # Indexed columns (``field.0``, ``field.1``, ...) instead of one
        # stringified cell, so per-element values stay machine-readable.
        out = {}
        for index, item in enumerate(value):
            out.update(_flatten(item, f"{prefix}{index}."))
        return out
    if hasattr(value, "value") and hasattr(type(value), "__members__"):
        return {prefix.rstrip("."): value.value}  # Enum
    if isinstance(value, (int, float, str, bool)) or value is None:
        return {prefix.rstrip("."): value}
    return {prefix.rstrip("."): str(value)}


def rows_to_csv(rows: Iterable[object]) -> str:
    """Render experiment dataclass rows as CSV.

    Columns are the union of flattened fields, in first-seen order.
    """
    flat_rows = [_flatten(row) for row in rows]
    if not flat_rows:
        raise ValueError("no rows to export")
    columns: list[str] = []
    for flat in flat_rows:
        for key in flat:
            if key not in columns:
                columns.append(key)
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=columns, restval="")
    writer.writeheader()
    for flat in flat_rows:
        writer.writerow(flat)
    return buffer.getvalue()


def export_experiment_csv(experiment_id: str, path: str) -> None:
    """Run a registered experiment and write its rows as CSV.

    Only experiments whose ``run`` returns a list of dataclasses are
    exportable; others raise ``TypeError``.
    """
    from repro.experiments.registry import REGISTRY

    result = REGISTRY[experiment_id].run()
    if not isinstance(result, list):
        raise TypeError(f"experiment {experiment_id!r} does not return "
                        "a row list")
    # Render before opening the file: a row that fails to flatten must not
    # leave behind a truncated (or emptied pre-existing) output file.
    rendered = rows_to_csv(result)
    with open(path, "w", newline="") as handle:
        handle.write(rendered)


def _point_columns(training: TrainingConfig) -> dict[str, object]:
    """The identifying columns every sweep row starts with."""
    return {
        "label": training.label,
        "batch_size": training.batch_size,
        "seq_len": training.seq_len,
        "tokens": training.tokens_per_iteration,
    }


def _error_row(training: TrainingConfig, error: Exception
               ) -> dict[str, object]:
    """Structured row for a point that failed to profile."""
    return {
        **_point_columns(training),
        "error": f"{type(error).__name__}: {error}",
    }


def _sweep_row(model: BertConfig, training: TrainingConfig,
               device: DeviceModel | None) -> dict[str, object]:
    """Summary dict of one sweep point (top-level so workers can pickle it)."""
    _, profile = run_point(model, training, device)
    return {**_point_columns(training), **summarize(profile)}


def grid_sweep(model: BertConfig,
               trainings: Iterable[TrainingConfig],
               device: DeviceModel | None = None,
               metrics: Callable[[dict], dict] | None = None,
               jobs: int = 1) -> list[dict[str, object]]:
    """Profile every training point; return one summary dict per point.

    In-process sweeps go through the batched grid engine
    (:func:`repro.grid.engine.grid_summaries`): the whole grid is stamped
    into one KernelTable and priced in a single timing evaluation, with
    one disk-cache entry per grid signature.  Worker-pool sweeps
    (``jobs > 1``) keep the per-point :func:`run_point` path so workers
    populate the shared per-point cache.

    A point that fails to profile no longer aborts the sweep: its row is
    a structured error entry (``label``/``batch_size``/``seq_len``/
    ``tokens`` plus an ``error`` column) and every other point's row
    survives.  ``metrics`` is only applied to successful rows.

    Args:
        model: architecture to sweep.
        trainings: training points.
        device: device model (default MI100-like).
        metrics: optional post-processor mapping the summary dict to the
            columns you want.
        jobs: worker processes for large sweeps; 1 runs in-process.
            Rows come back in ``trainings`` order either way.
    """
    trainings = list(trainings)
    if jobs <= 1 or len(trainings) <= 1:
        rows = _grid_rows(model, trainings, device)
    else:
        import concurrent.futures
        with concurrent.futures.ProcessPoolExecutor(max_workers=jobs) as pool:
            futures = [pool.submit(_sweep_row, model, training, device)
                       for training in trainings]
            rows = []
            for training, future in zip(trainings, futures):
                try:
                    rows.append(future.result())
                except Exception as error:
                    rows.append(_error_row(training, error))
    if metrics is None:
        return rows
    return [row if "error" in row else metrics(row) for row in rows]


def _grid_rows(model: BertConfig, trainings: list[TrainingConfig],
               device: DeviceModel | None) -> list[dict[str, object]]:
    """In-process sweep rows via the grid engine, per-point on failure.

    A bad point poisons the whole stamped grid, so when the batched path
    raises the sweep degrades to the per-point loop — isolating the
    failure to its own error row instead of losing the sweep.
    """
    from repro.grid.engine import grid_points, grid_summaries

    if trainings:
        try:
            summaries = grid_summaries(grid_points(model, trainings), device)
        except Exception:
            pass
        else:
            return [{**_point_columns(training), **summary}
                    for training, summary in zip(trainings, summaries)]
    rows = []
    for training in trainings:
        try:
            rows.append(_sweep_row(model, training, device))
        except Exception as error:
            rows.append(_error_row(training, error))
    return rows


def cross_product(batch_sizes: Iterable[int], seq_lens: Iterable[int],
                  precisions, **overrides) -> list[TrainingConfig]:
    """Build the cross product of training points for :func:`grid_sweep`."""
    points = []
    for batch, seq_len, precision in itertools.product(batch_sizes,
                                                       seq_lens,
                                                       precisions):
        points.append(TrainingConfig(batch_size=batch, seq_len=seq_len,
                                     precision=precision, **overrides))
    return points
