"""Fig. 3: high-level runtime breakdown of BERT pre-training.

Stacked bars over five operating points (Ph1-B32-FP32, Ph1-B4-FP32,
Ph2-B4-FP32, Ph1-B32-FP16, Ph2-B4-FP16): Transformer layers vs. output
layer vs. embedding vs. LAMB update.

Paper bands: Transformer 68-85%; LAMB 7-10% at B32-FP32 rising to ~25% at
B4 and 16-19% under mixed precision; output 3-7%; embedding negligible.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import BERT_LARGE, FIG3_POINTS, BertConfig, TrainingConfig
from repro.hw.device import DeviceModel
from repro.report.bars import bar_chart


@dataclass(frozen=True)
class Fig3Row:
    """One bar of Fig. 3.

    Attributes:
        label: operating-point label (``Phi-Bj-FPk``).
        total_s: modeled iteration time.
        transformer/output/embedding/optimizer: fractions of iteration time.
    """

    label: str
    total_s: float
    transformer: float
    output: float
    embedding: float
    optimizer: float

    def fractions(self) -> list[tuple[str, float]]:
        return [("transformer", self.transformer), ("output", self.output),
                ("embedding", self.embedding), ("lamb", self.optimizer)]


def run(model: BertConfig = BERT_LARGE,
        points: tuple[TrainingConfig, ...] = FIG3_POINTS,
        device: DeviceModel | None = None) -> list[Fig3Row]:
    """Compute the Fig. 3 rows (one batched grid evaluation)."""
    from repro.grid.engine import grid_points, grid_summaries

    rows = []
    summaries = grid_summaries(grid_points(model, points), device)
    for training, s in zip(points, summaries):
        rows.append(Fig3Row(label=training.label, total_s=s["total_time_s"],
                            transformer=s["transformer"], output=s["output"],
                            embedding=s["embedding"],
                            optimizer=s["optimizer"]))
    return rows


def render(rows: list[Fig3Row]) -> str:
    """ASCII version of the Fig. 3 stacked bars."""
    return bar_chart([(row.label, row.fractions()) for row in rows])
