"""Extension study: where the energy goes, and what fusion/NMC save.

The paper's optimization section is motivated by data movement (kernel
fusion removes duplicate DRAM traffic; NMC removes the off-chip round
trip).  This study prices one training iteration in joules: per-region
dynamic energy, the data-movement share, and the savings from (a) fusing
the elementwise chains and (b) running LAMB's traffic at bank-internal
energy on NMC.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import (BERT_LARGE, BertConfig, Precision, TrainingConfig,
                          training_point)
from repro.experiments.common import default_device
from repro.fusion.passes import fuse_elementwise_chains
from repro.hw.device import DeviceModel
from repro.hw.energy import (EnergySpec, default_energy_spec,
                             iteration_energy, trace_energy)
from repro.ops.base import Component
from repro.profiler.profiler import profile_trace
from repro.report.tables import format_percent, format_table
from repro.trace.bert_trace import build_iteration_trace


@dataclass(frozen=True)
class EnergyStudyResult:
    """Energy accounting of one operating point.

    Attributes:
        label: operating-point label.
        dynamic_j / static_j: baseline iteration energy split.
        movement_fraction: data movement's share of dynamic energy.
        fused_dynamic_j: dynamic energy after elementwise-chain fusion.
        lamb_j / lamb_nmc_j: optimizer energy on GPU vs. on NMC.
    """

    label: str
    dynamic_j: float
    static_j: float
    movement_fraction: float
    fused_dynamic_j: float
    lamb_j: float
    lamb_nmc_j: float

    @property
    def fusion_savings(self) -> float:
        return 1.0 - self.fused_dynamic_j / self.dynamic_j

    @property
    def nmc_lamb_savings(self) -> float:
        return 1.0 - self.lamb_nmc_j / self.lamb_j


def run_one(training: TrainingConfig, model: BertConfig = BERT_LARGE,
            device: DeviceModel | None = None,
            spec: EnergySpec | None = None) -> EnergyStudyResult:
    """Energy accounting at one operating point."""
    device = device or default_device()
    spec = spec or default_energy_spec()
    trace = build_iteration_trace(model, training)
    profile = profile_trace(trace, device)
    report = iteration_energy(profile, spec)

    fused = fuse_elementwise_chains(trace)
    fused_dynamic = trace_energy(fused.kernels, spec)

    lamb_kernels = trace.select(component=Component.OPTIMIZER)
    return EnergyStudyResult(
        label=training.label,
        dynamic_j=report.dynamic_j,
        static_j=report.static_j,
        movement_fraction=report.movement_fraction,
        fused_dynamic_j=fused_dynamic,
        lamb_j=trace_energy(lamb_kernels, spec),
        lamb_nmc_j=trace_energy(lamb_kernels, spec, nmc=True),
    )


def run(model: BertConfig = BERT_LARGE,
        device: DeviceModel | None = None) -> list[EnergyStudyResult]:
    """FP32 and mixed-precision energy accounting at Ph1-B32."""
    return [run_one(training_point(1, 32, Precision.FP32), model, device),
            run_one(training_point(1, 32, Precision.MIXED), model, device)]


def render(results: list[EnergyStudyResult]) -> str:
    rows = [(r.label, f"{r.dynamic_j:.1f} J", f"{r.static_j:.1f} J",
             format_percent(r.movement_fraction),
             format_percent(r.fusion_savings),
             format_percent(r.nmc_lamb_savings))
            for r in results]
    return format_table(
        ("point", "dynamic", "static", "movement share",
         "fusion saves (dyn)", "NMC saves (LAMB)"), rows)
