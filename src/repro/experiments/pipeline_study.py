"""Extension study: pipeline parallelism vs. tensor slicing.

The paper models DP and TS; production systems add pipelining as a third
axis.  This study compares, at equal device counts, how tensor slicing and
pipelining spend a per-device iteration — TS pays serialized activation
AllReduces, the pipeline pays bubble time — and shows the micro-batch
count trading bubble against boundary-transfer exposure.
"""

from __future__ import annotations

from repro.config import (BERT_LARGE, BertConfig, Precision, TrainingConfig,
                          training_point)
from repro.distributed.network import PCIE4, LinkSpec
from repro.distributed.pipeline import pipeline_timeline
from repro.distributed.tensor_slicing import tensor_slicing_timeline
from repro.distributed.timeline import DeviceTimeline
from repro.experiments.common import default_device
from repro.hw.device import DeviceModel
from repro.report.tables import format_percent, format_table


def run(model: BertConfig = BERT_LARGE,
        training: TrainingConfig | None = None,
        device: DeviceModel | None = None,
        link: LinkSpec = PCIE4,
        ways: tuple[int, ...] = (2, 4, 8)) -> list[tuple[DeviceTimeline,
                                                         DeviceTimeline]]:
    """(TS timeline, PP timeline) pairs at matched device counts.

    The pipeline uses ``4 * stages`` micro-batches (a common heuristic
    keeping the bubble under ~20%) when the batch allows it.
    """
    training = training or training_point(1, 32, Precision.FP32)
    device = device or default_device()
    pairs = []
    for w in ways:
        ts = tensor_slicing_timeline(model, training, device, link, w)
        micro = 4 * w
        while training.batch_size % micro:
            micro //= 2
        pp = pipeline_timeline(model, training, device, link, stages=w,
                               micro_batches=max(1, micro))
        pairs.append((ts, pp))
    return pairs


def render(pairs) -> str:
    rows = []
    for ts, pp in pairs:
        rows.append((
            f"{ts.devices}",
            f"{ts.total * 1e3:.0f} ms",
            format_percent(ts.communication_fraction),
            f"{pp.total * 1e3:.0f} ms",
            format_percent(pp.fraction("pipeline_bubble")),
            format_percent(pp.communication_fraction),
        ))
    return format_table(
        ("devices", "TS iter", "TS comm", "PP iter", "PP bubble",
         "PP comm"), rows)
