"""Table 1: numeric verification of every takeaway.

Each of the paper's 13 takeaways (plus the five numbered observations that
are checkable) is evaluated against the reproduction's own models and
reported as a pass/fail with the supporting numbers — the repo-level
equivalent of Table 1.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import (BERT_LARGE, C2, C3, Precision, training_point)
from repro.distributed.network import PCIE4
from repro.distributed.tensor_slicing import tensor_slicing_timeline
from repro.experiments import fig4, fig9, fig12, nmc_study
from repro.experiments.common import default_device, run_point
from repro.ops.base import Component, DType
from repro.profiler.breakdown import summarize
from repro.report.tables import format_table
from repro.trace.parameters import bert_parameter_inventory


@dataclass(frozen=True)
class TakeawayCheck:
    """One verified takeaway.

    Attributes:
        takeaway_id: paper numbering (``"T1"``..``"T13"``, ``"O1"``...).
        claim: abbreviated statement.
        holds: whether the reproduction's numbers support it.
        evidence: the load-bearing measured values.
    """

    takeaway_id: str
    claim: str
    holds: bool
    evidence: str


def _summaries():
    device = default_device()
    points = {
        "b32_fp32": training_point(1, 32, Precision.FP32),
        "b4_fp32": training_point(1, 4, Precision.FP32),
        "b32_mp": training_point(1, 32, Precision.MIXED),
        "ph2_b4_fp32": training_point(2, 4, Precision.FP32),
    }
    out = {}
    for key, training in points.items():
        _, profile = run_point(BERT_LARGE, training, device)
        out[key] = summarize(profile)
    return out


def run() -> list[TakeawayCheck]:
    """Evaluate every checkable takeaway."""
    checks: list[TakeawayCheck] = []
    s = _summaries()
    device = default_device()

    # T1: LAMB second-highest contributor; grows as tokens shrink.
    lamb_b32 = s["b32_fp32"]["optimizer"]
    lamb_b4 = s["b4_fp32"]["optimizer"]
    checks.append(TakeawayCheck(
        "T1", "LAMB is the 2nd-highest runtime contributor and grows as "
        "token count per iteration shrinks",
        holds=(s["b32_fp32"]["transformer"] > lamb_b32 > s["b32_fp32"]["output"]
               and lamb_b4 > 2 * lamb_b32),
        evidence=f"LAMB {lamb_b32:.1%} @B32 -> {lamb_b4:.1%} @B4"))

    # T2: LAMB more important under mixed precision.
    lamb_mp = s["b32_mp"]["optimizer"]
    checks.append(TakeawayCheck(
        "T2", "LAMB share grows under mixed precision",
        holds=lamb_mp > 1.5 * lamb_b32,
        evidence=f"LAMB {lamb_b32:.1%} FP32 -> {lamb_mp:.1%} MP"))

    # T3: GEMMs speed up more than other ops under MP.
    gemm_fp32, gemm_mp = s["b32_fp32"]["gemm"], s["b32_mp"]["gemm"]
    checks.append(TakeawayCheck(
        "T3", "Reduced precision shrinks the GEMM share of runtime",
        holds=gemm_mp < gemm_fp32 - 0.10,
        evidence=f"GEMM share {gemm_fp32:.1%} FP32 -> {gemm_mp:.1%} MP"))

    # T4: attention operations are a small slice.
    rows = fig4.run()
    attn_fp32 = rows["fp32"].attention_ops
    attn_mp = rows["mixed"].attention_ops
    checks.append(TakeawayCheck(
        "T4", "Attention ops are a small share (<=15%) at n=128",
        holds=attn_fp32 < 0.15 and attn_mp < 0.18 and attn_mp > attn_fp32,
        evidence=f"attention ops {attn_fp32:.1%} FP32, {attn_mp:.1%} MP"))

    # T5: B=1 still yields matrix-matrix operations in the encoder layers
    # (unlike RNNs).  The tiny NSP classifier head is out of scope.
    b1 = training_point(1, 1, Precision.FP32)
    trace_b1, _ = run_point(BERT_LARGE, b1, device)
    encoder_gemms = [k for k in trace_b1.gemms()
                     if k.component is Component.TRANSFORMER]
    min_gemm_dim = min(min(k.gemm.m, k.gemm.n, k.gemm.k)
                       for k in encoder_gemms)
    checks.append(TakeawayCheck(
        "T5", "Mini-batch of one does not produce matrix-vector ops in "
        "Transformer layers",
        holds=min_gemm_dim > 1,
        evidence=f"smallest encoder GEMM dim at B=1 is {min_gemm_dim}"))

    # T6: attention batched GEMMs are memory-bound at n=128.
    from repro.hw.gemm_model import gemm_time
    from repro.trace.bert_trace import transformer_gemm_shapes
    shapes = transformer_gemm_shapes(BERT_LARGE,
                                     training_point(1, 32, Precision.FP32))
    score_bound = gemm_time(shapes["attn_score"]["fwd"], DType.FP32,
                            device).memory_bound
    fc_bound = gemm_time(shapes["fc1"]["fwd"], DType.FP32,
                         device).memory_bound
    checks.append(TakeawayCheck(
        "T6", "Attention B-GEMMs are memory-bound, FC GEMMs compute-bound",
        holds=score_bound and not fc_bound,
        evidence=f"score memory_bound={score_bound}, fc1={fc_bound}"))

    # T7: LAMB stage 1 reads 4x the model size.
    params = sum(t.n_elements for t in bert_parameter_inventory(BERT_LARGE))
    trace, _ = run_point(BERT_LARGE, training_point(1, 32, Precision.FP32),
                         device)
    stage1_reads = sum(k.bytes_read for k in trace.kernels
                       if k.component is Component.OPTIMIZER
                       and "stage1" in k.name)
    model_bytes = params * 4
    ratio = stage1_reads / model_bytes
    checks.append(TakeawayCheck(
        "T7", "LAMB stage 1 reads ~4x the model size",
        holds=3.5 <= ratio <= 4.5,
        evidence=f"stage-1 reads {ratio:.2f}x model size"))

    # T8/T9: memory-bound non-GEMM share in FP32 and MP.
    non_gemm_fp32 = s["b32_fp32"]["non_gemm"]
    non_gemm_mp = s["b32_mp"]["non_gemm"]
    checks.append(TakeawayCheck(
        "T8", "Memory-bound non-GEMM ops are a large FP32 share (~30%+)",
        holds=non_gemm_fp32 >= 0.28,
        evidence=f"non-GEMM {non_gemm_fp32:.1%} of FP32 runtime"))
    checks.append(TakeawayCheck(
        "T9", "Non-GEMM share grows under MP (~46%)",
        holds=non_gemm_mp > non_gemm_fp32 + 0.10,
        evidence=f"non-GEMM {non_gemm_fp32:.1%} FP32 -> {non_gemm_mp:.1%} MP"))

    # T10: larger n makes attention ops important.
    ph2 = fig4.run_one(training_point(2, 4, Precision.FP32))
    ph1 = fig4.run_one(training_point(1, 16, Precision.FP32))
    checks.append(TakeawayCheck(
        "T10", "Attention ops' share grows superlinearly with n",
        holds=ph2.attention_ops > 1.8 * ph1.attention_ops,
        evidence=(f"attention ops {ph1.attention_ops:.1%} @n=128 -> "
                  f"{ph2.attention_ops:.1%} @n=512 (equal tokens)")))

    # T11: GEMM and LAMB shares grow with layer width.
    width_rows = fig9.run()
    c2_row = next(r for r in width_rows if r.config_name == C2.name)
    c3_row = next(r for r in width_rows if r.config_name == C3.name)
    checks.append(TakeawayCheck(
        "T11", "Linear+FC GEMM and LAMB proportions grow with layer width",
        holds=(c3_row.regions.linear_and_fc > c2_row.regions.linear_and_fc
               and c3_row.optimizer > c2_row.optimizer),
        evidence=(f"C2->C3: linear+FC {c2_row.regions.linear_and_fc:.1%}->"
                  f"{c3_row.regions.linear_and_fc:.1%}, "
                  f"LAMB {c2_row.optimizer:.1%}->"
                  f"{c3_row.optimizer:.1%}")))

    # T12: LAMB share shrinks with tensor-slicing ways.
    t1 = tensor_slicing_timeline(BERT_LARGE,
                                 training_point(1, 16, Precision.FP32),
                                 device, PCIE4, 2)
    t2 = tensor_slicing_timeline(BERT_LARGE,
                                 training_point(1, 16, Precision.FP32),
                                 device, PCIE4, 8)
    checks.append(TakeawayCheck(
        "T12", "LAMB share drops as tensor-slicing ways grow",
        holds=t2.optimizer_fraction < t1.optimizer_fraction < lamb_b32 * 2,
        evidence=(f"LAMB {t1.optimizer_fraction:.1%} @2-way -> "
                  f"{t2.optimizer_fraction:.1%} @8-way")))

    # T13: TS communication share grows with device count.
    checks.append(TakeawayCheck(
        "T13", "Tensor-slicing communication grows with device count",
        holds=t2.communication_fraction > t1.communication_fraction,
        evidence=(f"comm {t1.communication_fraction:.1%} @2-way -> "
                  f"{t2.communication_fraction:.1%} @8-way")))

    # NMC headline (Sec. 6.2.1).
    nmc_results = nmc_study.run()
    speedups = [r.lamb_speedup_vs_optimistic for r in nmc_results]
    gains = [r.end_to_end_improvement for r in nmc_results]
    checks.append(TakeawayCheck(
        "NMC", "Bank-level NMC speeds LAMB ~3.8x and training 5-22%",
        holds=(all(3.0 <= x <= 4.5 for x in speedups)
               and min(gains) >= 0.04 and max(gains) <= 0.30),
        evidence=(f"LAMB speedup {min(speedups):.2f}-{max(speedups):.2f}x, "
                  f"end-to-end {min(gains):.1%}-{max(gains):.1%}")))

    # Fusion headline (Fig. 12).
    fusion = fig12.run()
    checks.append(TakeawayCheck(
        "FUS", "LN fusion ~6-8x on kernels/traffic/runtime; Adam fusion "
        "~250x kernels but only ~6-8x traffic",
        holds=(5.0 <= fusion.layernorm.kernel_ratio <= 9.0
               and 5.0 <= fusion.layernorm.bytes_ratio <= 9.0
               and fusion.adam.kernel_ratio > 100
               and fusion.adam.bytes_ratio < 10),
        evidence=(f"LN {fusion.layernorm.kernel_ratio:.0f}x kernels / "
                  f"{fusion.layernorm.bytes_ratio:.1f}x traffic; Adam "
                  f"{fusion.adam.kernel_ratio:.0f}x kernels / "
                  f"{fusion.adam.bytes_ratio:.1f}x traffic")))
    return checks


def render(checks: list[TakeawayCheck]) -> str:
    rows = [(c.takeaway_id, "PASS" if c.holds else "FAIL", c.claim,
             c.evidence) for c in checks]
    return format_table(("id", "status", "claim", "evidence"), rows)
