"""Fig. 8: impact of input size (mini-batch B and sequence length n).

Region breakdown across B in {4, 16, 32} at n=128 and across n=512 at
matched token counts.  Paper shapes: LAMB share falls from ~25% (B=4) to
~7% (B=32) because FWD/BWD work scales with tokens while the update does
not; moving tokens from B to n (Ph1-B16 -> Ph2-B4) raises the attention
operations' share from ~7% to ~17% (batched GEMMs ~3% -> ~8%) because
attention scales quadratically with n (Takeaway 10).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import (BERT_LARGE, BertConfig, Precision, TrainingConfig,
                          training_point)
from repro.experiments.fig4 import Fig4Row
from repro.hw.device import DeviceModel
from repro.report.tables import format_percent, format_table

#: The paper's Fig. 8 operating points, in display order.
DEFAULT_POINTS: tuple[TrainingConfig, ...] = (
    training_point(1, 4, Precision.FP32),
    training_point(1, 16, Precision.FP32),
    training_point(1, 32, Precision.FP32),
    training_point(2, 4, Precision.FP32),
    training_point(2, 16, Precision.FP32),
)


@dataclass(frozen=True)
class Fig8Row:
    """One Fig. 8 bar: region fractions plus token bookkeeping."""

    label: str
    tokens: int
    regions: Fig4Row

    @property
    def optimizer(self) -> float:
        return self.regions.optimizer

    @property
    def attention_ops(self) -> float:
        return self.regions.attention_ops

    @property
    def bgemm(self) -> float:
        return self.regions.attention_bgemm


def run(model: BertConfig = BERT_LARGE,
        points: tuple[TrainingConfig, ...] = DEFAULT_POINTS,
        device: DeviceModel | None = None) -> list[Fig8Row]:
    """Region breakdowns across the input-size sweep (one grid build)."""
    from repro.experiments.fig4 import row_from_profile
    from repro.grid.engine import grid_points, profile_grid

    profile = profile_grid(grid_points(model, points), device)
    return [Fig8Row(label=training.label,
                    tokens=training.tokens_per_iteration,
                    regions=row_from_profile(training.label,
                                             profile.point_profile(i)))
            for i, training in enumerate(points)]


def render(rows: list[Fig8Row]) -> str:
    """Sweep table: the load-bearing fractions per operating point."""
    table = [(row.label, row.tokens,
              format_percent(row.optimizer),
              format_percent(row.regions.linear_and_fc),
              format_percent(row.attention_ops),
              format_percent(row.bgemm),
              format_percent(row.regions.fc_gelu),
              format_percent(row.regions.dr_rc_ln))
             for row in rows]
    return format_table(
        ("point", "tokens", "LAMB", "linear+FC", "attn ops", "B-GEMM",
         "GeLU", "DR+RC+LN"), table)
