"""Sec. 4: effects of activation checkpointing.

BERT Large with sqrt(N)=4 checkpoints (recompute after every six layers).
Paper bands: ~33% more kernels, ~27% more runtime, in-layer breakdown
unchanged, LAMB share drops (its absolute time is unaffected).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from repro.config import (BERT_LARGE, BertConfig, Precision, TrainingConfig,
                          training_point)
from repro.experiments.common import default_device, run_point
from repro.hw.device import DeviceModel
from repro.memoryplan.footprint import training_footprint
from repro.profiler.breakdown import optimizer_fraction, region_breakdown
from repro.report.tables import format_percent, format_table


@dataclass(frozen=True)
class CheckpointingResult:
    """Baseline vs. checkpointed comparison.

    Attributes:
        kernels_base/kernels_ckpt: kernel counts.
        time_base_s/time_ckpt_s: iteration times.
        lamb_base/lamb_ckpt: LAMB fractions.
        activation_bytes_base/ckpt: saved-activation footprints.
        region_shift: largest absolute change in any in-layer region's
            share of transformer time (should be small).
    """

    kernels_base: int
    kernels_ckpt: int
    time_base_s: float
    time_ckpt_s: float
    lamb_base: float
    lamb_ckpt: float
    activation_bytes_base: int
    activation_bytes_ckpt: int
    region_shift: float

    @property
    def kernel_overhead(self) -> float:
        return self.kernels_ckpt / self.kernels_base - 1.0

    @property
    def runtime_overhead(self) -> float:
        return self.time_ckpt_s / self.time_base_s - 1.0

    @property
    def activation_savings(self) -> float:
        return 1.0 - self.activation_bytes_ckpt / self.activation_bytes_base


def _transformer_region_shares(profile) -> dict[str, float]:
    """In-layer region shares of *transformer* time (not iteration time)."""
    regions = region_breakdown(profile)
    transformer_total = sum(e.time_s for e in regions.values())
    return {name.value: e.time_s / transformer_total
            for name, e in regions.items()}


def run(model: BertConfig = BERT_LARGE,
        training: TrainingConfig | None = None,
        device: DeviceModel | None = None) -> CheckpointingResult:
    """Compare baseline and checkpointed training."""
    training = training or training_point(1, 32, Precision.FP32)
    if training.activation_checkpointing:
        raise ValueError("pass the baseline (non-checkpointed) config")
    device = device or default_device()
    checkpointed = dataclasses.replace(training,
                                       activation_checkpointing=True)

    trace_base, profile_base = run_point(model, training, device)
    trace_ckpt, profile_ckpt = run_point(model, checkpointed, device)

    shares_base = _transformer_region_shares(profile_base)
    shares_ckpt = _transformer_region_shares(profile_ckpt)
    region_shift = max(abs(shares_base[k] - shares_ckpt[k])
                       for k in shares_base)

    return CheckpointingResult(
        kernels_base=len(trace_base), kernels_ckpt=len(trace_ckpt),
        time_base_s=profile_base.total_time,
        time_ckpt_s=profile_ckpt.total_time,
        lamb_base=optimizer_fraction(profile_base),
        lamb_ckpt=optimizer_fraction(profile_ckpt),
        activation_bytes_base=training_footprint(model, training).activations,
        activation_bytes_ckpt=training_footprint(model,
                                                 checkpointed).activations,
        region_shift=region_shift,
    )


def render(result: CheckpointingResult) -> str:
    rows = [
        ("kernel count", result.kernels_base, result.kernels_ckpt,
         format_percent(result.kernel_overhead)),
        ("iteration time (ms)", f"{result.time_base_s * 1e3:.1f}",
         f"{result.time_ckpt_s * 1e3:.1f}",
         format_percent(result.runtime_overhead)),
        ("LAMB share", format_percent(result.lamb_base),
         format_percent(result.lamb_ckpt), "-"),
        ("activations (GB)",
         f"{result.activation_bytes_base / 1e9:.2f}",
         f"{result.activation_bytes_ckpt / 1e9:.2f}",
         f"-{format_percent(result.activation_savings)}"),
    ]
    return format_table(("metric", "baseline", "checkpointed", "delta"),
                        rows)
