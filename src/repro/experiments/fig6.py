"""Fig. 6: arithmetic intensity of every training GEMM in a Transformer
layer (Ph1-B32-FP32).

Each GEMM is labeled ``tA,tB,M,N,K[,batch]`` exactly as in the paper; the
figure's point is the heterogeneity: FC GEMMs are extremely compute
intense, linear GEMMs ~4x less so, and attention batched GEMMs barely
above the memory roofline (Takeaways 5/6).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import (BERT_LARGE, BertConfig, Precision, TrainingConfig,
                          training_point)
from repro.hw.device import DeviceModel, mi100
from repro.hw.gemm_model import gemm_time
from repro.ops.base import DType
from repro.ops.gemm import GemmShape
from repro.report.bars import horizontal_bar
from repro.trace.bert_trace import transformer_gemm_shapes


@dataclass(frozen=True)
class GemmIntensityRecord:
    """One Fig. 6 bar.

    Attributes:
        operation: sub-layer operation name (e.g. ``"fc1"``).
        pass_name: ``fwd`` / ``bwd_act`` / ``bwd_wt``.
        shape: the GEMM.
        intensity: ops/byte at FP32.
        memory_bound: whether the device model classifies it memory-bound.
    """

    operation: str
    pass_name: str
    shape: GemmShape
    intensity: float
    memory_bound: bool

    @property
    def label(self) -> str:
        return f"{self.operation}.{self.pass_name} [{self.shape.label}]"


def run(model: BertConfig = BERT_LARGE,
        training: TrainingConfig | None = None,
        device: DeviceModel | None = None,
        dtype: DType = DType.FP32) -> list[GemmIntensityRecord]:
    """Intensity records for every GEMM of one encoder layer."""
    training = training or training_point(1, 32, Precision.FP32)
    device = device or mi100()
    records = []
    for operation, passes in transformer_gemm_shapes(model, training).items():
        if operation == "linear_out":
            continue  # identical shape to "linear" at slicing=1
        for pass_name, shape in passes.items():
            breakdown = gemm_time(shape, dtype, device)
            records.append(GemmIntensityRecord(
                operation=operation, pass_name=pass_name, shape=shape,
                intensity=shape.arithmetic_intensity(dtype),
                memory_bound=breakdown.memory_bound))
    return records


def render(records: list[GemmIntensityRecord]) -> str:
    """ASCII bar chart of ops/byte per GEMM."""
    return horizontal_bar(
        [(r.label, r.intensity) for r in records], unit=" ops/B")
