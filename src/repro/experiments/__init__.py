"""Per-figure/table experiment modules and the registry."""

from repro.experiments import (energy_study, fig3, fig4, fig6, fig7, fig8,
                               fig9, fig11, fig12, fused_attention_study,
                               nmc_study, optimized_stack, packing_study,
                               pipeline_study, robustness, scaling_trends,
                               sec4, sec7_modes, sweeps, takeaways,
                               transfer_study, windowed_study, zero_study)

__all__ = ["energy_study", "fig3", "fig4", "fig6", "fig7", "fig8", "fig9",
           "fig11", "fig12", "fused_attention_study", "nmc_study",
           "optimized_stack", "packing_study", "pipeline_study",
           "robustness", "scaling_trends", "sec4", "sec7_modes", "sweeps",
           "takeaways", "transfer_study", "windowed_study", "zero_study"]


def __getattr__(name):
    # registry imports every experiment module; load it lazily so
    # `from repro.experiments import fig3` does not pay for the rest.
    if name in ("REGISTRY", "Experiment", "run_experiment", "run_all"):
        from repro.experiments import registry
        return getattr(registry, name)
    raise AttributeError(name)
