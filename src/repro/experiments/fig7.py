"""Fig. 7: arithmetic intensity and bandwidth demand of BERT's operation
groups (Ph1-B32-FP32).

For each phase — the GEMM families, LAMBStage1/2, Scale+Mask+DR+SM, GeLU
and DR+RC+LN — reports ops/byte and achieved memory bandwidth normalized
to the highest achieved by any BERT operation (the elementwise multiply),
exactly the two panels of the paper's Fig. 7.

Paper shape: every non-GEMM group sits at single-digit ops/byte with high
normalized bandwidth; attention batched GEMMs demand ~70% of the EW-mult
bandwidth while FC GEMMs demand only ~20%.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.config import (BERT_LARGE, BertConfig, Precision, TrainingConfig,
                          training_point)
from repro.experiments.common import run_point
from repro.hw.device import DeviceModel
from repro.ops.base import Kernel, OpClass, Region
from repro.profiler.profiler import Profile
from repro.report.tables import format_table


@dataclass(frozen=True)
class OpGroupRecord:
    """One Fig. 7 group.

    Attributes:
        label: group label.
        flops/bytes_total/time_s: totals over the group's kernels.
        intensity: ops per byte.
        bandwidth: achieved bytes/s.
        normalized_bandwidth: relative to the EW-multiply reference.
    """

    label: str
    flops: int
    bytes_total: int
    time_s: float
    normalized_bandwidth: float

    @property
    def intensity(self) -> float:
        return self.flops / self.bytes_total if self.bytes_total else 0.0

    @property
    def bandwidth(self) -> float:
        return self.bytes_total / self.time_s if self.time_s else 0.0


def _group_selectors() -> list[tuple[str, Callable[[Kernel], bool]]]:
    """(label, kernel predicate) for every Fig. 7 bar."""
    def region_is(region: Region, gemm: bool | None = None):
        def predicate(k: Kernel) -> bool:
            if k.region is not region:
                return False
            if gemm is None:
                return True
            return k.op_class.is_gemm == gemm
        return predicate

    return [
        ("FC GEMMs", region_is(Region.FC_GEMM, gemm=True)),
        ("Linear GEMMs", region_is(Region.ATTENTION_LINEAR, gemm=True)),
        ("Attn B-GEMMs", region_is(Region.ATTENTION_BGEMM, gemm=True)),
        ("LAMBStage1", region_is(Region.OPT_STAGE1)),
        ("LAMBStage2", region_is(Region.OPT_STAGE2)),
        ("Scale+Mask+DR+SM", region_is(Region.ATTENTION_SMDSM)),
        ("GeLU", region_is(Region.FC_GELU)),
        ("DR+RC+LN", region_is(Region.DR_RC_LN)),
        ("EW multiply", lambda k: k.op_class is OpClass.ELEMENTWISE
         and k.region is Region.DR_RC_LN and "dropout" in k.name),
    ]


def _group_totals(profile: Profile,
                  predicate: Callable[[Kernel], bool]) -> tuple[int, int, float]:
    records = profile.records_where(predicate)
    flops = sum(r.kernel.flops for r in records)
    moved = sum(r.kernel.bytes_total for r in records)
    time_s = sum(r.time_s for r in records)
    return flops, moved, time_s


def run(model: BertConfig = BERT_LARGE,
        training: TrainingConfig | None = None,
        device: DeviceModel | None = None) -> list[OpGroupRecord]:
    """Compute the Fig. 7 records."""
    training = training or training_point(1, 32, Precision.FP32)
    _, profile = run_point(model, training, device)

    raw = []
    for label, predicate in _group_selectors():
        flops, moved, time_s = _group_totals(profile, predicate)
        if time_s <= 0:
            raise ValueError(f"group {label!r} matched no kernels")
        raw.append((label, flops, moved, time_s))

    reference = max(moved / time_s for _, _, moved, time_s in raw)
    return [OpGroupRecord(label=label, flops=flops, bytes_total=moved,
                          time_s=time_s,
                          normalized_bandwidth=(moved / time_s) / reference)
            for label, flops, moved, time_s in raw]


def render(records: list[OpGroupRecord]) -> str:
    """Two-column table: ops/byte and normalized bandwidth per group."""
    rows = [(r.label, f"{r.intensity:8.2f}",
             f"{r.normalized_bandwidth * 100:5.1f}%") for r in records]
    return format_table(("operation group", "ops/byte", "norm. bandwidth"),
                        rows)
