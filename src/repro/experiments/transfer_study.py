"""Sec. 7: architecture-agnostic transferability of the takeaways.

The paper argues one can "approximately extrapolate these proportions to
another device by comparing the device's compute and memory bandwidth
ratios," and that takeaways about memory-boundedness "will either hold or
be amplified" as compute outpaces memory.  This study runs the Ph1-B32
profile on several device models and checks:

* devices with similar compute/bandwidth ratios produce similar
  breakdowns (MI100-like vs. V100-like);
* a compute-heavy device (A100-like) shifts time toward the memory-bound
  operations, never away from them;
* the qualitative orderings (Transformer dominates; FC > linear >
  attention B-GEMM; LAMB second at small batch) hold on every device.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import (BERT_LARGE, BertConfig, Precision, TrainingConfig,
                          training_point)
from repro.hw.device import DeviceModel, a100_like, mi100, v100_like
from repro.ops.base import DType
from repro.profiler.breakdown import summarize
from repro.profiler.profiler import profile_trace
from repro.report.tables import format_percent, format_table
from repro.trace.bert_trace import build_iteration_trace


@dataclass(frozen=True)
class DeviceProfileRow:
    """One device's headline fractions at the reference operating point.

    Attributes:
        device_name: device label.
        balance: effective FP32 GEMM ops/byte machine balance.
        iteration_s: modeled iteration time.
        gemm / non_gemm / optimizer / transformer: runtime fractions.
    """

    device_name: str
    balance: float
    iteration_s: float
    gemm: float
    non_gemm: float
    optimizer: float
    transformer: float


def run(model: BertConfig = BERT_LARGE,
        training: TrainingConfig | None = None,
        devices: tuple[DeviceModel, ...] | None = None
        ) -> list[DeviceProfileRow]:
    """Profile the same iteration on every device."""
    training = training or training_point(1, 32, Precision.FP32)
    devices = devices or (mi100(), v100_like(), a100_like())
    trace = build_iteration_trace(model, training)
    rows = []
    for device in devices:
        stats = summarize(profile_trace(trace, device))
        rows.append(DeviceProfileRow(
            device_name=device.name,
            balance=device.machine_balance(DType.FP32),
            iteration_s=stats["total_time_s"],
            gemm=stats["gemm"], non_gemm=stats["non_gemm"],
            optimizer=stats["optimizer"],
            transformer=stats["transformer"]))
    return rows


def render(rows: list[DeviceProfileRow]) -> str:
    table = [(r.device_name, f"{r.balance:.0f} ops/B",
              f"{r.iteration_s * 1e3:.0f} ms",
              format_percent(r.gemm), format_percent(r.non_gemm),
              format_percent(r.optimizer), format_percent(r.transformer))
             for r in rows]
    return format_table(("device", "balance", "iteration", "GEMM",
                         "non-GEMM", "LAMB", "transformer"), table)
