"""Sec. 7 (Discussion): inference and fine-tuning profiles.

Checks the paper's two extension claims numerically:

* fine-tuning keeps pre-training's profile with a negligible output layer
  ("the Transformer layers still dominate the runtime");
* inference drops backprop and LAMB, with the Transformer-layer breakdown
  similar to pre-training's forward slice ("backpropagation has
  approximately 2x more operations as a forward pass with similar
  properties").
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import (BERT_LARGE, BertConfig, Precision, TrainingConfig,
                          training_point)
from repro.experiments.common import default_device
from repro.hw.device import DeviceModel
from repro.profiler.breakdown import summarize
from repro.profiler.profiler import profile_trace
from repro.report.tables import format_percent, format_table
from repro.trace.bert_trace import build_iteration_trace
from repro.trace.variants import build_finetuning_trace, build_inference_trace


@dataclass(frozen=True)
class ModeProfile:
    """Summary of one execution mode.

    Attributes:
        mode: ``"pretraining"`` / ``"finetuning"`` / ``"inference"``.
        total_s: modeled time for one pass/iteration.
        transformer/output/optimizer: fractions of that time.
        gemm: GEMM share.
    """

    mode: str
    total_s: float
    transformer: float
    output: float
    optimizer: float
    gemm: float


def run(model: BertConfig = BERT_LARGE,
        training: TrainingConfig | None = None,
        device: DeviceModel | None = None) -> list[ModeProfile]:
    """Profiles of the three execution modes at one operating point."""
    training = training or training_point(1, 32, Precision.FP32)
    device = device or default_device()
    traces = {
        "pretraining": build_iteration_trace(model, training),
        "finetuning": build_finetuning_trace(model, training),
        "inference": build_inference_trace(model, training),
    }
    profiles = []
    for mode, trace in traces.items():
        stats = summarize(profile_trace(trace, device))
        profiles.append(ModeProfile(
            mode=mode, total_s=stats["total_time_s"],
            transformer=stats["transformer"], output=stats["output"],
            optimizer=stats["optimizer"], gemm=stats["gemm"]))
    return profiles


def render(profiles: list[ModeProfile]) -> str:
    rows = [(p.mode, f"{p.total_s * 1e3:.1f} ms",
             format_percent(p.transformer), format_percent(p.output),
             format_percent(p.optimizer), format_percent(p.gemm))
            for p in profiles]
    return format_table(("mode", "time", "transformer", "output", "LAMB",
                         "GEMMs"), rows)
