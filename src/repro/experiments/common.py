"""Shared plumbing for the per-figure experiment modules.

Every experiment runs against the same frozen MI100-like device model —
there is no per-figure tuning (DESIGN.md Sec. 5).  Traces and profiles are
memoized because several figures share operating points; the memo is the
content-addressed disk cache of :mod:`repro.runner.cache` (keyed on model,
training, device fingerprint and code version), fronted by a small
in-process table so repeated points within one invocation do not touch
disk.

Callers always receive *independent views*: the seed's ``lru_cache`` handed
every caller the same mutable ``Trace``/``Profile``, so a fusion or
checkpointing transform that mutated ``trace.kernels`` silently corrupted
the cache for all later figures.  ``fork()`` hands each caller its own
view — columnar-backed traces/profiles share the frozen backing arrays
(copy-free), while materialized ones copy their containers.
"""

from __future__ import annotations

from repro.config import BertConfig, TrainingConfig
from repro.hw.device import DeviceModel, mi100
from repro.profiler.profiler import Profile, profile_trace
from repro.runner import telemetry
from repro.runner.cache import get_cache
from repro.trace.bert_trace import build_iteration_trace
from repro.trace.builder import Trace
from repro.trace.passes import PassManager


def default_device() -> DeviceModel:
    """The frozen device every experiment is evaluated on."""
    return mi100()


# In-process front of the disk cache: key -> canonical (Trace, Profile).
# The canonical objects are never handed out; callers get fork()ed views.
_memo: dict[str, tuple[Trace, Profile]] = {}


def clear_memo() -> None:
    """Drop the in-process memo (tests; the disk cache is unaffected)."""
    _memo.clear()


def run_point(model: BertConfig, training: TrainingConfig,
              device: DeviceModel | None = None, *,
              passes: "PassManager | None" = None) -> tuple[Trace, Profile]:
    """Trace + profile of one operating point.

    Results are cached on disk, content-addressed by ``(model, training,
    device fingerprint, code version, pass-pipeline signature)``, and
    survive across invocations.  ``passes`` — a
    :class:`~repro.trace.passes.PassManager` — is applied to the generated
    trace before profiling; its :attr:`~repro.trace.passes.PassManager.
    signature` joins the cache key, so transformed variants of the same
    point never collide with the raw one.  The returned objects are
    private to the caller — mutating them cannot corrupt later fetches.
    """
    if device is None:
        device = default_device()
    cache = get_cache()
    pipeline = passes.signature if passes is not None else ""
    key = cache.key(model, training, device, pipeline=pipeline)

    entry = _memo.get(key)
    hit = entry is not None
    if entry is None:
        entry = cache.get(key)
        hit = entry is not None
        if entry is None:
            trace = build_iteration_trace(model, training)
            if passes is not None and passes.passes:
                trace = passes.run(trace)
            entry = (trace, profile_trace(trace, device))
            cache.put(key, *entry)
        _memo[key] = entry

    collector = telemetry.current()
    if collector is not None:
        collector.record_point(kernels=len(entry[0]), hit=hit)
    return entry[0].fork(), entry[1].fork()
