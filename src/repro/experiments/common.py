"""Shared plumbing for the per-figure experiment modules.

Every experiment runs against the same frozen MI100-like device model —
there is no per-figure tuning (DESIGN.md Sec. 5).  Traces and profiles are
memoized because several figures share operating points.
"""

from __future__ import annotations

from functools import lru_cache

from repro.config import BertConfig, TrainingConfig
from repro.hw.device import DeviceModel, mi100
from repro.profiler.profiler import Profile, profile_trace
from repro.trace.bert_trace import build_iteration_trace
from repro.trace.builder import Trace


def default_device() -> DeviceModel:
    """The frozen device every experiment is evaluated on."""
    return mi100()


@lru_cache(maxsize=64)
def _cached(model: BertConfig, training: TrainingConfig,
            device_name: str) -> tuple[Trace, Profile]:
    device = default_device()
    if device.name != device_name:
        raise ValueError("cache only supports the default device")
    trace = build_iteration_trace(model, training)
    return trace, profile_trace(trace.kernels, device)


def run_point(model: BertConfig, training: TrainingConfig,
              device: DeviceModel | None = None) -> tuple[Trace, Profile]:
    """Trace + profile of one operating point.

    Results are cached for the default device; custom devices are profiled
    directly.
    """
    if device is None or device.name == default_device().name:
        return _cached(model, training, default_device().name)
    trace = build_iteration_trace(model, training)
    return trace, profile_trace(trace.kernels, device)
