"""Fig. 9: impact of Transformer layer size (C1 / C2 / C3 sweep).

C1 halves BERT Large's hidden sizes, C2 is BERT Large, C3 doubles them
(Megatron-LM-BERT-like).  Paper shapes: GEMM and LAMB proportions grow
with layer width because both scale quadratically with ``d_model`` while
the other layer operations scale linearly (Takeaway 11; LAMB reaches ~34%
at C3 in the paper's per-token-matched setting); within the Transformer,
FC grows relative to attention.

Layer *count* (N) scaling is also provided: it leaves the in-layer
breakdown unchanged while slightly growing the Transformer+LAMB share
(Obs. 4).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import (C1, C2, C3, BertConfig, Precision, TrainingConfig,
                          training_point)
from repro.experiments.fig4 import Fig4Row
from repro.hw.device import DeviceModel
from repro.report.tables import format_percent, format_table

#: Width sweep of the paper's Fig. 9.
WIDTH_CONFIGS: tuple[BertConfig, ...] = (C1, C2, C3)


@dataclass(frozen=True)
class Fig9Row:
    """One Fig. 9 bar."""

    config_name: str
    d_model: int
    num_layers: int
    parameters: int
    regions: Fig4Row

    @property
    def optimizer(self) -> float:
        return self.regions.optimizer

    @property
    def gemm_total(self) -> float:
        return self.regions.gemm_total

    @property
    def fc_to_attention(self) -> float:
        """FC time relative to attention time within the layer."""
        attention = (self.regions.attention_linear
                     + self.regions.attention_ops)
        fc = self.regions.fc_gemm + self.regions.fc_gelu
        return fc / attention if attention else 0.0


def run(configs: tuple[BertConfig, ...] = WIDTH_CONFIGS,
        training: TrainingConfig | None = None,
        device: DeviceModel | None = None) -> list[Fig9Row]:
    """Region breakdowns across the layer-width sweep.

    The paper scales width at a fixed per-iteration input (its Fig. 9 uses
    a small batch so the C3 model fits in device memory); the default here
    is B=8, Phase-1, FP32, where both of Takeaway 11's monotone trends —
    linear+FC GEMM share and LAMB share growing with width — are visible
    and LAMB approaches the paper's ~34% at C3.
    """
    from repro.experiments.fig4 import row_from_profile
    from repro.grid.engine import profile_grid

    training = training or training_point(1, 8, Precision.FP32)
    # One stacked grid across *models*: each config is its own stamp
    # family, but the whole sweep is still priced in one timing call.
    profile = profile_grid([(config, training) for config in configs],
                           device)
    rows = []
    for i, config in enumerate(configs):
        rows.append(Fig9Row(config_name=config.name, d_model=config.d_model,
                            num_layers=config.num_layers,
                            parameters=config.total_parameters(),
                            regions=row_from_profile(
                                training.label,
                                profile.point_profile(i))))
    return rows


def run_depth_sweep(base: BertConfig = C2, layer_counts=(12, 24, 48),
                    training: TrainingConfig | None = None,
                    device: DeviceModel | None = None) -> list[Fig9Row]:
    """Layer-count (N) scaling at fixed width (Obs. 4)."""
    configs = tuple(base.scaled(num_layers=n, name=f"{base.name}-N{n}")
                    for n in layer_counts)
    return run(configs, training, device)


def render(rows: list[Fig9Row]) -> str:
    """Width-sweep table of the load-bearing fractions."""
    table = [(row.config_name, row.d_model, row.num_layers,
              f"{row.parameters / 1e6:.0f}M",
              format_percent(row.gemm_total),
              format_percent(row.regions.linear_and_fc),
              format_percent(row.optimizer),
              f"{row.fc_to_attention:.2f}x")
             for row in rows]
    return format_table(
        ("config", "d_model", "N", "params", "GEMMs", "linear+FC", "LAMB",
         "FC/attention"), table)
