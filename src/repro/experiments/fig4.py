"""Fig. 4: hierarchical breakdown of the Transformer layers.

Four bar levels for Ph1-B32 in FP32 and mixed precision:

1. overall (Fig. 3's bar),
2. Transformer = attention + FC + DR/RC/LN,
3. attention = linear GEMMs + batched GEMMs + scale/mask/dropout/softmax,
4. FC = GEMMs(+grads) + GeLU.

All fractions are of *overall* iteration time, matching the paper's labels.
Paper bands (FP32 -> MP): linear+FC GEMM regions 57% -> 42%; attention ops
(BGEMM + SMDSM) 7% -> 9%; GeLU 13% -> 15%; DR+RC+LN 5% -> 9%; total GEMM
share 55% -> 36%.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import (BERT_LARGE, BertConfig, Precision, TrainingConfig,
                          training_point)
from repro.experiments.common import run_point
from repro.hw.device import DeviceModel
from repro.ops.base import Region
from repro.profiler.breakdown import (gemm_fraction, region_breakdown,
                                      summarize)
from repro.report.tables import format_percent, format_table


@dataclass(frozen=True)
class Fig4Row:
    """Hierarchical fractions for one precision.

    All fields are fractions of overall iteration time.
    """

    label: str
    attention_linear: float
    attention_bgemm: float
    attention_smdsm: float
    fc_gemm: float
    fc_gelu: float
    dr_rc_ln: float
    gemm_total: float
    optimizer: float

    @property
    def linear_and_fc(self) -> float:
        """The paper's "linear and FC layers" slice."""
        return self.attention_linear + self.fc_gemm

    @property
    def attention_ops(self) -> float:
        """The paper's "attention operations" slice (Takeaway 4)."""
        return self.attention_bgemm + self.attention_smdsm

    @property
    def non_gemm(self) -> float:
        return 1.0 - self.gemm_total


def row_from_profile(label: str, profile) -> Fig4Row:
    """Hierarchical fractions of an already-computed profile.

    Shared by the loop path (:func:`run_one`) and the grid-engine sweeps
    (fig8/fig9/scaling trends), which hand in per-point profiles sliced
    from one batched grid evaluation.
    """
    regions = region_breakdown(profile)
    summary = summarize(profile)
    return Fig4Row(
        label=label,
        attention_linear=regions[Region.ATTENTION_LINEAR].fraction,
        attention_bgemm=regions[Region.ATTENTION_BGEMM].fraction,
        attention_smdsm=regions[Region.ATTENTION_SMDSM].fraction,
        fc_gemm=regions[Region.FC_GEMM].fraction,
        fc_gelu=regions[Region.FC_GELU].fraction,
        dr_rc_ln=regions[Region.DR_RC_LN].fraction,
        gemm_total=gemm_fraction(profile),
        optimizer=summary["optimizer"],
    )


def run_one(training: TrainingConfig, model: BertConfig = BERT_LARGE,
            device: DeviceModel | None = None) -> Fig4Row:
    """Hierarchical fractions at one operating point."""
    _, profile = run_point(model, training, device)
    return row_from_profile(training.label, profile)


def run(model: BertConfig = BERT_LARGE, batch_size: int = 32,
        device: DeviceModel | None = None) -> dict[str, Fig4Row]:
    """FP32 and mixed-precision rows for Phase-1 at ``batch_size``."""
    return {
        "fp32": run_one(training_point(1, batch_size, Precision.FP32),
                        model, device),
        "mixed": run_one(training_point(1, batch_size, Precision.MIXED),
                         model, device),
    }


def render(rows: dict[str, Fig4Row]) -> str:
    """Side-by-side FP32 vs. MP table of every Fig. 4 slice."""
    fp32, mixed = rows["fp32"], rows["mixed"]
    slices = [
        ("attention: linear GEMMs", "attention_linear"),
        ("attention: batched GEMMs", "attention_bgemm"),
        ("attention: scale+mask+DR+SM", "attention_smdsm"),
        ("FC: GEMMs (+grads)", "fc_gemm"),
        ("FC: GeLU", "fc_gelu"),
        ("DR+RC+LN", "dr_rc_ln"),
        ("all GEMMs", "gemm_total"),
        ("LAMB update", "optimizer"),
    ]
    table_rows = [(name,
                   format_percent(getattr(fp32, attr)),
                   format_percent(getattr(mixed, attr)))
                  for name, attr in slices]
    return format_table(("slice of iteration", fp32.label, mixed.label),
                        table_rows)
