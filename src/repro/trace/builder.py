"""Trace container and builder.

A :class:`Trace` is the ordered kernel sequence of one training iteration —
the software-side analogue of the rocProf kernel trace the paper collects
(Sec. 3.1.4).  It knows nothing about time; devices assign that later.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator

from repro.config import BertConfig, TrainingConfig
from repro.ops.base import Component, Kernel, OpClass, Phase, Region


@dataclass
class Trace:
    """Ordered kernel sequence of one training iteration.

    Attributes:
        model: model configuration the trace was generated for.
        training: training operating point.
        kernels: the kernel sequence, in launch order.
    """

    model: BertConfig
    training: TrainingConfig
    kernels: list[Kernel] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.kernels)

    def __iter__(self) -> Iterator[Kernel]:
        return iter(self.kernels)

    # ------------------------------------------------------------- selection
    def select(self, *, phase: Phase | None = None,
               component: Component | None = None,
               region: Region | None = None,
               op_class: OpClass | None = None,
               layer_index: int | None = None,
               predicate: Callable[[Kernel], bool] | None = None
               ) -> list[Kernel]:
        """Kernels matching all the given filters."""
        out = []
        for kernel in self.kernels:
            if phase is not None and kernel.phase is not phase:
                continue
            if component is not None and kernel.component is not component:
                continue
            if region is not None and kernel.region is not region:
                continue
            if op_class is not None and kernel.op_class is not op_class:
                continue
            if layer_index is not None and kernel.layer_index != layer_index:
                continue
            if predicate is not None and not predicate(kernel):
                continue
            out.append(kernel)
        return out

    def gemms(self) -> list[Kernel]:
        """All (batched) GEMM kernels."""
        return [k for k in self.kernels if k.op_class.is_gemm]

    def non_gemms(self) -> list[Kernel]:
        """All non-GEMM kernels."""
        return [k for k in self.kernels if not k.op_class.is_gemm]

    # ------------------------------------------------------------ aggregates
    @property
    def total_flops(self) -> int:
        return sum(k.flops for k in self.kernels)

    @property
    def total_bytes(self) -> int:
        return sum(k.bytes_total for k in self.kernels)

    def kernel_count(self, **filters) -> int:
        """Number of kernels matching :meth:`select` filters."""
        return len(self.select(**filters))

    def replaced(self, kernels: list[Kernel]) -> "Trace":
        """A copy of this trace with a different kernel sequence."""
        return Trace(model=self.model, training=self.training,
                     kernels=list(kernels))


class TraceBuilder:
    """Incremental trace construction with layer attribution.

    Sub-layer emitters append kernels through :meth:`add`; the builder stamps
    the current layer index so breakdowns can attribute kernels without the
    emitters threading it everywhere.
    """

    def __init__(self, model: BertConfig, training: TrainingConfig):
        self._trace = Trace(model=model, training=training)
        self._layer_index: int | None = None

    @property
    def model(self) -> BertConfig:
        return self._trace.model

    @property
    def training(self) -> TrainingConfig:
        return self._trace.training

    def set_layer(self, layer_index: int | None) -> None:
        """Set the encoder-layer attribution for subsequently added kernels."""
        self._layer_index = layer_index

    def add(self, kernels: Kernel | Iterable[Kernel]) -> None:
        """Append kernel(s), stamping the current layer index."""
        if isinstance(kernels, Kernel):
            kernels = [kernels]
        for kernel in kernels:
            if self._layer_index is not None and kernel.layer_index is None:
                kernel = kernel.with_layer(self._layer_index)
            self._trace.kernels.append(kernel)

    def build(self) -> Trace:
        """Finish and return the trace."""
        return self._trace
