"""Trace container and builder.

A :class:`Trace` is the ordered kernel sequence of one training iteration —
the software-side analogue of the rocProf kernel trace the paper collects
(Sec. 3.1.4).  It knows nothing about time; devices assign that later.

Since the columnar engine landed, a trace has two interchangeable
representations:

* a :class:`~repro.trace.kernel_table.KernelTable` — parallel NumPy columns,
  produced by the layer-templated generators and consumed by the vectorized
  timing/aggregation paths and the runner cache;
* a ``list[Kernel]`` — the original object view, materialized lazily the
  first time ``trace.kernels`` is touched, for callers that still want
  per-kernel objects (tests, reference oracles, ad-hoc inspection).

The list, once materialized, is the mutable, authoritative side; the table
is rebuilt whenever the list no longer mirrors the snapshot it was last
built from — element identity, not just length, so in-place replacement of
a kernel (same count, different object) invalidates it too.  Tables are
immutable, so handing the same table to several ``Trace`` views is safe.

Transform passes (:mod:`repro.trace.passes`) never materialize the list:
they rewrite ``trace.table`` directly and wrap the result in a new
table-backed ``Trace`` view.
"""

from __future__ import annotations

import operator
from typing import Callable, Iterable, Iterator

from repro.config import BertConfig, TrainingConfig
from repro.obs import spans
from repro.ops.base import Component, Kernel, OpClass, Phase, Region
from repro.trace.kernel_table import KernelTable


class Trace:
    """Ordered kernel sequence of one training iteration.

    Attributes:
        model: model configuration the trace was generated for.
        training: training operating point.
        kernels: the kernel sequence, in launch order (lazily materialized
            when the trace is table-backed).
        table: the columnar form (lazily built when the trace is
            list-backed).
    """

    def __init__(self, model: BertConfig, training: TrainingConfig,
                 kernels: list[Kernel] | None = None, *,
                 table: KernelTable | None = None):
        self.model = model
        self.training = training
        if kernels is None and table is None:
            kernels = []
        self._kernels: list[Kernel] | None = (
            list(kernels) if kernels is not None else None)
        self._table = table
        # Snapshot of the kernel list the current table was built from
        # (or materialized into); any divergence — append, removal, or
        # same-length element replacement — marks the table stale.
        self._table_src: list[Kernel] | None = None
        # (source table, flops, bytes) backing the cached aggregates;
        # keyed on table identity so any rebuild invalidates it.
        self._agg_cache: tuple[KernelTable, int, int] | None = None

    @classmethod
    def from_table(cls, model: BertConfig, training: TrainingConfig,
                   table: KernelTable) -> "Trace":
        """A trace view over an existing (immutable) columnar table."""
        return cls(model, training, kernels=None, table=table)

    @classmethod
    def from_schedule(cls, model: BertConfig, training: TrainingConfig,
                      schedule) -> "Trace":
        """A trace lowered from a lazy tensor schedule.

        ``schedule`` is an ordered list of :class:`~repro.tensor.lazy.
        LazyOp` realize-items — either the analytic iteration graph
        (:func:`repro.trace.lowerer.bert_iteration_graph`) or the
        executed schedule of a model run under ``lazy_mode``.  Execution
        and tracing share one linearization; see
        :func:`repro.trace.lowerer.lower_schedule`.
        """
        from repro.trace.lowerer import lower_schedule

        return cls.from_table(model, training, lower_schedule(schedule))

    # -------------------------------------------------------- representations
    @property
    def kernels(self) -> list[Kernel]:
        """The kernel list, materialized from the table on first access."""
        if self._kernels is None:
            self._kernels = self._table.to_kernels()
            self._table_src = list(self._kernels)
        return self._kernels

    def _list_matches_table(self) -> bool:
        """Whether the materialized list still mirrors the table.

        Compared element-by-element against the snapshot by identity, so
        in-place replacement of a kernel (length unchanged) is caught, not
        just appends.  Kernels are frozen dataclasses, so identity is the
        right notion of "same row".
        """
        if self._kernels is None:
            return True  # table-backed, never materialized: authoritative
        source = self._table_src
        return (source is not None and len(self._kernels) == len(source)
                and all(map(operator.is_, self._kernels, source)))

    @property
    def table(self) -> KernelTable:
        """The columnar form, rebuilt whenever the kernel list diverged."""
        if self._table is None or not self._list_matches_table():
            with spans.span("trace.columnarize",
                            kernels=len(self._kernels)):
                self._table = KernelTable.from_kernels(self._kernels)
            self._table_src = list(self._kernels)
        return self._table

    def _columnar(self) -> KernelTable | None:
        """The table, only while it is authoritative (list untouched)."""
        return self._table if self._kernels is None else None

    def fork(self) -> "Trace":
        """An independent view for another caller.

        Table-backed traces share the immutable table (cheap); list-backed
        traces copy the container (kernels themselves are frozen).
        """
        if self._kernels is None:
            return Trace.from_table(self.model, self.training, self._table)
        return Trace(model=self.model, training=self.training,
                     kernels=self._kernels)

    def __len__(self) -> int:
        if self._kernels is None:
            return len(self._table)
        return len(self._kernels)

    def __iter__(self) -> Iterator[Kernel]:
        return iter(self.kernels)

    def __eq__(self, other) -> bool:
        if not isinstance(other, Trace):
            return NotImplemented
        return (self.model == other.model and self.training == other.training
                and self.kernels == other.kernels)

    def __repr__(self) -> str:
        return (f"Trace(model={self.model.name!r}, "
                f"training={self.training.label!r}, kernels={len(self)})")

    # --------------------------------------------------------------- pickling
    def __getstate__(self) -> dict:
        # Always serialize the compact columnar form: the runner cache then
        # stores a handful of arrays + pools instead of thousands of
        # dataclass objects, and loads stay lazy.
        return {"model": self.model, "training": self.training,
                "table": self.table}

    def __setstate__(self, state: dict) -> None:
        self.model = state["model"]
        self.training = state["training"]
        self._kernels = None
        self._table = state["table"]
        self._table_src = None
        self._agg_cache = None

    # ------------------------------------------------------------- selection
    def select(self, *, phase: Phase | None = None,
               component: Component | None = None,
               region: Region | None = None,
               op_class: OpClass | None = None,
               layer_index: int | None = None,
               predicate: Callable[[Kernel], bool] | None = None
               ) -> list[Kernel]:
        """Kernels matching all the given filters."""
        table = self._columnar()
        if table is not None:
            mask = table.mask(phase=phase, component=component, region=region,
                              op_class=op_class, layer_index=layer_index)
            rows = mask.nonzero()[0]
            kernels = table.kernels_at(rows)
            if predicate is not None:
                kernels = [k for k in kernels if predicate(k)]
            return kernels
        out = []
        for kernel in self.kernels:
            if phase is not None and kernel.phase is not phase:
                continue
            if component is not None and kernel.component is not component:
                continue
            if region is not None and kernel.region is not region:
                continue
            if op_class is not None and kernel.op_class is not op_class:
                continue
            if layer_index is not None and kernel.layer_index != layer_index:
                continue
            if predicate is not None and not predicate(kernel):
                continue
            out.append(kernel)
        return out

    def gemms(self) -> list[Kernel]:
        """All (batched) GEMM kernels."""
        table = self._columnar()
        if table is not None:
            return table.kernels_at(table.is_gemm.nonzero()[0])
        return [k for k in self.kernels if k.op_class.is_gemm]

    def non_gemms(self) -> list[Kernel]:
        """All non-GEMM kernels."""
        table = self._columnar()
        if table is not None:
            return table.kernels_at((~table.is_gemm).nonzero()[0])
        return [k for k in self.kernels if not k.op_class.is_gemm]

    # ------------------------------------------------------------ aggregates
    def _aggregates(self) -> tuple[int, int]:
        """(total flops, total bytes), cached per source table.

        Sweeps call these per operating point and per report row, so
        recomputing the sums on every access was quadratic over a session.
        Keying on the table object (rebuilt by the ``table`` property
        whenever the kernel list diverges — including same-length in-place
        replacement) makes the cache stale-proof.
        """
        table = self.table
        if self._agg_cache is None or self._agg_cache[0] is not table:
            self._agg_cache = (table, int(table.flops.sum()),
                               int(table.bytes_total.sum()))
        return self._agg_cache[1], self._agg_cache[2]

    @property
    def total_flops(self) -> int:
        return self._aggregates()[0]

    @property
    def total_bytes(self) -> int:
        return self._aggregates()[1]

    def kernel_count(self, **filters) -> int:
        """Number of kernels matching :meth:`select` filters."""
        table = self._columnar()
        if table is not None and "predicate" not in filters:
            return int(table.mask(**filters).sum())
        return len(self.select(**filters))

    def replaced(self, kernels: list[Kernel]) -> "Trace":
        """A copy of this trace with a different kernel sequence."""
        return Trace(model=self.model, training=self.training,
                     kernels=list(kernels))


class TraceBuilder:
    """Incremental trace construction with layer attribution.

    Sub-layer emitters append kernels through :meth:`add`; the builder stamps
    the current layer index so breakdowns can attribute kernels without the
    emitters threading it everywhere.
    """

    def __init__(self, model: BertConfig, training: TrainingConfig):
        self._trace = Trace(model=model, training=training)
        self._layer_index: int | None = None

    @property
    def model(self) -> BertConfig:
        return self._trace.model

    @property
    def training(self) -> TrainingConfig:
        return self._trace.training

    def set_layer(self, layer_index: int | None) -> None:
        """Set the encoder-layer attribution for subsequently added kernels."""
        self._layer_index = layer_index

    def add(self, kernels: Kernel | Iterable[Kernel]) -> None:
        """Append kernel(s), stamping the current layer index."""
        if isinstance(kernels, Kernel):
            kernels = [kernels]
        for kernel in kernels:
            if self._layer_index is not None and kernel.layer_index is None:
                kernel = kernel.with_layer(self._layer_index)
            self._trace.kernels.append(kernel)

    def build(self) -> Trace:
        """Finish and return the trace."""
        with spans.span("trace.builder.build", model=self.model.name,
                        kernels=len(self._trace)):
            return self._trace
