"""Reference (pre-columnar) trace/profile implementations.

The columnar engine — layer-templated builds in
:mod:`repro.trace.bert_trace`, the batched timing of
:func:`repro.hw.timing.kernel_times`, the masked-reduction aggregation of
:class:`~repro.profiler.profiler.Profile` — is an *optimization*, not a
model change: every operating point must produce the same kernels with the
same times.  This module keeps the original implementations alive as the
oracle that claim is checked against:

* :func:`reference_iteration_trace` / :func:`reference_inference_trace` /
  :func:`reference_finetuning_trace` re-walk the model once per encoder
  layer through :class:`~repro.trace.builder.TraceBuilder`, exactly as the
  seed did, instead of stamping a layer-0 template;
* :func:`reference_profile` times kernels one by one through the scalar
  :func:`repro.hw.timing.kernel_time`;
* :func:`reference_summarize` computes the headline fractions by predicate
  scans over the record list;
* :func:`reference_fuse_elementwise_chains`,
  :func:`reference_apply_checkpointing`,
  :func:`reference_apply_fused_attention`,
  :func:`reference_apply_windowed_attention` and
  :func:`reference_sliced_iteration_trace` are the original list-scan
  trace transforms, kept as the oracles the vectorized passes of
  :mod:`repro.trace.passes` (and the modules they live in) are pinned
  against.

``tests/test_profile_engine_golden.py`` and ``tests/test_passes.py`` run
both engines over the registry's operating points and require identical
kernels, bit-identical per-kernel times, and matching breakdown fractions.
``benchmarks/bench_profile_engine.py`` / ``benchmarks/bench_pass_pipeline.py``
use the same functions as the honest "before" timings.
"""

from __future__ import annotations

from repro.config import BertConfig, TrainingConfig
from repro.hw.device import DeviceModel
from repro.hw.timing import kernel_time
from repro.ops.base import Component, Kernel
from repro.profiler.profiler import KernelProfile, Profile
from repro.trace.bert_trace import (embedding_backward_kernels,
                                    embedding_forward_kernels,
                                    output_head_backward_kernels,
                                    output_head_forward_kernels,
                                    transformer_layer_backward_kernels,
                                    transformer_layer_forward_kernels)
from repro.trace.builder import Trace, TraceBuilder
from repro.trace.parameters import bert_parameter_inventory


def reference_iteration_trace(model: BertConfig,
                              training: TrainingConfig) -> Trace:
    """Pre-training iteration trace via the per-layer builder walk."""
    builder = TraceBuilder(model, training)

    builder.set_layer(None)
    builder.add(embedding_forward_kernels(model, training))
    for layer in range(model.num_layers):
        builder.set_layer(layer)
        builder.add(transformer_layer_forward_kernels(model, training))
    builder.set_layer(None)
    builder.add(output_head_forward_kernels(model, training))

    builder.add(output_head_backward_kernels(model, training))
    for layer in reversed(range(model.num_layers)):
        builder.set_layer(layer)
        builder.add(transformer_layer_backward_kernels(model, training))
    builder.set_layer(None)
    builder.add(embedding_backward_kernels(model, training))

    from repro.optim.kernels import optimizer_kernels

    inventory = bert_parameter_inventory(model)
    builder.add(optimizer_kernels(training.optimizer, inventory,
                                  precision=training.precision,
                                  fused=training.fuse_optimizer))

    trace = builder.build()
    if training.activation_checkpointing:
        # The legacy list-scan transform, so the oracle stays independent
        # of the columnar CheckpointingPass it is checked against.
        trace = reference_apply_checkpointing(trace)
    return trace


def reference_inference_trace(model: BertConfig,
                              training: TrainingConfig) -> Trace:
    """Inference trace via the per-layer builder walk."""
    from repro.trace.variants import _strip_dropout

    builder = TraceBuilder(model, training)
    builder.add(_strip_dropout(embedding_forward_kernels(model, training)))
    for layer in range(model.num_layers):
        builder.set_layer(layer)
        builder.add(_strip_dropout(
            transformer_layer_forward_kernels(model, training)))
    builder.set_layer(None)
    builder.add(_inference_head_kernels(model, training))
    return builder.build()


def _inference_head_kernels(model: BertConfig,
                            training: TrainingConfig) -> list[Kernel]:
    """MLM-style projection head without the loss kernels."""
    from repro.ops.gemm import linear_layer_gemms
    from repro.ops.reduction import softmax_kernels
    from repro.trace.bert_trace import _activation_dtype, _gemm_kernel
    from repro.ops.base import Phase, Region

    dtype = _activation_dtype(training)
    tokens = training.tokens_per_iteration
    d, vocab = model.d_model, model.vocab_size
    decoder = linear_layer_gemms(d, vocab, tokens)
    kernels = [_gemm_kernel("mlm.decoder.fwd", decoder["fwd"], dtype=dtype,
                            phase=Phase.FORWARD, region=Region.OUTPUT,
                            component=Component.OUTPUT)]
    kernels.extend(softmax_kernels(rows=tokens, row_len=vocab, dtype=dtype,
                                   phase=Phase.FORWARD, region=Region.LOSS,
                                   component=Component.OUTPUT,
                                   name_prefix="mlm.softmax"))
    return kernels


def reference_finetuning_trace(model: BertConfig, training: TrainingConfig,
                               num_labels: int = 2) -> Trace:
    """Fine-tuning trace via the per-layer builder walk."""
    from repro.optim.kernels import optimizer_kernels
    from repro.trace.variants import (finetuning_head_backward_kernels,
                                      finetuning_head_forward_kernels)

    builder = TraceBuilder(model, training)
    builder.add(embedding_forward_kernels(model, training))
    for layer in range(model.num_layers):
        builder.set_layer(layer)
        builder.add(transformer_layer_forward_kernels(model, training))
    builder.set_layer(None)
    builder.add(finetuning_head_forward_kernels(model, training, num_labels))
    builder.add(finetuning_head_backward_kernels(model, training,
                                                 num_labels))
    for layer in reversed(range(model.num_layers)):
        builder.set_layer(layer)
        builder.add(transformer_layer_backward_kernels(model, training))
    builder.set_layer(None)
    builder.add(embedding_backward_kernels(model, training))
    builder.add(optimizer_kernels(training.optimizer,
                                  bert_parameter_inventory(model),
                                  precision=training.precision,
                                  fused=training.fuse_optimizer))
    return builder.build()


def reference_profile(trace: Trace, device: DeviceModel) -> Profile:
    """Scalar per-kernel timing loop producing a record-backed profile."""
    records = [KernelProfile(kernel=k, time_s=kernel_time(k, device))
               for k in trace.kernels]
    return Profile(device=device, records=records)


def reference_sliced_iteration_trace(model: BertConfig,
                                     training: TrainingConfig,
                                     ways: int) -> Trace:
    """Tensor-sliced iteration trace via the per-layer builder walk."""
    from repro.distributed.tensor_slicing import sliced_parameter_inventory
    from repro.optim.kernels import optimizer_kernels

    builder = TraceBuilder(model, training)
    builder.add(embedding_forward_kernels(model, training))
    for layer in range(model.num_layers):
        builder.set_layer(layer)
        builder.add(transformer_layer_forward_kernels(model, training, ways))
    builder.set_layer(None)
    builder.add(output_head_forward_kernels(model, training))
    builder.add(output_head_backward_kernels(model, training))
    for layer in reversed(range(model.num_layers)):
        builder.set_layer(layer)
        builder.add(transformer_layer_backward_kernels(model, training, ways))
    builder.set_layer(None)
    builder.add(embedding_backward_kernels(model, training))
    builder.add(optimizer_kernels(training.optimizer,
                                  sliced_parameter_inventory(model, ways),
                                  precision=training.precision,
                                  fused=training.fuse_optimizer))
    return builder.build()


# ---------------------------------------------------------------------------
# Legacy trace transforms: the pre-pass-pipeline list scans, verbatim.
# These are the oracles the vectorized KernelTable passes are pinned
# against bit-exactly; do not "improve" them.
# ---------------------------------------------------------------------------

def _chain_key(kernel: Kernel) -> tuple | None:
    """Grouping key for fusable kernels, or None if unfusable."""
    if kernel.fusion_group is None:
        return None
    if kernel.op_class.is_gemm:
        return None
    return (kernel.fusion_group, kernel.phase, kernel.layer_index)


def reference_fuse_elementwise_chains(trace: Trace) -> Trace:
    """Sequential scan-and-flush elementwise-chain fusion."""
    from repro.fusion.passes import fuse_chain

    fused: list[Kernel] = []
    pending: list[Kernel] = []
    pending_key: tuple | None = None

    def flush() -> None:
        nonlocal pending, pending_key
        if pending:
            fused.append(fuse_chain(pending))
            pending = []
            pending_key = None

    for kernel in trace.kernels:
        key = _chain_key(kernel)
        if key is None:
            flush()
            fused.append(kernel)
        elif key == pending_key:
            pending.append(kernel)
        else:
            flush()
            pending = [kernel]
            pending_key = key
    flush()
    return trace.replaced(fused)


def _as_recompute(kernel: Kernel) -> Kernel:
    """Re-tag a forward kernel as recomputation executed during backprop."""
    import dataclasses

    from repro.ops.base import Phase

    return dataclasses.replace(kernel, name=f"recompute.{kernel.name}",
                               phase=Phase.BACKWARD)


def reference_apply_checkpointing(trace: Trace,
                                  num_checkpoints: int | None = None
                                  ) -> Trace:
    """Per-kernel scan inserting segment-replay recomputation."""
    from repro.memoryplan.checkpointing import checkpoint_segments
    from repro.ops.base import Phase

    forward_by_layer: dict[int, list[Kernel]] = {}
    for kernel in trace.kernels:
        if (kernel.phase is Phase.FORWARD
                and kernel.component is Component.TRANSFORMER
                and kernel.layer_index is not None):
            forward_by_layer.setdefault(kernel.layer_index, []).append(kernel)

    if not forward_by_layer:
        return trace

    num_layers = max(forward_by_layer) + 1
    segments = checkpoint_segments(num_layers, num_checkpoints)
    segment_of = {}
    for segment in segments:
        for layer in segment:
            segment_of[layer] = segment

    rewritten: list[Kernel] = []
    replayed: set[int] = set()  # segment start layers already replayed
    for kernel in trace.kernels:
        is_layer_backward = (kernel.phase is Phase.BACKWARD
                             and kernel.component is Component.TRANSFORMER
                             and kernel.layer_index is not None)
        if is_layer_backward:
            segment = segment_of[kernel.layer_index]
            if segment.start not in replayed:
                replayed.add(segment.start)
                for layer in segment:
                    for fwd in forward_by_layer.get(layer, []):
                        rewritten.append(_as_recompute(fwd))
        rewritten.append(kernel)
    return trace.replaced(rewritten)


def _is_attention_op(kernel: Kernel) -> bool:
    from repro.ops.base import Region

    return (kernel.layer_index is not None
            and kernel.region in (Region.ATTENTION_BGEMM,
                                  Region.ATTENTION_SMDSM))


def reference_apply_fused_attention(trace: Trace) -> Trace:
    """Per-kernel scan swapping eager attention ops for fused kernels."""
    from repro.ops.base import Phase
    from repro.ops.fused_attention import (fused_attention_backward_kernel,
                                           fused_attention_forward_kernel)
    from repro.trace.bert_trace import _activation_dtype

    model = trace.model
    training = trace.training
    dtype = _activation_dtype(training)
    batch_heads = training.batch_size * model.num_heads

    def fused_for(layer: int, phase: Phase) -> Kernel:
        builder = (fused_attention_forward_kernel
                   if phase is Phase.FORWARD
                   else fused_attention_backward_kernel)
        return builder(seq_len=training.seq_len, d_head=model.d_head,
                       batch_heads=batch_heads, dtype=dtype,
                       layer_index=layer)

    rewritten: list[Kernel] = []
    emitted: set[tuple] = set()
    for kernel in trace.kernels:
        if not _is_attention_op(kernel):
            rewritten.append(kernel)
            continue
        key = (kernel.layer_index, kernel.phase)
        if key not in emitted:
            emitted.add(key)
            rewritten.append(fused_for(*key))
    return trace.replaced(rewritten)


def reference_apply_windowed_attention(trace: Trace,
                                       window=None) -> Trace:
    """Per-kernel scan swapping dense attention for block-local kernels."""
    from repro.ops.base import Phase
    from repro.ops.windowed_attention import (WindowConfig,
                                              windowed_attention_op_kernels)
    from repro.trace.bert_trace import _activation_dtype

    window = window or WindowConfig()
    model = trace.model
    training = trace.training
    dtype = _activation_dtype(training)
    batch_heads = training.batch_size * model.num_heads

    def kernels_for(layer: int, phase: Phase) -> list[Kernel]:
        block = windowed_attention_op_kernels(
            seq_len=training.seq_len, d_head=model.d_head,
            batch_heads=batch_heads, window=window, dtype=dtype,
            layer_index=layer)
        return [k for k in block if k.phase is phase]

    rewritten: list[Kernel] = []
    emitted: set[tuple] = set()
    for kernel in trace.kernels:
        if not _is_attention_op(kernel):
            rewritten.append(kernel)
            continue
        key = (kernel.layer_index, kernel.phase)
        if key not in emitted:
            emitted.add(key)
            rewritten.extend(kernels_for(*key))
    return trace.replaced(rewritten)


def reference_summarize(profile: Profile) -> dict[str, float]:
    """Headline fractions by predicate scans (the pre-columnar semantics)."""
    return {
        "total_time_s": profile.total_time,
        "transformer": profile.fraction_where(
            lambda k: k.component is Component.TRANSFORMER),
        "output": profile.fraction_where(
            lambda k: k.component is Component.OUTPUT),
        "embedding": profile.fraction_where(
            lambda k: k.component is Component.EMBEDDING),
        "optimizer": profile.fraction_where(
            lambda k: k.component is Component.OPTIMIZER),
        "gemm": profile.fraction_where(lambda k: k.op_class.is_gemm),
        "non_gemm": profile.fraction_where(
            lambda k: not k.op_class.is_gemm),
    }
