"""Reference (pre-columnar) trace/profile implementations.

The columnar engine — layer-templated builds in
:mod:`repro.trace.bert_trace`, the batched timing of
:func:`repro.hw.timing.kernel_times`, the masked-reduction aggregation of
:class:`~repro.profiler.profiler.Profile` — is an *optimization*, not a
model change: every operating point must produce the same kernels with the
same times.  This module keeps the original implementations alive as the
oracle that claim is checked against:

* :func:`reference_iteration_trace` / :func:`reference_inference_trace` /
  :func:`reference_finetuning_trace` re-walk the model once per encoder
  layer through :class:`~repro.trace.builder.TraceBuilder`, exactly as the
  seed did, instead of stamping a layer-0 template;
* :func:`reference_profile` times kernels one by one through the scalar
  :func:`repro.hw.timing.kernel_time`;
* :func:`reference_summarize` computes the headline fractions by predicate
  scans over the record list.

``tests/test_profile_engine_golden.py`` runs both engines over the
registry's operating points and requires identical kernels, bit-identical
per-kernel times, and matching breakdown fractions.
``benchmarks/bench_profile_engine.py`` uses the same functions as the
honest "before" timings.
"""

from __future__ import annotations

from repro.config import BertConfig, TrainingConfig
from repro.hw.device import DeviceModel
from repro.hw.timing import kernel_time
from repro.ops.base import Component, Kernel
from repro.profiler.profiler import KernelProfile, Profile
from repro.trace.bert_trace import (embedding_backward_kernels,
                                    embedding_forward_kernels,
                                    output_head_backward_kernels,
                                    output_head_forward_kernels,
                                    transformer_layer_backward_kernels,
                                    transformer_layer_forward_kernels)
from repro.trace.builder import Trace, TraceBuilder
from repro.trace.parameters import bert_parameter_inventory


def reference_iteration_trace(model: BertConfig,
                              training: TrainingConfig) -> Trace:
    """Pre-training iteration trace via the per-layer builder walk."""
    builder = TraceBuilder(model, training)

    builder.set_layer(None)
    builder.add(embedding_forward_kernels(model, training))
    for layer in range(model.num_layers):
        builder.set_layer(layer)
        builder.add(transformer_layer_forward_kernels(model, training))
    builder.set_layer(None)
    builder.add(output_head_forward_kernels(model, training))

    builder.add(output_head_backward_kernels(model, training))
    for layer in reversed(range(model.num_layers)):
        builder.set_layer(layer)
        builder.add(transformer_layer_backward_kernels(model, training))
    builder.set_layer(None)
    builder.add(embedding_backward_kernels(model, training))

    from repro.optim.kernels import optimizer_kernels

    inventory = bert_parameter_inventory(model)
    builder.add(optimizer_kernels(training.optimizer, inventory,
                                  precision=training.precision,
                                  fused=training.fuse_optimizer))

    trace = builder.build()
    if training.activation_checkpointing:
        from repro.memoryplan.checkpointing import apply_checkpointing
        trace = apply_checkpointing(trace)
    return trace


def reference_inference_trace(model: BertConfig,
                              training: TrainingConfig) -> Trace:
    """Inference trace via the per-layer builder walk."""
    from repro.trace.variants import _strip_dropout

    builder = TraceBuilder(model, training)
    builder.add(_strip_dropout(embedding_forward_kernels(model, training)))
    for layer in range(model.num_layers):
        builder.set_layer(layer)
        builder.add(_strip_dropout(
            transformer_layer_forward_kernels(model, training)))
    builder.set_layer(None)
    builder.add(_inference_head_kernels(model, training))
    return builder.build()


def _inference_head_kernels(model: BertConfig,
                            training: TrainingConfig) -> list[Kernel]:
    """MLM-style projection head without the loss kernels."""
    from repro.ops.gemm import linear_layer_gemms
    from repro.ops.reduction import softmax_kernels
    from repro.trace.bert_trace import _activation_dtype, _gemm_kernel
    from repro.ops.base import Phase, Region

    dtype = _activation_dtype(training)
    tokens = training.tokens_per_iteration
    d, vocab = model.d_model, model.vocab_size
    decoder = linear_layer_gemms(d, vocab, tokens)
    kernels = [_gemm_kernel("mlm.decoder.fwd", decoder["fwd"], dtype=dtype,
                            phase=Phase.FORWARD, region=Region.OUTPUT,
                            component=Component.OUTPUT)]
    kernels.extend(softmax_kernels(rows=tokens, row_len=vocab, dtype=dtype,
                                   phase=Phase.FORWARD, region=Region.LOSS,
                                   component=Component.OUTPUT,
                                   name_prefix="mlm.softmax"))
    return kernels


def reference_finetuning_trace(model: BertConfig, training: TrainingConfig,
                               num_labels: int = 2) -> Trace:
    """Fine-tuning trace via the per-layer builder walk."""
    from repro.optim.kernels import optimizer_kernels
    from repro.trace.variants import (finetuning_head_backward_kernels,
                                      finetuning_head_forward_kernels)

    builder = TraceBuilder(model, training)
    builder.add(embedding_forward_kernels(model, training))
    for layer in range(model.num_layers):
        builder.set_layer(layer)
        builder.add(transformer_layer_forward_kernels(model, training))
    builder.set_layer(None)
    builder.add(finetuning_head_forward_kernels(model, training, num_labels))
    builder.add(finetuning_head_backward_kernels(model, training,
                                                 num_labels))
    for layer in reversed(range(model.num_layers)):
        builder.set_layer(layer)
        builder.add(transformer_layer_backward_kernels(model, training))
    builder.set_layer(None)
    builder.add(embedding_backward_kernels(model, training))
    builder.add(optimizer_kernels(training.optimizer,
                                  bert_parameter_inventory(model),
                                  precision=training.precision,
                                  fused=training.fuse_optimizer))
    return builder.build()


def reference_profile(trace: Trace, device: DeviceModel) -> Profile:
    """Scalar per-kernel timing loop producing a record-backed profile."""
    records = [KernelProfile(kernel=k, time_s=kernel_time(k, device))
               for k in trace.kernels]
    return Profile(device=device, records=records)


def reference_summarize(profile: Profile) -> dict[str, float]:
    """Headline fractions by predicate scans (the pre-columnar semantics)."""
    return {
        "total_time_s": profile.total_time,
        "transformer": profile.fraction_where(
            lambda k: k.component is Component.TRANSFORMER),
        "output": profile.fraction_where(
            lambda k: k.component is Component.OUTPUT),
        "embedding": profile.fraction_where(
            lambda k: k.component is Component.EMBEDDING),
        "optimizer": profile.fraction_where(
            lambda k: k.component is Component.OPTIMIZER),
        "gemm": profile.fraction_where(lambda k: k.op_class.is_gemm),
        "non_gemm": profile.fraction_where(
            lambda k: not k.op_class.is_gemm),
    }
