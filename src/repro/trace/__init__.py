"""Kernel-trace generation for one BERT training iteration."""

from repro.trace.bert_trace import (attention_backward_kernels,
                                    attention_forward_kernels,
                                    build_iteration_trace,
                                    embedding_backward_kernels,
                                    embedding_forward_kernels,
                                    feedforward_backward_kernels,
                                    feedforward_forward_kernels,
                                    output_head_backward_kernels,
                                    output_head_forward_kernels,
                                    transformer_gemm_shapes,
                                    transformer_layer_backward_kernels,
                                    transformer_layer_forward_kernels)
from repro.trace.builder import Trace, TraceBuilder
from repro.trace.kernel_table import KernelTable
from repro.trace.passes import (PassContext, PassManager, TracePass,
                                available_passes, build_pipeline)
from repro.trace.validate import ValidationReport, validate_trace
from repro.trace.variants import (build_finetuning_trace,
                                  build_inference_trace)
from repro.trace.parameters import (ParamTensor, bert_parameter_inventory,
                                    embedding_tensors, encoder_layer_tensors,
                                    group_by_layer, output_head_tensors,
                                    total_parameters)

__all__ = [
    "KernelTable", "ParamTensor", "PassContext", "PassManager", "Trace",
    "TraceBuilder", "TracePass", "ValidationReport",
    "available_passes", "build_pipeline",
    "build_finetuning_trace", "build_inference_trace", "validate_trace",
    "attention_backward_kernels", "attention_forward_kernels",
    "bert_parameter_inventory", "build_iteration_trace",
    "embedding_backward_kernels", "embedding_forward_kernels",
    "embedding_tensors", "encoder_layer_tensors",
    "feedforward_backward_kernels", "feedforward_forward_kernels",
    "group_by_layer", "output_head_backward_kernels",
    "output_head_forward_kernels", "output_head_tensors",
    "total_parameters", "transformer_gemm_shapes",
    "transformer_layer_backward_kernels",
    "transformer_layer_forward_kernels",
]
