"""Lowering: lazy tensor schedules → :class:`KernelTable` rows.

The tensor engine (:mod:`repro.tensor`) and the analytic kernel trace
(:mod:`repro.trace.bert_trace`) used to be two separate artifacts: one
executed NumPy code, the other stamped cost rows, and nothing forced them
to agree.  This module closes the loop.  A lazy schedule — the ordered
realize-items the scheduler would execute — lowers 1:1 into kernel rows,
so *running* one BERT training iteration and *tracing* it are the same
walk over the same graph.

Two graph sources exist:

* :func:`bert_iteration_graph` builds the **analytic** iteration graph:
  one :class:`~repro.tensor.lazy.LazyOp` node per kernel that
  :func:`repro.trace.bert_trace.build_iteration_trace` would emit, created
  in emission order (so ``nid`` order *is* builder row order) and carrying
  the exact :class:`~repro.ops.base.Kernel` record as lowering metadata.
  Parameters and inputs are deferred buffers, so building the BERT Large
  graph never touches gigabytes of memory; executing a tiny graph
  allocates and runs for real.  Lowering this graph is bit-identical to
  the layer-templated builder — the golden tests pin it.
* Any **autograd** graph built by running the executable model under
  :func:`repro.tensor.lazy.lazy_mode`.  Its nodes carry no kernel
  metadata, so lowering classifies each op (GEMM / reduction / gather /
  elementwise) and derives FLOPs and bytes from the recorded shapes and
  dtypes — an observed trace of what actually executed, cross-validated
  against the analytic GEMM inventory by the trace-crosscheck tests.

Trace-rewrite passes run here as **schedule rewrites**: checkpointing
inserts freshly-minted ``recompute.`` replay nodes (and rebinds the
segment's backward nodes onto the replayed activations), elementwise
fusion collapses same-group producer-consumer runs into one fused node.
Rewriting the schedule changes *what executes*, and the lowered table of
the rewritten schedule is pinned bit-exact against the corresponding
columnar :class:`~repro.trace.passes.TracePass`.
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass

import numpy as np

from repro.config import BertConfig, TrainingConfig
from repro.ops.base import (AccessPattern, Component, DType, Kernel, OpClass,
                            Phase, Region)
from repro.tensor import schedule as tensor_schedule
from repro.tensor.lazy import LazyOp, deferred_buffer
from repro.trace.kernel_table import KernelTable


class LowerError(RuntimeError):
    """A schedule that cannot be lowered into kernel rows."""


def KernelMeta(kernel: Kernel, layer: int | None = None,
               provenance: str | None = None) -> tuple:
    """Lowering metadata attached to an analytic graph node.

    Represented as a plain ``(kernel, layer, provenance)`` tuple — the
    graph builder mints one per node (~1.5k for BERT Large), and tuple
    construction is an order of magnitude cheaper than any class, which
    is what keeps graph building inside the benchmarked overhead budget.
    The lowerer owns the meta slot of analytic nodes: a tuple meta means
    "lower to exactly this kernel"; anything else means "classify from
    the op kind" (the autograd path).

    Fields:
        kernel: the kernel row this node lowers to.  Encoder-layer nodes
            share one *template* kernel per position (``layer_index``
            unset) and carry the attribution separately in ``layer`` —
            the graph-side mirror of :meth:`KernelTable.tiled`, which is
            what keeps building and lowering a 24-layer graph from
            copying the row record 24 times.
        layer: encoder-layer attribution stamped at lowering time when
            the template is unattributed (``None`` leaves it as-is).
        provenance: name of the schedule rewrite that minted the node, or
            ``None`` for nodes emitted by the graph builder itself —
            mirrors the provenance column the columnar passes stamp.
    """
    return (kernel, layer, provenance)


#: NumPy storage dtype per trace dtype.  NumPy has no bfloat16; BF16
#: buffers are stored as float16, which has the same element size, so the
#: scheduler's byte accounting stays exact.
_NUMPY_DTYPE = {
    DType.FP16: np.float16,
    DType.BF16: np.float16,
    DType.FP32: np.float32,
    DType.FP64: np.float64,
    DType.INT32: np.int32,
    DType.INT64: np.int64,
}

#: Trace dtype per NumPy dtype name, for lowering autograd nodes.
_TRACE_DTYPE = {
    "float16": DType.FP16,
    "float32": DType.FP32,
    "float64": DType.FP64,
    "int32": DType.INT32,
    "int64": DType.INT64,
}


_NUMPY_DTYPE_OBJ = {trace: np.dtype(storage)
                    for trace, storage in _NUMPY_DTYPE.items()}


def _kernel_node(kernel: Kernel, srcs, *, layer: int | None = None,
                 provenance: str | None = None) -> LazyOp:
    """One graph node lowering to exactly ``kernel`` (layer-stamped).

    The compute allocates the kernel's principal tensor (``n_elements``
    elements of its dtype): the analytic graph is a *cost* program — its
    dataflow, ordering and buffer sizes are exact, while the numerics of
    BERT live in the executable model path (:mod:`repro.model.bert` under
    ``lazy_mode``), which is pinned bit-identical to eager execution.
    """
    shape = (kernel.n_elements,) if kernel.n_elements else ()
    storage = _NUMPY_DTYPE[kernel.dtype]

    def compute(*_args, _shape=shape, _dtype=storage):
        return np.zeros(_shape, dtype=_dtype)

    unique: list[LazyOp] = []
    for src in srcs:
        if src is not None and not any(src is seen for seen in unique):
            unique.append(src)
    return LazyOp(kernel.name, tuple(unique), shape,
                  _NUMPY_DTYPE_OBJ[kernel.dtype], compute,
                  meta=KernelMeta(kernel, layer, provenance))


def _meta_kernel(node: LazyOp) -> Kernel:
    """The fully layer-attributed kernel a graph node lowers to."""
    meta = node.meta
    if type(meta) is not tuple:
        raise LowerError(
            f"node {node.nid} ({node.kind}) carries no kernel metadata")
    kernel, layer, _provenance = meta
    if layer is not None and kernel.layer_index is None:
        return kernel.with_layer(layer)
    return kernel


# --------------------------------------------------------------------------
# The analytic BERT iteration graph
# --------------------------------------------------------------------------

@dataclass
class IterationGraph:
    """A lazy-graph rendering of one BERT training iteration.

    Attributes:
        model / training: the operating point the graph was built for.
        schedule: op nodes in execution order.  For an unrewritten graph
            this equals ``linearize(roots)``; schedule rewrites insert
            freshly-minted nodes mid-stream, after which the explicit list
            is the one source of order.
        rewritten: whether a schedule rewrite has run (relaxes the
            ``nid``-monotonicity check during validation).
    """

    model: BertConfig
    training: TrainingConfig
    schedule: list[LazyOp]
    rewritten: bool = False

    @property
    def roots(self) -> list[LazyOp]:
        """Sink nodes: scheduled ops nothing else consumes."""
        return [node for node in self.schedule if node._pending == 0]

    def validate(self) -> None:
        """Structural checks: acyclic, deterministic, no double-realize."""
        tensor_schedule.validate_schedule(
            self.schedule, require_nid_order=not self.rewritten)

    def lower(self) -> KernelTable:
        """The kernel table this schedule executes as."""
        return lower_schedule(self.schedule)


def bert_iteration_graph(model: BertConfig, training: TrainingConfig, *,
                         rewrites: tuple[str, ...] = ()) -> IterationGraph:
    """Build the lazy graph of one full training iteration.

    One op node per analytic kernel, constructed in the exact order
    :func:`~repro.trace.bert_trace.build_iteration_trace` emits rows —
    embedding FWD, encoder layers FWD (0..N-1), output head FWD + BWD,
    encoder layers BWD (N-1..0), embedding BWD, optimizer — so the
    ``nid``-sorted schedule *is* the builder's row order.  Each node
    consumes the previous node (stream serialization on one device) plus
    its real data inputs: parameter-group buffers for GEMMs and gathers,
    and the saved forward activation for backward kernels.

    When ``training.activation_checkpointing`` is set the checkpointing
    schedule rewrite is applied, exactly as the builder applies
    :class:`~repro.memoryplan.checkpointing.CheckpointingPass`.  Extra
    ``rewrites`` (by pass name, e.g. ``"fuse_elementwise"``) run after.
    """
    from repro.optim.kernels import optimizer_kernels
    from repro.trace import bert_trace
    from repro.trace.parameters import (bert_parameter_inventory,
                                        group_by_layer)

    inventory = bert_parameter_inventory(model)
    groups = group_by_layer(inventory)

    def allocator(count, dtype):
        return lambda: np.zeros(count, dtype=dtype)

    params = {
        key: deferred_buffer(
            (sum(math.prod(t.shape) for t in tensors),), np.float32,
            allocator(sum(math.prod(t.shape) for t in tensors), np.float32),
            meta=f"params.{key}")
        for key, tensors in groups.items()
    }
    tokens = training.batch_size * training.seq_len
    inputs = deferred_buffer((tokens,), np.int64,
                             allocator(tokens, np.int64), meta="inputs")

    nodes: list[LazyOp] = []
    saved: dict[tuple[int | None, str], LazyOp] = {}
    cursor: LazyOp = inputs

    # Static per-template emission properties, computed once per distinct
    # kernel record (encoder templates are shared across all layers).
    # Node construction is inlined below — 24 layers re-emit the same ~60
    # templates, so everything derivable from the kernel record alone
    # (sources wanted, output shape/dtype, even the allocator closure,
    # which ignores its inputs) is cached and shared between nodes.
    template_info: dict[int, tuple] = {}

    def info_of(kernel: Kernel) -> tuple:
        cached = template_info.get(id(kernel))
        if cached is not None:
            return cached
        param_group = None
        if (kernel.op_class.is_gemm
                or kernel.op_class is OpClass.GATHER_SCATTER
                or "layernorm" in kernel.name):
            if kernel.component is Component.EMBEDDING:
                param_group = params["embedding"]
            elif kernel.component is Component.OUTPUT:
                param_group = params["output"]
            elif kernel.component is Component.TRANSFORMER:
                param_group = "encoder"  # resolved per layer at emit time
        if kernel.phase is Phase.OPTIMIZER:
            for stage in (".stage1.", ".stage2."):
                if stage in kernel.name:
                    param_group = params.get(kernel.name.split(stage, 1)[1])
        is_gather = kernel.op_class is OpClass.GATHER_SCATTER
        partner = (f"{kernel.name.split('.bwd')[0]}.fwd"
                   if kernel.phase is Phase.BACKWARD else None)
        shape = (kernel.n_elements,) if kernel.n_elements else ()
        storage = _NUMPY_DTYPE[kernel.dtype]

        def compute(*_args, _shape=shape, _dtype=storage):
            return np.zeros(_shape, dtype=_dtype)

        info = (param_group, is_gather, partner,
                kernel.phase is Phase.FORWARD, shape,
                _NUMPY_DTYPE_OBJ[kernel.dtype], compute)
        template_info[id(kernel)] = info
        return info

    def plan_of(kernels: list[Kernel]) -> list[tuple]:
        return [(kernel, info_of(kernel)) for kernel in kernels]

    def emit_run(plan: list[tuple], layer: int | None = None) -> None:
        nonlocal cursor
        encoder_params = params[f"encoder.{layer}"] if layer is not None \
            else None
        for kernel, (param_group, is_gather, partner, is_forward, shape,
                     dtype, compute) in plan:
            srcs = [cursor]
            if param_group is not None:
                srcs.append(encoder_params if param_group == "encoder"
                            else param_group)
            if is_gather and cursor is not inputs:
                srcs.append(inputs)
            if partner is not None:
                # The saved forward activation this backward node consumes.
                partner_node = saved.get((layer, partner))
                if partner_node is not None and partner_node is not cursor:
                    srcs.append(partner_node)
            node = LazyOp(kernel.name, tuple(srcs), shape, dtype, compute,
                          meta=(kernel, layer, None))
            nodes.append(node)
            if is_forward:
                saved[(layer, kernel.name)] = node
            cursor = node

    emit_run(plan_of(bert_trace.embedding_forward_kernels(model, training)))
    layer_fwd = plan_of(
        bert_trace.transformer_layer_forward_kernels(model, training))
    for layer in range(model.num_layers):
        emit_run(layer_fwd, layer)
    emit_run(plan_of(
        bert_trace.output_head_forward_kernels(model, training)
        + bert_trace.output_head_backward_kernels(model, training)))
    layer_bwd = plan_of(
        bert_trace.transformer_layer_backward_kernels(model, training))
    for layer in range(model.num_layers - 1, -1, -1):
        emit_run(layer_bwd, layer)
    emit_run(plan_of(
        bert_trace.embedding_backward_kernels(model, training)
        + optimizer_kernels(training.optimizer, inventory,
                            precision=training.precision,
                            fused=training.fuse_optimizer)))

    graph = IterationGraph(model, training, nodes)
    if training.activation_checkpointing:
        graph.schedule = checkpointing_rewrite(graph.schedule)
        graph.rewritten = True
    for name in rewrites:
        graph.schedule = SCHEDULE_REWRITES[name](graph.schedule)
        graph.rewritten = True
    return graph


# --------------------------------------------------------------------------
# Schedule rewrites (the pass layer, running on what executes)
# --------------------------------------------------------------------------

def _rebind(node: LazyOp, replacement: dict[int, LazyOp]) -> None:
    """Point ``node``'s sources at replacement nodes, fixing refcounts."""
    if not any(id(src) in replacement for src in node.srcs):
        return
    new_srcs = []
    for src in node.srcs:
        new = replacement.get(id(src))
        if new is None:
            new_srcs.append(src)
        else:
            src._pending -= 1
            new._pending += 1
            new_srcs.append(new)
    node.srcs = tuple(new_srcs)


def checkpointing_rewrite(items: list[LazyOp],
                          num_checkpoints: int | None = None
                          ) -> list[LazyOp]:
    """Insert segment-replay recomputation into a schedule.

    The schedule-level twin of :class:`~repro.memoryplan.checkpointing.
    CheckpointingPass`: before each segment's first backward node, the
    segment's forward nodes are replayed as fresh ``recompute.`` nodes
    (phase BACKWARD), chained from the stored checkpoint boundary; the
    segment's backward nodes are rebound onto the replayed activations,
    so the original forward intermediates really do die early at
    execution.  Lowering the rewritten schedule is bit-exact against
    running the columnar pass on the lowered base schedule.
    """
    from repro.memoryplan.checkpointing import checkpoint_segments

    def encoder_idx(phase: Phase) -> list[int]:
        return [i for i, node in enumerate(items)
                if (kernel := _meta_kernel(node)).component
                is Component.TRANSFORMER
                and kernel.layer_index is not None
                and kernel.phase is phase]

    fwd_idx = encoder_idx(Phase.FORWARD)
    if not fwd_idx:
        return list(items)
    bwd_idx = encoder_idx(Phase.BACKWARD)
    num_layers = max(_meta_kernel(items[i]).layer_index for i in fwd_idx) + 1
    segments = checkpoint_segments(num_layers, num_checkpoints)
    segment_of = {layer: index for index, segment in enumerate(segments)
                  for layer in segment}

    first_bwd: dict[int, int] = {}
    for i in bwd_idx:
        first_bwd.setdefault(segment_of[_meta_kernel(items[i]).layer_index], i)

    replay_at: dict[int, list[LazyOp]] = {}
    clone_of: dict[int, LazyOp] = {}
    for segment_index, position in first_bwd.items():
        segment_fwd = [i for i in fwd_idx
                       if segment_of[_meta_kernel(items[i]).layer_index]
                       == segment_index]
        # Replay starts from the stored boundary activation: the node just
        # before the segment's first forward node (the checkpoint).
        boundary = items[segment_fwd[0] - 1] if segment_fwd[0] > 0 else None
        replay = []
        prev = boundary
        for i in segment_fwd:
            original = items[i]
            kernel = _meta_kernel(original)
            clone = _kernel_node(
                dataclasses.replace(kernel, name=f"recompute.{kernel.name}",
                                    phase=Phase.BACKWARD),
                (prev,), provenance="checkpointing")
            clone_of[id(original)] = clone
            replay.append(clone)
            prev = clone
        replay_at[position] = replay

    out: list[LazyOp] = []
    for i, node in enumerate(items):
        out.extend(replay_at.get(i, ()))
        out.append(node)
    # Backward consumes the replayed activations, not the originals.
    for node in out:
        if (node.meta[2] is None
                and _meta_kernel(node).phase is Phase.BACKWARD):
            _rebind(node, clone_of)
    return out


def fusion_rewrite(items: list[LazyOp]) -> list[LazyOp]:
    """Collapse same-group elementwise chains into single fused nodes.

    The schedule-level twin of :class:`~repro.fusion.passes.
    ElementwiseChainFusionPass`: maximal runs of consecutive non-GEMM
    nodes sharing ``(fusion_group, phase, layer)`` are replaced by one
    node whose kernel is :func:`~repro.fusion.passes.fuse_chain` of the
    members — the intermediate hand-off buffers vanish from the graph
    rather than merely being re-priced.
    """
    from repro.fusion.passes import fuse_chain

    def chain_key(node: LazyOp):
        kernel = _meta_kernel(node)
        if kernel.fusion_group is None or kernel.op_class.is_gemm:
            return None
        return (kernel.fusion_group, kernel.phase, kernel.layer_index)

    out: list[LazyOp] = []
    replacement: dict[int, LazyOp] = {}
    run: list[LazyOp] = []

    def flush() -> None:
        if not run:
            return
        if len(run) == 1:
            out.append(run[0])
        else:
            fused = _kernel_node(
                fuse_chain([_meta_kernel(node) for node in run]),
                run[0].srcs, provenance="fuse_elementwise")
            for member in run:
                for src in member.srcs:
                    src._pending -= 1
                replacement[id(member)] = fused
            out.append(fused)
        run.clear()

    for node in items:
        key = chain_key(node)
        if key is None:
            flush()
            out.append(node)
            continue
        if run and key != chain_key(run[-1]):
            flush()
        run.append(node)
    flush()
    for node in out:
        _rebind(node, replacement)
    return out


#: Schedule rewrites by the name of their columnar-pass twin.
SCHEDULE_REWRITES = {
    "checkpointing": checkpointing_rewrite,
    "fuse_elementwise": fusion_rewrite,
}


# --------------------------------------------------------------------------
# Lowering
# --------------------------------------------------------------------------

def lower_schedule(items) -> KernelTable:
    """Map a schedule 1:1 into kernel rows.

    Nodes carrying :func:`KernelMeta` tuples (the analytic graph) lower to
    their
    exact kernel record; bare autograd nodes are classified from their op
    kind, shapes and dtypes.  Rows minted by a schedule rewrite are
    stamped with the rewrite's provenance, like the columnar passes do.
    """
    count = len(items)
    template_index: dict[int, int] = {}
    templates: list[Kernel] = []
    rows = np.empty(count, dtype=np.intp)
    layers = np.full(count, -1, dtype=np.int32)
    provenance_rows: dict[str, list[int]] = {}
    get_index = template_index.get
    for row, node in enumerate(items):
        meta = node.meta
        if type(meta) is tuple:
            kernel, layer, provenance = meta
            if layer is not None:
                layers[row] = layer
            if provenance is not None:
                provenance_rows.setdefault(provenance, []).append(row)
        else:
            kernel = _autograd_kernel(node)
        index = get_index(id(kernel))
        if index is None:
            index = len(templates)
            template_index[id(kernel)] = index
            templates.append(kernel)
        rows[row] = index
    # Pool the distinct kernel records once, then gather per-row columns
    # vectorized and stamp the layer attribution where the template left
    # it unset — the lowering-side mirror of :meth:`KernelTable.tiled`.
    base = KernelTable.from_kernels(templates).take(rows)
    table = base.with_columns(
        layer=np.where(base.layer == -1, layers, base.layer))
    for name, marked in provenance_rows.items():
        table = table.rewrite_rows(np.asarray(marked, dtype=np.intp),
                                   provenance=name)
    return table


_REDUCTION_KINDS = frozenset((
    "sum", "mean", "max", "softmax", "log_softmax",
    "sum_bwd", "max_bwd", "softmax_bwd", "log_softmax_bwd",
))
_GATHER_KINDS = frozenset(("gather", "scatter_add"))


def _elements(shape) -> int:
    return int(math.prod(shape))


def _autograd_kernel(node: LazyOp) -> Kernel:
    """Classify one bare autograd node as a kernel row.

    The byte accounting is observational: every source array is read,
    the output is written, at the dtypes the scheduler actually used —
    which is what makes the lowered trace cross-checkable against the
    analytic GEMM inventory (shapes, dtypes *and* FLOPs).
    """
    if node.is_buffer:
        raise LowerError(f"buffer node {node.nid} is not a schedule item")
    out_elements = _elements(node.shape)
    out_dtype = np.dtype(node.dtype)
    bytes_read = sum(_elements(src.shape) * np.dtype(src.dtype).itemsize
                     for src in node.srcs)
    bytes_written = out_elements * out_dtype.itemsize
    dtype = _TRACE_DTYPE.get(out_dtype.name, DType.FP32)
    kind = node.kind
    backward = "bwd" in kind or kind == "scatter_add"
    phase = Phase.BACKWARD if backward else Phase.FORWARD

    if kind in ("matmul", "matmul_bwd_a", "matmul_bwd_b"):
        if kind == "matmul":
            inner = node.srcs[0].shape[-1]
        elif kind == "matmul_bwd_a":       # g @ b.T: inner is n
            inner = node.srcs[0].shape[-1]
        else:                              # a.T @ g: inner is m
            inner = node.srcs[0].shape[-2]
        op_class = (OpClass.BATCHED_GEMM if len(node.shape) > 2
                    else OpClass.GEMM)
        return Kernel(
            name=f"autograd.{kind}", op_class=op_class, phase=phase,
            component=Component.TRANSFORMER, region=Region.FC_GEMM,
            flops=2 * out_elements * int(inner),
            bytes_read=bytes_read, bytes_written=bytes_written,
            dtype=dtype, access=AccessPattern.STREAMING,
            n_elements=out_elements)
    if kind in _GATHER_KINDS:
        return Kernel(
            name=f"autograd.{kind}", op_class=OpClass.GATHER_SCATTER,
            phase=phase, component=Component.EMBEDDING,
            region=Region.EMBEDDING, flops=out_elements,
            bytes_read=bytes_read, bytes_written=bytes_written,
            dtype=dtype, access=AccessPattern.IRREGULAR,
            n_elements=out_elements)
    if kind in _REDUCTION_KINDS:
        in_elements = sum(_elements(src.shape) for src in node.srcs)
        region = (Region.ATTENTION_SMDSM if "softmax" in kind
                  else Region.DR_RC_LN)
        return Kernel(
            name=f"autograd.{kind}", op_class=OpClass.REDUCTION,
            phase=phase, component=Component.TRANSFORMER, region=region,
            flops=max(in_elements, out_elements),
            bytes_read=bytes_read, bytes_written=bytes_written,
            dtype=dtype, access=AccessPattern.STRIDED,
            n_elements=out_elements)
    return Kernel(
        name=f"autograd.{kind}", op_class=OpClass.ELEMENTWISE, phase=phase,
        component=Component.TRANSFORMER, region=Region.DR_RC_LN,
        flops=out_elements, bytes_read=bytes_read,
        bytes_written=bytes_written, dtype=dtype,
        access=AccessPattern.STREAMING, n_elements=out_elements)


def graph_iteration_trace(model: BertConfig, training: TrainingConfig):
    """One training iteration's trace, produced by the graph path.

    Builds the analytic iteration graph, validates it, and lowers its
    schedule — the ``repro trace --from-graph`` entry point, pinned
    bit-identical to :func:`~repro.trace.bert_trace.
    build_iteration_trace`.
    """
    from repro.trace.builder import Trace

    graph = bert_iteration_graph(model, training)
    graph.validate()
    return Trace.from_table(model, training, graph.lower())
