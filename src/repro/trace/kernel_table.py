"""Columnar (structure-of-arrays) kernel storage.

Every figure in the reproduction flows through the same hot path —
enumerate a per-kernel trace, time each kernel, aggregate breakdowns.  A
:class:`KernelTable` stores that kernel sequence as parallel NumPy arrays
(one per :class:`~repro.ops.base.Kernel` field) instead of a Python list of
dataclass objects, so the three stages become array operations:

* **generation** replicates an encoder-layer template across the remaining
  identical layers with :meth:`KernelTable.tiled` (``np.tile`` + a stamped
  layer-index column) instead of re-walking the model per layer;
* **timing** (:func:`repro.hw.timing.kernel_times`) batches the GEMM
  tile-efficiency and achieved-bandwidth models over whole columns;
* **aggregation** (``select`` / ``time_of`` / breakdowns) becomes masked
  array reductions over the enum code columns.

Layout: low-cardinality categorical fields (op class, phase, component,
region, dtype, access pattern) are stored as small integer codes indexed
into the module-level enum code tables (``OP_CLASSES``, ``PHASES``, ...);
repeated heavyweight values (kernel names, :class:`GemmShape` records,
fusion-group labels) are pooled — the column stores an index into the
table's pool, with ``-1`` meaning absent.  Cost fields (flops, bytes,
element counts) are ``int64`` columns.

Tables are **immutable**: every array is marked read-only at construction,
and transforms (``tiled``, ``concat``, ``take``, ``select``, ``splice``,
``rewrite_rows``) return new tables.  The per-:class:`Kernel` view is
materialized lazily and only for the rows a caller actually asks for.  This
immutability is what lets :func:`repro.experiments.common.run_point` hand
the same backing table to every caller without the defensive deep copies
the object representation needed — and what makes the trace-rewrite passes
of :mod:`repro.trace.passes` pure functions.

Each row also carries a **provenance** code (pooled, ``-1`` meaning "from
the trace generator") recording which rewrite pass produced it.  Provenance
is table-only metadata: it does not appear on materialized
:class:`Kernel` objects and does not participate in kernel equality, so
golden tests comparing against the legacy list transforms stay bit-exact.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

import numpy as np

from repro.ops.base import (AccessPattern, Component, DType, Kernel, OpClass,
                            Phase, Region)

# ---------------------------------------------------------------------------
# Enum code tables.  Codes are positions in these tuples; they are stable
# within one process *and* across processes as long as the enum definitions
# keep their declaration order, which is also what the cache code
# fingerprint keys on (a reordering rotates the cache).
# ---------------------------------------------------------------------------

OP_CLASSES: tuple[OpClass, ...] = tuple(OpClass)
PHASES: tuple[Phase, ...] = tuple(Phase)
COMPONENTS: tuple[Component, ...] = tuple(Component)
REGIONS: tuple[Region, ...] = tuple(Region)
DTYPES: tuple[DType, ...] = tuple(DType)
ACCESS_PATTERNS: tuple[AccessPattern, ...] = tuple(AccessPattern)

_OP_CODE = {member: code for code, member in enumerate(OP_CLASSES)}
_PHASE_CODE = {member: code for code, member in enumerate(PHASES)}
_COMPONENT_CODE = {member: code for code, member in enumerate(COMPONENTS)}
_REGION_CODE = {member: code for code, member in enumerate(REGIONS)}
_DTYPE_CODE = {member: code for code, member in enumerate(DTYPES)}
_ACCESS_CODE = {member: code for code, member in enumerate(ACCESS_PATTERNS)}

#: Codes of the (batched) GEMM op classes, for vectorized ``is_gemm`` masks.
GEMM_OP_CODES: tuple[int, ...] = tuple(
    _OP_CODE[op] for op in OP_CLASSES if op.is_gemm)

_COMM_OP_CODE = _OP_CODE[OpClass.COMMUNICATION]

#: Per-dtype element sizes indexed by dtype code, for vectorized byte math.
DTYPE_BYTES: np.ndarray = np.array([d.bytes for d in DTYPES], dtype=np.int64)
DTYPE_BYTES.flags.writeable = False

_CODE_TABLES = ((OpClass, _OP_CODE), (Phase, _PHASE_CODE),
                (Component, _COMPONENT_CODE), (Region, _REGION_CODE),
                (DType, _DTYPE_CODE), (AccessPattern, _ACCESS_CODE))


def code_of(member) -> int:
    """The table code of one enum member (dispatched on its type).

    The public lookup used by the vectorized trace passes to compare code
    columns against enum members without materializing kernels.
    """
    for enum_type, codes in _CODE_TABLES:
        if isinstance(member, enum_type):
            return codes[member]
    raise TypeError(f"no code table for {type(member).__name__}")


def _frozen(array: np.ndarray) -> np.ndarray:
    array.flags.writeable = False
    return array


class KernelTable:
    """An immutable kernel sequence stored as parallel columns.

    Attributes (all length ``len(self)`` unless noted):
        name_code: ``int32`` index into ``names``.
        names: pooled kernel-name strings.
        op_class / phase / component / region / dtype / access: ``int8``
            codes into the module-level enum tables.
        flops / bytes_read / bytes_written / n_elements: ``int64`` costs.
        layer: ``int32`` encoder-layer index, ``-1`` for ``None``.
        gemm_code: ``int32`` index into ``gemms``, ``-1`` for non-GEMMs.
        gemms: pooled :class:`~repro.ops.gemm.GemmShape` records.
        fusion_code: ``int32`` index into ``fusion_groups``, ``-1`` for
            ``None``.
        fusion_groups: pooled fusion-group labels.
        provenance: ``int16`` index into ``provenance_names``, ``-1`` for
            rows emitted by the trace generator itself.
        provenance_names: pooled names of the passes that rewrote rows.
    """

    __slots__ = ("name_code", "names", "op_class", "phase", "component",
                 "region", "dtype", "access", "flops", "bytes_read",
                 "bytes_written", "n_elements", "layer", "gemm_code",
                 "gemms", "fusion_code", "fusion_groups", "provenance",
                 "provenance_names")

    def __init__(self, *, name_code, names, op_class, phase, component,
                 region, dtype, access, flops, bytes_read, bytes_written,
                 n_elements, layer, gemm_code, gemms, fusion_code,
                 fusion_groups, provenance=None, provenance_names=()):
        self.name_code = _frozen(np.asarray(name_code, dtype=np.int32))
        self.names = tuple(names)
        self.op_class = _frozen(np.asarray(op_class, dtype=np.int8))
        self.phase = _frozen(np.asarray(phase, dtype=np.int8))
        self.component = _frozen(np.asarray(component, dtype=np.int8))
        self.region = _frozen(np.asarray(region, dtype=np.int8))
        self.dtype = _frozen(np.asarray(dtype, dtype=np.int8))
        self.access = _frozen(np.asarray(access, dtype=np.int8))
        self.flops = _frozen(np.asarray(flops, dtype=np.int64))
        self.bytes_read = _frozen(np.asarray(bytes_read, dtype=np.int64))
        self.bytes_written = _frozen(np.asarray(bytes_written,
                                                dtype=np.int64))
        self.n_elements = _frozen(np.asarray(n_elements, dtype=np.int64))
        self.layer = _frozen(np.asarray(layer, dtype=np.int32))
        self.gemm_code = _frozen(np.asarray(gemm_code, dtype=np.int32))
        self.gemms = tuple(gemms)
        self.fusion_code = _frozen(np.asarray(fusion_code, dtype=np.int32))
        self.fusion_groups = tuple(fusion_groups)
        if provenance is None:
            provenance = np.full(len(self.op_class), -1, dtype=np.int16)
        self.provenance = _frozen(np.asarray(provenance, dtype=np.int16))
        self.provenance_names = tuple(provenance_names)

    # ------------------------------------------------------------ construction
    @classmethod
    def from_kernels(cls, kernels: Iterable[Kernel]) -> "KernelTable":
        """Build a table from a kernel sequence (pooling repeated values)."""
        kernels = list(kernels)
        name_pool: dict[str, int] = {}
        gemm_pool: dict[object, int] = {}
        fusion_pool: dict[str, int] = {}
        columns = {key: [] for key in cls.__slots__
                   if key not in ("names", "gemms", "fusion_groups",
                                  "provenance", "provenance_names")}
        for k in kernels:
            columns["name_code"].append(
                name_pool.setdefault(k.name, len(name_pool)))
            columns["op_class"].append(_OP_CODE[k.op_class])
            columns["phase"].append(_PHASE_CODE[k.phase])
            columns["component"].append(_COMPONENT_CODE[k.component])
            columns["region"].append(_REGION_CODE[k.region])
            columns["dtype"].append(_DTYPE_CODE[k.dtype])
            columns["access"].append(_ACCESS_CODE[k.access])
            columns["flops"].append(k.flops)
            columns["bytes_read"].append(k.bytes_read)
            columns["bytes_written"].append(k.bytes_written)
            columns["n_elements"].append(k.n_elements)
            columns["layer"].append(
                -1 if k.layer_index is None else k.layer_index)
            columns["gemm_code"].append(
                -1 if k.gemm is None
                else gemm_pool.setdefault(k.gemm, len(gemm_pool)))
            columns["fusion_code"].append(
                -1 if k.fusion_group is None
                else fusion_pool.setdefault(k.fusion_group, len(fusion_pool)))
        return cls(names=tuple(name_pool), gemms=tuple(gemm_pool),
                   fusion_groups=tuple(fusion_pool), **columns)

    @classmethod
    def concat(cls, tables: Sequence["KernelTable"]) -> "KernelTable":
        """Concatenate tables, merging their pools."""
        name_pool: dict[str, int] = {}
        gemm_pool: dict[object, int] = {}
        fusion_pool: dict[str, int] = {}
        prov_pool: dict[str, int] = {}
        name_cols, gemm_cols, fusion_cols, prov_cols = [], [], [], []
        for table in tables:
            name_cols.append(_remap(table.name_code, table.names, name_pool))
            gemm_cols.append(_remap(table.gemm_code, table.gemms, gemm_pool))
            fusion_cols.append(_remap(table.fusion_code, table.fusion_groups,
                                      fusion_pool))
            prov_cols.append(_remap(table.provenance, table.provenance_names,
                                    prov_pool).astype(np.int16))

        def cat(attr: str) -> np.ndarray:
            return np.concatenate([getattr(t, attr) for t in tables])

        return cls(
            name_code=np.concatenate(name_cols), names=tuple(name_pool),
            op_class=cat("op_class"), phase=cat("phase"),
            component=cat("component"), region=cat("region"),
            dtype=cat("dtype"), access=cat("access"), flops=cat("flops"),
            bytes_read=cat("bytes_read"), bytes_written=cat("bytes_written"),
            n_elements=cat("n_elements"), layer=cat("layer"),
            gemm_code=np.concatenate(gemm_cols), gemms=tuple(gemm_pool),
            fusion_code=np.concatenate(fusion_cols),
            fusion_groups=tuple(fusion_pool),
            provenance=np.concatenate(prov_cols),
            provenance_names=tuple(prov_pool))

    def tiled(self, layer_indices: Iterable[int]) -> "KernelTable":
        """Replicate this table once per layer index, stamping attribution.

        This is the layer-templating primitive: enumerate encoder layer 0
        once, then stamp copies for the remaining identical layers.  Rows
        whose layer index is already set keep it (mirroring
        :meth:`TraceBuilder.add`, which only stamps unattributed kernels).
        """
        indices = np.asarray(list(layer_indices), dtype=np.int32)
        reps = len(indices)
        layer = np.tile(self.layer, reps)
        stamp = np.repeat(indices, len(self))
        layer = np.where(layer == -1, stamp, layer)

        def t(attr: str) -> np.ndarray:
            return np.tile(getattr(self, attr), reps)

        return type(self)(
            name_code=t("name_code"), names=self.names,
            op_class=t("op_class"), phase=t("phase"),
            component=t("component"), region=t("region"), dtype=t("dtype"),
            access=t("access"), flops=t("flops"),
            bytes_read=t("bytes_read"), bytes_written=t("bytes_written"),
            n_elements=t("n_elements"), layer=layer,
            gemm_code=t("gemm_code"), gemms=self.gemms,
            fusion_code=t("fusion_code"), fusion_groups=self.fusion_groups,
            provenance=t("provenance"),
            provenance_names=self.provenance_names)

    def take(self, indices) -> "KernelTable":
        """A new table of the given rows (pools are shared, not re-deduped).

        ``indices`` may be an integer index array, a boolean mask, or a
        slice.
        """
        def g(attr: str) -> np.ndarray:
            return getattr(self, attr)[indices]

        return type(self)(
            name_code=g("name_code"), names=self.names,
            op_class=g("op_class"), phase=g("phase"),
            component=g("component"), region=g("region"), dtype=g("dtype"),
            access=g("access"), flops=g("flops"),
            bytes_read=g("bytes_read"), bytes_written=g("bytes_written"),
            n_elements=g("n_elements"), layer=g("layer"),
            gemm_code=g("gemm_code"), gemms=self.gemms,
            fusion_code=g("fusion_code"), fusion_groups=self.fusion_groups,
            provenance=g("provenance"),
            provenance_names=self.provenance_names)

    # ------------------------------------------------------ rewrite primitives
    def _columns(self) -> dict:
        """Every slot, for rebuilding a table with some columns replaced."""
        return {slot: getattr(self, slot) for slot in self.__slots__}

    def with_columns(self, **overrides) -> "KernelTable":
        """A new table with the given columns (or pools) replaced.

        Untouched columns are shared with this table (they are immutable),
        so the rebuild costs only the overridden arrays.
        """
        columns = self._columns()
        columns.update(overrides)
        return type(self)(**columns)

    def select(self, mask: np.ndarray) -> "KernelTable":
        """A new table of the rows where ``mask`` is True (order kept)."""
        return self.take(mask)

    def slice_rows(self, start: int, stop: int) -> "KernelTable":
        """A new table over the contiguous row range ``[start, stop)``.

        Arrays are sliced as views, so this is O(1) in row count.
        """
        return self.take(slice(start, stop))

    def splice(self, positions, segments: Sequence["KernelTable"], *,
               replace: bool = False) -> "KernelTable":
        """Insert each segment immediately before the matching row.

        ``positions`` must be strictly increasing row indices, one per
        segment.  With ``replace=True`` the row at each position is dropped
        (the segment replaces it); otherwise it follows its segment.  This
        is the vectorized equivalent of a list scan that expands markers
        into kernel blocks.
        """
        positions = [int(p) for p in positions]
        if len(positions) != len(segments):
            raise ValueError("need exactly one segment per position")
        pieces: list[KernelTable] = []
        previous = 0
        for position, segment in zip(positions, segments):
            if position < previous or position >= len(self) + (not replace):
                raise ValueError(
                    "splice positions must be strictly increasing row "
                    f"indices, got {positions}")
            pieces.append(self.slice_rows(previous, position))
            pieces.append(segment)
            previous = position + 1 if replace else position
        pieces.append(self.slice_rows(previous, len(self)))
        return type(self).concat(pieces)

    def rewrite_rows(self, rows, *, provenance: str | None = None,
                     **updates) -> "KernelTable":
        """A new table with the given rows' column values replaced.

        ``updates`` maps column names to per-row replacement values
        (scalars broadcast).  Replacement pools (``names`` / ``gemms`` /
        ``fusion_groups``) may be passed alongside their code columns when
        a rewrite introduces new pooled values.  ``provenance`` stamps the
        rewritten rows with the producing pass's name.
        """
        pools = ("names", "gemms", "fusion_groups", "provenance_names")
        columns = self._columns()
        for column, values in updates.items():
            if column in pools:
                columns[column] = tuple(values)
                continue
            if column not in columns:
                raise KeyError(f"unknown column {column!r}")
            array = np.array(columns[column])  # writable copy
            array[rows] = values
            columns[column] = array
        if provenance is not None:
            pool = list(columns["provenance_names"])
            if provenance not in pool:
                pool.append(provenance)
            stamped = np.array(columns["provenance"])
            stamped[rows] = pool.index(provenance)
            columns["provenance"] = stamped
            columns["provenance_names"] = tuple(pool)
        return type(self)(**columns)

    def stamped(self, provenance: str) -> "KernelTable":
        """A copy with every row's provenance set to ``provenance``."""
        pool = list(self.provenance_names)
        if provenance not in pool:
            pool.append(provenance)
        return self.with_columns(
            provenance=np.full(len(self), pool.index(provenance),
                               dtype=np.int16),
            provenance_names=tuple(pool))

    @classmethod
    def coerce(cls, kernels) -> "KernelTable":
        """Accept a table, a table-backed trace, or any kernel iterable."""
        if isinstance(kernels, cls):
            return kernels
        table = getattr(kernels, "table", None)
        if isinstance(table, cls):
            return table
        return cls.from_kernels(kernels)

    # ---------------------------------------------------------------- queries
    def __len__(self) -> int:
        return len(self.op_class)

    @property
    def bytes_total(self) -> np.ndarray:
        """Per-kernel total device-memory traffic."""
        return self.bytes_read + self.bytes_written

    @property
    def is_gemm(self) -> np.ndarray:
        """Mask of (batched) GEMM rows."""
        mask = self.op_class == GEMM_OP_CODES[0]
        for code in GEMM_OP_CODES[1:]:
            mask |= self.op_class == code
        return mask

    @property
    def is_communication(self) -> np.ndarray:
        """Mask of communication rows."""
        return self.op_class == _COMM_OP_CODE

    def mask(self, *, phase=None, component=None, region=None, op_class=None,
             layer_index=None) -> np.ndarray:
        """Boolean row mask for the given attribute filters.

        ``phase`` / ``component`` / ``region`` / ``op_class`` accept a single
        enum member or a tuple of members (matched as a set).
        """
        mask = np.ones(len(self), dtype=bool)
        for value, column, codes in (
                (phase, self.phase, _PHASE_CODE),
                (component, self.component, _COMPONENT_CODE),
                (region, self.region, _REGION_CODE),
                (op_class, self.op_class, _OP_CODE)):
            if value is None:
                continue
            members = value if isinstance(value, tuple) else (value,)
            sub = column == codes[members[0]]
            for member in members[1:]:
                sub |= column == codes[member]
            mask &= sub
        if layer_index is not None:
            mask &= self.layer == (-1 if layer_index is None else layer_index)
        return mask

    # ---------------------------------------------------------------- views
    def kernel(self, row: int) -> Kernel:
        """Materialize one row as a :class:`Kernel`."""
        gemm_code = int(self.gemm_code[row])
        fusion_code = int(self.fusion_code[row])
        layer = int(self.layer[row])
        return Kernel(
            name=self.names[int(self.name_code[row])],
            op_class=OP_CLASSES[int(self.op_class[row])],
            phase=PHASES[int(self.phase[row])],
            component=COMPONENTS[int(self.component[row])],
            region=REGIONS[int(self.region[row])],
            flops=int(self.flops[row]),
            bytes_read=int(self.bytes_read[row]),
            bytes_written=int(self.bytes_written[row]),
            dtype=DTYPES[int(self.dtype[row])],
            access=ACCESS_PATTERNS[int(self.access[row])],
            layer_index=None if layer < 0 else layer,
            gemm=None if gemm_code < 0 else self.gemms[gemm_code],
            fusion_group=(None if fusion_code < 0
                          else self.fusion_groups[fusion_code]),
            n_elements=int(self.n_elements[row]))

    def kernels_at(self, rows: Iterable[int]) -> list[Kernel]:
        """Materialize only the given rows."""
        return [self.kernel(int(row)) for row in rows]

    def to_kernels(self) -> list[Kernel]:
        """Materialize the whole table as a kernel list."""
        return [self.kernel(row) for row in range(len(self))]

    def __iter__(self) -> Iterator[Kernel]:
        return iter(self.to_kernels())

    def __repr__(self) -> str:
        return (f"KernelTable({len(self)} kernels, "
                f"{len(self.names)} names, {len(self.gemms)} gemm shapes)")

    # --------------------------------------------------------------- pickling
    def __getstate__(self) -> dict:
        return {slot: getattr(self, slot) for slot in self.__slots__}

    def __setstate__(self, state: dict) -> None:
        # .get: tolerate pickles from before the provenance column (the
        # cache's code fingerprint rotates keys on upgrade, but tolerance
        # keeps manually saved tables loadable).
        if "provenance" not in state:
            state = dict(state,
                         provenance=np.full(len(state["op_class"]), -1,
                                            dtype=np.int16),
                         provenance_names=())
        for slot in self.__slots__:
            value = state[slot]
            if isinstance(value, np.ndarray):
                value = _frozen(value)
            setattr(self, slot, value)


def _remap(codes: np.ndarray, pool: tuple, merged: dict) -> np.ndarray:
    """Translate one table's pool codes into the merged pool's codes."""
    translation = np.empty(len(pool) + 1, dtype=np.int32)
    translation[-1] = -1  # codes of -1 index the sentinel slot
    for local, item in enumerate(pool):
        translation[local] = merged.setdefault(item, len(merged))
    return translation[codes]
