"""Trace variants beyond pre-training: inference and fine-tuning (Sec. 7).

The paper argues its takeaways extend to both:

* **inference** runs only the forward pass — no backprop, no optimizer —
  so the in-layer breakdown matches pre-training's forward slice while the
  iteration-level LAMB bar disappears;
* **fine-tuning** swaps the MLM+NSP heads for a small task head (e.g.
  SQuAD's span classifier needs one thin GEMM), leaving the Transformer
  layers to dominate exactly as in pre-training.
"""

from __future__ import annotations

from repro.config import BertConfig, TrainingConfig
from repro.ops.base import Component, Kernel, Phase, Region
from repro.ops.gemm import linear_layer_gemms
from repro.ops.reduction import reduction, softmax_kernels
from repro.trace.bert_trace import (_activation_dtype, _bias_grad_kernel,
                                    _gemm_kernel, embedding_backward_kernels,
                                    embedding_forward_kernels,
                                    transformer_layer_backward_kernels,
                                    transformer_layer_forward_kernels)
from repro.trace.builder import Trace
from repro.trace.kernel_table import KernelTable
from repro.trace.parameters import bert_parameter_inventory


def build_inference_trace(model: BertConfig,
                          training: TrainingConfig) -> Trace:
    """Kernel trace of one inference pass (forward only, no update).

    Dropout layers are identity at inference and emit no kernels; the
    output head still projects every position (encoder-as-a-service
    setting), so the vocabulary GEMM remains.
    """
    # MLM-style projection head without the loss kernels.
    dtype = _activation_dtype(training)
    tokens = training.tokens_per_iteration
    d, vocab = model.d_model, model.vocab_size
    decoder = linear_layer_gemms(d, vocab, tokens)
    head = [_gemm_kernel("mlm.decoder.fwd", decoder["fwd"], dtype=dtype,
                         phase=Phase.FORWARD, region=Region.OUTPUT,
                         component=Component.OUTPUT)]
    head.extend(softmax_kernels(rows=tokens, row_len=vocab, dtype=dtype,
                                phase=Phase.FORWARD, region=Region.LOSS,
                                component=Component.OUTPUT,
                                name_prefix="mlm.softmax"))

    layer_fwd = KernelTable.from_kernels(_strip_dropout(
        transformer_layer_forward_kernels(model, training)))
    table = KernelTable.concat([
        KernelTable.from_kernels(
            _strip_dropout(embedding_forward_kernels(model, training))),
        layer_fwd.tiled(range(model.num_layers)),
        KernelTable.from_kernels(head),
    ])
    return Trace.from_table(model, training, table)


def finetuning_head_forward_kernels(model: BertConfig,
                                    training: TrainingConfig,
                                    num_labels: int = 2) -> list[Kernel]:
    """A SQuAD/GLUE-style task head: one thin classifier GEMM + loss.

    "The output layer of SQUAD (Q&A) is simpler than tasks BERT is
    pre-trained for, requiring fewer GEMMs and thus making it a negligible
    component of SQUAD fine-tuning" (Sec. 7).
    """
    dtype = _activation_dtype(training)
    tokens = training.tokens_per_iteration
    head = linear_layer_gemms(model.d_model, num_labels, tokens)
    kernels = [_gemm_kernel("task.classifier.fwd", head["fwd"], dtype=dtype,
                            phase=Phase.FORWARD, region=Region.OUTPUT,
                            component=Component.OUTPUT)]
    kernels.extend(softmax_kernels(rows=tokens, row_len=num_labels,
                                   dtype=dtype, phase=Phase.FORWARD,
                                   region=Region.LOSS,
                                   component=Component.OUTPUT,
                                   name_prefix="task.log_softmax"))
    kernels.append(reduction("task.loss.nll", n_elements=tokens, dtype=dtype,
                             phase=Phase.FORWARD, component=Component.OUTPUT,
                             region=Region.LOSS, inputs=1, outputs=0,
                             flops_per_element=1.0, reduced_elements=1))
    return kernels


def finetuning_head_backward_kernels(model: BertConfig,
                                     training: TrainingConfig,
                                     num_labels: int = 2) -> list[Kernel]:
    """Backward of the task head."""
    from repro.ops.elementwise import elementwise

    dtype = _activation_dtype(training)
    tokens = training.tokens_per_iteration
    head = linear_layer_gemms(model.d_model, num_labels, tokens)
    kernels = [elementwise(
        "task.loss.softmax_grad", n_elements=tokens * num_labels,
        dtype=dtype, phase=Phase.BACKWARD, component=Component.OUTPUT,
        region=Region.LOSS, inputs=1, outputs=1, flops_per_element=2.0)]
    kernels.append(_gemm_kernel("task.classifier.bwd_act", head["bwd_act"],
                                dtype=dtype, phase=Phase.BACKWARD,
                                region=Region.OUTPUT,
                                component=Component.OUTPUT))
    kernels.append(_gemm_kernel("task.classifier.bwd_wt", head["bwd_wt"],
                                dtype=dtype, phase=Phase.BACKWARD,
                                region=Region.OUTPUT,
                                component=Component.OUTPUT))
    kernels.append(_bias_grad_kernel("task.classifier.bias_grad",
                                     tokens=tokens, features=num_labels,
                                     dtype=dtype, region=Region.OUTPUT,
                                     component=Component.OUTPUT))
    return kernels


def build_finetuning_trace(model: BertConfig, training: TrainingConfig,
                           num_labels: int = 2) -> Trace:
    """Kernel trace of one fine-tuning iteration.

    Same Transformer/embedding work and optimizer structure as
    pre-training; only the output head shrinks to the task classifier.
    """
    from repro.optim.kernels import optimizer_kernels

    layer_fwd = KernelTable.from_kernels(
        transformer_layer_forward_kernels(model, training))
    layer_bwd = KernelTable.from_kernels(
        transformer_layer_backward_kernels(model, training))
    table = KernelTable.concat([
        KernelTable.from_kernels(embedding_forward_kernels(model, training)),
        layer_fwd.tiled(range(model.num_layers)),
        KernelTable.from_kernels(
            finetuning_head_forward_kernels(model, training, num_labels)
            + finetuning_head_backward_kernels(model, training, num_labels)),
        layer_bwd.tiled(range(model.num_layers - 1, -1, -1)),
        KernelTable.from_kernels(
            embedding_backward_kernels(model, training)
            + optimizer_kernels(training.optimizer,
                                bert_parameter_inventory(model),
                                precision=training.precision,
                                fused=training.fuse_optimizer)),
    ])
    return Trace.from_table(model, training, table)


def _strip_dropout(kernels: list[Kernel]) -> list[Kernel]:
    """Remove dropout kernels (identity at inference)."""
    return [k for k in kernels if "dropout" not in k.name]
