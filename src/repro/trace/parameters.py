"""Analytic parameter inventory of a BERT model.

The optimizer kernel emission (:mod:`repro.optim.kernels`), the distributed
gradient-communication model and the memory-footprint estimator all need to
know *which* parameter tensors exist, their sizes, and which layer each
belongs to.  This module derives that inventory from a
:class:`~repro.config.BertConfig` without instantiating any arrays, and it
is cross-checked against the executable NumPy model in the test suite.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import BertConfig
from repro.ops.base import Component


@dataclass(frozen=True)
class ParamTensor:
    """One trainable parameter tensor.

    Attributes:
        name: qualified name, e.g. ``"encoder.3.attention.query.weight"``.
        shape: tensor shape.
        component: network component the tensor belongss to.
        layer_index: encoder layer index, or ``None`` outside the encoder.
    """

    name: str
    shape: tuple[int, ...]
    component: Component
    layer_index: int | None = None

    @property
    def n_elements(self) -> int:
        total = 1
        for dim in self.shape:
            total *= dim
        return total

    def bytes(self, element_bytes: int = 4) -> int:
        """Storage size at the given element width."""
        return self.n_elements * element_bytes


def encoder_layer_tensors(config: BertConfig, layer: int) -> list[ParamTensor]:
    """Parameter tensors of one Transformer encoder layer."""
    d, f = config.d_model, config.d_ff
    prefix = f"encoder.{layer}"

    def tensor(name: str, *shape: int) -> ParamTensor:
        return ParamTensor(name=f"{prefix}.{name}", shape=shape,
                           component=Component.TRANSFORMER, layer_index=layer)

    tensors = []
    for proj in ("query", "key", "value", "output"):
        tensors.append(tensor(f"attention.{proj}.weight", d, d))
        tensors.append(tensor(f"attention.{proj}.bias", d))
    tensors.append(tensor("attention.layernorm.gain", d))
    tensors.append(tensor("attention.layernorm.bias", d))
    tensors.append(tensor("ffn.fc1.weight", f, d))
    tensors.append(tensor("ffn.fc1.bias", f))
    tensors.append(tensor("ffn.fc2.weight", d, f))
    tensors.append(tensor("ffn.fc2.bias", d))
    tensors.append(tensor("ffn.layernorm.gain", d))
    tensors.append(tensor("ffn.layernorm.bias", d))
    return tensors


def embedding_tensors(config: BertConfig) -> list[ParamTensor]:
    """Token/position/segment embedding tables and their LayerNorm."""
    d = config.d_model

    def tensor(name: str, *shape: int) -> ParamTensor:
        return ParamTensor(name=f"embeddings.{name}", shape=shape,
                           component=Component.EMBEDDING)

    return [
        tensor("token.weight", config.vocab_size, d),
        tensor("position.weight", config.max_position, d),
        tensor("segment.weight", config.type_vocab_size, d),
        tensor("layernorm.gain", d),
        tensor("layernorm.bias", d),
    ]


def output_head_tensors(config: BertConfig) -> list[ParamTensor]:
    """MLM transform + decoder bias, pooler and NSP classifier.

    The MLM decoder weight is tied to the token embedding table and is not
    repeated here.
    """
    d = config.d_model

    def tensor(name: str, *shape: int) -> ParamTensor:
        return ParamTensor(name=f"heads.{name}", shape=shape,
                           component=Component.OUTPUT)

    return [
        tensor("mlm.transform.weight", d, d),
        tensor("mlm.transform.bias", d),
        tensor("mlm.layernorm.gain", d),
        tensor("mlm.layernorm.bias", d),
        tensor("mlm.decoder.bias", config.vocab_size),
        tensor("pooler.weight", d, d),
        tensor("pooler.bias", d),
        tensor("nsp.weight", 2, d),
        tensor("nsp.bias", 2),
    ]


def bert_parameter_inventory(config: BertConfig) -> list[ParamTensor]:
    """All trainable parameter tensors of the pre-training model."""
    tensors = embedding_tensors(config)
    for layer in range(config.num_layers):
        tensors.extend(encoder_layer_tensors(config, layer))
    tensors.extend(output_head_tensors(config))
    return tensors


def total_parameters(config: BertConfig) -> int:
    """Total parameter count from the inventory.

    Must equal :meth:`BertConfig.total_parameters`; the test suite enforces
    this.
    """
    return sum(t.n_elements for t in bert_parameter_inventory(config))


def group_by_layer(tensors: list[ParamTensor]) -> dict[str, list[ParamTensor]]:
    """Group tensors into the per-layer sets LAMB updates independently.

    LAMB "is executed independently for every model layer, each accessing
    the corresponding layer's data" (Sec. 2.4).  Embedding and output-head
    tensors form their own groups.
    """
    groups: dict[str, list[ParamTensor]] = {}
    for tensor in tensors:
        if tensor.layer_index is not None:
            key = f"encoder.{tensor.layer_index}"
        else:
            key = tensor.component.value
        groups.setdefault(key, []).append(tensor)
    return groups
