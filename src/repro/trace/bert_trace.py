"""Kernel-level trace of one BERT pre-training iteration.

This is the software analogue of the rocProf trace the paper collects
(Sec. 3.1.4): every kernel of the forward pass, backward pass and optimizer
update, in launch order, with exact shapes, FLOPs and bytes.  The GEMM
shapes emitted here are precisely Table 2b's; the elementwise/reduction
kernel decompositions follow the eager execution the paper describes in
Sec. 3.2.3.

Layout conventions:

* All sequences of the mini-batch are packed into a single
  ``(B*n) x d_model`` activation matrix, so a mini-batch of one still
  yields matrix-matrix operations (Takeaway 5).
* Attention head split/merge is performed through strided batched-GEMM
  views rather than explicit transpose copies, as optimized Transformer
  implementations do.
* Linear-layer bias additions ride in the GEMM epilogue; bias *gradients*
  are separate reduction kernels, as in real frameworks.
"""

from __future__ import annotations

from repro.config import BertConfig, Precision, TrainingConfig
from repro.obs import spans
from repro.ops.base import (AccessPattern, Component, DType, Kernel, OpClass,
                            Phase, Region, lanes_any)
from repro.ops.elementwise import (dropout_backward, dropout_forward,
                                   elementwise, gelu_kernels, residual_add)
from repro.ops.gemm import (GemmShape, attention_output_gemms,
                            attention_score_gemms, linear_layer_gemms)
from repro.ops.reduction import layernorm_kernels, reduction, softmax_kernels
from repro.trace.builder import Trace
from repro.trace.kernel_table import KernelTable
from repro.trace.parameters import bert_parameter_inventory


def _activation_dtype(training: TrainingConfig) -> DType:
    """FWD/BWD tensor dtype for the configured precision."""
    return DType.FP32 if training.precision is Precision.FP32 else DType.FP16


def _gemm_kernel(name: str, shape: GemmShape, *, dtype: DType, phase: Phase,
                 region: Region, component: Component = Component.TRANSFORMER,
                 layer_index: int | None = None) -> Kernel:
    """Wrap a GEMM shape into a kernel record."""
    # Lane-array batch counts are uniform in batched-ness within a stamp
    # family (repro.grid groups points on B*h > 1), so any-lane is exact.
    op_class = (OpClass.BATCHED_GEMM if lanes_any(shape.batch > 1)
                else OpClass.GEMM)
    return Kernel(
        name=name, op_class=op_class, phase=phase, component=component,
        region=region, flops=shape.flops,
        bytes_read=shape.bytes_read(dtype),
        bytes_written=shape.bytes_written(dtype),
        dtype=dtype, access=AccessPattern.STREAMING,
        layer_index=layer_index, gemm=shape,
        n_elements=shape.m * shape.n * shape.batch,
    )


def _bias_grad_kernel(name: str, *, tokens: int, features: int, dtype: DType,
                      region: Region,
                      component: Component = Component.TRANSFORMER) -> Kernel:
    """Bias gradient: column reduction of a ``tokens x features`` tensor."""
    return reduction(name, n_elements=tokens * features, dtype=dtype,
                     phase=Phase.BACKWARD, component=component, region=region,
                     inputs=1, outputs=0, flops_per_element=1.0,
                     reduced_elements=features)


# --------------------------------------------------------------------------
# Table 2b shape catalogue
# --------------------------------------------------------------------------

def transformer_gemm_shapes(model: BertConfig, training: TrainingConfig,
                            slicing: int = 1) -> dict[str, dict[str, GemmShape]]:
    """All Table 2b GEMM shapes of one Transformer layer.

    Args:
        slicing: Megatron-style tensor-slicing ways ``m`` (Sec. 5.1).  The
            Q/K/V and FC-1 weights are split column-wise, the attention
            output and FC-2 weights row-wise, and the attention heads are
            divided among devices, so per-device GEMM dims shrink by ``m``
            exactly as Fig. 10 illustrates.

    Returns:
        Mapping ``operation -> {"fwd", "bwd_act", "bwd_wt"} -> GemmShape``
        for operations ``linear`` (Q/K/V projections), ``linear_out``,
        ``attn_score``, ``attn_output``, ``fc1`` and ``fc2``.
    """
    _validate_slicing(model, slicing)
    tokens = training.tokens_per_iteration
    batch_heads = training.batch_size * model.num_heads // slicing
    d, d_ff = model.d_model, model.d_ff
    return {
        "linear": linear_layer_gemms(d, d // slicing, tokens),
        "linear_out": linear_layer_gemms(d // slicing, d, tokens),
        "attn_score": attention_score_gemms(training.seq_len, model.d_head,
                                            batch_heads),
        "attn_output": attention_output_gemms(training.seq_len, model.d_head,
                                              batch_heads),
        "fc1": linear_layer_gemms(d, d_ff // slicing, tokens),
        "fc2": linear_layer_gemms(d_ff // slicing, d, tokens),
    }


def _validate_slicing(model: BertConfig, slicing: int) -> None:
    if slicing < 1:
        raise ValueError("slicing must be >= 1")
    if (model.num_heads % slicing or model.d_model % slicing
            or model.d_ff % slicing):
        raise ValueError(
            f"{slicing}-way tensor slicing does not divide the model "
            f"(h={model.num_heads}, d_model={model.d_model}, "
            f"d_ff={model.d_ff})")


# --------------------------------------------------------------------------
# Per-sublayer forward emitters
# --------------------------------------------------------------------------

def _addnorm_forward(name: str, *, tokens: int, d_model: int,
                     dtype: DType) -> list[Kernel]:
    """Dropout + residual connection + LayerNorm after a sublayer."""
    n = tokens * d_model
    kernels = dropout_forward(f"{name}.dropout", n_elements=n, dtype=dtype,
                              component=Component.TRANSFORMER,
                              region=Region.DR_RC_LN,
                              fusion_group=f"{name}.addnorm")
    kernels.append(residual_add(f"{name}.residual", n_elements=n, dtype=dtype,
                                phase=Phase.FORWARD,
                                component=Component.TRANSFORMER,
                                fusion_group=f"{name}.addnorm"))
    kernels.extend(layernorm_kernels(rows=tokens, row_len=d_model,
                                     dtype=dtype, phase=Phase.FORWARD,
                                     name_prefix=f"{name}.layernorm",
                                     fusion_group=f"{name}.addnorm"))
    return kernels


def attention_forward_kernels(model: BertConfig, training: TrainingConfig,
                              slicing: int = 1) -> list[Kernel]:
    """Forward kernels of the attention sublayer (Figs. 2c/2d, 5).

    With ``slicing > 1`` the kernels are one device's share under
    Megatron-style tensor slicing; the DR+RC+LN tail stays full-sized
    because those layers are replicated (Sec. 5.1).
    """
    dtype = _activation_dtype(training)
    shapes = transformer_gemm_shapes(model, training, slicing)
    batch, n = training.batch_size, training.seq_len
    heads = model.num_heads // slicing
    score_elements = batch * heads * n * n
    kernels = []

    for proj in ("q", "k", "v"):
        kernels.append(_gemm_kernel(f"attention.linear_{proj}.fwd",
                                    shapes["linear"]["fwd"], dtype=dtype,
                                    phase=Phase.FORWARD,
                                    region=Region.ATTENTION_LINEAR))

    kernels.append(_gemm_kernel("attention.score.fwd",
                                shapes["attn_score"]["fwd"], dtype=dtype,
                                phase=Phase.FORWARD,
                                region=Region.ATTENTION_BGEMM))

    # Scale by 1/sqrt(d_head), add the additive padding mask (broadcast over
    # heads), softmax, dropout — each its own kernel (Sec. 3.2.3).
    kernels.append(elementwise(
        "attention.scale.fwd", n_elements=score_elements, dtype=dtype,
        phase=Phase.FORWARD, component=Component.TRANSFORMER,
        region=Region.ATTENTION_SMDSM, inputs=1, outputs=1,
        flops_per_element=1.0, fusion_group="attention.smdsm"))
    kernels.append(elementwise(
        "attention.mask.fwd", n_elements=score_elements, dtype=dtype,
        phase=Phase.FORWARD, component=Component.TRANSFORMER,
        region=Region.ATTENTION_SMDSM, inputs=1, outputs=1,
        flops_per_element=1.0, fusion_group="attention.smdsm",
        extra_read_bytes=batch * n * n * dtype.bytes))
    kernels.extend(softmax_kernels(rows=batch * heads * n, row_len=n,
                                   dtype=dtype, phase=Phase.FORWARD,
                                   name_prefix="attention.softmax",
                                   fusion_group="attention.smdsm"))
    kernels.extend(dropout_forward(
        "attention.score_dropout", n_elements=score_elements, dtype=dtype,
        component=Component.TRANSFORMER, region=Region.ATTENTION_SMDSM,
        fusion_group="attention.smdsm"))

    kernels.append(_gemm_kernel("attention.context.fwd",
                                shapes["attn_output"]["fwd"], dtype=dtype,
                                phase=Phase.FORWARD,
                                region=Region.ATTENTION_BGEMM))
    kernels.append(_gemm_kernel("attention.linear_out.fwd",
                                shapes["linear_out"]["fwd"], dtype=dtype,
                                phase=Phase.FORWARD,
                                region=Region.ATTENTION_LINEAR))

    kernels.extend(_addnorm_forward("attention.post",
                                    tokens=training.tokens_per_iteration,
                                    d_model=model.d_model, dtype=dtype))
    return kernels


def feedforward_forward_kernels(model: BertConfig, training: TrainingConfig,
                                slicing: int = 1) -> list[Kernel]:
    """Forward kernels of the FC (feed-forward) sublayer."""
    dtype = _activation_dtype(training)
    shapes = transformer_gemm_shapes(model, training, slicing)
    tokens = training.tokens_per_iteration
    intermediate = tokens * model.d_ff // slicing
    kernels = [
        _gemm_kernel("ffn.fc1.fwd", shapes["fc1"]["fwd"], dtype=dtype,
                     phase=Phase.FORWARD, region=Region.FC_GEMM),
    ]
    kernels.extend(gelu_kernels(n_elements=intermediate, dtype=dtype,
                                phase=Phase.FORWARD, name_prefix="ffn.gelu",
                                fusion_group="ffn.gelu"))
    kernels.append(_gemm_kernel("ffn.fc2.fwd", shapes["fc2"]["fwd"],
                                dtype=dtype, phase=Phase.FORWARD,
                                region=Region.FC_GEMM))
    kernels.extend(_addnorm_forward("ffn.post", tokens=tokens,
                                    d_model=model.d_model, dtype=dtype))
    return kernels


def transformer_layer_forward_kernels(model: BertConfig,
                                      training: TrainingConfig,
                                      slicing: int = 1) -> list[Kernel]:
    """All forward kernels of one Transformer encoder layer."""
    return (attention_forward_kernels(model, training, slicing)
            + feedforward_forward_kernels(model, training, slicing))


# --------------------------------------------------------------------------
# Per-sublayer backward emitters
# --------------------------------------------------------------------------

def _addnorm_backward(name: str, *, tokens: int, d_model: int,
                      dtype: DType) -> list[Kernel]:
    """Backward of LayerNorm + residual + dropout (reverse order)."""
    n = tokens * d_model
    kernels = layernorm_kernels(rows=tokens, row_len=d_model, dtype=dtype,
                                phase=Phase.BACKWARD,
                                name_prefix=f"{name}.layernorm",
                                fusion_group=f"{name}.addnorm")
    kernels.extend(dropout_backward(f"{name}.dropout", n_elements=n,
                                    dtype=dtype,
                                    component=Component.TRANSFORMER,
                                    region=Region.DR_RC_LN,
                                    fusion_group=f"{name}.addnorm"))
    return kernels


def _residual_accumulate(name: str, *, tokens: int, d_model: int,
                         dtype: DType) -> Kernel:
    """Gradient accumulation where the residual branch rejoins the trunk."""
    return residual_add(name, n_elements=tokens * d_model, dtype=dtype,
                        phase=Phase.BACKWARD, component=Component.TRANSFORMER)


def _linear_backward(name: str, shapes: dict[str, GemmShape], *,
                     tokens: int, d_out: int, dtype: DType,
                     region: Region) -> list[Kernel]:
    """Backward of a dense layer: two GEMMs plus the bias-grad reduction."""
    return [
        _gemm_kernel(f"{name}.bwd_act", shapes["bwd_act"], dtype=dtype,
                     phase=Phase.BACKWARD, region=region),
        _gemm_kernel(f"{name}.bwd_wt", shapes["bwd_wt"], dtype=dtype,
                     phase=Phase.BACKWARD, region=region),
        _bias_grad_kernel(f"{name}.bias_grad", tokens=tokens, features=d_out,
                          dtype=dtype, region=region),
    ]


def feedforward_backward_kernels(model: BertConfig, training: TrainingConfig,
                                 slicing: int = 1) -> list[Kernel]:
    """Backward kernels of the FC sublayer (reverse of forward)."""
    dtype = _activation_dtype(training)
    shapes = transformer_gemm_shapes(model, training, slicing)
    tokens = training.tokens_per_iteration
    d_ff = model.d_ff // slicing
    kernels = _addnorm_backward("ffn.post", tokens=tokens,
                                d_model=model.d_model, dtype=dtype)
    kernels.extend(_linear_backward("ffn.fc2", shapes["fc2"], tokens=tokens,
                                    d_out=model.d_model, dtype=dtype,
                                    region=Region.FC_GEMM))
    kernels.extend(gelu_kernels(n_elements=tokens * d_ff, dtype=dtype,
                                phase=Phase.BACKWARD, name_prefix="ffn.gelu",
                                fusion_group="ffn.gelu"))
    kernels.extend(_linear_backward("ffn.fc1", shapes["fc1"], tokens=tokens,
                                    d_out=d_ff, dtype=dtype,
                                    region=Region.FC_GEMM))
    kernels.append(_residual_accumulate("ffn.post.residual_grad",
                                        tokens=tokens, d_model=model.d_model,
                                        dtype=dtype))
    return kernels


def attention_backward_kernels(model: BertConfig, training: TrainingConfig,
                               slicing: int = 1) -> list[Kernel]:
    """Backward kernels of the attention sublayer (reverse of forward)."""
    dtype = _activation_dtype(training)
    shapes = transformer_gemm_shapes(model, training, slicing)
    tokens = training.tokens_per_iteration
    batch, n = training.batch_size, training.seq_len
    heads = model.num_heads // slicing
    score_elements = batch * heads * n * n

    kernels = _addnorm_backward("attention.post", tokens=tokens,
                                d_model=model.d_model, dtype=dtype)
    kernels.extend(_linear_backward("attention.linear_out",
                                    shapes["linear_out"],
                                    tokens=tokens, d_out=model.d_model,
                                    dtype=dtype,
                                    region=Region.ATTENTION_LINEAR))

    # Context BGEMM backward: gradients w.r.t. the score matrix and V.
    kernels.append(_gemm_kernel("attention.context.bwd_act",
                                shapes["attn_output"]["bwd_act"], dtype=dtype,
                                phase=Phase.BACKWARD,
                                region=Region.ATTENTION_BGEMM))
    kernels.append(_gemm_kernel("attention.context.bwd_wt",
                                shapes["attn_output"]["bwd_wt"], dtype=dtype,
                                phase=Phase.BACKWARD,
                                region=Region.ATTENTION_BGEMM))

    # Scale/mask/softmax/dropout backward.  The additive mask is constant, so
    # only dropout, softmax and the scale propagate gradients.
    kernels.extend(dropout_backward(
        "attention.score_dropout", n_elements=score_elements, dtype=dtype,
        component=Component.TRANSFORMER, region=Region.ATTENTION_SMDSM,
        fusion_group="attention.smdsm"))
    kernels.extend(softmax_kernels(rows=batch * heads * n, row_len=n,
                                   dtype=dtype, phase=Phase.BACKWARD,
                                   name_prefix="attention.softmax",
                                   fusion_group="attention.smdsm"))
    kernels.append(elementwise(
        "attention.scale.bwd", n_elements=score_elements, dtype=dtype,
        phase=Phase.BACKWARD, component=Component.TRANSFORMER,
        region=Region.ATTENTION_SMDSM, inputs=1, outputs=1,
        flops_per_element=1.0, fusion_group="attention.smdsm"))

    # Score BGEMM backward: gradients w.r.t. Q and K.
    kernels.append(_gemm_kernel("attention.score.bwd_act",
                                shapes["attn_score"]["bwd_act"], dtype=dtype,
                                phase=Phase.BACKWARD,
                                region=Region.ATTENTION_BGEMM))
    kernels.append(_gemm_kernel("attention.score.bwd_wt",
                                shapes["attn_score"]["bwd_wt"], dtype=dtype,
                                phase=Phase.BACKWARD,
                                region=Region.ATTENTION_BGEMM))

    for proj in ("v", "k", "q"):
        kernels.extend(_linear_backward(f"attention.linear_{proj}",
                                        shapes["linear"], tokens=tokens,
                                        d_out=model.d_model // slicing,
                                        dtype=dtype,
                                        region=Region.ATTENTION_LINEAR))
    kernels.append(_residual_accumulate("attention.post.residual_grad",
                                        tokens=tokens, d_model=model.d_model,
                                        dtype=dtype))
    return kernels


def transformer_layer_backward_kernels(model: BertConfig,
                                       training: TrainingConfig,
                                       slicing: int = 1) -> list[Kernel]:
    """All backward kernels of one Transformer encoder layer."""
    return (feedforward_backward_kernels(model, training, slicing)
            + attention_backward_kernels(model, training, slicing))


# --------------------------------------------------------------------------
# Embedding and output head
# --------------------------------------------------------------------------

def embedding_forward_kernels(model: BertConfig,
                              training: TrainingConfig) -> list[Kernel]:
    """Input embedding: three table gathers, LN and dropout."""
    dtype = _activation_dtype(training)
    tokens = training.tokens_per_iteration
    n = tokens * model.d_model
    index_bytes = tokens * DType.INT64.bytes
    kernels = []
    for table in ("token", "position", "segment"):
        kernels.append(Kernel(
            name=f"embedding.{table}.gather", op_class=OpClass.GATHER_SCATTER,
            phase=Phase.FORWARD, component=Component.EMBEDDING,
            region=Region.EMBEDDING, flops=n,
            bytes_read=n * dtype.bytes + index_bytes,
            bytes_written=n * dtype.bytes, dtype=dtype,
            access=AccessPattern.IRREGULAR))
    kernels.extend(layernorm_kernels(
        rows=tokens, row_len=model.d_model, dtype=dtype, phase=Phase.FORWARD,
        component=Component.EMBEDDING, region=Region.EMBEDDING,
        name_prefix="embedding.layernorm"))
    kernels.extend(dropout_forward(
        "embedding.dropout", n_elements=n, dtype=dtype,
        component=Component.EMBEDDING, region=Region.EMBEDDING))
    return kernels


def embedding_backward_kernels(model: BertConfig,
                               training: TrainingConfig) -> list[Kernel]:
    """Embedding backward: dropout/LN backward and table scatter-adds."""
    dtype = _activation_dtype(training)
    tokens = training.tokens_per_iteration
    n = tokens * model.d_model
    kernels = dropout_backward("embedding.dropout", n_elements=n, dtype=dtype,
                               component=Component.EMBEDDING,
                               region=Region.EMBEDDING)
    kernels.extend(layernorm_kernels(
        rows=tokens, row_len=model.d_model, dtype=dtype, phase=Phase.BACKWARD,
        component=Component.EMBEDDING, region=Region.EMBEDDING,
        name_prefix="embedding.layernorm"))
    for table in ("token", "position", "segment"):
        kernels.append(Kernel(
            name=f"embedding.{table}.scatter_add",
            op_class=OpClass.GATHER_SCATTER, phase=Phase.BACKWARD,
            component=Component.EMBEDDING, region=Region.EMBEDDING,
            flops=n, bytes_read=n * dtype.bytes,
            bytes_written=n * dtype.bytes, dtype=dtype,
            access=AccessPattern.IRREGULAR))
    return kernels


def output_head_forward_kernels(model: BertConfig,
                                training: TrainingConfig) -> list[Kernel]:
    """MLM head + NSP head + losses.

    Like the reference PyTorch pre-training implementations the paper
    profiles, every sequence position flows through the MLM transform and
    the vocabulary decoder (the loss then ignores unmasked positions), so
    the decoder GEMM is ``vocab x (n*B) x d_model``.  This is what makes the
    output layer a small-but-visible (3-7%) runtime slice (Obs. 1).
    """
    dtype = _activation_dtype(training)
    d, vocab = model.d_model, model.vocab_size
    tokens = training.tokens_per_iteration
    batch = training.batch_size
    kernels = []

    transform = linear_layer_gemms(d, d, tokens)
    kernels.append(_gemm_kernel("mlm.transform.fwd", transform["fwd"],
                                dtype=dtype, phase=Phase.FORWARD,
                                region=Region.OUTPUT,
                                component=Component.OUTPUT))
    kernels.extend(gelu_kernels(n_elements=tokens * d, dtype=dtype,
                                phase=Phase.FORWARD, name_prefix="mlm.gelu",
                                component=Component.OUTPUT,
                                region=Region.OUTPUT))
    kernels.extend(layernorm_kernels(
        rows=tokens, row_len=d, dtype=dtype, phase=Phase.FORWARD,
        component=Component.OUTPUT, region=Region.OUTPUT,
        name_prefix="mlm.layernorm"))

    decoder = linear_layer_gemms(d, vocab, tokens)
    kernels.append(_gemm_kernel("mlm.decoder.fwd", decoder["fwd"],
                                dtype=dtype, phase=Phase.FORWARD,
                                region=Region.OUTPUT,
                                component=Component.OUTPUT))
    kernels.extend(softmax_kernels(rows=tokens, row_len=vocab, dtype=dtype,
                                   phase=Phase.FORWARD, region=Region.LOSS,
                                   component=Component.OUTPUT,
                                   name_prefix="mlm.log_softmax"))

    # NSP head over the pooled [CLS] representation.
    pooler = linear_layer_gemms(d, d, batch)
    kernels.append(_gemm_kernel("nsp.pooler.fwd", pooler["fwd"], dtype=dtype,
                                phase=Phase.FORWARD, region=Region.OUTPUT,
                                component=Component.OUTPUT))
    kernels.append(elementwise("nsp.tanh.fwd", n_elements=batch * d,
                               dtype=dtype, phase=Phase.FORWARD,
                               component=Component.OUTPUT,
                               region=Region.OUTPUT, flops_per_element=8.0))
    nsp = linear_layer_gemms(d, 2, batch)
    kernels.append(_gemm_kernel("nsp.classifier.fwd", nsp["fwd"], dtype=dtype,
                                phase=Phase.FORWARD, region=Region.OUTPUT,
                                component=Component.OUTPUT))
    # NLL gathers one log-probability per masked position / NSP label.
    kernels.append(reduction(
        "loss.nll",
        n_elements=training.masked_positions + batch,
        dtype=dtype, phase=Phase.FORWARD, component=Component.OUTPUT,
        region=Region.LOSS, inputs=1, outputs=0, flops_per_element=1.0,
        reduced_elements=2))
    return kernels


def output_head_backward_kernels(model: BertConfig,
                                 training: TrainingConfig) -> list[Kernel]:
    """Backward of the output heads and loss."""
    dtype = _activation_dtype(training)
    d, vocab = model.d_model, model.vocab_size
    tokens = training.tokens_per_iteration
    batch = training.batch_size

    kernels = [elementwise(
        "loss.softmax_grad", n_elements=tokens * vocab, dtype=dtype,
        phase=Phase.BACKWARD, component=Component.OUTPUT, region=Region.LOSS,
        inputs=1, outputs=1, flops_per_element=2.0)]

    decoder = linear_layer_gemms(d, vocab, tokens)
    kernels.append(_gemm_kernel("mlm.decoder.bwd_act", decoder["bwd_act"],
                                dtype=dtype, phase=Phase.BACKWARD,
                                region=Region.OUTPUT,
                                component=Component.OUTPUT))
    kernels.append(_gemm_kernel("mlm.decoder.bwd_wt", decoder["bwd_wt"],
                                dtype=dtype, phase=Phase.BACKWARD,
                                region=Region.OUTPUT,
                                component=Component.OUTPUT))
    kernels.append(_bias_grad_kernel("mlm.decoder.bias_grad", tokens=tokens,
                                     features=vocab, dtype=dtype,
                                     region=Region.OUTPUT,
                                     component=Component.OUTPUT))

    kernels.extend(layernorm_kernels(
        rows=tokens, row_len=d, dtype=dtype, phase=Phase.BACKWARD,
        component=Component.OUTPUT, region=Region.OUTPUT,
        name_prefix="mlm.layernorm"))
    kernels.extend(gelu_kernels(n_elements=tokens * d, dtype=dtype,
                                phase=Phase.BACKWARD, name_prefix="mlm.gelu",
                                component=Component.OUTPUT,
                                region=Region.OUTPUT))

    transform = linear_layer_gemms(d, d, tokens)
    kernels.append(_gemm_kernel("mlm.transform.bwd_act",
                                transform["bwd_act"], dtype=dtype,
                                phase=Phase.BACKWARD, region=Region.OUTPUT,
                                component=Component.OUTPUT))
    kernels.append(_gemm_kernel("mlm.transform.bwd_wt", transform["bwd_wt"],
                                dtype=dtype, phase=Phase.BACKWARD,
                                region=Region.OUTPUT,
                                component=Component.OUTPUT))
    nsp = linear_layer_gemms(d, 2, batch)
    kernels.append(_gemm_kernel("nsp.classifier.bwd_act", nsp["bwd_act"],
                                dtype=dtype, phase=Phase.BACKWARD,
                                region=Region.OUTPUT,
                                component=Component.OUTPUT))
    kernels.append(_gemm_kernel("nsp.classifier.bwd_wt", nsp["bwd_wt"],
                                dtype=dtype, phase=Phase.BACKWARD,
                                region=Region.OUTPUT,
                                component=Component.OUTPUT))
    kernels.append(elementwise("nsp.tanh.bwd", n_elements=batch * d,
                               dtype=dtype, phase=Phase.BACKWARD,
                               component=Component.OUTPUT,
                               region=Region.OUTPUT, inputs=2,
                               flops_per_element=3.0))
    pooler = linear_layer_gemms(d, d, batch)
    kernels.append(_gemm_kernel("nsp.pooler.bwd_act", pooler["bwd_act"],
                                dtype=dtype, phase=Phase.BACKWARD,
                                region=Region.OUTPUT,
                                component=Component.OUTPUT))
    kernels.append(_gemm_kernel("nsp.pooler.bwd_wt", pooler["bwd_wt"],
                                dtype=dtype, phase=Phase.BACKWARD,
                                region=Region.OUTPUT,
                                component=Component.OUTPUT))
    return kernels


# --------------------------------------------------------------------------
# Full iteration
# --------------------------------------------------------------------------

def build_iteration_trace(model: BertConfig,
                          training: TrainingConfig) -> Trace:
    """Kernel trace of one full training iteration.

    Order: embedding FWD, encoder layers FWD (0..N-1), output head FWD +
    loss, output head BWD, encoder layers BWD (N-1..0), embedding BWD,
    optimizer update.  Activation checkpointing, when enabled, is applied as
    a trace transform by :mod:`repro.memoryplan.checkpointing`.

    The encoder layers are all identical except for their layer attribution,
    so layer 0 is enumerated once per direction and replicated across the
    remaining layers columnarly (:meth:`KernelTable.tiled`) instead of
    re-walking the model ``num_layers`` times in FWD and BWD.
    """
    # Imported lazily: repro.optim.kernels needs the parameter inventory
    # from this package, so a module-level import would be circular.
    from repro.optim.kernels import optimizer_kernels

    with spans.span("trace.build_iteration", model=model.name,
                    point=training.label):
        layer_fwd = KernelTable.from_kernels(
            transformer_layer_forward_kernels(model, training))
        layer_bwd = KernelTable.from_kernels(
            transformer_layer_backward_kernels(model, training))
        inventory = bert_parameter_inventory(model)
        table = KernelTable.concat([
            KernelTable.from_kernels(
                embedding_forward_kernels(model, training)),
            layer_fwd.tiled(range(model.num_layers)),
            KernelTable.from_kernels(
                output_head_forward_kernels(model, training)
                + output_head_backward_kernels(model, training)),
            layer_bwd.tiled(range(model.num_layers - 1, -1, -1)),
            KernelTable.from_kernels(
                embedding_backward_kernels(model, training)
                + optimizer_kernels(training.optimizer, inventory,
                                    precision=training.precision,
                                    fused=training.fuse_optimizer)),
        ])

        if training.activation_checkpointing:
            from repro.memoryplan.checkpointing import CheckpointingPass
            from repro.trace.passes import PassManager
            table = PassManager((CheckpointingPass(),)).run_table(
                table, model, training)
        trace = Trace.from_table(model, training, table)
        spans.annotate(kernels=len(trace))
    return trace
