"""Composable, vectorized trace-rewrite passes.

Every Sec. 4/6 optimization in the reproduction — elementwise-chain
fusion, attention fusion, windowed attention, activation checkpointing,
the distributed/NMC trace preparation — is a *trace rewrite*.  This module
gives them one shape: a :class:`TracePass` is a pure
``KernelTable -> KernelTable`` function, and a :class:`PassManager`
composes a sequence of them over a :class:`~repro.trace.builder.Trace`
without ever materializing the per-kernel object list.

What the manager adds around each pass:

* an obs span (``pass.<name>`` with ``rows_in``/``rows_out``) nested under
  ``pass_pipeline.run``, plus a ``pass_pipeline.passes`` counter labeled by
  pass name, so `repro spans` / `repro stats` attribute rewrite cost;
* optional **debug validation**: with ``debug=True`` (or the
  ``REPRO_PASS_DEBUG`` environment variable set) the structural invariants
  of :func:`repro.trace.validate.validate_trace` run after every pass, so
  a bad rewrite fails at the pass that produced it rather than deep inside
  profiling.  Training-phase ordering checks are skipped: passes like
  checkpointing legitimately interleave recompute rows, and fused
  attention's backward recomputation breaks the 2x GEMM-FLOP ratio;
* a stable pipeline **signature** (``"fuse_elementwise|checkpointing(num_
  checkpoints=4)"``) that :func:`repro.experiments.common.run_point` keys
  the runner cache on, so cached results distinguish fused / checkpointed
  / windowed variants of the same operating point.

Each pass stamps the rows it produces with a provenance code (see
``KernelTable.provenance``), so a transformed table records which pass
rewrote what.

The registry at the bottom (:func:`available_passes` /
:func:`build_pipeline`) maps the CLI's ``--passes`` specs like
``"fuse_elementwise,checkpointing:4"`` onto configured pass instances.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Callable, Iterable

from repro.config import BertConfig, TrainingConfig
from repro.obs import metrics, spans
from repro.trace.builder import Trace
from repro.trace.kernel_table import KernelTable

#: Environment variable enabling after-every-pass invariant validation.
DEBUG_ENV = "REPRO_PASS_DEBUG"

_PASS_RUNS = metrics.counter(
    "pass_pipeline.passes", "pass executions by pass name")
_PIPELINE_RUNS = metrics.counter(
    "pass_pipeline.runs", "whole-pipeline executions")


@dataclass(frozen=True)
class PassContext:
    """What a pass may read besides the table itself.

    Attributes:
        model: model configuration of the trace being rewritten.
        training: training operating point of the trace.
        debug: whether the manager validates after each pass.
    """

    model: BertConfig
    training: TrainingConfig
    debug: bool = False


class TracePass:
    """Base class of all trace rewrites: a pure table-to-table function.

    Subclasses set :attr:`name`, override :meth:`apply`, and return their
    configuration from :meth:`params` (it becomes part of the pipeline
    signature, and therefore of the runner cache key).  ``apply`` must not
    mutate its input — :class:`KernelTable` arrays are read-only, so an
    accidental in-place write raises immediately.
    """

    #: Stable identifier; also the provenance stamp and span suffix.
    name: str = "trace_pass"

    def params(self) -> dict:
        """Signature-relevant configuration (empty for parameterless)."""
        return {}

    @property
    def signature(self) -> str:
        """``name`` or ``name(key=value,...)`` with sorted keys."""
        params = self.params()
        if not params:
            return self.name
        inner = ",".join(f"{key}={params[key]}" for key in sorted(params))
        return f"{self.name}({inner})"

    def apply(self, table: KernelTable, ctx: PassContext) -> KernelTable:
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.signature!r})"


class PassManager:
    """Runs a pass sequence over a trace, table-native end to end.

    Attributes:
        passes: the configured passes, in application order.
        debug: validate invariants after every pass (defaults to the
            ``REPRO_PASS_DEBUG`` environment variable).
    """

    def __init__(self, passes: Iterable[TracePass] = (), *,
                 debug: bool | None = None):
        self.passes = tuple(passes)
        if debug is None:
            debug = os.environ.get(DEBUG_ENV, "").lower() not in (
                "", "0", "false")
        self.debug = debug

    @property
    def signature(self) -> str:
        """Stable pipeline identity for cache keying (empty = no-op)."""
        return "|".join(p.signature for p in self.passes)

    def run_table(self, table: KernelTable, model: BertConfig,
                  training: TrainingConfig) -> KernelTable:
        """Apply every pass to ``table`` and return the rewritten table."""
        ctx = PassContext(model=model, training=training, debug=self.debug)
        if not self.passes:
            return table
        with spans.span("pass_pipeline.run", passes=len(self.passes),
                        signature=self.signature, kernels=len(table)):
            _PIPELINE_RUNS.inc()
            for trace_pass in self.passes:
                with spans.span(f"pass.{trace_pass.name}",
                                rows_in=len(table)):
                    table = trace_pass.apply(table, ctx)
                    spans.annotate(rows_out=len(table))
                _PASS_RUNS.inc(**{"pass": trace_pass.name})
                if self.debug:
                    _validate_after(table, model, training, trace_pass)
            spans.annotate(kernels_out=len(table))
        return table

    def run(self, trace: Trace) -> Trace:
        """Apply the pipeline to a trace, returning a new trace view."""
        table = self.run_table(trace.table, trace.model, trace.training)
        return Trace.from_table(trace.model, trace.training, table)

    def __repr__(self) -> str:
        return f"PassManager([{self.signature}])"


def _validate_after(table: KernelTable, model: BertConfig,
                    training: TrainingConfig, trace_pass: TracePass) -> None:
    """Structural invariant check pinned to the pass that just ran."""
    from repro.trace.validate import validate_trace

    report = validate_trace(Trace.from_table(model, training, table),
                            training_iteration=False)
    if not report.ok:
        raise ValueError(
            f"pass {trace_pass.signature!r} produced an invalid trace:\n"
            + "\n".join(report.errors))


# ---------------------------------------------------------------------------
# Registry: names the CLI / run_point callers compose pipelines from.
# Imports live inside the function so loading this module never drags in
# the fusion/memoryplan/distributed/nmc packages (and cannot go circular).
# ---------------------------------------------------------------------------

PassFactory = Callable[["str | None"], TracePass]


def available_passes() -> dict[str, tuple[str, PassFactory]]:
    """Registered passes: name -> (description, factory(optional arg)).

    The factory's string argument is the ``name:arg`` suffix of a pipeline
    spec (``"checkpointing:4"``), or ``None`` when absent.
    """
    from repro.distributed.passes import OptimizerShardPass
    from repro.fusion.attention_fusion import FusedAttentionPass
    from repro.fusion.passes import ElementwiseChainFusionPass
    from repro.fusion.windowed_transform import WindowedAttentionPass
    from repro.memoryplan.checkpointing import CheckpointingPass
    from repro.nmc.offload import OptimizerOffloadPass
    from repro.ops.windowed_attention import WindowConfig

    return {
        "fuse_elementwise": (
            "fuse same-group elementwise/LN/optimizer chains (Sec. 6.1.1)",
            lambda arg: ElementwiseChainFusionPass()),
        "fused_attention": (
            "swap eager attention ops for the two fused kernels",
            lambda arg: FusedAttentionPass()),
        "windowed_attention": (
            "swap dense attention for block-local kernels; arg = block size",
            lambda arg: WindowedAttentionPass(
                WindowConfig(block=int(arg)) if arg else None)),
        "checkpointing": (
            "insert segment-replay recomputation; arg = checkpoint count",
            lambda arg: CheckpointingPass(int(arg) if arg else None)),
        "shard_optimizer": (
            "ZeRO-style optimizer shard; arg = device count (default 8)",
            lambda arg: OptimizerShardPass(int(arg) if arg else 8)),
        "offload_optimizer": (
            "drop optimizer rows from the GPU trace (NMC prices them)",
            lambda arg: OptimizerOffloadPass()),
    }


def build_pipeline(spec: str, *, debug: bool | None = None) -> PassManager:
    """Parse ``"name[:arg],name..."`` into a configured :class:`PassManager`.

    Raises:
        KeyError: unknown pass name (message lists the valid ones).
    """
    registry = available_passes()
    passes: list[TracePass] = []
    for token in (part.strip() for part in spec.split(",")):
        if not token:
            continue
        name, _, arg = token.partition(":")
        if name not in registry:
            raise KeyError(
                f"unknown pass {name!r}; available: "
                + ", ".join(sorted(registry)))
        passes.append(registry[name][1](arg or None))
    return PassManager(passes, debug=debug)
