"""Trace invariant validation.

A defensive checker for generated traces: structural properties every
well-formed training-iteration trace must satisfy.  Used by the test suite
and available to users who build custom traces.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ops.base import Component, Phase
from repro.trace.builder import Trace


@dataclass
class ValidationReport:
    """Outcome of validating a trace.

    Attributes:
        errors: invariant violations (empty means the trace is valid).
        warnings: suspicious-but-legal findings.
    """

    errors: list[str] = field(default_factory=list)
    warnings: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.errors

    def raise_if_invalid(self) -> None:
        if self.errors:
            raise ValueError("invalid trace:\n" + "\n".join(self.errors))


def validate_trace(trace: Trace, *, training_iteration: bool = True
                   ) -> ValidationReport:
    """Check structural invariants of a kernel trace.

    Args:
        trace: the trace to check.
        training_iteration: also enforce training-specific ordering
            (forward before backward before optimizer; backward GEMM FLOPs
            ~2x forward within the encoder).

    Invariants checked:
        * every GEMM kernel carries a shape whose FLOPs match the record;
        * no kernel has negative or absurd byte counts;
        * phases appear in FWD -> BWD -> OPT order (training only);
        * encoder backward GEMM FLOPs are twice forward (training only);
        * every encoder kernel is layer-attributed;
        * layer indices are contiguous from zero.
    """
    report = ValidationReport()

    for kernel in trace.kernels:
        if kernel.op_class.is_gemm:
            if kernel.gemm is None:
                report.errors.append(f"{kernel.name}: GEMM without shape")
            elif kernel.flops < kernel.gemm.flops:
                report.errors.append(
                    f"{kernel.name}: flops {kernel.flops} below anchor "
                    f"shape flops {kernel.gemm.flops}")
            elif kernel.flops > kernel.gemm.flops:
                # Legal for fused GEMM kernels carrying extra arithmetic.
                report.warnings.append(
                    f"{kernel.name}: fused GEMM kernel "
                    f"({kernel.flops / kernel.gemm.flops:.2f}x anchor)")
        if kernel.bytes_total == 0 and kernel.flops == 0:
            report.warnings.append(f"{kernel.name}: does no work")
        if (kernel.component is Component.TRANSFORMER
                and kernel.layer_index is None):
            report.errors.append(
                f"{kernel.name}: encoder kernel without layer index")

    layers = sorted({k.layer_index for k in trace.kernels
                     if k.layer_index is not None})
    if layers and layers != list(range(layers[-1] + 1)):
        report.errors.append(f"non-contiguous layer indices: {layers}")

    if training_iteration:
        _check_phase_order(trace, report)
        _check_backward_ratio(trace, report)
    return report


def _check_phase_order(trace: Trace, report: ValidationReport) -> None:
    """FWD kernels must precede BWD, which must precede OPT."""
    rank = {Phase.FORWARD: 0, Phase.BACKWARD: 1, Phase.OPTIMIZER: 2,
            Phase.COMMUNICATION: 2}
    last_rank = 0
    for kernel in trace.kernels:
        r = rank[kernel.phase]
        if r < last_rank:
            report.errors.append(
                f"{kernel.name}: phase {kernel.phase.value} appears after "
                "a later phase")
            return
        last_rank = r


def _check_backward_ratio(trace: Trace, report: ValidationReport) -> None:
    """Encoder backward GEMM FLOPs must be ~2x forward (Sec. 7)."""
    def gemm_flops(phase: Phase) -> int:
        return sum(k.flops for k in trace.kernels
                   if k.op_class.is_gemm and k.phase is phase
                   and k.component is Component.TRANSFORMER
                   and not k.name.startswith("recompute."))

    fwd = gemm_flops(Phase.FORWARD)
    bwd = gemm_flops(Phase.BACKWARD)
    if fwd == 0:
        if bwd:
            report.errors.append("backward GEMMs without forward GEMMs")
        return
    ratio = bwd / fwd
    if not 1.8 <= ratio <= 2.2:
        report.errors.append(
            f"encoder backward/forward GEMM FLOP ratio {ratio:.2f} "
            "outside [1.8, 2.2]")
