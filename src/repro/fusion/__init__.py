"""Kernel- and GEMM-fusion modeling (Sec. 6.1)."""

from repro.fusion.attention_fusion import (FusedAttentionPass,
                                           apply_fused_attention)
from repro.fusion.windowed_transform import (WindowedAttentionPass,
                                             apply_windowed_attention)
from repro.fusion.gemm_fusion import (GemmFusionResult, fused_qkv_shapes,
                                      fusion_sweep, qkv_fusion_comparison)
from repro.fusion.passes import (ElementwiseChainFusionPass, FusionImpact,
                                 fuse_chain, fuse_elementwise_chains,
                                 fusion_impact)

__all__ = [
    "ElementwiseChainFusionPass", "FusedAttentionPass", "FusionImpact",
    "GemmFusionResult", "WindowedAttentionPass", "apply_fused_attention",
    "apply_windowed_attention", "fuse_chain",
    "fuse_elementwise_chains", "fused_qkv_shapes", "fusion_impact",
    "fusion_sweep", "qkv_fusion_comparison",
]
