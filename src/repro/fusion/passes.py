"""Kernel-fusion passes over iteration traces (Sec. 6.1.1, Fig. 12a).

Eager execution launches one kernel per elementwise step and materializes
every intermediate to device memory.  Fusing a producer-consumer chain into
one kernel removes (a) the launch overhead of all but one kernel and (b)
the write+read of every intermediate tensor.  Both effects are computed
exactly here from the kernels' byte accounting; nothing about *time* is
assumed — the device model prices the fused trace like any other.

The pass fuses within ``fusion_group`` labels, which the trace generator
assigns to chains with actual data flow (GeLU steps, the DR+RC+LN tail,
scale+mask+softmax+dropout).  Kernels in *different* groups — e.g. LAMB
stages of different layers, which touch disjoint data — are never merged,
reflecting the paper's observation that fusing them would not reduce
memory traffic.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from repro.ops.base import Kernel, OpClass
from repro.trace.builder import Trace


def _chain_key(kernel: Kernel) -> tuple | None:
    """Grouping key for fusable kernels, or None if unfusable."""
    if kernel.fusion_group is None:
        return None
    if kernel.op_class.is_gemm:
        return None
    return (kernel.fusion_group, kernel.phase, kernel.layer_index)


def fuse_chain(kernels: list[Kernel]) -> Kernel:
    """Fuse a producer-consumer elementwise/reduction chain into one kernel.

    Each intermediate hand-off (the principal tensor between consecutive
    kernels) stops being written by the producer and read by the consumer;
    all side inputs (masks, residuals) and side outputs (saved masks,
    statistics) keep their traffic.  FLOPs are unchanged — fusion saves
    memory traffic and launches, not arithmetic.
    """
    if not kernels:
        raise ValueError("cannot fuse an empty chain")
    if len(kernels) == 1:
        return kernels[0]
    first = kernels[0]
    flops = sum(k.flops for k in kernels)
    bytes_read = sum(k.bytes_read for k in kernels)
    bytes_written = sum(k.bytes_written for k in kernels)
    for producer, consumer in zip(kernels, kernels[1:]):
        handoff = producer.n_elements * producer.dtype.bytes
        bytes_written -= min(handoff, producer.bytes_written)
        bytes_read -= min(handoff, consumer.bytes_read)
    has_reduction = any(k.op_class is OpClass.REDUCTION for k in kernels)
    return dataclasses.replace(
        first,
        name=f"fused.{first.fusion_group}.{first.phase.value}",
        op_class=OpClass.REDUCTION if has_reduction else OpClass.ELEMENTWISE,
        flops=flops,
        bytes_read=max(0, bytes_read),
        bytes_written=max(0, bytes_written),
        n_elements=max(k.n_elements for k in kernels),
    )


def fuse_elementwise_chains(trace: Trace) -> Trace:
    """Fuse every consecutive same-group elementwise chain in a trace."""
    fused: list[Kernel] = []
    pending: list[Kernel] = []
    pending_key: tuple | None = None

    def flush() -> None:
        nonlocal pending, pending_key
        if pending:
            fused.append(fuse_chain(pending))
            pending = []
            pending_key = None

    for kernel in trace.kernels:
        key = _chain_key(kernel)
        if key is None:
            flush()
            fused.append(kernel)
        elif key == pending_key:
            pending.append(kernel)
        else:
            flush()
            pending = [kernel]
            pending_key = key
    flush()
    return trace.replaced(fused)


@dataclass(frozen=True)
class FusionImpact:
    """Fig. 12a metrics: what fusion changed.

    Attributes:
        kernels_before/after: launch counts.
        bytes_before/after: total memory traffic.
        time_before/after: modeled execution time (seconds).
    """

    kernels_before: int
    kernels_after: int
    bytes_before: int
    bytes_after: int
    time_before: float
    time_after: float

    @property
    def kernel_ratio(self) -> float:
        return self.kernels_before / self.kernels_after

    @property
    def bytes_ratio(self) -> float:
        return self.bytes_before / self.bytes_after

    @property
    def time_ratio(self) -> float:
        return self.time_before / self.time_after


def fusion_impact(before: list[Kernel], after: list[Kernel],
                  device) -> FusionImpact:
    """Compare an unfused and a fused kernel set on a device."""
    from repro.hw.timing import trace_time

    return FusionImpact(
        kernels_before=len(before), kernels_after=len(after),
        bytes_before=sum(k.bytes_total for k in before),
        bytes_after=sum(k.bytes_total for k in after),
        time_before=trace_time(before, device),
        time_after=trace_time(after, device),
    )
