"""Kernel-fusion passes over iteration traces (Sec. 6.1.1, Fig. 12a).

Eager execution launches one kernel per elementwise step and materializes
every intermediate to device memory.  Fusing a producer-consumer chain into
one kernel removes (a) the launch overhead of all but one kernel and (b)
the write+read of every intermediate tensor.  Both effects are computed
exactly here from the kernels' byte accounting; nothing about *time* is
assumed — the device model prices the fused trace like any other.

The pass fuses within ``fusion_group`` labels, which the trace generator
assigns to chains with actual data flow (GeLU steps, the DR+RC+LN tail,
scale+mask+softmax+dropout, LAMB's multi-tensor stages).  Kernels in
*different* groups — e.g. LAMB stages of different layers, which touch
disjoint data — are never merged, reflecting the paper's observation that
fusing them would not reduce memory traffic.

:class:`ElementwiseChainFusionPass` is the columnar implementation: chains
are found by run-length grouping over the ``(fusion_code, phase, layer)``
code columns and collapsed with ``reduceat`` aggregations — no per-kernel
Python scan.  The original scan survives as
:func:`repro.trace.reference.reference_fuse_elementwise_chains`, the
oracle the pass is pinned against bit-exactly.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

import numpy as np

from repro.ops.base import Kernel, OpClass
from repro.trace.builder import Trace
from repro.trace.kernel_table import (DTYPE_BYTES, PHASES, KernelTable,
                                      code_of)
from repro.trace.passes import PassContext, PassManager, TracePass


def fuse_chain(kernels: list[Kernel]) -> Kernel:
    """Fuse a producer-consumer elementwise/reduction chain into one kernel.

    Each intermediate hand-off (the principal tensor between consecutive
    kernels) stops being written by the producer and read by the consumer;
    all side inputs (masks, residuals) and side outputs (saved masks,
    statistics) keep their traffic.  FLOPs are unchanged — fusion saves
    memory traffic and launches, not arithmetic.
    """
    if not kernels:
        raise ValueError("cannot fuse an empty chain")
    if len(kernels) == 1:
        return kernels[0]
    first = kernels[0]
    flops = sum(k.flops for k in kernels)
    bytes_read = sum(k.bytes_read for k in kernels)
    bytes_written = sum(k.bytes_written for k in kernels)
    for producer, consumer in zip(kernels, kernels[1:]):
        handoff = producer.n_elements * producer.dtype.bytes
        bytes_written -= min(handoff, producer.bytes_written)
        bytes_read -= min(handoff, consumer.bytes_read)
    has_reduction = any(k.op_class is OpClass.REDUCTION for k in kernels)
    return dataclasses.replace(
        first,
        name=f"fused.{first.fusion_group}.{first.phase.value}",
        op_class=OpClass.REDUCTION if has_reduction else OpClass.ELEMENTWISE,
        flops=flops,
        bytes_read=max(0, bytes_read),
        bytes_written=max(0, bytes_written),
        n_elements=max(k.n_elements for k in kernels),
    )


class ElementwiseChainFusionPass(TracePass):
    """Vectorized same-group chain fusion over the code columns.

    A chain is a maximal run of consecutive rows sharing
    ``(fusion_code, phase, layer)`` with a fusion group set and no GEMMs.
    Runs collapse to their first row; the fused row's costs come from
    ``reduceat`` aggregations with the per-hand-off byte corrections of
    :func:`fuse_chain` applied as masked pairwise arrays.
    """

    name = "fuse_elementwise"

    def apply(self, table: KernelTable, ctx: PassContext) -> KernelTable:
        n = len(table)
        if n == 0:
            return table
        fusable = (table.fusion_code >= 0) & ~table.is_gemm
        # same[i]: row i continues the chain started at some earlier row.
        same = np.zeros(n, dtype=bool)
        same[1:] = (fusable[1:] & fusable[:-1]
                    & (table.fusion_code[1:] == table.fusion_code[:-1])
                    & (table.phase[1:] == table.phase[:-1])
                    & (table.layer[1:] == table.layer[:-1]))
        if not same.any():
            return table
        starts = np.flatnonzero(~same)
        run_len = np.diff(np.append(starts, n))
        out = table.take(starts)
        fused = np.flatnonzero(run_len > 1)  # positions of real chains

        flops = np.add.reduceat(table.flops, starts)
        bytes_read = np.add.reduceat(table.bytes_read, starts)
        bytes_written = np.add.reduceat(table.bytes_written, starts)
        n_elements = np.maximum.reduceat(table.n_elements, starts)
        has_reduction = np.logical_or.reduceat(
            table.op_class == code_of(OpClass.REDUCTION), starts)

        # Hand-off corrections: for every (producer i, consumer i+1) pair
        # inside a run, the producer stops writing and the consumer stops
        # reading the principal tensor.  Stored at the consumer's row, so a
        # reduceat over run starts sums exactly the in-run pairs.
        handoff = table.n_elements * DTYPE_BYTES[table.dtype]
        correction_w = np.zeros(n, dtype=np.int64)
        correction_r = np.zeros(n, dtype=np.int64)
        correction_w[1:] = np.where(
            same[1:], np.minimum(handoff[:-1], table.bytes_written[:-1]), 0)
        correction_r[1:] = np.where(
            same[1:], np.minimum(handoff[:-1], table.bytes_read[1:]), 0)
        bytes_read = np.maximum(
            0, bytes_read - np.add.reduceat(correction_r, starts))
        bytes_written = np.maximum(
            0, bytes_written - np.add.reduceat(correction_w, starts))

        op_class = np.where(has_reduction, code_of(OpClass.REDUCTION),
                            code_of(OpClass.ELEMENTWISE)).astype(np.int8)

        # Pool one fused name per distinct (fusion group, phase) pair.
        start_rows = starts[fused]
        pair = (table.fusion_code[start_rows].astype(np.int64) * len(PHASES)
                + table.phase[start_rows])
        unique_pairs, inverse = np.unique(pair, return_inverse=True)
        pool = list(out.names)
        pool_index = {name: code for code, name in enumerate(pool)}
        pair_codes = np.empty(len(unique_pairs), dtype=np.int32)
        for j, value in enumerate(unique_pairs):
            group = table.fusion_groups[int(value) // len(PHASES)]
            phase = PHASES[int(value) % len(PHASES)]
            fused_name = f"fused.{group}.{phase.value}"
            code = pool_index.get(fused_name)
            if code is None:
                code = len(pool)
                pool.append(fused_name)
                pool_index[fused_name] = code
            pair_codes[j] = code

        return out.rewrite_rows(
            fused, provenance=self.name,
            name_code=pair_codes[inverse], names=tuple(pool),
            op_class=op_class[fused],
            flops=flops[fused],
            bytes_read=bytes_read[fused],
            bytes_written=bytes_written[fused],
            n_elements=n_elements[fused])


def fuse_elementwise_chains(trace: Trace) -> Trace:
    """Fuse every consecutive same-group elementwise chain in a trace."""
    return PassManager((ElementwiseChainFusionPass(),)).run(trace)


def _ratio(before: float, after: float, what: str) -> float:
    """Before/after ratio, guarded: both-empty is a no-op (1.0)."""
    if not after:
        if not before:
            return 1.0
        raise ValueError(f"empty fused side: {what} ratio is undefined")
    return before / after


@dataclass(frozen=True)
class FusionImpact:
    """Fig. 12a metrics: what fusion changed.

    Attributes:
        kernels_before/after: launch counts.
        bytes_before/after: total memory traffic.
        time_before/after: modeled execution time (seconds).
    """

    kernels_before: int
    kernels_after: int
    bytes_before: int
    bytes_after: int
    time_before: float
    time_after: float

    @property
    def kernel_ratio(self) -> float:
        return _ratio(self.kernels_before, self.kernels_after, "kernel")

    @property
    def bytes_ratio(self) -> float:
        return _ratio(self.bytes_before, self.bytes_after, "bytes")

    @property
    def time_ratio(self) -> float:
        return _ratio(self.time_before, self.time_after, "time")


def fusion_impact(before: list[Kernel], after: list[Kernel],
                  device) -> FusionImpact:
    """Compare an unfused and a fused kernel set on a device."""
    from repro.hw.timing import trace_time

    return FusionImpact(
        kernels_before=len(before), kernels_after=len(after),
        bytes_before=sum(k.bytes_total for k in before),
        bytes_after=sum(k.bytes_total for k in after),
        time_before=trace_time(before, device),
        time_after=trace_time(after, device),
    )
