"""Trace transform: replace eager attention ops with fused kernels.

Swaps each encoder layer's attention-operation kernels — the batched
GEMMs plus the scale/mask/softmax/dropout stream — for the two fused
kernels of :mod:`repro.ops.fused_attention`, preserving launch order and
layer attribution.  Linear projections and everything else are untouched.

:class:`FusedAttentionPass` is the columnar implementation: the first
attention-op row of each (layer, phase) becomes a marker that is
batch-rewritten in place from the fused-kernel template, and the remaining
attention-op rows are dropped with one boolean-mask select.  The original
per-kernel scan survives as
:func:`repro.trace.reference.reference_apply_fused_attention`.
"""

from __future__ import annotations

import numpy as np

from repro.ops.base import Kernel, Phase, Region
from repro.ops.fused_attention import (fused_attention_backward_kernel,
                                       fused_attention_forward_kernel)
from repro.trace.builder import Trace
from repro.trace.kernel_table import (PHASES, KernelTable, code_of)
from repro.trace.passes import PassContext, PassManager, TracePass


def _attention_markers(table: KernelTable
                       ) -> tuple[np.ndarray, np.ndarray] | None:
    """(keep mask, marker positions in the kept table), or None.

    A marker is the first attention-op row of each (layer, phase) block;
    every other attention-op row is dropped by ``keep``.
    """
    attention = (table.layer >= 0) & table.mask(
        region=(Region.ATTENTION_BGEMM, Region.ATTENTION_SMDSM))
    rows = np.flatnonzero(attention)
    if not len(rows):
        return None
    keys = (table.layer[rows].astype(np.int64) * len(PHASES)
            + table.phase[rows])
    _, first = np.unique(keys, return_index=True)
    marker_rows = rows[np.sort(first)]
    keep = ~attention
    keep[marker_rows] = True
    marker_positions = np.cumsum(keep)[marker_rows] - 1
    return keep, marker_positions


class FusedAttentionPass(TracePass):
    """Rewrite a trace with kernel-fused attention per layer/direction.

    The first eager attention-op kernel of each (layer, phase) block is
    replaced by the fused kernel; the rest of the block is dropped.
    """

    name = "fused_attention"

    def apply(self, table: KernelTable, ctx: PassContext) -> KernelTable:
        from repro.trace.bert_trace import _activation_dtype

        markers = _attention_markers(table)
        if markers is None:
            return table
        keep, positions = markers
        out = table.select(keep)

        model, training = ctx.model, ctx.training
        dtype = _activation_dtype(training)
        templates = {
            phase: builder(seq_len=training.seq_len, d_head=model.d_head,
                           batch_heads=training.batch_size * model.num_heads,
                           dtype=dtype)
            for phase, builder in ((Phase.FORWARD,
                                    fused_attention_forward_kernel),
                                   (Phase.BACKWARD,
                                    fused_attention_backward_kernel))}
        fwd, bwd = templates[Phase.FORWARD], templates[Phase.BACKWARD]

        names = list(out.names)
        name_codes = {}
        for kernel in (fwd, bwd):
            if kernel.name not in names:
                names.append(kernel.name)
            name_codes[kernel.name] = names.index(kernel.name)
        gemms = list(out.gemms)
        if fwd.gemm not in gemms:  # fwd and bwd share the score anchor
            gemms.append(fwd.gemm)
        gemm_code = gemms.index(fwd.gemm)

        # Markers keep their phase/component/layer; everything else comes
        # from the matching template, chosen per marker by phase.
        is_fwd = out.phase[positions] == code_of(Phase.FORWARD)

        def pick(field):
            return np.where(is_fwd, getattr(fwd, field), getattr(bwd, field))

        return out.rewrite_rows(
            positions, provenance=self.name,
            name_code=np.where(is_fwd, name_codes[fwd.name],
                               name_codes[bwd.name]),
            names=tuple(names),
            op_class=np.int8(code_of(fwd.op_class)),
            region=np.int8(code_of(fwd.region)),
            dtype=np.int8(code_of(dtype)),
            access=np.int8(code_of(fwd.access)),
            flops=pick("flops"),
            bytes_read=pick("bytes_read"),
            bytes_written=pick("bytes_written"),
            n_elements=pick("n_elements"),
            gemm_code=np.int32(gemm_code), gemms=tuple(gemms),
            fusion_code=np.int32(-1))


def apply_fused_attention(trace: Trace) -> Trace:
    """Rewrite a trace with kernel-fused attention per layer/direction."""
    return PassManager((FusedAttentionPass(),)).run(trace)


def _is_attention_op(kernel: Kernel) -> bool:
    return (kernel.layer_index is not None
            and kernel.region in (Region.ATTENTION_BGEMM,
                                  Region.ATTENTION_SMDSM))
