"""Trace transform: replace eager attention ops with fused kernels.

Swaps each encoder layer's attention-operation kernels — the batched
GEMMs plus the scale/mask/softmax/dropout stream — for the two fused
kernels of :mod:`repro.ops.fused_attention`, preserving launch order and
layer attribution.  Linear projections and everything else are untouched.
"""

from __future__ import annotations

from repro.ops.base import Kernel, Phase, Region
from repro.ops.fused_attention import (fused_attention_backward_kernel,
                                       fused_attention_forward_kernel)
from repro.trace.builder import Trace


def _is_attention_op(kernel: Kernel) -> bool:
    return (kernel.layer_index is not None
            and kernel.region in (Region.ATTENTION_BGEMM,
                                  Region.ATTENTION_SMDSM))


def apply_fused_attention(trace: Trace) -> Trace:
    """Rewrite a trace with kernel-fused attention per layer/direction.

    The first eager attention-op kernel of each (layer, phase) block is
    replaced by the fused kernel; the rest of the block is dropped.
    """
    from repro.trace.bert_trace import _activation_dtype

    model = trace.model
    training = trace.training
    dtype = _activation_dtype(training)
    batch_heads = training.batch_size * model.num_heads

    def fused_for(layer: int, phase: Phase) -> Kernel:
        builder = (fused_attention_forward_kernel
                   if phase is Phase.FORWARD
                   else fused_attention_backward_kernel)
        return builder(seq_len=training.seq_len, d_head=model.d_head,
                       batch_heads=batch_heads, dtype=dtype,
                       layer_index=layer)

    rewritten: list[Kernel] = []
    emitted: set[tuple[int, Phase]] = set()
    for kernel in trace.kernels:
        if not _is_attention_op(kernel):
            rewritten.append(kernel)
            continue
        key = (kernel.layer_index, kernel.phase)
        if key not in emitted:
            emitted.add(key)
            rewritten.append(fused_for(*key))
    return trace.replaced(rewritten)
