"""Trace transform: swap dense attention ops for block-local attention.

The counterpart of :mod:`repro.fusion.attention_fusion` for the windowed
(linear-complexity) attention variant: each encoder layer's dense
attention-operation kernels are replaced by the block-local kernel stream
of :mod:`repro.ops.windowed_attention`, so the full profiling/energy/export
pipeline can study windowed models end to end.
"""

from __future__ import annotations

from repro.ops.base import Kernel, Phase, Region
from repro.ops.windowed_attention import (WindowConfig,
                                          windowed_attention_op_kernels)
from repro.trace.builder import Trace


def _is_attention_op(kernel: Kernel) -> bool:
    return (kernel.layer_index is not None
            and kernel.region in (Region.ATTENTION_BGEMM,
                                  Region.ATTENTION_SMDSM))


def apply_windowed_attention(trace: Trace,
                             window: WindowConfig | None = None) -> Trace:
    """Rewrite a trace with block-local attention per encoder layer.

    The windowed kernel block (forward and backward interleaved as
    emitted) replaces the first dense attention-op kernel of each
    (layer, phase); remaining dense attention-op kernels are dropped.
    """
    from repro.trace.bert_trace import _activation_dtype

    window = window or WindowConfig()
    model = trace.model
    training = trace.training
    dtype = _activation_dtype(training)
    batch_heads = training.batch_size * model.num_heads

    def kernels_for(layer: int, phase: Phase) -> list[Kernel]:
        block = windowed_attention_op_kernels(
            seq_len=training.seq_len, d_head=model.d_head,
            batch_heads=batch_heads, window=window, dtype=dtype,
            layer_index=layer)
        return [k for k in block if k.phase is phase]

    rewritten: list[Kernel] = []
    emitted: set[tuple[int, Phase]] = set()
    for kernel in trace.kernels:
        if not _is_attention_op(kernel):
            rewritten.append(kernel)
            continue
        key = (kernel.layer_index, kernel.phase)
        if key not in emitted:
            emitted.add(key)
            rewritten.extend(kernels_for(*key))
    return trace.replaced(rewritten)
