"""Trace transform: swap dense attention ops for block-local attention.

The counterpart of :mod:`repro.fusion.attention_fusion` for the windowed
(linear-complexity) attention variant: each encoder layer's dense
attention-operation kernels are replaced by the block-local kernel stream
of :mod:`repro.ops.windowed_attention`, so the full profiling/energy/export
pipeline can study windowed models end to end.

:class:`WindowedAttentionPass` is the columnar implementation: the first
dense attention-op row of each (layer, phase) becomes a splice marker, the
rest are dropped with one boolean-mask select, and the per-phase windowed
kernel block — built once as a layer-templated :class:`KernelTable` and
:meth:`~repro.trace.kernel_table.KernelTable.tiled` per layer — replaces
each marker via :meth:`~repro.trace.kernel_table.KernelTable.splice` with
``replace=True``.  The original per-kernel scan survives as
:func:`repro.trace.reference.reference_apply_windowed_attention`.
"""

from __future__ import annotations

from repro.ops.base import Phase
from repro.ops.windowed_attention import (WindowConfig,
                                          windowed_attention_op_kernels)
from repro.trace.builder import Trace
from repro.trace.kernel_table import KernelTable, code_of
from repro.trace.passes import PassContext, PassManager, TracePass


class WindowedAttentionPass(TracePass):
    """Rewrite a trace with block-local attention per encoder layer.

    The windowed kernel block (forward and backward interleaved as
    emitted) replaces the first dense attention-op kernel of each
    (layer, phase); remaining dense attention-op kernels are dropped.
    """

    name = "windowed_attention"

    def __init__(self, window: WindowConfig | None = None):
        self.window = window or WindowConfig()

    def params(self) -> dict:
        return {"block": self.window.block,
                "window_blocks": self.window.window_blocks}

    def apply(self, table: KernelTable, ctx: PassContext) -> KernelTable:
        from repro.fusion.attention_fusion import _attention_markers
        from repro.trace.bert_trace import _activation_dtype

        markers = _attention_markers(table)
        if markers is None:
            return table
        keep, positions = markers
        out = table.select(keep)

        model, training = ctx.model, ctx.training
        block = windowed_attention_op_kernels(
            seq_len=training.seq_len, d_head=model.d_head,
            batch_heads=training.batch_size * model.num_heads,
            window=self.window, dtype=_activation_dtype(training),
            layer_index=None)
        templates = {
            phase: KernelTable.from_kernels(
                [k for k in block if k.phase is phase]).stamped(self.name)
            for phase in (Phase.FORWARD, Phase.BACKWARD)}

        forward_code = code_of(Phase.FORWARD)
        segments = [
            templates[Phase.FORWARD if out.phase[position] == forward_code
                      else Phase.BACKWARD].tiled([int(out.layer[position])])
            for position in positions]
        return out.splice(positions, segments, replace=True)


def apply_windowed_attention(trace: Trace,
                             window: WindowConfig | None = None) -> Trace:
    """Rewrite a trace with block-local attention per encoder layer."""
    return PassManager((WindowedAttentionPass(window),)).run(trace)
