"""Horizontal fusion of the attention linear GEMMs (Sec. 6.1.2, Figs. 12b/13).

The Q, K and V projections multiply the *same* input activation matrix by
three different weight matrices.  Concatenating the weights turns three
``d x tokens x d`` GEMMs into one ``3d x tokens x d`` GEMM: the input is
read once instead of three times, and the 3x larger output dimension fills
the accelerator better — which is exactly why the gain is largest when the
token count (or hidden size) is small.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hw.device import DeviceModel
from repro.hw.gemm_model import gemm_time
from repro.ops.base import DType
from repro.ops.gemm import GemmShape, linear_layer_gemms


@dataclass(frozen=True)
class GemmFusionResult:
    """3S (serial) vs. 3F (fused) comparison at one operating point.

    Attributes:
        tokens: token count ``B * n``.
        d_model: hidden size.
        pass_name: ``"fwd"`` or ``"bwd_wt"`` (the two GEMM kinds Fig. 12b
            examines).
        serial_s: time of the three separate GEMMs.
        fused_s: time of the single concatenated GEMM.
    """

    tokens: int
    d_model: int
    pass_name: str
    serial_s: float
    fused_s: float

    @property
    def speedup(self) -> float:
        return self.serial_s / self.fused_s

    @property
    def improvement(self) -> float:
        """Fractional performance improvement of fusion (e.g. 0.62 = 62%)."""
        return self.speedup - 1.0


def fused_qkv_shapes(d_model: int, tokens: int) -> dict[str, GemmShape]:
    """Table 2b linear shapes with the three weight matrices concatenated."""
    return linear_layer_gemms(d_model, 3 * d_model, tokens)


def qkv_fusion_comparison(d_model: int, tokens: int, device: DeviceModel,
                          dtype: DType = DType.FP32,
                          pass_name: str = "fwd") -> GemmFusionResult:
    """Compare 3 serial linear GEMMs against the fused QKV GEMM.

    Args:
        d_model: hidden size (each weight is ``d_model x d_model``).
        tokens: token count forming the shared GEMM dimension.
        device: device model to price both variants on.
        dtype: GEMM precision.
        pass_name: which of the three training GEMMs to compare
            (``"fwd"``, ``"bwd_act"`` or ``"bwd_wt"``).
    """
    separate = linear_layer_gemms(d_model, d_model, tokens)[pass_name]
    fused = fused_qkv_shapes(d_model, tokens)[pass_name]
    serial_s = 3.0 * gemm_time(separate, dtype, device).total_s
    fused_s = gemm_time(fused, dtype, device).total_s
    return GemmFusionResult(tokens=tokens, d_model=d_model,
                            pass_name=pass_name, serial_s=serial_s,
                            fused_s=fused_s)


def fusion_sweep(d_model: int, token_counts: list[int], device: DeviceModel,
                 dtype: DType = DType.FP32,
                 pass_name: str = "fwd") -> list[GemmFusionResult]:
    """Fig. 12b sweep: fusion benefit across input sizes."""
    return [qkv_fusion_comparison(d_model, tokens, device, dtype, pass_name)
            for tokens in token_counts]
