"""Per-route timeout budgets and deadline arithmetic.

A :class:`Timeout` is a table of wall-clock budgets by route name with a
default for everything unnamed; the async server wraps each computation
in :func:`asyncio.wait_for` with the route's budget, and sync code can
carve a :class:`Deadline` to thread through nested calls (the runner's
retry policy consumes one as ``deadline_s``).

Budgets are generous by design — the engine legitimately spends seconds
on a cold BERT-Large grid — so a timeout firing means something is
actually wedged (an injected ``serve.slow`` storm, a worker livelock),
at which point the breaker records the failure and the app degrades.
Expiries are counted per route (``resilience.timeouts``).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.obs import metrics

_TIMEOUTS = metrics.counter(
    "resilience.timeouts", "budget expiries by route")

#: Default per-route budgets (seconds).  ``None`` = no limit.
DEFAULT_BUDGETS_S: dict[str, float] = {
    "profile": 30.0,
    "perfetto": 30.0,
    "grid": 120.0,
}

#: Budget applied to routes absent from the table.
DEFAULT_BUDGET_S = 60.0


@dataclass(frozen=True)
class Timeout:
    """Wall-clock budgets by route.

    Attributes:
        budgets_s: route -> seconds.
        default_s: budget for unnamed routes (``None`` disables).
    """

    budgets_s: dict[str, float] = field(
        default_factory=lambda: dict(DEFAULT_BUDGETS_S))
    default_s: float | None = DEFAULT_BUDGET_S

    def budget_s(self, route: str) -> float | None:
        """The budget for ``route`` (``None`` = unlimited)."""
        return self.budgets_s.get(route, self.default_s)

    def expired(self, route: str) -> None:
        """Record that ``route``'s budget fired."""
        _TIMEOUTS.inc(route=route)

    def scaled(self, factor: float) -> "Timeout":
        """A copy with every budget multiplied by ``factor`` (tests
        shrink budgets to milliseconds instead of sleeping)."""
        return Timeout(
            budgets_s={route: budget * factor
                       for route, budget in self.budgets_s.items()},
            default_s=None if self.default_s is None
            else self.default_s * factor)


@dataclass
class Deadline:
    """A point in time work must finish by.

    Attributes:
        budget_s: total seconds granted at creation.
    """

    budget_s: float
    clock: object = time.monotonic
    started: float = field(default=0.0)

    def __post_init__(self) -> None:
        if self.budget_s <= 0:
            raise ValueError("budget_s must be positive")
        self.started = self.clock()

    def remaining_s(self) -> float:
        """Seconds left (clamped at zero)."""
        return max(0.0, self.budget_s - (self.clock() - self.started))

    def expired(self) -> bool:
        return self.remaining_s() == 0.0
