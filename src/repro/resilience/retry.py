"""Retry with exponential backoff, deterministic jitter and a deadline.

The policy is a frozen value object: ``backoff_s(attempt, token)`` is a
pure function, so two processes configured identically retry on an
identical schedule — jitter comes from the same seeded hash the fault
planner uses (:func:`repro.faults.plan.site_uniform`), not from global
RNG state.  That determinism is what lets the chaos tests assert exact
retry counters and lets a seeded chaos run reproduce byte-for-byte.

Two hard guarantees, both property-tested:

* backoff never exceeds ``max_delay_s`` per sleep, and
* a policy with a ``deadline_s`` never sleeps past it: if the next
  backoff would overrun the deadline the call gives up immediately,
  raising :class:`RetryBudgetExceeded` wrapping the last error.

``call`` retries only exceptions matched by ``retry_on`` (default: the
injected-fault family plus :class:`TransientError`); anything else
propagates on the first raise, untouched.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.faults.plan import site_uniform
from repro.faults.sites import InjectedFault
from repro.obs import metrics, spans

_RETRIES = metrics.counter(
    "resilience.retries", "retried attempts by site")
_GIVEUPS = metrics.counter(
    "resilience.giveups", "calls that exhausted their retry budget")


class TransientError(Exception):
    """Mark an error as safe to retry (dead worker, torn read, ...)."""


#: Exception types retried by default.
TRANSIENT = (InjectedFault, TransientError)


class RetryBudgetExceeded(Exception):
    """Every attempt failed (or the deadline cut the budget short)."""

    def __init__(self, token: str, attempts: int, last: BaseException):
        super().__init__(f"retry budget exhausted for {token or 'call'} "
                         f"after {attempts} attempt(s): "
                         f"{type(last).__name__}: {last}")
        self.attempts = attempts
        self.last = last


@dataclass(frozen=True)
class Retry:
    """A reusable retry policy.

    Attributes:
        max_attempts: total tries, including the first.
        base_delay_s: backoff before the first retry.
        multiplier: backoff growth per retry.
        max_delay_s: per-sleep cap.
        jitter: fraction of each delay that is randomized — a delay
            lands in ``[delay * (1 - jitter), delay]``, deterministically
            per ``(seed, token, attempt)``.
        deadline_s: total wall-clock budget (``None`` = unbounded).
        seed: jitter seed.
    """

    max_attempts: int = 4
    base_delay_s: float = 0.05
    multiplier: float = 2.0
    max_delay_s: float = 2.0
    jitter: float = 0.5
    deadline_s: float | None = None
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be in [0, 1]")
        if self.base_delay_s < 0 or self.max_delay_s < 0:
            raise ValueError("delays must be non-negative")
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise ValueError("deadline_s must be positive")

    def backoff_s(self, attempt: int, token: str = "") -> float:
        """Sleep before retry ``attempt`` (0-based); pure and seeded."""
        delay = min(self.base_delay_s * self.multiplier ** attempt,
                    self.max_delay_s)
        if self.jitter == 0.0 or delay == 0.0:
            return delay
        draw = site_uniform(self.seed, f"retry|{token}", attempt)
        return delay * (1.0 - self.jitter * draw)

    def delays(self, token: str = "") -> list[float]:
        """Every backoff the policy could sleep, in order."""
        return [self.backoff_s(attempt, token)
                for attempt in range(self.max_attempts - 1)]

    def call(self, fn, *, retry_on: tuple = TRANSIENT, token: str = "",
             sleep=time.sleep, clock=time.monotonic, on_retry=None):
        """Run ``fn`` under the policy; its return value on success.

        ``on_retry(attempt, error)`` fires before each backoff sleep
        (the executor counts retries into its telemetry with it).
        ``sleep``/``clock`` are injectable so the property tests can
        prove deadline compliance on a fake clock.
        """
        start = clock()
        last: BaseException | None = None
        for attempt in range(self.max_attempts):
            try:
                return fn()
            except retry_on as error:
                last = error
                if attempt == self.max_attempts - 1:
                    break
                delay = self.backoff_s(attempt, token)
                if (self.deadline_s is not None
                        and clock() - start + delay > self.deadline_s):
                    break
                _RETRIES.inc(site=token or "call")
                spans.annotate(**{"retry.attempt": attempt + 1,
                                  "retry.site": token or "call"})
                if on_retry is not None:
                    on_retry(attempt, error)
                sleep(delay)
        _GIVEUPS.inc(site=token or "call")
        assert last is not None
        raise RetryBudgetExceeded(token, attempt + 1, last) from last
