"""Resilience policies: retry, timeout budgets, circuit breaking.

The counterpart of :mod:`repro.faults` — the faults layer schedules
failures deterministically, this layer absorbs them: the experiment
runner retries transient failures under a :class:`Retry` policy, the
profiling server guards its engine behind a :class:`CircuitBreaker`
with per-route :class:`Timeout` budgets and degrades to stale bytes
when the circuit opens.  All policies are deterministic (seeded jitter,
injectable clocks) so chaos runs reproduce exactly.
"""

from repro.resilience.breaker import (CLOSED, HALF_OPEN, OPEN,
                                      CircuitBreaker)
from repro.resilience.retry import (TRANSIENT, Retry, RetryBudgetExceeded,
                                    TransientError)
from repro.resilience.timeout import (DEFAULT_BUDGET_S, DEFAULT_BUDGETS_S,
                                      Deadline, Timeout)

__all__ = [
    "CLOSED", "HALF_OPEN", "OPEN", "CircuitBreaker",
    "TRANSIENT", "Retry", "RetryBudgetExceeded", "TransientError",
    "DEFAULT_BUDGET_S", "DEFAULT_BUDGETS_S", "Deadline", "Timeout",
]
