"""Circuit breaker guarding the profiling service's engine computes.

Plain three-state breaker (the Nygard pattern), sized for the serve
path: consecutive compute failures beyond ``failure_threshold`` open the
circuit; while open, callers are refused *before* consuming a worker
slot (the app then degrades to stale bytes or a 503); after
``reset_timeout_s`` one probe request is admitted half-open — success
closes the circuit, failure re-opens it and restarts the clock.

Thread-safe (the serve worker pool records outcomes from worker threads
while the event loop asks :meth:`allow`), and the clock is injectable so
the state machine is tested without sleeping.  Transitions increment
``resilience.breaker.transitions{to=}`` and the current state is
exported as the ``resilience.breaker.open`` gauge plus the ``/stats``
snapshot.
"""

from __future__ import annotations

import threading
import time

from repro.obs import metrics

_TRANSITIONS = metrics.counter(
    "resilience.breaker.transitions", "breaker state changes by target")
_REJECTED = metrics.counter(
    "resilience.breaker.rejected", "calls refused while the breaker is open")
_OPEN = metrics.gauge(
    "resilience.breaker.open", "1 while the breaker is open")

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"


class CircuitBreaker:
    """Consecutive-failure breaker with a half-open probe."""

    def __init__(self, failure_threshold: int = 5,
                 reset_timeout_s: float = 5.0, *, name: str = "engine",
                 clock=time.monotonic):
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if reset_timeout_s <= 0:
            raise ValueError("reset_timeout_s must be positive")
        self.failure_threshold = failure_threshold
        self.reset_timeout_s = reset_timeout_s
        self.name = name
        self._clock = clock
        self._lock = threading.Lock()
        self._state = CLOSED
        self._consecutive_failures = 0
        self._opened_at = 0.0
        self._probing = False
        self.opens = 0

    # ---------------------------------------------------------------- state
    @property
    def state(self) -> str:
        with self._lock:
            self._maybe_half_open()
            return self._state

    def _maybe_half_open(self) -> None:
        if (self._state == OPEN
                and self._clock() - self._opened_at >= self.reset_timeout_s):
            self._transition(HALF_OPEN)
            self._probing = False

    def _transition(self, state: str) -> None:
        if state == self._state:
            return
        self._state = state
        _TRANSITIONS.inc(to=state, breaker=self.name)
        _OPEN.set(1 if state == OPEN else 0, breaker=self.name)
        if state == OPEN:
            self.opens += 1
            self._opened_at = self._clock()

    # ----------------------------------------------------------------- api
    def allow(self) -> bool:
        """May a call proceed right now?

        Closed: always.  Open: no (counted as rejected) until the reset
        timeout elapses.  Half-open: exactly one in-flight probe.
        """
        with self._lock:
            self._maybe_half_open()
            if self._state == CLOSED:
                return True
            if self._state == HALF_OPEN and not self._probing:
                self._probing = True
                return True
            _REJECTED.inc(breaker=self.name)
            return False

    def record_success(self) -> None:
        """A guarded call completed; closes a half-open circuit."""
        with self._lock:
            self._consecutive_failures = 0
            self._probing = False
            if self._state != CLOSED:
                self._transition(CLOSED)

    def record_failure(self) -> None:
        """A guarded call failed; may open the circuit."""
        with self._lock:
            self._probing = False
            if self._state == HALF_OPEN:
                self._transition(OPEN)
                return
            self._consecutive_failures += 1
            if (self._state == CLOSED
                    and self._consecutive_failures >= self.failure_threshold):
                self._transition(OPEN)

    def retry_after_s(self) -> float:
        """Seconds until an open circuit admits its half-open probe."""
        with self._lock:
            if self._state != OPEN:
                return 0.0
            remaining = (self.reset_timeout_s
                         - (self._clock() - self._opened_at))
            return max(0.0, remaining)

    def snapshot(self) -> dict:
        """JSON-able state for ``/stats`` and tests."""
        with self._lock:
            self._maybe_half_open()
            return {
                "state": self._state,
                "consecutive_failures": self._consecutive_failures,
                "failure_threshold": self.failure_threshold,
                "reset_timeout_s": self.reset_timeout_s,
                "opens": self.opens,
            }
