"""Model and training configurations for the BERT characterization study.

This module defines the hyperparameters from Table 2a of the paper together
with the named configurations its evaluation uses:

* ``BERT_BASE`` / ``BERT_LARGE``: the standard BERT sizes (Devlin et al.).
* ``C1`` / ``C2`` / ``C3``: the layer-size sweep of Fig. 9, where ``C2`` is
  BERT Large and ``C3`` is a Megatron-LM-like model with a 2x wider hidden
  dimension.
* ``Ph1-Bj-FPk`` style training points of Figs. 3/4/8 via
  :func:`training_point`.

All downstream subsystems (trace generation, the executable NumPy model, the
distributed analytical model) consume these two dataclasses, so the exact
hyperparameter vocabulary of the paper lives in one place.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from enum import Enum


class Precision(Enum):
    """Numeric precision of a training run.

    ``FP32`` is single precision throughout.  ``MIXED`` follows the paper's
    "FP16" configurations: forward/backward tensors, weights and gradients in
    FP16 while the optimizer holds FP32 master weights and runs entirely in
    FP32 (Sec. 3.2.1).
    """

    FP32 = "fp32"
    MIXED = "fp16"

    @property
    def activation_bytes(self) -> int:
        """Bytes per element of activations/gradients in FWD/BWD."""
        return 4 if self is Precision.FP32 else 2

    @property
    def optimizer_bytes(self) -> int:
        """Bytes per element of optimizer state (always FP32, Sec. 2.4)."""
        return 4


@dataclass(frozen=True)
class BertConfig:
    """Architecture hyperparameters of a BERT-style encoder (Table 2a).

    Attributes:
        num_layers: Transformer encoder layer count ``N``.
        d_model: hidden dimension ``d_model``.
        num_heads: attention head count ``h``.
        d_ff: FC intermediate dimension ``d_ff`` (usually ``4 * d_model``).
        vocab_size: WordPiece vocabulary size.
        max_position: maximum sequence length the position table supports.
        type_vocab_size: segment (sentence A/B) vocabulary size.
        name: human-readable label used in reports.
    """

    num_layers: int = 24
    d_model: int = 1024
    num_heads: int = 16
    d_ff: int = 4096
    vocab_size: int = 30522
    max_position: int = 512
    type_vocab_size: int = 2
    name: str = "bert"

    def __post_init__(self) -> None:
        if self.d_model % self.num_heads:
            raise ValueError(
                f"d_model ({self.d_model}) must be divisible by "
                f"num_heads ({self.num_heads})"
            )
        for field in ("num_layers", "d_model", "num_heads", "d_ff", "vocab_size"):
            if getattr(self, field) <= 0:
                raise ValueError(f"{field} must be positive")

    @property
    def d_head(self) -> int:
        """Per-head feature dimension ``d_model / h``."""
        return self.d_model // self.num_heads

    # ----------------------------------------------------------------- sizes
    def encoder_layer_parameters(self) -> int:
        """Parameter count of one Transformer encoder layer.

        Q/K/V/output projections, two FC weights, their biases, and the two
        LayerNorm gain/bias pairs.
        """
        d, f = self.d_model, self.d_ff
        attention = 4 * (d * d + d)
        feed_forward = (d * f + f) + (f * d + d)
        layer_norms = 2 * (2 * d)
        return attention + feed_forward + layer_norms

    def embedding_parameters(self) -> int:
        """Parameters of the token/position/segment embedding tables + LN."""
        d = self.d_model
        tables = (self.vocab_size + self.max_position + self.type_vocab_size) * d
        return tables + 2 * d

    def output_head_parameters(self) -> int:
        """Parameters of the MLM transform + decoder bias and NSP/pooler head.

        The MLM decoder weight is tied to the token embedding table (as in the
        reference implementation), so only its bias counts here.
        """
        d = self.d_model
        mlm_transform = d * d + d + 2 * d  # dense + LayerNorm
        mlm_decoder_bias = self.vocab_size
        pooler = d * d + d
        nsp = 2 * d + 2
        return mlm_transform + mlm_decoder_bias + pooler + nsp

    def total_parameters(self) -> int:
        """Total trainable parameter count of the pre-training model."""
        return (
            self.num_layers * self.encoder_layer_parameters()
            + self.embedding_parameters()
            + self.output_head_parameters()
        )

    def scaled(self, *, num_layers: int | None = None, d_model: int | None = None,
               d_ff: int | None = None, num_heads: int | None = None,
               name: str | None = None) -> "BertConfig":
        """Return a copy with some hyperparameters replaced (Fig. 8/9 sweeps)."""
        return dataclasses.replace(
            self,
            num_layers=num_layers if num_layers is not None else self.num_layers,
            d_model=d_model if d_model is not None else self.d_model,
            d_ff=d_ff if d_ff is not None else self.d_ff,
            num_heads=num_heads if num_heads is not None else self.num_heads,
            name=name if name is not None else self.name,
        )


@dataclass(frozen=True)
class TrainingConfig:
    """One training operating point: phase, input size and technique choices.

    Attributes:
        batch_size: per-device mini-batch ``B``.
        seq_len: input sequence length ``n`` (128 for Phase-1, 512 for
            Phase-2 of pre-training).
        precision: FP32 or mixed precision.
        masked_fraction: fraction of tokens selected for the MLM objective;
            the output head gathers only those positions.
        activation_checkpointing: recompute activations during backprop
            (Sec. 4), checkpointing ``sqrt(N)`` boundaries.
        fuse_optimizer: emit Apex-style per-layer fused LAMBStage1/2 kernels
            (the paper's baseline) rather than one kernel per elementwise op.
        optimizer: optimizer family used for the update phase.
    """

    batch_size: int = 32
    seq_len: int = 128
    precision: Precision = Precision.FP32
    masked_fraction: float = 0.15
    activation_checkpointing: bool = False
    fuse_optimizer: bool = True
    optimizer: str = "lamb"

    def __post_init__(self) -> None:
        if self.batch_size <= 0:
            raise ValueError("batch_size must be positive")
        if self.seq_len <= 0:
            raise ValueError("seq_len must be positive")
        if not 0.0 < self.masked_fraction < 1.0:
            raise ValueError("masked_fraction must be in (0, 1)")
        if self.optimizer not in ("lamb", "adam", "sgd"):
            raise ValueError(f"unknown optimizer {self.optimizer!r}")

    @property
    def tokens_per_iteration(self) -> int:
        """Token count ``B * n`` processed by one iteration."""
        return self.batch_size * self.seq_len

    @property
    def masked_positions(self) -> int:
        """Number of MLM positions gathered by the output head per batch."""
        return max(1, int(round(self.tokens_per_iteration * self.masked_fraction)))

    @property
    def label(self) -> str:
        """Paper-style label, e.g. ``Ph1-B32-FP32``."""
        phase = 1 if self.seq_len <= 128 else 2
        bits = 32 if self.precision is Precision.FP32 else 16
        return f"Ph{phase}-B{self.batch_size}-FP{bits}"


# --------------------------------------------------------------------- presets
BERT_BASE = BertConfig(num_layers=12, d_model=768, num_heads=12, d_ff=3072,
                       name="bert-base")
BERT_LARGE = BertConfig(num_layers=24, d_model=1024, num_heads=16, d_ff=4096,
                        name="bert-large")

#: Fig. 9 layer-size sweep.  C2 is BERT Large; C1 halves the hidden sizes and
#: C3 doubles them (Megatron-LM-BERT-like, "2x higher d_model than BERT-Large").
C1 = BERT_LARGE.scaled(d_model=512, d_ff=2048, num_heads=8, name="C1")
C2 = BERT_LARGE.scaled(name="C2")
C3 = BERT_LARGE.scaled(d_model=2048, d_ff=8192, num_heads=32, name="C3")

#: A small configuration for unit tests and the executable NumPy model.
BERT_TINY = BertConfig(num_layers=2, d_model=64, num_heads=4, d_ff=256,
                       vocab_size=512, max_position=128, name="bert-tiny")


def training_point(phase: int, batch_size: int, precision: Precision,
                   **overrides) -> TrainingConfig:
    """Build the paper's ``Phi-Bj-FPk`` operating points.

    Args:
        phase: 1 (``n=128``) or 2 (``n=512``) per Sec. 2.1.
        batch_size: mini-batch size ``B``.
        precision: numeric precision of the run.
        **overrides: forwarded to :class:`TrainingConfig`.
    """
    if phase not in (1, 2):
        raise ValueError("phase must be 1 or 2")
    seq_len = 128 if phase == 1 else 512
    return TrainingConfig(batch_size=batch_size, seq_len=seq_len,
                          precision=precision, **overrides)


#: The five operating points of Fig. 3, in the paper's order.
FIG3_POINTS = (
    training_point(1, 32, Precision.FP32),
    training_point(1, 4, Precision.FP32),
    training_point(2, 4, Precision.FP32),
    training_point(1, 32, Precision.MIXED),
    training_point(2, 4, Precision.MIXED),
)
