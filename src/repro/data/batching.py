"""MLM/NSP example construction and fixed-shape batching.

Builds the exact input structure of BERT pre-training: ``[CLS] A [SEP] B
[SEP]`` with segment ids, 15% MLM masking with the 80/10/10
mask/random/keep split, and is-next labels for NSP.  Within a phase every
batch has the same shape (Sec. 3.1.4), so a single batch is representative.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.synthetic import MarkovCorpus, Vocab

#: Label value for positions the MLM loss ignores.
IGNORE_INDEX = -100


@dataclass(frozen=True)
class PreTrainingBatch:
    """One fixed-shape pre-training batch.

    Attributes:
        token_ids: ``(B, n)`` input ids after masking.
        segment_ids: ``(B, n)`` sentence A/B ids.
        padding_mask: ``(B, n)`` True at real (non-pad) positions.
        mlm_labels: ``(B, n)`` original ids at masked positions,
            :data:`IGNORE_INDEX` elsewhere.
        nsp_labels: ``(B,)`` 1 if sentence B follows A.
    """

    token_ids: np.ndarray
    segment_ids: np.ndarray
    padding_mask: np.ndarray
    mlm_labels: np.ndarray
    nsp_labels: np.ndarray

    @property
    def batch_size(self) -> int:
        return self.token_ids.shape[0]

    @property
    def seq_len(self) -> int:
        return self.token_ids.shape[1]

    def masked_positions(self) -> int:
        """Count of positions carrying an MLM label."""
        return int((self.mlm_labels != IGNORE_INDEX).sum())


class PreTrainingDataset:
    """Streams fixed-shape MLM+NSP batches from a synthetic corpus.

    Args:
        vocab: vocabulary layout.
        corpus: sentence sampler.
        seq_len: sequence length ``n``.
        masked_fraction: fraction of content tokens given MLM labels.
        seed: RNG seed for masking/pairing decisions.
    """

    def __init__(self, vocab: Vocab, corpus: MarkovCorpus, *,
                 seq_len: int, masked_fraction: float = 0.15,
                 seed: int = 0):
        if seq_len < 8:
            raise ValueError("seq_len must be at least 8")
        if not 0.0 < masked_fraction < 1.0:
            raise ValueError("masked_fraction must be in (0, 1)")
        self.vocab = vocab
        self.corpus = corpus
        self.seq_len = seq_len
        self.masked_fraction = masked_fraction
        self._rng = np.random.default_rng(seed)

    def example(self) -> tuple[np.ndarray, np.ndarray, int]:
        """One unmasked example: (token_ids, segment_ids, is_next)."""
        content_len = self.seq_len - 3  # [CLS], two [SEP]
        is_next = int(self._rng.random() < 0.5)
        first, second = self.corpus.sentence_pair(content_len, bool(is_next))

        v = self.vocab
        tokens = np.concatenate((
            [v.cls], first, [v.sep], second, [v.sep]))
        segments = np.concatenate((
            np.zeros(len(first) + 2, dtype=np.int64),
            np.ones(len(second) + 1, dtype=np.int64)))
        pad = self.seq_len - len(tokens)
        if pad:
            tokens = np.concatenate((tokens,
                                     np.full(pad, v.pad, dtype=np.int64)))
            segments = np.concatenate((segments,
                                       np.zeros(pad, dtype=np.int64)))
        return tokens, segments, is_next

    def _apply_masking(self, tokens: np.ndarray,
                       maskable: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """The 80/10/10 MLM corruption.

        Returns:
            (corrupted tokens, labels with IGNORE_INDEX at unmasked spots).
        """
        labels = np.full_like(tokens, IGNORE_INDEX)
        candidates = np.flatnonzero(maskable)
        n_mask = max(1, int(round(len(candidates) * self.masked_fraction)))
        chosen = self._rng.choice(candidates, size=n_mask, replace=False)
        labels[chosen] = tokens[chosen]

        corrupted = tokens.copy()
        rolls = self._rng.random(n_mask)
        v = self.vocab
        for position, roll in zip(chosen, rolls):
            if roll < 0.8:
                corrupted[position] = v.mask
            elif roll < 0.9:
                corrupted[position] = int(self._rng.integers(
                    v.first_regular, v.size))
            # else: keep the original token (but still predict it).
        return corrupted, labels

    def batch(self, batch_size: int) -> PreTrainingBatch:
        """Sample one fixed-shape batch."""
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        v = self.vocab
        token_rows, segment_rows, label_rows, nsp = [], [], [], []
        for _ in range(batch_size):
            tokens, segments, is_next = self.example()
            special = np.isin(tokens, (v.pad, v.cls, v.sep))
            corrupted, labels = self._apply_masking(tokens, ~special)
            token_rows.append(corrupted)
            segment_rows.append(segments)
            label_rows.append(labels)
            nsp.append(is_next)
        token_ids = np.stack(token_rows)
        return PreTrainingBatch(
            token_ids=token_ids,
            segment_ids=np.stack(segment_rows),
            padding_mask=token_ids != v.pad,
            mlm_labels=np.stack(label_rows),
            nsp_labels=np.asarray(nsp, dtype=np.int64),
        )

    def batches(self, batch_size: int, count: int):
        """Yield ``count`` batches."""
        for _ in range(count):
            yield self.batch(batch_size)
