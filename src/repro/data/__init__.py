"""Synthetic pre-training data: corpus, MLM/NSP masking, batching."""

from repro.data.batching import (IGNORE_INDEX, PreTrainingBatch,
                                 PreTrainingDataset)
from repro.data.packing import (PackedSequence, SequencePacker,
                                first_fit_decreasing, packed_attention_bias)
from repro.data.synthetic import MarkovCorpus, Vocab

__all__ = ["IGNORE_INDEX", "MarkovCorpus", "PackedSequence",
           "PreTrainingBatch", "PreTrainingDataset", "SequencePacker",
           "Vocab", "first_fit_decreasing", "packed_attention_bias"]
