"""Synthetic pre-training corpus.

The paper pre-trains on English Wikipedia, but its profile depends only on
tensor shapes, not token values (Sec. 3.1.4 profiles one fixed-shape
iteration).  For the *executable* model we still want data with learnable
structure, so the generator produces sentences from a Markov chain over a
synthetic vocabulary: bigram statistics give the MLM objective something
real to learn, and consecutive-vs-random sentence pairing gives NSP a
learnable signal.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class Vocab:
    """Special-token layout of the synthetic WordPiece-like vocabulary."""

    size: int
    pad: int = 0
    cls: int = 1
    sep: int = 2
    mask: int = 3

    @property
    def first_regular(self) -> int:
        """First id usable as a regular token."""
        return 4

    def __post_init__(self) -> None:
        if self.size <= self.first_regular + 1:
            raise ValueError("vocabulary too small for special tokens")

    @property
    def regular_tokens(self) -> int:
        return self.size - self.first_regular


class MarkovCorpus:
    """Sentence sampler with bigram structure.

    A random sparse transition matrix over the regular tokens makes some
    continuations far likelier than others, so a model that learns the
    bigram statistics beats the uniform-guess loss — the property the
    training-loop tests rely on.

    Args:
        vocab: vocabulary layout.
        seed: RNG seed.
        branching: successors per token; smaller = more learnable.
    """

    def __init__(self, vocab: Vocab, *, seed: int = 0, branching: int = 4):
        if branching < 1:
            raise ValueError("branching must be >= 1")
        self.vocab = vocab
        self._rng = np.random.default_rng(seed)
        n = vocab.regular_tokens
        self._successors = self._rng.integers(0, n, size=(n, branching))

    def sentence(self, length: int) -> np.ndarray:
        """One sentence of ``length`` regular-token ids."""
        if length < 1:
            raise ValueError("length must be >= 1")
        n = self.vocab.regular_tokens
        tokens = np.empty(length, dtype=np.int64)
        current = int(self._rng.integers(0, n))
        for position in range(length):
            tokens[position] = current + self.vocab.first_regular
            choices = self._successors[current]
            current = int(choices[self._rng.integers(0, len(choices))])
        return tokens

    def sentence_pair(self, total_length: int,
                      is_next: bool) -> tuple[np.ndarray, np.ndarray]:
        """Two sentences; the second continues the first iff ``is_next``."""
        first_len = max(1, total_length // 2)
        second_len = max(1, total_length - first_len)
        first = self.sentence(first_len)
        if is_next:
            # Continue the chain from the first sentence's last token.
            last = int(first[-1]) - self.vocab.first_regular
            second = np.empty(second_len, dtype=np.int64)
            current = int(self._successors[last][0])
            for position in range(second_len):
                second[position] = current + self.vocab.first_regular
                current = int(self._successors[current][0])
        else:
            second = self.sentence(second_len)
        return first, second
