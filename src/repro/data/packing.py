"""Sequence packing for long-sequence (Phase-2) pre-training.

Phase-2 trains at ``n=512``, but natural sentence pairs are far shorter;
production pipelines pack several pairs into each sequence so padding does
not waste the quadratic attention cost.  This module packs pair segments
greedily (first-fit decreasing) into fixed-length sequences and reports
the padding efficiency gained — the input-pipeline counterpart of the
paper's fixed-shape-iteration observation (Sec. 3.1.4).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.synthetic import MarkovCorpus, Vocab


@dataclass(frozen=True)
class PackedSequence:
    """One packed sequence of several ``[CLS] A [SEP] B [SEP]`` segments.

    Attributes:
        token_ids: ``(n,)`` ids, padded at the tail.
        segment_ids: 0/1 alternating per segment part.
        sequence_ids: which packed segment each position belongs to
            (-1 at padding) — the key for block-diagonal attention masks.
    """

    token_ids: np.ndarray
    segment_ids: np.ndarray
    sequence_ids: np.ndarray

    @property
    def used_tokens(self) -> int:
        return int((self.sequence_ids >= 0).sum())

    @property
    def efficiency(self) -> float:
        """Fraction of positions carrying real tokens."""
        return self.used_tokens / len(self.token_ids)

    def attention_allowed(self) -> np.ndarray:
        """(n, n) boolean: positions may attend only within their own
        packed segment (and never to padding)."""
        same = self.sequence_ids[:, None] == self.sequence_ids[None, :]
        valid = self.sequence_ids >= 0
        return same & valid[:, None] & valid[None, :]


def first_fit_decreasing(lengths: list[int], capacity: int) -> list[list[int]]:
    """Pack item lengths into bins of ``capacity`` (first-fit decreasing).

    Returns:
        Bins as lists of item *indices* into ``lengths``.
    """
    if capacity < 1:
        raise ValueError("capacity must be positive")
    if any(length > capacity for length in lengths):
        raise ValueError("an item exceeds the bin capacity")
    order = sorted(range(len(lengths)), key=lambda i: -lengths[i])
    bins: list[list[int]] = []
    remaining: list[int] = []
    for index in order:
        for b, room in enumerate(remaining):
            if lengths[index] <= room:
                bins[b].append(index)
                remaining[b] -= lengths[index]
                break
        else:
            bins.append([index])
            remaining.append(capacity - lengths[index])
    return bins


class SequencePacker:
    """Packs sentence-pair segments into fixed-length sequences.

    Args:
        vocab: vocabulary layout.
        corpus: sentence source.
        seq_len: packed sequence length (512 for Phase-2).
        min_pair / max_pair: content-length range of one sampled pair
            (before the 3 special tokens).
        seed: RNG seed for pair lengths.
    """

    def __init__(self, vocab: Vocab, corpus: MarkovCorpus, *, seq_len: int,
                 min_pair: int = 32, max_pair: int = 128, seed: int = 0):
        if not 1 <= min_pair <= max_pair <= seq_len - 3:
            raise ValueError("invalid pair-length range")
        self.vocab = vocab
        self.corpus = corpus
        self.seq_len = seq_len
        self.min_pair = min_pair
        self.max_pair = max_pair
        self._rng = np.random.default_rng(seed)

    def _segment(self, content_len: int) -> tuple[np.ndarray, np.ndarray]:
        """One [CLS] A [SEP] B [SEP] segment of given content length."""
        first, second = self.corpus.sentence_pair(content_len, is_next=True)
        v = self.vocab
        tokens = np.concatenate(([v.cls], first, [v.sep], second, [v.sep]))
        segments = np.concatenate((
            np.zeros(len(first) + 2, dtype=np.int64),
            np.ones(len(second) + 1, dtype=np.int64)))
        return tokens, segments

    def pack(self, n_segments: int) -> list[PackedSequence]:
        """Sample ``n_segments`` pairs and pack them into sequences."""
        if n_segments < 1:
            raise ValueError("n_segments must be positive")
        contents = self._rng.integers(self.min_pair, self.max_pair + 1,
                                      size=n_segments)
        segments = [self._segment(int(c)) for c in contents]
        lengths = [len(tokens) for tokens, _ in segments]
        bins = first_fit_decreasing(lengths, self.seq_len)

        packed = []
        for bin_indices in bins:
            token_ids = np.full(self.seq_len, self.vocab.pad,
                                dtype=np.int64)
            segment_ids = np.zeros(self.seq_len, dtype=np.int64)
            sequence_ids = np.full(self.seq_len, -1, dtype=np.int64)
            cursor = 0
            for slot, index in enumerate(bin_indices):
                tokens, segs = segments[index]
                span = slice(cursor, cursor + len(tokens))
                token_ids[span] = tokens
                segment_ids[span] = segs
                sequence_ids[span] = slot
                cursor += len(tokens)
            packed.append(PackedSequence(token_ids=token_ids,
                                         segment_ids=segment_ids,
                                         sequence_ids=sequence_ids))
        return packed

    def padding_saved(self, n_segments: int) -> float:
        """Fraction of sequences (and thus attention cost) avoided by
        packing, vs. one segment per fixed-length sequence."""
        packed = self.pack(n_segments)
        packed_total = len(packed) * self.seq_len
        unpacked_total = n_segments * self.seq_len
        return (unpacked_total - packed_total) / unpacked_total


def packed_attention_bias(packed: PackedSequence,
                          dtype=np.float32) -> np.ndarray:
    """Additive attention bias enforcing block-diagonal (per-segment)
    attention for a packed sequence, shaped ``(1, 1, n, n)``."""
    allowed = packed.attention_allowed()
    bias = np.where(allowed, 0.0, -1e9).astype(dtype)
    return bias[None, None, :, :]
