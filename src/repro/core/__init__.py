"""High-level characterization API (the paper's contribution as a tool)."""

from repro.core.advisor import Advice, ConfigOption, advise
from repro.core.advisor import render as render_advice
from repro.core.characterize import (Characterization, GemmClassSummary,
                                     characterize)

__all__ = ["Advice", "Characterization", "ConfigOption", "GemmClassSummary",
           "advise", "characterize", "render_advice"]
