"""The one-call characterization API — the paper's contribution as a tool.

Everything the paper derives about an operating point, produced in one
step: the kernel inventory, runtime/hierarchy breakdowns, GEMM
heterogeneity, memory footprint, energy, and the takeaway-relevant
fractions.  Examples and downstream users get the whole analysis through
:func:`characterize` without touching the individual subsystems.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import BertConfig, Precision, TrainingConfig
from repro.hw.device import DeviceModel, mi100
from repro.hw.energy import EnergyReport, iteration_energy
from repro.memoryplan.footprint import MemoryFootprint, training_footprint
from repro.ops.base import Component, Region
from repro.profiler.breakdown import region_breakdown, summarize
from repro.profiler.profiler import Profile, profile_trace
from repro.report.tables import format_percent, format_table
from repro.trace.bert_trace import build_iteration_trace
from repro.trace.builder import Trace
from repro.trace.validate import validate_trace


@dataclass(frozen=True)
class GemmClassSummary:
    """One GEMM family's aggregate behavior.

    Attributes:
        family: ``"fc"`` / ``"linear"`` / ``"attention"`` / ``"output"``.
        count: kernels per iteration.
        time_fraction: share of iteration time.
        min_intensity / max_intensity: ops/byte range across the family.
        memory_bound_count: kernels whose time is traffic-limited.
    """

    family: str
    count: int
    time_fraction: float
    min_intensity: float
    max_intensity: float
    memory_bound_count: int


@dataclass(frozen=True)
class Characterization:
    """Full characterization of one (model, training, device) point.

    Attributes:
        model / training: the operating point.
        device_name: device model used.
        trace: the kernel trace (validated).
        profile: the timed profile.
        iteration_s: modeled iteration time.
        summary: headline fractions (transformer/output/optimizer/GEMM...).
        regions: per-region fractions of iteration time.
        gemm_classes: GEMM heterogeneity summary (the Fig. 6 story).
        footprint: device-memory footprint.
        energy: iteration energy report.
    """

    model: BertConfig
    training: TrainingConfig
    device_name: str
    trace: Trace
    profile: Profile
    iteration_s: float
    summary: dict[str, float]
    regions: dict[Region, float]
    gemm_classes: list[GemmClassSummary]
    footprint: MemoryFootprint
    energy: EnergyReport

    @property
    def tokens_per_second(self) -> float:
        """Training throughput at this operating point."""
        return self.training.tokens_per_iteration / self.iteration_s

    def report(self) -> str:
        """Human-readable multi-section characterization report."""
        head = (f"{self.model.name} | {self.training.label} | "
                f"{self.device_name}\n"
                f"iteration {self.iteration_s * 1e3:.1f} ms  "
                f"({self.tokens_per_second:,.0f} tokens/s)   "
                f"kernels {len(self.trace)}   "
                f"footprint {self.footprint.total / 1e9:.1f} GB   "
                f"energy {self.energy.total_j:.1f} J")

        breakdown_rows = [
            (key, format_percent(self.summary[key]))
            for key in ("transformer", "output", "embedding", "optimizer",
                        "gemm", "non_gemm")]
        regions_rows = [(region.value, format_percent(fraction))
                        for region, fraction in self.regions.items()]
        gemm_rows = [(g.family, g.count, format_percent(g.time_fraction),
                      f"{g.min_intensity:.0f}-{g.max_intensity:.0f}",
                      f"{g.memory_bound_count}/{g.count}")
                     for g in self.gemm_classes]
        return "\n\n".join([
            head,
            format_table(("slice", "share"), breakdown_rows),
            format_table(("region", "share"), regions_rows),
            format_table(("GEMM family", "kernels", "time", "ops/byte",
                          "memory-bound"), gemm_rows),
        ])


_GEMM_FAMILIES = {
    "fc": lambda k: k.region is Region.FC_GEMM,
    "linear": lambda k: k.region is Region.ATTENTION_LINEAR,
    "attention": lambda k: k.region is Region.ATTENTION_BGEMM,
    "output": lambda k: k.component is Component.OUTPUT,
}


def _gemm_classes(profile: Profile) -> list[GemmClassSummary]:
    from repro.hw.gemm_model import gemm_time

    total = profile.total_time
    summaries = []
    for family, predicate in _GEMM_FAMILIES.items():
        records = profile.records_where(
            lambda k, predicate=predicate: k.op_class.is_gemm
            and predicate(k))
        if not records:
            continue
        intensities = [r.kernel.gemm.arithmetic_intensity(r.kernel.dtype)
                       for r in records]
        memory_bound = sum(
            1 for r in records
            if gemm_time(r.kernel.gemm, r.kernel.dtype,
                         profile.device).memory_bound)
        summaries.append(GemmClassSummary(
            family=family, count=len(records),
            time_fraction=sum(r.time_s for r in records) / total,
            min_intensity=min(intensities),
            max_intensity=max(intensities),
            memory_bound_count=memory_bound))
    return summaries


def characterize(model: BertConfig,
                 training: TrainingConfig | None = None,
                 device: DeviceModel | None = None,
                 transforms=()) -> Characterization:
    """Characterize one operating point end to end.

    Args:
        model: architecture configuration.
        training: operating point; defaults to Ph1-B32-FP32.
        device: device model; defaults to the MI100-like preset.
        transforms: trace transforms applied in order before profiling
            (e.g. ``repro.fusion.fuse_elementwise_chains``,
            ``repro.fusion.apply_fused_attention``) — characterize the
            optimized variant of the workload.
    """
    training = training or TrainingConfig(batch_size=32, seq_len=128,
                                          precision=Precision.FP32)
    device = device or mi100()
    trace = build_iteration_trace(model, training)
    for transform in transforms:
        trace = transform(trace)
    # Transforms may legitimately break training-only invariants (fused
    # backward recomputation changes the BWD/FWD FLOP ratio).
    validate_trace(trace,
                   training_iteration=not transforms).raise_if_invalid()
    profile = profile_trace(trace, device)
    stats = summarize(profile)
    return Characterization(
        model=model, training=training, device_name=device.name,
        trace=trace, profile=profile,
        iteration_s=stats["total_time_s"],
        summary={k: v for k, v in stats.items() if k != "total_time_s"},
        regions={region: entry.fraction
                 for region, entry in region_breakdown(profile).items()},
        gemm_classes=_gemm_classes(profile),
        footprint=training_footprint(model, training),
        energy=iteration_energy(profile),
    )
