"""Training-configuration advisor.

Given a model and a device, searches the (batch size, precision,
activation checkpointing) space for the highest-throughput configuration
that fits device memory — the operational question the paper's
characterization exists to answer.  Throughput comes from the frozen
timing model; memory from the footprint estimator; the advisor simply
enumerates, filters and ranks.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from repro.config import BertConfig, Precision, TrainingConfig
from repro.hw.device import DeviceModel, mi100
from repro.memoryplan.footprint import training_footprint
from repro.profiler.profiler import profile_trace
from repro.report.tables import format_table
from repro.trace.bert_trace import build_iteration_trace


@dataclass(frozen=True)
class ConfigOption:
    """One evaluated training configuration.

    Attributes:
        training: the configuration.
        fits: whether it fits device memory.
        footprint_gb: estimated memory footprint.
        iteration_s: modeled iteration time (None when it does not fit).
        tokens_per_second: training throughput (None when it does not fit).
    """

    training: TrainingConfig
    fits: bool
    footprint_gb: float
    iteration_s: float | None
    tokens_per_second: float | None

    @property
    def label(self) -> str:
        tag = "+ckpt" if self.training.activation_checkpointing else ""
        return f"{self.training.label}{tag}"


@dataclass(frozen=True)
class Advice:
    """Advisor output.

    Attributes:
        options: every evaluated configuration, best throughput first
            (non-fitting options at the end).
        best: the recommended configuration, or None if nothing fits.
    """

    options: list[ConfigOption]
    best: ConfigOption | None


def advise(model: BertConfig, device: DeviceModel | None = None, *,
           seq_len: int = 128,
           batch_sizes: tuple[int, ...] = (8, 16, 32, 64, 96),
           precisions: tuple[Precision, ...] = (Precision.FP32,
                                                Precision.MIXED),
           consider_checkpointing: bool = True) -> Advice:
    """Enumerate, filter by memory, rank by throughput.

    Checkpointed variants are only proposed where the plain variant does
    not fit — recompute is pure overhead otherwise (Sec. 4).
    """
    device = device or mi100()
    options: list[ConfigOption] = []
    for precision in precisions:
        for batch in batch_sizes:
            base = TrainingConfig(batch_size=batch, seq_len=seq_len,
                                  precision=precision)
            option = _evaluate(model, base, device)
            options.append(option)
            if consider_checkpointing and not option.fits:
                checkpointed = dataclasses.replace(
                    base, activation_checkpointing=True)
                options.append(_evaluate(model, checkpointed, device))

    fitting = [o for o in options if o.fits]
    fitting.sort(key=lambda o: -(o.tokens_per_second or 0.0))
    failing = [o for o in options if not o.fits]
    ranked = fitting + failing
    return Advice(options=ranked, best=fitting[0] if fitting else None)


def _evaluate(model: BertConfig, training: TrainingConfig,
              device: DeviceModel) -> ConfigOption:
    footprint = training_footprint(model, training)
    fits = footprint.fits(device.hbm_capacity_gb)
    if not fits:
        return ConfigOption(training=training, fits=False,
                            footprint_gb=footprint.total / 1e9,
                            iteration_s=None, tokens_per_second=None)
    trace = build_iteration_trace(model, training)
    iteration = profile_trace(trace, device).total_time
    return ConfigOption(
        training=training, fits=True,
        footprint_gb=footprint.total / 1e9,
        iteration_s=iteration,
        tokens_per_second=training.tokens_per_iteration / iteration)


def render(advice: Advice) -> str:
    """Ranked table of the evaluated configurations."""
    rows = []
    for option in advice.options:
        if option.fits:
            rows.append((option.label, f"{option.footprint_gb:.1f} GB",
                         f"{option.iteration_s * 1e3:.0f} ms",
                         f"{option.tokens_per_second:,.0f} tok/s",
                         "<= best" if option is advice.best else ""))
        else:
            rows.append((option.label, f"{option.footprint_gb:.1f} GB",
                         "-", "does not fit", ""))
    return format_table(("configuration", "memory", "iteration",
                         "throughput", ""), rows)
