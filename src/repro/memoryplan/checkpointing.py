"""Activation (gradient) checkpointing as a trace transform (Sec. 4).

Instead of saving every layer activation for backprop, checkpointing stores
activations only at segment boundaries (``~sqrt(N)`` of them) and recomputes
each segment's forward pass on demand when backprop reaches it.  The paper
measures ~33% more kernels and ~27% more runtime for BERT Large, with the
in-layer breakdown unchanged and LAMB's share dropping (its absolute cost is
unaffected).

The transform rewrites an iteration trace: before each encoder layer's
backward kernels, the layer's forward kernels are re-emitted (tagged
``recompute.``), except for layers whose input was checkpointed *and* whose
forward output is the stored boundary — the standard segment-replay
schedule re-runs every layer inside a segment, so the whole encoder forward
is effectively executed twice.

:class:`CheckpointingPass` is the columnar implementation: the replay of
each segment is built by a pool-level ``recompute.`` rename over the
segment's forward rows and inserted with one :meth:`KernelTable.splice` at
the segment's first backward row.  The original per-kernel scan survives
as :func:`repro.trace.reference.reference_apply_checkpointing`.
"""

from __future__ import annotations

import math

import numpy as np

from repro.ops.base import Component, Phase
from repro.trace.builder import Trace
from repro.trace.kernel_table import KernelTable, code_of
from repro.trace.passes import PassContext, PassManager, TracePass


def checkpoint_segments(num_layers: int,
                        num_checkpoints: int | None = None) -> list[range]:
    """Split ``num_layers`` into checkpoint segments.

    Args:
        num_layers: encoder layer count ``N``.
        num_checkpoints: boundary count; defaults to ``round(sqrt(N))``
            (four for BERT Large, recomputing after every six layers —
            exactly the paper's setup).

    Returns:
        List of layer ranges, one per segment.
    """
    if num_layers <= 0:
        raise ValueError("num_layers must be positive")
    if num_checkpoints is None:
        num_checkpoints = max(1, round(math.sqrt(num_layers)))
    num_checkpoints = min(num_checkpoints, num_layers)
    segment_len = math.ceil(num_layers / num_checkpoints)
    segments = []
    start = 0
    while start < num_layers:
        end = min(start + segment_len, num_layers)
        segments.append(range(start, end))
        start = end
    return segments


class CheckpointingPass(TracePass):
    """Segment-replay recomputation as a vectorized segment splice.

    The layer-attributed forward kernels of each segment are re-emitted
    immediately before the first backward kernel of that segment's deepest
    layer.  Embedding/output kernels and the optimizer are untouched.
    """

    name = "checkpointing"

    def __init__(self, num_checkpoints: int | None = None):
        self.num_checkpoints = num_checkpoints

    def params(self) -> dict:
        if self.num_checkpoints is None:
            return {}
        return {"num_checkpoints": self.num_checkpoints}

    def apply(self, table: KernelTable, ctx: PassContext) -> KernelTable:
        attributed = table.layer >= 0
        encoder = table.mask(component=Component.TRANSFORMER) & attributed
        fwd_rows = np.flatnonzero(
            encoder & (table.phase == code_of(Phase.FORWARD)))
        if not len(fwd_rows):
            return table
        bwd_rows = np.flatnonzero(
            encoder & (table.phase == code_of(Phase.BACKWARD)))

        num_layers = int(table.layer[fwd_rows].max()) + 1
        segments = checkpoint_segments(num_layers, self.num_checkpoints)
        segment_of = np.empty(num_layers, dtype=np.int32)
        for index, segment in enumerate(segments):
            segment_of[segment.start:segment.stop] = index

        # First backward row of each segment, in trace order.
        bwd_segment = segment_of[table.layer[bwd_rows]]
        _, first = np.unique(bwd_segment, return_index=True)
        positions = np.sort(bwd_rows[first])

        # Forward rows in replay order: layer ascending, original order
        # within a layer (lexsort: last key is primary).
        fwd_layers = table.layer[fwd_rows]
        replay_order = np.lexsort((fwd_rows, fwd_layers))
        sorted_rows = fwd_rows[replay_order]
        sorted_layers = fwd_layers[replay_order]
        sorted_segment = segment_of[sorted_layers]

        # One ``recompute.``-prefixed name pool shared by every replay.
        pool = list(table.names)
        pool_index = {name: code for code, name in enumerate(pool)}
        translation = np.arange(len(pool), dtype=np.int32)
        for code in np.unique(table.name_code[fwd_rows]):
            renamed = f"recompute.{pool[code]}"
            new_code = pool_index.get(renamed)
            if new_code is None:
                new_code = len(pool)
                pool.append(renamed)
                pool_index[renamed] = new_code
            translation[code] = new_code
        names = tuple(pool)
        backward_code = code_of(Phase.BACKWARD)

        # Splice positions ascend with descending segment index (backprop
        # reaches the deepest segment first); map each to its replay table.
        position_segment = segment_of[table.layer[positions]]
        replays = []
        for segment_index in position_segment:
            rows = sorted_rows[sorted_segment == segment_index]
            replay = table.take(rows).with_columns(
                name_code=translation[table.name_code[rows]], names=names,
                phase=np.full(len(rows), backward_code, dtype=np.int8))
            replays.append(replay.stamped(self.name))
        return table.splice(positions, replays)


def apply_checkpointing(trace: Trace,
                        num_checkpoints: int | None = None) -> Trace:
    """Insert segment-replay recomputation into an iteration trace."""
    return PassManager((CheckpointingPass(num_checkpoints),)).run(trace)


def recompute_overhead(trace: Trace, checkpointed: Trace) -> float:
    """Fractional kernel-count increase from checkpointing."""
    if len(trace) == 0:
        raise ValueError("empty base trace")
    return (len(checkpointed) - len(trace)) / len(trace)
