"""Activation (gradient) checkpointing as a trace transform (Sec. 4).

Instead of saving every layer activation for backprop, checkpointing stores
activations only at segment boundaries (``~sqrt(N)`` of them) and recomputes
each segment's forward pass on demand when backprop reaches it.  The paper
measures ~33% more kernels and ~27% more runtime for BERT Large, with the
in-layer breakdown unchanged and LAMB's share dropping (its absolute cost is
unaffected).

The transform here rewrites an iteration trace: before each encoder layer's
backward kernels, the layer's forward kernels are re-emitted (tagged
``recompute.``), except for layers whose input was checkpointed *and* whose
forward output is the stored boundary — the standard segment-replay
schedule re-runs every layer inside a segment, so the whole encoder forward
is effectively executed twice.
"""

from __future__ import annotations

import dataclasses
import math

from repro.ops.base import Component, Kernel, Phase
from repro.trace.builder import Trace


def checkpoint_segments(num_layers: int,
                        num_checkpoints: int | None = None) -> list[range]:
    """Split ``num_layers`` into checkpoint segments.

    Args:
        num_layers: encoder layer count ``N``.
        num_checkpoints: boundary count; defaults to ``round(sqrt(N))``
            (four for BERT Large, recomputing after every six layers —
            exactly the paper's setup).

    Returns:
        List of layer ranges, one per segment.
    """
    if num_layers <= 0:
        raise ValueError("num_layers must be positive")
    if num_checkpoints is None:
        num_checkpoints = max(1, round(math.sqrt(num_layers)))
    num_checkpoints = min(num_checkpoints, num_layers)
    segment_len = math.ceil(num_layers / num_checkpoints)
    segments = []
    start = 0
    while start < num_layers:
        end = min(start + segment_len, num_layers)
        segments.append(range(start, end))
        start = end
    return segments


def _as_recompute(kernel: Kernel) -> Kernel:
    """Re-tag a forward kernel as recomputation executed during backprop."""
    return dataclasses.replace(kernel, name=f"recompute.{kernel.name}",
                               phase=Phase.BACKWARD)


def apply_checkpointing(trace: Trace,
                        num_checkpoints: int | None = None) -> Trace:
    """Insert segment-replay recomputation into an iteration trace.

    The layer-attributed forward kernels of each segment are re-emitted
    immediately before the first backward kernel of that segment's deepest
    layer.  Embedding/output kernels and the optimizer are untouched.
    """
    forward_by_layer: dict[int, list[Kernel]] = {}
    for kernel in trace.kernels:
        if (kernel.phase is Phase.FORWARD
                and kernel.component is Component.TRANSFORMER
                and kernel.layer_index is not None):
            forward_by_layer.setdefault(kernel.layer_index, []).append(kernel)

    if not forward_by_layer:
        return trace

    num_layers = max(forward_by_layer) + 1
    segments = checkpoint_segments(num_layers, num_checkpoints)
    segment_of = {}
    for segment in segments:
        for layer in segment:
            segment_of[layer] = segment

    rewritten: list[Kernel] = []
    replayed: set[int] = set()  # segment start layers already replayed
    for kernel in trace.kernels:
        is_layer_backward = (kernel.phase is Phase.BACKWARD
                             and kernel.component is Component.TRANSFORMER
                             and kernel.layer_index is not None)
        if is_layer_backward:
            segment = segment_of[kernel.layer_index]
            if segment.start not in replayed:
                replayed.add(segment.start)
                for layer in segment:
                    for fwd in forward_by_layer.get(layer, []):
                        rewritten.append(_as_recompute(fwd))
        rewritten.append(kernel)
    return trace.replaced(rewritten)


def recompute_overhead(trace: Trace, checkpointed: Trace) -> float:
    """Fractional kernel-count increase from checkpointing."""
    if len(trace) == 0:
        raise ValueError("empty base trace")
    return (len(checkpointed) - len(trace)) / len(trace)
