"""Device-memory footprint estimation.

Checkpointing exists to "overcome device memory capacity issues" (Sec. 4).
This estimator quantifies that: weights + optimizer state + gradients +
activations saved for backprop, with and without checkpointing, so tests
and examples can show the capacity/recompute trade-off on a 32 GB device.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import BertConfig, Precision, TrainingConfig
from repro.memoryplan.checkpointing import checkpoint_segments
from repro.trace.parameters import bert_parameter_inventory


@dataclass(frozen=True)
class MemoryFootprint:
    """Byte totals of one device's training state.

    Attributes:
        weights: model weights (FP16 copy included under mixed precision).
        gradients: weight gradients.
        optimizer_state: FP32 master weights + momentum + velocity.
        activations: tensors saved for backprop.
        workspace: transient per-kernel scratch (largest live activation).
    """

    weights: int
    gradients: int
    optimizer_state: int
    activations: int
    workspace: int

    @property
    def total(self) -> int:
        return (self.weights + self.gradients + self.optimizer_state
                + self.activations + self.workspace)

    def fits(self, capacity_gb: float) -> bool:
        """Whether the footprint fits a device of ``capacity_gb`` GB."""
        return self.total <= capacity_gb * 1e9


def layer_activation_bytes(model: BertConfig, training: TrainingConfig) -> int:
    """Bytes one encoder layer saves for backprop (eager execution).

    Counts the stashed tensors of the attention and FC sublayers: sublayer
    inputs, Q/K/V, the two score-shaped tensors (masked scores and softmax
    output), dropout masks (1 B/element), the FC intermediate pair, residual
    sums and LayerNorm statistics.
    """
    eb = training.precision.activation_bytes
    tokens = training.tokens_per_iteration
    d, f = model.d_model, model.d_ff
    scores = training.batch_size * model.num_heads * training.seq_len ** 2

    token_d = tokens * d
    attention = (
        token_d * eb          # sublayer input
        + 3 * token_d * eb    # Q, K, V
        + 2 * scores * eb     # masked scores, softmax output
        + scores              # score dropout mask
        + token_d * eb        # attention context
        + token_d * eb        # linear-out input
        + token_d             # post dropout mask
        + token_d * eb        # residual sum (LayerNorm input)
        + 2 * tokens * eb     # LayerNorm statistics
    )
    feed_forward = (
        token_d * eb          # sublayer input
        + 2 * tokens * f * eb # FC1 output, GeLU output
        + token_d             # post dropout mask
        + token_d * eb        # residual sum
        + 2 * tokens * eb     # LayerNorm statistics
    )
    return attention + feed_forward


def training_footprint(model: BertConfig, training: TrainingConfig,
                       num_checkpoints: int | None = None) -> MemoryFootprint:
    """Footprint of single-device training.

    With activation checkpointing enabled in ``training``, only segment
    boundaries (plus one live segment being recomputed) hold activations.
    """
    params = sum(t.n_elements for t in bert_parameter_inventory(model))
    mixed = training.precision is Precision.MIXED

    weights = params * (4 + (2 if mixed else 0))
    gradients = params * training.precision.activation_bytes
    # FP32 master weights live inside `weights`; m and v are the extra state.
    optimizer_state = 2 * params * 4

    per_layer = layer_activation_bytes(model, training)
    boundary = (training.tokens_per_iteration * model.d_model
                * training.precision.activation_bytes)
    if training.activation_checkpointing:
        segments = checkpoint_segments(model.num_layers, num_checkpoints)
        live_segment = max(len(s) for s in segments)
        activations = len(segments) * boundary + live_segment * per_layer
    else:
        activations = model.num_layers * per_layer

    # Largest transient: the masked-position vocabulary logits of the MLM
    # head, or one FC intermediate, whichever is bigger.
    eb = training.precision.activation_bytes
    workspace = max(
        training.masked_positions * model.vocab_size * eb,
        training.tokens_per_iteration * model.d_ff * eb,
    )
    return MemoryFootprint(weights=weights, gradients=gradients,
                           optimizer_state=optimizer_state,
                           activations=activations, workspace=workspace)


def max_batch_size(model: BertConfig, training: TrainingConfig,
                   capacity_gb: float, limit: int = 4096) -> int:
    """Largest mini-batch that fits in ``capacity_gb`` GB, by doubling
    search then linear refinement.

    Returns:
        0 if even ``B=1`` does not fit.
    """
    import dataclasses as _dc

    def fits(batch: int) -> bool:
        probe = _dc.replace(training, batch_size=batch)
        return training_footprint(model, probe).fits(capacity_gb)

    if not fits(1):
        return 0
    batch = 1
    while batch < limit and fits(batch * 2):
        batch *= 2
    best = batch
    step = batch // 2
    while step:
        if best + step <= limit and fits(best + step):
            best += step
        step //= 2
    return best
