"""Activation checkpointing and memory-footprint planning (Sec. 4)."""

from repro.memoryplan.checkpointing import (CheckpointingPass,
                                            apply_checkpointing,
                                            checkpoint_segments,
                                            recompute_overhead)
from repro.memoryplan.footprint import (MemoryFootprint,
                                        layer_activation_bytes,
                                        max_batch_size, training_footprint)

__all__ = [
    "CheckpointingPass", "MemoryFootprint", "apply_checkpointing", "checkpoint_segments",
    "layer_activation_bytes", "max_batch_size", "recompute_overhead",
    "training_footprint",
]
