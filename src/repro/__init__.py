"""Reproduction of "Demystifying BERT: System Design Implications"
(Pati, Aga, Jayasena, Sinclair — IISWC 2022).

The package provides, from scratch:

* an executable NumPy BERT (autograd, model, optimizers, training loop);
* an architecture-agnostic kernel-trace generator for one training
  iteration, with Table 2b's exact GEMM shapes;
* a calibrated analytical GPU model (roofline + tile/wave GEMM timing);
* the paper's analytical multi-device (DP / tensor-slicing), kernel-fusion,
  activation-checkpointing and near-memory-compute studies;
* one experiment module per paper figure/table (``repro.experiments``).

Quickstart::

    from repro import BERT_LARGE, training_point, Precision
    from repro.experiments import fig3
    rows = fig3.run()
    print(fig3.render(rows))
"""

from repro.config import (BERT_BASE, BERT_LARGE, BERT_TINY, C1, C2, C3,
                          FIG3_POINTS, BertConfig, Precision, TrainingConfig,
                          training_point)

__version__ = "1.0.0"

__all__ = [
    "BERT_BASE", "BERT_LARGE", "BERT_TINY", "BertConfig", "C1", "C2", "C3",
    "FIG3_POINTS", "Precision", "TrainingConfig", "training_point",
    "__version__",
]
