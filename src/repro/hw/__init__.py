"""Device performance models: roofline, GEMM tile/wave timing, bandwidth."""

from repro.hw.device import (DeviceModel, GemmEngineSpec, a100_like,
                             balanced_accelerator, mi100, v100_like)
from repro.hw.energy import (EnergyReport, EnergySpec, default_energy_spec,
                             iteration_energy, kernel_energy, trace_energy)
from repro.hw.gemm_model import (GemmTimeBreakdown, gemm_time,
                                 is_memory_bound, shape_efficiency)
from repro.hw.roofline import (RooflinePoint, attainable, classify_kernels,
                               place, ridge_point)
from repro.hw.microsim import (BackendComparison, KernelSimResult,
                               compare_backends, simulate_kernel,
                               simulate_trace)
from repro.hw.timing import kernel_time, kernel_times, trace_time

__all__ = [
    "DeviceModel", "EnergyReport", "EnergySpec", "GemmEngineSpec",
    "GemmTimeBreakdown", "RooflinePoint", "default_energy_spec",
    "iteration_energy", "kernel_energy", "trace_energy",
    "BackendComparison", "KernelSimResult", "compare_backends",
    "simulate_kernel", "simulate_trace",
    "a100_like", "v100_like",
    "attainable", "balanced_accelerator", "classify_kernels", "gemm_time",
    "is_memory_bound", "kernel_time", "kernel_times", "mi100", "place",
    "ridge_point", "shape_efficiency", "trace_time",
]
