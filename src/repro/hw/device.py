"""Device models.

The paper's profiles come from an AMD Instinct MI100 (Sec. 3.1.1).  We model
a device by its published peaks plus a small set of *achievable-fraction*
parameters that capture how far real kernels sit below peak.  The fractions
are set once from first principles and the ratios the paper itself reports
(e.g. memory-bound kernels speed up 1.5-1.9x under mixed precision, GEMMs
~3x), then frozen: every experiment in :mod:`repro.experiments` runs through
the same device instance.  Sec. 7 of the paper argues breakdowns transfer
between devices with similar compute/bandwidth ratios, which is exactly the
knob set exposed here.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.ops.base import AccessPattern, DType


@dataclass(frozen=True)
class GemmEngineSpec:
    """Peak and achievable throughput of the device's GEMM engine per dtype.

    Attributes:
        peak_tflops: marketed dense-matrix peak, in TFLOP/s.
        achievable_fraction: ceiling fraction of peak that a large, square,
            well-tiled GEMM reaches through the vendor BLAS.  Real MFMA
            pipelines lose ground to instruction issue, LDS bandwidth and
            epilogues; FP16 matrix pipes lose proportionally more because
            their raw peak is far above what the memory system can feed.
    """

    peak_tflops: float
    achievable_fraction: float

    @property
    def effective_peak(self) -> float:
        """Achievable FLOP/s for an ideally-shaped GEMM."""
        return self.peak_tflops * 1e12 * self.achievable_fraction


@dataclass(frozen=True)
class DeviceModel:
    """An accelerator's performance-model parameters.

    Attributes:
        name: device label.
        gemm_engines: per-dtype GEMM engine specs.
        vector_tflops: per-dtype peak of the vector (non-matrix) pipeline,
            used for elementwise arithmetic limits.
        mem_bandwidth_gbps: peak DRAM bandwidth in GB/s.
        mem_efficiency: achieved-bandwidth ceiling per access pattern for
            large transfers; small transfers are further derated by
            ``bw_saturation_bytes``.
        gemm_mem_efficiency: achieved-bandwidth ceiling for memory-bound
            (batched) GEMM kernels.  BLAS kernels tile and prefetch far
            better than eager elementwise kernels, so they sustain a higher
            fraction of pin bandwidth (Fig. 7 shows attention GEMMs reaching
            ~70% of the best bandwidth any BERT op achieves).
        bw_saturation_bytes: transfer size at which a streaming kernel
            reaches half its bandwidth ceiling (latency/occupancy ramp).
        kernel_launch_overhead_s: fixed host+dispatch cost per kernel.
        compute_units: number of CUs/SMs, for the GEMM wave model.
        gemm_tile_m/gemm_tile_n: macro-tile the BLAS assigns one CU.
        gemm_k_half: K extent at which the K-loop reaches half its steady
            state efficiency (prologue/epilogue amortization).
        hbm_capacity_gb: device memory capacity, for footprint checks.
    """

    name: str
    gemm_engines: dict[DType, GemmEngineSpec]
    vector_tflops: dict[DType, float]
    mem_bandwidth_gbps: float
    mem_efficiency: dict[AccessPattern, float] = field(default_factory=lambda: {
        AccessPattern.STREAMING: 0.40,
        AccessPattern.STRIDED: 0.34,
        AccessPattern.MULTI_TENSOR: 0.35,
        AccessPattern.IRREGULAR: 0.10,
    })
    gemm_mem_efficiency: float = 0.42
    bw_saturation_bytes: float = 2.0 * 2**20
    kernel_launch_overhead_s: float = 5.0e-6
    compute_units: int = 120
    gemm_tile_m: int = 128
    gemm_tile_n: int = 128
    gemm_k_half: int = 96
    hbm_capacity_gb: float = 32.0

    def __post_init__(self) -> None:
        if self.mem_bandwidth_gbps <= 0:
            raise ValueError("mem_bandwidth_gbps must be positive")
        if not self.gemm_engines:
            raise ValueError("device needs at least one GEMM engine spec")

    @property
    def peak_bandwidth(self) -> float:
        """Peak DRAM bandwidth in bytes/s."""
        return self.mem_bandwidth_gbps * 1e9

    def gemm_engine(self, dtype: DType) -> GemmEngineSpec:
        """GEMM engine used for ``dtype``, falling back to FP32."""
        if dtype in self.gemm_engines:
            return self.gemm_engines[dtype]
        return self.gemm_engines[DType.FP32]

    def machine_balance(self, dtype: DType) -> float:
        """Ops/byte at which ``dtype`` GEMMs shift from memory- to
        compute-bound (effective peak over peak bandwidth)."""
        return self.gemm_engine(dtype).effective_peak / self.peak_bandwidth

    def achieved_bandwidth(self, access: AccessPattern,
                           bytes_moved: int) -> float:
        """Achieved bytes/s for a memory-bound kernel.

        A saturating ramp models occupancy/latency effects: tiny kernels
        cannot fill the memory system, large streaming kernels approach the
        pattern's ceiling.
        """
        ceiling = self.mem_efficiency[access] * self.peak_bandwidth
        if bytes_moved <= 0:
            return ceiling
        ramp = bytes_moved / (bytes_moved + self.bw_saturation_bytes)
        return ceiling * ramp

    def with_overrides(self, **kwargs) -> "DeviceModel":
        """Copy with fields replaced (for what-if device studies, Sec. 7)."""
        return replace(self, **kwargs)


def mi100() -> DeviceModel:
    """MI100-like device (the paper's testbed).

    Published peaks: 23.1 TFLOP/s FP32 vector, 46.1 TFLOP/s FP32 matrix,
    184.6 TFLOP/s FP16 matrix, 1228.8 GB/s HBM2, 120 CUs.  Achievable
    fractions reflect measured rocBLAS behavior: FP32 MFMA GEMMs sustain
    ~35-37 TFLOP/s on large square shapes (~0.8 of peak) while FP16 MFMA
    sustains ~115 TFLOP/s (~0.62 — the 8x raw peak is issue- and
    LDS-limited), reproducing the ~3x GEMM speedup the paper observes under
    mixed precision.  The memory-efficiency ceilings reflect eager-mode
    elementwise/reduction kernels, which sustain well under half of the
    HBM2 pin bandwidth.
    """
    return DeviceModel(
        name="mi100",
        gemm_engines={
            DType.FP32: GemmEngineSpec(peak_tflops=46.1,
                                       achievable_fraction=0.80),
            DType.FP16: GemmEngineSpec(peak_tflops=184.6,
                                       achievable_fraction=0.62),
            DType.BF16: GemmEngineSpec(peak_tflops=92.3,
                                       achievable_fraction=0.62),
        },
        vector_tflops={DType.FP32: 23.1, DType.FP16: 46.1, DType.BF16: 46.1},
        mem_bandwidth_gbps=1228.8,
    )


def v100_like() -> DeviceModel:
    """A V100-class device: 15.7 TFLOP/s FP32, 125 TFLOP/s FP16 tensor
    cores, 900 GB/s HBM2, 80 SMs.

    Its FP32 machine balance (~16 ops/B effective) is bandwidth-richer
    than the MI100's (~30 ops/B), so per Sec. 7 the BERT profile stays
    GEMM-dominated with the same operation orderings while the
    memory-bound share shrinks; the transfer-study experiment checks
    exactly that monotonicity.
    """
    return DeviceModel(
        name="v100-like",
        gemm_engines={
            DType.FP32: GemmEngineSpec(peak_tflops=15.7,
                                       achievable_fraction=0.90),
            DType.FP16: GemmEngineSpec(peak_tflops=125.0,
                                       achievable_fraction=0.55),
        },
        vector_tflops={DType.FP32: 15.7, DType.FP16: 31.4},
        mem_bandwidth_gbps=900.0,
        compute_units=80,
        hbm_capacity_gb=32.0,
    )


def a100_like() -> DeviceModel:
    """An A100-class device: 19.5 TFLOP/s FP32 (156 TF32), 312 TFLOP/s FP16,
    1555 GB/s HBM2e, 108 SMs — a compute-heavier ratio than the MI100."""
    return DeviceModel(
        name="a100-like",
        gemm_engines={
            DType.FP32: GemmEngineSpec(peak_tflops=156.0,
                                       achievable_fraction=0.55),
            DType.FP16: GemmEngineSpec(peak_tflops=312.0,
                                       achievable_fraction=0.55),
        },
        vector_tflops={DType.FP32: 19.5, DType.FP16: 78.0},
        mem_bandwidth_gbps=1555.0,
        compute_units=108,
        hbm_capacity_gb=40.0,
    )


def balanced_accelerator(compute_tflops: float, bandwidth_gbps: float,
                         name: str = "custom") -> DeviceModel:
    """A generic accelerator with a chosen compute/bandwidth ratio.

    Used by the Sec. 7 what-if studies: the paper argues operation
    boundedness transfers across devices with similar compute/bandwidth
    ratios, and that future devices scale compute faster than memory.
    """
    return DeviceModel(
        name=name,
        gemm_engines={
            DType.FP32: GemmEngineSpec(peak_tflops=compute_tflops,
                                       achievable_fraction=0.52),
            DType.FP16: GemmEngineSpec(peak_tflops=compute_tflops * 4,
                                       achievable_fraction=0.38),
        },
        vector_tflops={DType.FP32: compute_tflops / 2,
                       DType.FP16: compute_tflops},
        mem_bandwidth_gbps=bandwidth_gbps,
    )
