"""Wave-level event-driven timing backend.

A second, finer-grained timing model that cross-checks the closed-form
roofline of :mod:`repro.hw.timing`.  Instead of pricing a kernel as one
``max(compute, memory)`` expression, it decomposes the kernel into
workgroups, schedules them over the device's compute units wave by wave,
and bounds each wave by whichever of its compute time or its share of
DRAM bandwidth is slower.  Effects the closed form only approximates fall out
naturally here:

* the **tail wave** of a kernel underfills the machine and runs at partial
  bandwidth/compute;
* a kernel can be compute-bound in its full waves yet memory-bound in its
  tail (or vice versa);
* workgroup remainders are per-wave, not amortized.

The backend exists to *validate* the analytical model (the test suite
checks they agree within tight bounds on full BERT traces), and as the
natural place for finer microarchitectural studies.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.hw.device import DeviceModel
from repro.hw.gemm_model import TILE_CANDIDATES
from repro.ops.base import Kernel, OpClass

#: Elements one elementwise/reduction workgroup processes.
EW_WORKGROUP_ELEMENTS = 64 * 1024


@dataclass(frozen=True)
class Workgroup:
    """One schedulable unit of a kernel.

    Attributes:
        compute_s: busy time on its compute unit.
        bytes_moved: DRAM traffic it generates.
    """

    compute_s: float
    bytes_moved: int


@dataclass(frozen=True)
class KernelSimResult:
    """Simulated execution of one kernel.

    Attributes:
        time_s: total time including launch overhead.
        waves: scheduling waves executed.
        tail_utilization: CU occupancy of the final wave.
    """

    time_s: float
    waves: int
    tail_utilization: float


def _gemm_workgroups(kernel: Kernel, device: DeviceModel) -> list[Workgroup]:
    """Decompose a (batched) GEMM into output-tile workgroups.

    Uses the same autotuned tile selection as the analytical model so the
    two backends describe the same machine.
    """
    shape = kernel.gemm
    engine = device.gemm_engine(kernel.dtype)
    # Fused GEMM kernels carry extra arithmetic beyond the anchor shape;
    # spread it over the tiles proportionally.
    fusion_factor = kernel.flops / shape.flops if shape.flops else 1.0

    def wave_time(tile_m: int, tile_n: int, ceiling: float) -> float:
        flops = 2 * tile_m * tile_n * shape.k * fusion_factor
        k_util = shape.k / (shape.k + device.gemm_k_half)
        per_cu = engine.effective_peak / device.compute_units
        return flops / (per_cu * ceiling * k_util)

    best: list[Workgroup] | None = None
    best_estimate = math.inf
    for tile_m, tile_n, ceiling in TILE_CANDIDATES:
        tiles_m = math.ceil(shape.m / tile_m)
        tiles_n = math.ceil(shape.n / tile_n)
        count = tiles_m * tiles_n * shape.batch
        compute = wave_time(tile_m, tile_n, ceiling)
        # DRAM traffic: panels are reused across the tiles of a wave via
        # the cache hierarchy, so the kernel moves its minimal traffic
        # (each operand streamed once); tiles share it evenly.
        traffic = kernel.bytes_total / count
        waves = math.ceil(count / device.compute_units)
        estimate = waves * compute
        if estimate < best_estimate:
            best_estimate = estimate
            best = [Workgroup(compute_s=compute, bytes_moved=int(traffic))
                    for _ in range(count)]
    assert best is not None
    return best


def _ew_workgroups(kernel: Kernel, device: DeviceModel) -> list[Workgroup]:
    """Decompose an elementwise/reduction/gather kernel by elements."""
    elements = max(kernel.n_elements,
                   kernel.bytes_total // max(1, kernel.dtype.bytes))
    count = max(1, math.ceil(elements / EW_WORKGROUP_ELEMENTS))
    bytes_each = kernel.bytes_total / count
    flops_each = kernel.flops / count
    from repro.ops.base import DType
    tflops = device.vector_tflops.get(kernel.dtype)
    if tflops is None:
        tflops = device.vector_tflops[DType.FP32]
    per_cu = tflops * 1e12 / device.compute_units
    return [Workgroup(compute_s=flops_each / per_cu,
                      bytes_moved=int(bytes_each)) for _ in range(count)]


def simulate_kernel(kernel: Kernel, device: DeviceModel) -> KernelSimResult:
    """Simulate one kernel wave by wave.

    Each wave dispatches up to ``compute_units`` workgroups; the wave's
    duration is the larger of its longest workgroup compute time and its
    aggregate traffic over the achieved DRAM bandwidth for this kernel's
    access pattern.
    """
    if kernel.op_class is OpClass.COMMUNICATION:
        raise ValueError("communication kernels are priced by "
                         "repro.distributed")
    if kernel.op_class.is_gemm:
        if kernel.gemm is None:
            raise ValueError(f"GEMM kernel {kernel.name!r} missing shape")
        workgroups = _gemm_workgroups(kernel, device)
        bandwidth_ceiling = device.gemm_mem_efficiency * device.peak_bandwidth
    else:
        workgroups = _ew_workgroups(kernel, device)
        bandwidth_ceiling = (device.mem_efficiency[kernel.access]
                             * device.peak_bandwidth)

    # Small transfers never reach the ceiling (same ramp as the closed
    # form, applied at kernel granularity).
    ramp = kernel.bytes_total / (kernel.bytes_total
                                 + device.bw_saturation_bytes)
    bandwidth = bandwidth_ceiling * max(ramp, 1e-9)

    cu = device.compute_units
    total = 0.0
    waves = 0
    tail_utilization = 1.0
    for start in range(0, len(workgroups), cu):
        wave = workgroups[start:start + cu]
        compute = max(w.compute_s for w in wave)
        traffic = sum(w.bytes_moved for w in wave)
        total += max(compute, traffic / bandwidth)
        waves += 1
        tail_utilization = len(wave) / cu
    return KernelSimResult(
        time_s=total + device.kernel_launch_overhead_s,
        waves=waves, tail_utilization=tail_utilization)


def simulate_trace(kernels, device: DeviceModel) -> float:
    """Serialized simulated time of a kernel sequence, in seconds."""
    return sum(simulate_kernel(k, device).time_s for k in kernels)


@dataclass(frozen=True)
class BackendComparison:
    """Agreement between the analytical and event-driven backends.

    Attributes:
        analytical_s / simulated_s: total trace times per backend.
    """

    analytical_s: float
    simulated_s: float

    @property
    def ratio(self) -> float:
        return self.simulated_s / self.analytical_s


def compare_backends(kernels, device: DeviceModel) -> BackendComparison:
    """Run both timing backends over the same kernels."""
    from repro.hw.timing import trace_time

    return BackendComparison(
        analytical_s=trace_time(list(kernels), device),
        simulated_s=simulate_trace(list(kernels), device))
