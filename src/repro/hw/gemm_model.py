"""Tile/wave GEMM timing model.

A BLAS GEMM is decomposed into macro-tiles of the output matrix, each
assigned to one compute unit.  Three effects put real GEMMs below the
engine's achievable peak, and all three matter for the paper's story that
"not all GEMMs in BERT are equal" (Takeaway 6):

* **tile quantization** — M or N not a multiple of the tile wastes lanes;
* **wave quantization** — the last wave of tiles underfills the CUs (this is
  what makes the ``d_model x tokens x d_model`` linear GEMMs slower per FLOP
  than the 4x larger FC GEMMs);
* **K-loop amortization** — short contractions (the ``d_model/h = 64`` of
  attention batched GEMMs) never reach pipeline steady state.

The final kernel time is the roofline maximum of this compute time and the
memory streaming time, plus launch overhead.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.hw.device import DeviceModel
from repro.ops.base import DType
from repro.ops.gemm import GemmShape


@dataclass(frozen=True)
class GemmTimeBreakdown:
    """Where a GEMM's time comes from, for reporting and tests.

    Attributes:
        compute_s: FLOP-limited time at the shape's efficiency.
        memory_s: traffic-limited time.
        overhead_s: launch overhead.
        efficiency: fraction of the engine's achievable peak realized.
    """

    compute_s: float
    memory_s: float
    overhead_s: float
    efficiency: float

    @property
    def total_s(self) -> float:
        return max(self.compute_s, self.memory_s) + self.overhead_s

    @property
    def memory_bound(self) -> bool:
        return self.memory_s > self.compute_s


#: Candidate macro-tile configurations the BLAS autotuner chooses from:
#: (tile_m, tile_n, intrinsic efficiency ceiling).  Smaller tiles expose
#: more parallelism for small/skinny GEMMs but run at a lower per-tile
#: ceiling (less register blocking, worse MFMA utilization).
TILE_CANDIDATES: tuple[tuple[int, int, float], ...] = (
    (128, 128, 1.00),
    (64, 64, 0.70),
    (32, 32, 0.42),
)


def _tile_efficiency(shape: GemmShape, device: DeviceModel,
                     tile_m: int, tile_n: int, ceiling: float) -> float:
    """Efficiency of one candidate tiling."""
    tiles_m = math.ceil(shape.m / tile_m)
    tiles_n = math.ceil(shape.n / tile_n)
    tiles = tiles_m * tiles_n * shape.batch

    # Lanes wasted inside partial tiles.
    tile_util = (shape.m * shape.n) / (tiles_m * tile_m * tiles_n * tile_n)

    # CUs idle during the final wave.
    waves = math.ceil(tiles / device.compute_units)
    wave_util = tiles / (waves * device.compute_units)

    # K-loop prologue/epilogue amortization.
    k_util = shape.k / (shape.k + device.gemm_k_half)

    return ceiling * tile_util * wave_util * k_util


def shape_efficiency(shape: GemmShape, device: DeviceModel) -> float:
    """Fraction of achievable peak a GEMM shape realizes.

    The BLAS library autotunes over macro-tile sizes, so the model takes
    the best of :data:`TILE_CANDIDATES` — small GEMMs trade per-tile
    efficiency for occupancy, exactly the regime where fusing the three
    attention linear GEMMs pays off (Fig. 12b).
    """
    return max(_tile_efficiency(shape, device, tm, tn, ceiling)
               for tm, tn, ceiling in TILE_CANDIDATES)


def gemm_time(shape: GemmShape, dtype: DType,
              device: DeviceModel) -> GemmTimeBreakdown:
    """Execution-time breakdown of a (batched) GEMM on ``device``.

    Memory time assumes each operand is streamed once — valid for the
    K-resident blocking real BLAS libraries use at these sizes — through the
    streaming bandwidth path.
    """
    engine = device.gemm_engine(dtype)
    efficiency = shape_efficiency(shape, device)
    compute_s = shape.flops / (engine.effective_peak * efficiency)

    bytes_moved = shape.bytes_total(dtype)
    ceiling = device.gemm_mem_efficiency * device.peak_bandwidth
    ramp = bytes_moved / (bytes_moved + device.bw_saturation_bytes)
    memory_s = bytes_moved / (ceiling * ramp)

    return GemmTimeBreakdown(compute_s=compute_s, memory_s=memory_s,
                             overhead_s=device.kernel_launch_overhead_s,
                             efficiency=efficiency)


def is_memory_bound(shape: GemmShape, dtype: DType,
                    device: DeviceModel) -> bool:
    """Whether the GEMM is limited by memory traffic on ``device``."""
    return gemm_time(shape, dtype, device).memory_bound


# ---------------------------------------------------------------------------
# Batched (columnar) evaluation.  Must stay in lockstep with the scalar
# functions above — it applies the same operations in the same order over
# whole arrays, so the per-shape results are bit-identical; the golden
# equivalence test (tests/test_profile_engine_golden.py) enforces this.
# ---------------------------------------------------------------------------

def batch_shape_efficiency(shapes: Sequence[GemmShape],
                           device: DeviceModel) -> np.ndarray:
    """:func:`shape_efficiency` evaluated over an array of shapes."""
    m = np.array([s.m for s in shapes], dtype=np.int64)
    n = np.array([s.n for s in shapes], dtype=np.int64)
    k = np.array([s.k for s in shapes], dtype=np.int64)
    batch = np.array([s.batch for s in shapes], dtype=np.int64)
    cus = device.compute_units

    efficiency = np.zeros(len(shapes), dtype=np.float64)
    for tile_m, tile_n, ceiling in TILE_CANDIDATES:
        tiles_m = -(-m // tile_m)
        tiles_n = -(-n // tile_n)
        tiles = tiles_m * tiles_n * batch
        tile_util = (m * n) / (tiles_m * tile_m * tiles_n * tile_n)
        waves = -(-tiles // cus)
        wave_util = tiles / (waves * cus)
        k_util = k / (k + device.gemm_k_half)
        efficiency = np.maximum(efficiency,
                                ceiling * tile_util * wave_util * k_util)
    return efficiency


def batch_gemm_times(shapes: Sequence[GemmShape], dtype: DType,
                     device: DeviceModel) -> np.ndarray:
    """Total kernel times of many GEMM shapes of one dtype, vectorized.

    Equivalent to ``[gemm_time(s, dtype, device).total_s for s in shapes]``
    with the tile/wave/K-loop model applied across the whole array at once.
    """
    engine = device.gemm_engine(dtype)
    efficiency = batch_shape_efficiency(shapes, device)
    flops = np.array([s.flops for s in shapes], dtype=np.int64)
    compute_s = flops / (engine.effective_peak * efficiency)

    bytes_moved = np.array([s.bytes_total(dtype) for s in shapes],
                           dtype=np.int64)
    ceiling = device.gemm_mem_efficiency * device.peak_bandwidth
    ramp = bytes_moved / (bytes_moved + device.bw_saturation_bytes)
    memory_s = bytes_moved / (ceiling * ramp)

    return (np.maximum(compute_s, memory_s)
            + device.kernel_launch_overhead_s)
