"""Energy modeling for kernels and traces.

The paper motivates near-memory compute partly on energy: "NMC avoids data
movement between the main memory and GPU ... and improves performance and
energy efficiency" (Sec. 6.2.1).  This model prices each kernel from
first-order technology constants — energy per arithmetic op (by precision)
and per byte moved across each interface — so traces, fusion decisions and
NMC offload can be compared in joules as well as seconds.

Constants follow the widely-used 7nm-class estimates (Horowitz-style
scaling): DRAM access energy dominated by the interface, on-package HBM
around ~4 pJ/bit, FP32 FMA a few pJ, halved for FP16; bank-internal NMC
access skips the PHY/IO and controller, cutting per-byte energy several
fold.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ops.base import DType, Kernel


@dataclass(frozen=True)
class EnergySpec:
    """Per-operation energy constants, in picojoules.

    Attributes:
        flop_pj: energy per arithmetic operation, by dtype.
        dram_pj_per_byte: HBM access energy per byte (PHY + DRAM core).
        nmc_internal_pj_per_byte: bank-local access energy per byte (no
            off-chip interface).
        static_watts: device static/background power, charged per second.
    """

    flop_pj: dict[DType, float] = field(default_factory=lambda: {
        DType.FP32: 1.8,
        DType.FP16: 0.9,
        DType.BF16: 0.9,
    })
    dram_pj_per_byte: float = 32.0
    nmc_internal_pj_per_byte: float = 8.0
    static_watts: float = 80.0

    def flop_energy(self, dtype: DType) -> float:
        """pJ per FLOP for ``dtype`` (FP32 fallback)."""
        return self.flop_pj.get(dtype, self.flop_pj[DType.FP32])


def default_energy_spec() -> EnergySpec:
    """The frozen constants used by all energy experiments."""
    return EnergySpec()


def kernel_energy(kernel: Kernel, spec: EnergySpec,
                  *, nmc: bool = False) -> float:
    """Dynamic energy of one kernel, in joules.

    Args:
        kernel: the kernel record.
        spec: energy constants.
        nmc: price memory traffic at the bank-internal rate (the kernel
            runs on near-memory ALUs instead of the GPU).
    """
    per_byte = (spec.nmc_internal_pj_per_byte if nmc
                else spec.dram_pj_per_byte)
    arithmetic = kernel.flops * spec.flop_energy(kernel.dtype)
    movement = kernel.bytes_total * per_byte
    return (arithmetic + movement) * 1e-12


def trace_energy(kernels, spec: EnergySpec | None = None, *,
                 nmc: bool = False) -> float:
    """Total dynamic energy of a kernel sequence, in joules."""
    spec = spec or default_energy_spec()
    return sum(kernel_energy(k, spec, nmc=nmc) for k in kernels)


@dataclass(frozen=True)
class EnergyReport:
    """Energy accounting of one iteration.

    Attributes:
        dynamic_j: switching energy of all kernels.
        static_j: leakage/background energy over the iteration time.
        movement_fraction: share of dynamic energy spent moving data —
            the figure of merit the data-movement literature optimizes.
    """

    dynamic_j: float
    static_j: float
    movement_fraction: float

    @property
    def total_j(self) -> float:
        return self.dynamic_j + self.static_j


def iteration_energy(profile, spec: EnergySpec | None = None) -> EnergyReport:
    """Energy report of a profiled iteration.

    Args:
        profile: a :class:`repro.profiler.profiler.Profile`.
        spec: energy constants.
    """
    spec = spec or default_energy_spec()
    arithmetic = 0.0
    movement = 0.0
    for record in profile.records:
        kernel = record.kernel
        arithmetic += kernel.flops * spec.flop_energy(kernel.dtype) * 1e-12
        movement += kernel.bytes_total * spec.dram_pj_per_byte * 1e-12
    dynamic = arithmetic + movement
    static = spec.static_watts * profile.total_time
    return EnergyReport(dynamic_j=dynamic, static_j=static,
                        movement_fraction=movement / dynamic if dynamic else 0.0)
