"""Roofline utilities.

Small helpers to place kernels on a device's roofline: attainable
performance at a given arithmetic intensity, the ridge point, and
classification of kernels/groups as compute- or memory-bound — the lens
through which the paper reads Figs. 6 and 7.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.hw.device import DeviceModel
from repro.ops.base import DType, Kernel
from repro.ops.intensity import Boundedness, IntensityRecord


@dataclass(frozen=True)
class RooflinePoint:
    """One kernel/group placed on the roofline.

    Attributes:
        label: display label.
        intensity: ops/byte.
        attainable_flops: min(peak, intensity * bandwidth) in FLOP/s.
        boundedness: which roof limits it.
    """

    label: str
    intensity: float
    attainable_flops: float
    boundedness: Boundedness


def ridge_point(device: DeviceModel, dtype: DType) -> float:
    """Intensity (ops/byte) at which the two roofs meet for ``dtype``."""
    return device.machine_balance(dtype)


def attainable(intensity: float, device: DeviceModel, dtype: DType) -> float:
    """Attainable FLOP/s at a given arithmetic intensity."""
    if intensity < 0:
        raise ValueError("intensity must be non-negative")
    compute_roof = device.gemm_engine(dtype).effective_peak
    memory_roof = intensity * device.peak_bandwidth
    return min(compute_roof, memory_roof)


def place(record: IntensityRecord, device: DeviceModel,
          dtype: DType) -> RooflinePoint:
    """Place an intensity record on the device's roofline."""
    intensity = record.intensity
    return RooflinePoint(
        label=record.label,
        intensity=intensity,
        attainable_flops=attainable(intensity, device, dtype),
        boundedness=record.boundedness(ridge_point(device, dtype)),
    )


def classify_kernels(kernels: Iterable[Kernel],
                     device: DeviceModel) -> dict[str, Boundedness]:
    """Map kernel name -> roofline boundedness on ``device``."""
    result = {}
    for kernel in kernels:
        balance = ridge_point(device, kernel.dtype)
        bounded = (Boundedness.COMPUTE_BOUND
                   if kernel.arithmetic_intensity >= balance
                   else Boundedness.MEMORY_BOUND)
        result[kernel.name] = bounded
    return result
