"""Device-model calibration tooling.

DESIGN.md §5 commits to a single frozen device model; this module is the
auditable derivation of its constants and a tool for re-targeting the
model at other published profiles.  Given target runtime fractions (e.g.
the paper's Fig. 3/4 percentages), :func:`calibrate` runs coordinate
descent over the efficiency knobs — bandwidth ceilings and GEMM
achievable fractions — minimizing the squared error of the modeled
fractions.

The shipped MI100 preset is (deliberately) *not* regenerated at import
time: it balances the Fig. 3/4 fractions captured in
:func:`paper_targets` against shape constraints this scalar objective does
not encode (the Fig. 7 bandwidth ordering, the Fig. 8/9 sweep trends), so
a pure descent on these targets would trade the latter away.  The test
suite verifies that the shipped constants already land within the target
bands and that the fitter monotonically improves the objective when run.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from repro.config import BertConfig, TrainingConfig
from repro.hw.device import DeviceModel, GemmEngineSpec
from repro.ops.base import AccessPattern, DType

#: The tunable knobs, as (name, getter, setter-factory) triples.
KNOBS = ("streaming_bw", "strided_bw", "multi_tensor_bw", "gemm_mem_bw",
         "fp32_gemm_fraction", "fp16_gemm_fraction")


@dataclass(frozen=True)
class CalibrationTarget:
    """One target fraction the calibration should reproduce.

    Attributes:
        name: label for reporting.
        training: operating point to profile.
        metric: summary key (``"gemm"``, ``"optimizer"``, ...).
        value: the target fraction.
        weight: relative importance in the objective.
    """

    name: str
    training: TrainingConfig
    metric: str
    value: float
    weight: float = 1.0


def get_knobs(device: DeviceModel) -> dict[str, float]:
    """Current values of the tunable knobs."""
    return {
        "streaming_bw": device.mem_efficiency[AccessPattern.STREAMING],
        "strided_bw": device.mem_efficiency[AccessPattern.STRIDED],
        "multi_tensor_bw": device.mem_efficiency[AccessPattern.MULTI_TENSOR],
        "gemm_mem_bw": device.gemm_mem_efficiency,
        "fp32_gemm_fraction":
            device.gemm_engines[DType.FP32].achievable_fraction,
        "fp16_gemm_fraction":
            device.gemm_engines[DType.FP16].achievable_fraction,
    }


def set_knobs(device: DeviceModel, knobs: dict[str, float]) -> DeviceModel:
    """A copy of ``device`` with the given knob values applied."""
    for name, value in knobs.items():
        if name not in KNOBS:
            raise KeyError(f"unknown knob {name!r}")
        if not 0.01 <= value <= 1.0:
            raise ValueError(f"knob {name}={value} outside (0.01, 1.0]")
    efficiency = dict(device.mem_efficiency)
    efficiency[AccessPattern.STREAMING] = knobs["streaming_bw"]
    efficiency[AccessPattern.STRIDED] = knobs["strided_bw"]
    efficiency[AccessPattern.MULTI_TENSOR] = knobs["multi_tensor_bw"]
    engines = dict(device.gemm_engines)
    engines[DType.FP32] = GemmEngineSpec(
        peak_tflops=engines[DType.FP32].peak_tflops,
        achievable_fraction=knobs["fp32_gemm_fraction"])
    engines[DType.FP16] = GemmEngineSpec(
        peak_tflops=engines[DType.FP16].peak_tflops,
        achievable_fraction=knobs["fp16_gemm_fraction"])
    return dataclasses.replace(device, mem_efficiency=efficiency,
                               gemm_engines=engines,
                               gemm_mem_efficiency=knobs["gemm_mem_bw"])


def objective(device: DeviceModel, model: BertConfig,
              targets: list[CalibrationTarget]) -> float:
    """Weighted squared error of modeled vs. target fractions."""
    from repro.profiler.breakdown import summarize
    from repro.profiler.profiler import profile_trace
    from repro.trace.bert_trace import build_iteration_trace

    error = 0.0
    for target in targets:
        trace = build_iteration_trace(model, target.training)
        stats = summarize(profile_trace(trace, device))
        if target.metric not in stats:
            raise KeyError(f"unknown metric {target.metric!r}")
        error += target.weight * (stats[target.metric] - target.value) ** 2
    return error


@dataclass
class CalibrationResult:
    """Outcome of a calibration run.

    Attributes:
        device: the calibrated device model.
        knobs: final knob values.
        initial_error / final_error: objective before and after.
        iterations: coordinate-descent sweeps performed.
    """

    device: DeviceModel
    knobs: dict[str, float]
    initial_error: float
    final_error: float
    iterations: int


def calibrate(device: DeviceModel, model: BertConfig,
              targets: list[CalibrationTarget], *,
              max_iterations: int = 8, step: float = 0.15,
              tolerance: float = 1e-6) -> CalibrationResult:
    """Coordinate descent over the device knobs.

    Each sweep tries scaling every knob by ``(1 +- step)`` (shrinking the
    step when no move helps) and keeps improvements.  Deterministic and
    dependency-free; adequate for the smooth, low-dimensional objective.
    """
    if not targets:
        raise ValueError("no calibration targets")
    knobs = get_knobs(device)
    best_error = objective(set_knobs(device, knobs), model, targets)
    initial_error = best_error

    iterations = 0
    current_step = step
    for _ in range(max_iterations):
        iterations += 1
        improved = False
        for name in KNOBS:
            for factor in (1.0 + current_step, 1.0 - current_step):
                candidate = dict(knobs)
                candidate[name] = min(1.0, max(0.01,
                                               knobs[name] * factor))
                error = objective(set_knobs(device, candidate), model,
                                  targets)
                if error < best_error - tolerance:
                    best_error = error
                    knobs = candidate
                    improved = True
        if not improved:
            current_step /= 2.0
            if current_step < 0.02:
                break
    return CalibrationResult(device=set_knobs(device, knobs), knobs=knobs,
                             initial_error=initial_error,
                             final_error=best_error,
                             iterations=iterations)


def paper_targets() -> list[CalibrationTarget]:
    """The Fig. 3/4 fractions the shipped MI100 preset was fit against."""
    from repro.config import Precision, training_point

    b32 = training_point(1, 32, Precision.FP32)
    b4 = training_point(1, 4, Precision.FP32)
    b32_mp = training_point(1, 32, Precision.MIXED)
    return [
        CalibrationTarget("lamb@b32", b32, "optimizer", 0.085, weight=4.0),
        CalibrationTarget("lamb@b4", b4, "optimizer", 0.25, weight=2.0),
        CalibrationTarget("lamb@b32-mp", b32_mp, "optimizer", 0.175,
                          weight=2.0),
        CalibrationTarget("gemm@b32", b32, "gemm", 0.58, weight=1.0),
        CalibrationTarget("gemm@b32-mp", b32_mp, "gemm", 0.40, weight=1.0),
        CalibrationTarget("output@b32", b32, "output", 0.05, weight=1.0),
    ]
